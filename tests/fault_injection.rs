//! Failure injection through the whole stack: a faulty storage device under
//! a real out-of-core run must surface as a clean `Err`, never a panic or
//! corrupted accounting, and the runtime must stay usable afterwards.

use northup_suite::core::runtime::SetupCosts;
use northup_suite::hw::{FaultOps, FaultyBackend, HeapBackend, StorageBackend};
use northup_suite::prelude::*;

fn faulty_runtime(ops: FaultOps, fail_every: u64) -> Runtime {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    Runtime::with_custom_backends(tree, ExecMode::Real, SetupCosts::default(), &move |node| {
        if node.id == NodeId(0) {
            // Heap-backed stand-in for the SSD so faults are deterministic.
            Some(Box::new(FaultyBackend::new(
                HeapBackend::new("faulty-ssd", node.mem.capacity),
                ops,
                fail_every,
            )) as Box<dyn StorageBackend>)
        } else {
            None
        }
    })
    .unwrap()
}

#[test]
fn read_faults_surface_as_errors_not_panics() {
    let rt = faulty_runtime(FaultOps::Reads, 3);
    let file = rt.alloc(1024, NodeId(0)).unwrap();
    let stage = rt.alloc(64, NodeId(1)).unwrap();

    let mut errors = 0;
    let mut oks = 0;
    for i in 0..12u64 {
        match rt.move_data(stage, 0, file, i * 64, 64) {
            Ok(_) => oks += 1,
            Err(NorthupError::Hw(_)) => errors += 1,
            Err(e) => panic!("unexpected error type: {e}"),
        }
    }
    assert_eq!(errors, 4, "every third backend read fails");
    assert_eq!(oks, 8);
    // The runtime is still fully usable.
    rt.release(stage).unwrap();
    let h = rt.alloc(16, NodeId(1)).unwrap();
    rt.release(h).unwrap();
}

#[test]
fn write_faults_do_not_corrupt_capacity_accounting() {
    let rt = faulty_runtime(FaultOps::Writes, 2);
    let file = rt.alloc(256, NodeId(0)).unwrap();
    let stage = rt.alloc(64, NodeId(1)).unwrap();
    let before = rt.used(NodeId(0));

    let mut failures = 0;
    for _ in 0..6 {
        if rt.move_data(file, 0, stage, 0, 64).is_err() {
            failures += 1;
        }
    }
    assert!(failures > 0);
    assert_eq!(rt.used(NodeId(0)), before, "capacity unchanged by faults");
}

#[test]
fn alloc_faults_are_reported_and_recoverable() {
    let rt = faulty_runtime(FaultOps::Allocs, 2);
    let a = rt.alloc(32, NodeId(0)).unwrap(); // 1st alloc ok
    let err = rt.alloc(32, NodeId(0)).unwrap_err(); // 2nd injected
    assert!(matches!(err, NorthupError::Hw(_)), "{err}");
    let b = rt.alloc(32, NodeId(0)).unwrap(); // 3rd ok
    rt.release(a).unwrap();
    rt.release(b).unwrap();
    assert_eq!(rt.used(NodeId(0)), 0);
}

#[test]
fn unaffected_nodes_keep_working_during_faults() {
    let rt = faulty_runtime(FaultOps::ReadsAndWrites, 1);
    // Storage is fully broken; DRAM-local operation still works.
    let a = rt.alloc(128, NodeId(1)).unwrap();
    let b = rt.alloc(128, NodeId(1)).unwrap();
    rt.write_slice(a, 0, &[7u8; 128]).unwrap();
    rt.move_data(b, 0, a, 0, 128).unwrap();
    let mut out = [0u8; 128];
    rt.read_slice(b, 0, &mut out).unwrap();
    assert_eq!(out, [7u8; 128]);
}

#[test]
fn move_data_up_write_faults_surface_and_preserve_the_file_prefix() {
    // Every second root write fails: the fill of the file itself succeeds
    // (writes 1), and the subsequent move-ups alternate fault/ok.
    let rt = faulty_runtime(FaultOps::Writes, 2);
    let file = rt.alloc(512, NodeId(0)).unwrap();
    rt.write_slice(file, 0, &[0xAAu8; 512]).unwrap(); // write #1: ok
    let stage = rt.alloc(64, NodeId(1)).unwrap();
    rt.write_slice(stage, 0, &[0x55u8; 64]).unwrap(); // DRAM: unwrapped

    // Writeback path (leaf → root), the paper's move_data_up.
    let first = rt.move_data(file, 0, stage, 0, 64);
    assert!(
        matches!(first, Err(NorthupError::Hw(_))),
        "write #2 injected: {first:?}"
    );
    // The failed writeback left the file region untouched.
    let mut out = [0u8; 64];
    rt.read_slice(file, 0, &mut out).unwrap();
    assert_eq!(out, [0xAAu8; 64], "no partial write on fault");
    // The retry (write #3) lands.
    rt.move_data(file, 0, stage, 0, 64).unwrap();
    rt.read_slice(file, 0, &mut out).unwrap();
    assert_eq!(out, [0x55u8; 64]);
}

#[test]
fn lease_accounting_balances_through_every_error_path() {
    use northup_suite::sched::Reservation;
    let rt = faulty_runtime(FaultOps::ReadsAndWrites, 3);
    let lease = Reservation::new()
        .with(NodeId(0), 4096)
        .with(NodeId(1), 256)
        .to_lease();
    rt.install_lease(std::sync::Arc::clone(&lease));

    let file = rt.alloc(1024, NodeId(0)).unwrap();
    let stage = rt.alloc(64, NodeId(1)).unwrap();
    assert_eq!(lease.used(NodeId(0)), 1024);
    assert_eq!(lease.used(NodeId(1)), 64);

    // Drive both transfer directions through a run of injected faults.
    let mut errors = 0;
    for i in 0..6u64 {
        if rt.move_data(stage, 0, file, i * 64, 64).is_err() {
            errors += 1;
        }
        if rt.move_data(file, i * 64, stage, 0, 64).is_err() {
            errors += 1;
        }
        // Faults never change what the lease holds: transfers are not
        // allocations, and failed ones must not be charged either.
        assert_eq!(lease.used(NodeId(0)), 1024, "after round {i}");
        assert_eq!(lease.used(NodeId(1)), 64, "after round {i}");
    }
    assert!(errors > 0, "the injector must have fired");

    // Releases credit the lease back to zero — nothing leaked.
    rt.release(stage).unwrap();
    rt.release(file).unwrap();
    assert_eq!(lease.used(NodeId(0)), 0);
    assert_eq!(lease.used(NodeId(1)), 0);
    assert_eq!(rt.used(NodeId(0)), 0);
    assert_eq!(rt.used(NodeId(1)), 0);
}
