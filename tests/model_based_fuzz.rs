//! Model-based fuzzing of the unified data API: a random program of
//! allocs / releases / writes / moves / strided moves runs against the
//! real Runtime (with real files and heap buffers) while a flat
//! `HashMap<handle, Vec<u8>>` reference model mirrors every operation.
//! After every step the observable bytes must agree exactly, on both
//! 2-level and 3-level trees.

use northup_suite::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Alloc { node_choice: u8, size: u64 },
    Release { pick: u8 },
    Write { pick: u8, seed: u8 },
    Move { dst: u8, src: u8, len_frac: u8 },
    MoveStrided { dst: u8, src: u8 },
    Check { pick: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), 1u64..600).prop_map(|(node_choice, size)| Op::Alloc { node_choice, size }),
        any::<u8>().prop_map(|pick| Op::Release { pick }),
        (any::<u8>(), any::<u8>()).prop_map(|(pick, seed)| Op::Write { pick, seed }),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(dst, src, len_frac)| Op::Move {
            dst,
            src,
            len_frac
        }),
        (any::<u8>(), any::<u8>()).prop_map(|(dst, src)| Op::MoveStrided { dst, src }),
        any::<u8>().prop_map(|pick| Op::Check { pick }),
    ]
}

struct Model {
    rt: Runtime,
    nodes: Vec<NodeId>,
    /// live handles with their mirror contents and owning node
    live: Vec<(BufferHandle, NodeId, Vec<u8>)>,
}

impl Model {
    fn new(tree: Tree) -> Self {
        let nodes: Vec<NodeId> = tree.nodes().map(|n| n.id).collect();
        Model {
            rt: Runtime::new(tree, ExecMode::Real).unwrap(),
            nodes,
            live: Vec::new(),
        }
    }

    fn pick(&self, raw: u8) -> Option<usize> {
        if self.live.is_empty() {
            None
        } else {
            Some(raw as usize % self.live.len())
        }
    }

    fn apply(&mut self, op: &Op) -> std::result::Result<(), TestCaseError> {
        match *op {
            Op::Alloc { node_choice, size } => {
                let node = self.nodes[node_choice as usize % self.nodes.len()];
                if let Ok(h) = self.rt.alloc(size, node) {
                    self.live.push((h, node, vec![0u8; size as usize]));
                }
            }
            Op::Release { pick } => {
                if let Some(i) = self.pick(pick) {
                    let (h, _, _) = self.live.remove(i);
                    self.rt.release(h).unwrap();
                }
            }
            Op::Write { pick, seed } => {
                if let Some(i) = self.pick(pick) {
                    let (h, _, mirror) = &mut self.live[i];
                    let data: Vec<u8> = (0..mirror.len())
                        .map(|k| seed.wrapping_add(k as u8))
                        .collect();
                    self.rt.write_slice(*h, 0, &data).unwrap();
                    mirror.copy_from_slice(&data);
                }
            }
            Op::Move { dst, src, len_frac } => {
                let (Some(di), Some(si)) = (self.pick(dst), self.pick(src)) else {
                    return Ok(());
                };
                if di == si {
                    return Ok(());
                }
                let (dh, dn, _) = self.live[di].clone_meta();
                let (sh, sn, _) = self.live[si].clone_meta();
                let max = self.live[di].2.len().min(self.live[si].2.len()) as u64;
                let len = max * (len_frac as u64 % 100) / 100;
                match self.rt.move_data(dh, 0, sh, 0, len) {
                    Ok(_) => {
                        let src_bytes = self.live[si].2[..len as usize].to_vec();
                        self.live[di].2[..len as usize].copy_from_slice(&src_bytes);
                    }
                    Err(NorthupError::NotAdjacent(a, b)) => {
                        prop_assert!(
                            dn != sn && !adjacent_ok(&self.rt, sn, dn),
                            "spurious NotAdjacent({a},{b})"
                        );
                    }
                    Err(e) => prop_assert!(false, "unexpected error: {e}"),
                }
            }
            Op::MoveStrided { dst, src } => {
                let (Some(di), Some(si)) = (self.pick(dst), self.pick(src)) else {
                    return Ok(());
                };
                if di == si {
                    return Ok(());
                }
                let (dh, _, _) = self.live[di].clone_meta();
                let (sh, _, _) = self.live[si].clone_meta();
                let dlen = self.live[di].2.len() as u64;
                let slen = self.live[si].2.len() as u64;
                // Every other byte of src's front half into dst's front.
                let rows = (slen / 2).min(dlen).min(8);
                if rows == 0 {
                    return Ok(());
                }
                if self
                    .rt
                    .move_data_strided(dh, 0, 1, sh, 0, 2, 1, rows)
                    .is_ok()
                {
                    for r in 0..rows as usize {
                        let b = self.live[si].2[r * 2];
                        self.live[di].2[r] = b;
                    }
                }
            }
            Op::Check { pick } => {
                if let Some(i) = self.pick(pick) {
                    let (h, _, mirror) = &self.live[i];
                    let mut got = vec![0u8; mirror.len()];
                    self.rt.read_slice(*h, 0, &mut got).unwrap();
                    prop_assert_eq!(&got, mirror, "buffer {:?} diverged", h);
                }
            }
        }
        Ok(())
    }

    fn check_all(&self) -> std::result::Result<(), TestCaseError> {
        for (h, node, mirror) in &self.live {
            let mut got = vec![0u8; mirror.len()];
            self.rt.read_slice(*h, 0, &mut got).unwrap();
            prop_assert_eq!(&got, mirror, "final divergence on {:?}@{}", h, node);
        }
        Ok(())
    }
}

trait CloneMeta {
    fn clone_meta(&self) -> (BufferHandle, NodeId, ());
}

impl CloneMeta for (BufferHandle, NodeId, Vec<u8>) {
    fn clone_meta(&self) -> (BufferHandle, NodeId, ()) {
        (self.0, self.1, ())
    }
}

fn adjacent_ok(rt: &Runtime, a: NodeId, b: NodeId) -> bool {
    a == b || rt.tree().adjacent(a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn runtime_matches_flat_reference_on_two_levels(
        ops in prop::collection::vec(op_strategy(), 1..80)
    ) {
        let mut m = Model::new(presets::apu_two_level(catalog::ssd_hyperx_predator()));
        for op in &ops {
            m.apply(op)?;
        }
        m.check_all()?;
    }

    #[test]
    fn runtime_matches_flat_reference_on_three_levels(
        ops in prop::collection::vec(op_strategy(), 1..80)
    ) {
        let mut m = Model::new(presets::discrete_gpu_three_level(catalog::hdd_wd5000()));
        for op in &ops {
            m.apply(op)?;
        }
        m.check_all()?;
    }

    #[test]
    fn runtime_matches_flat_reference_on_the_asymmetric_tree(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        let mut m = Model::new(presets::asymmetric_fig2());
        for op in &ops {
            m.apply(op)?;
        }
        m.check_all()?;
    }
}
