//! The §III-C dependency-graph unfolding, end to end: trace a real
//! out-of-core run, check the graph's structure, and quantify the
//! parallelism headroom a DAG scheduler would have over the paper's
//! in-order queues.

use northup_suite::apps::matmul::matmul_northup_on;
use northup_suite::apps::spmv::spmv_northup_on;
use northup_suite::prelude::*;
use northup_suite::sparse::gen;

#[test]
fn traced_matmul_produces_a_consistent_dag() {
    let cfg = MatmulConfig {
        n: 64,
        block: 16,
        ring: 2,
        seed: 1,
    };
    let rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Real,
    )
    .unwrap();
    rt.enable_dag();
    let run = matmul_northup_on(&rt, &cfg).unwrap();
    assert_eq!(run.verified, Some(true));

    let dag = rt.task_dag();
    assert!(!dag.is_empty());
    // Edges are forward-only (ids are a topological order).
    assert!(dag.edges.iter().all(|&(a, b)| a < b));
    // Every compute node depends on at least one load.
    let hist = dag.category_histogram();
    assert!(hist["gpu"] >= 16, "one kernel per tile: {hist:?}");
    assert!(hist["memcpy"] > 0, "data movements recorded");

    // The critical path can't exceed the FIFO makespan, and the DAG must
    // expose real parallelism (loads of different tiles are independent).
    let (cp, path) = dag.critical_path();
    assert!(cp <= run.makespan());
    assert!(!path.is_empty());
    assert!(
        dag.parallelism() > 1.2,
        "pipeline exposes parallelism: {}",
        dag.parallelism()
    );
    // Headroom >= 1 by definition; for the compute-bound GEMM the FIFO
    // schedule is already near-optimal, so headroom should be modest.
    let headroom = dag.headroom(run.makespan());
    assert!((1.0..3.0).contains(&headroom), "headroom {headroom}");
}

#[test]
fn dag_headroom_quantifies_the_papers_future_work_claim() {
    // The paper: unfolding to a dependency graph can "exploit more
    // parallelism". Measure it: the CSR pipeline (serial per-shard chains)
    // has more headroom than the deeply pipelined GEMM.
    let gemm_rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Modeled,
    )
    .unwrap();
    gemm_rt.enable_dag();
    let gemm = matmul_northup_on(&gemm_rt, &MatmulConfig::paper()).unwrap();
    let gemm_headroom = gemm_rt.task_dag().headroom(gemm.makespan());

    let spmv_rt = Runtime::new(
        presets::apu_two_level(northup_suite::apps::spmv::spmv_storage(
            catalog::ssd_hyperx_predator(),
        )),
        ExecMode::Modeled,
    )
    .unwrap();
    spmv_rt.enable_dag();
    let spmv = spmv_northup_on(&spmv_rt, &SpmvInput::paper()).unwrap();
    let spmv_headroom = spmv_rt.task_dag().headroom(spmv.makespan());

    assert!(
        spmv_headroom > gemm_headroom,
        "serial CSR chains leave more on the table: spmv {spmv_headroom:.3} vs gemm {gemm_headroom:.3}"
    );
}

#[test]
fn dag_dot_export_renders_a_real_run() {
    let rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Real,
    )
    .unwrap();
    rt.enable_dag();
    let input = SpmvInput::Matrix(gen::banded(100, 2, 3));
    spmv_northup_on(&rt, &input).unwrap();
    let dot = rt.task_dag().render_dot();
    assert!(dot.starts_with("digraph tasks"));
    assert!(dot.contains("->"));
}

#[test]
fn dag_recording_is_opt_in() {
    let rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Real,
    )
    .unwrap();
    let a = rt.alloc(16, NodeId(0)).unwrap();
    rt.release(a).unwrap();
    assert!(rt.task_dag().is_empty(), "no recording unless enabled");
}
