//! The recursive programming model across topologies: full traversal of
//! the asymmetric Fig. 2 tree, level bookkeeping, per-branch work queues,
//! and the paper's tree-query API used from inside the recursion.

use northup_suite::prelude::*;

/// Recursively visit every leaf reachable from a context, moving one byte
/// of data down each edge and asserting the level arithmetic.
fn visit_all(ctx: &Ctx, carried: BufferHandle, touched: &mut Vec<NodeId>) -> Result<()> {
    let rt = ctx.rt();
    touched.push(ctx.node());
    if ctx.is_leaf() {
        assert_eq!(
            ctx.children().len(),
            0,
            "leaves have no children by definition"
        );
        return Ok(());
    }
    for i in 0..ctx.children().len() {
        let child = ctx.children()[i];
        // setup_buffer + data_down for this branch.
        let lower = rt.alloc(1, child)?;
        ctx.move_down(lower, 0, carried, 0, 1)?;
        ctx.spawn(i, |c| visit_all(c, lower, touched))?;
        rt.release(lower)?;
    }
    Ok(())
}

#[test]
fn recursion_covers_the_asymmetric_tree() {
    let tree = presets::asymmetric_fig2();
    let expected_nodes = tree.len();
    let rt = Runtime::new(tree, ExecMode::Real).unwrap();
    let root = rt.root_ctx();
    let seed = root.alloc(1).unwrap();
    rt.write_slice(seed, 0, &[42]).unwrap();

    let mut touched = Vec::new();
    visit_all(&root, seed, &mut touched).unwrap();
    assert_eq!(touched.len(), expected_nodes, "every node visited once");

    // Work-queue statistics: the root spawned one task per child subtree.
    assert_eq!(
        rt.tasks_spawned(NodeId(0)) as usize,
        rt.tree().children(NodeId(0)).len()
    );
    assert_eq!(rt.tasks_active(NodeId(0)), 0, "all tasks retired");
}

#[test]
fn levels_increase_by_one_per_edge_everywhere() {
    for tree in [
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        presets::discrete_gpu_three_level(catalog::hdd_wd5000()),
        presets::asymmetric_fig2(),
        presets::exascale_node(),
    ] {
        for node in tree.nodes() {
            match node.parent {
                None => assert_eq!(node.level, 0, "root is level 0 (slowest storage)"),
                Some(p) => assert_eq!(node.level, tree.level(p) + 1),
            }
            for &c in &node.children {
                assert_eq!(tree.parent(c), Some(node.id));
            }
        }
        // max_level is attained by some leaf.
        assert!(tree.leaves().any(|l| l.level == tree.max_level()));
    }
}

#[test]
fn computation_happens_at_leaves_with_processors() {
    // Every preset leaf intended for compute has at least one processor,
    // and every processor-less node is an intermediate memory.
    for tree in [
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        presets::discrete_gpu_three_level(catalog::hdd_wd5000()),
        presets::asymmetric_fig2(),
        presets::exascale_node(),
    ] {
        for leaf in tree.leaves() {
            assert!(
                !leaf.procs.is_empty(),
                "leaf {} of {:?} has no processor",
                leaf.id,
                tree.node(NodeId(0)).mem.name
            );
        }
    }
}

#[test]
fn query_api_matches_paper_semantics() {
    let tree = presets::discrete_gpu_three_level(catalog::ssd_hyperx_predator());
    let rt = Runtime::new(tree, ExecMode::Real).unwrap();

    // get_cur_treenode / get_level / get_max_treelevel from Listing 3.
    let root = rt.root_ctx();
    assert_eq!(root.node(), NodeId(0));
    assert_eq!(root.level(), 0);
    assert_eq!(root.max_level(), 2);

    // fetch_node_type drives the move_data dispatch.
    assert_eq!(rt.tree().storage_class(NodeId(0)), StorageClass::File);
    assert_eq!(rt.tree().storage_class(NodeId(1)), StorageClass::Memory);
    assert_eq!(rt.tree().storage_class(NodeId(2)), StorageClass::Device);

    // get_device at the leaf selects the kernel target (§III-E).
    let leaf = rt.ctx_at(NodeId(2));
    assert_eq!(leaf.device(), Some(ProcKind::Gpu));
    assert!(leaf.is_leaf());
    assert_eq!(leaf.level(), leaf.max_level());
}

#[test]
fn render_outputs_are_stable() {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let a = tree.render_ascii();
    let b = tree.render_ascii();
    assert_eq!(a, b);
    assert!(tree.render_dot().contains("digraph"));
}
