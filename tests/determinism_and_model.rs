//! Determinism and timing-model invariants: the whole point of the
//! virtual-time substrate is that every figure regenerates bit-identically,
//! that timing is independent of whether real bytes moved, and that the
//! pipelined model obeys basic scheduling bounds.

use northup_suite::apps::matmul::matmul_northup;
use northup_suite::prelude::*;
use northup_suite::sim::Category;
use proptest::prelude::*;

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = MatmulConfig::paper();
    let a = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
    let b = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
    assert_eq!(a.makespan(), b.makespan());
    assert_eq!(a.report.breakdown, b.report.breakdown);
}

#[test]
fn timing_is_independent_of_execution_mode() {
    // Real mode moves bytes and runs kernels; Modeled mode does neither.
    // The virtual timeline must be identical.
    let cfg = HotspotConfig {
        n: 32,
        block: 16,
        steps_per_pass: 2,
        passes: 2,
        ring: 2,
        seed: 1,
    };
    let real = hotspot_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Real).unwrap();
    let modeled = hotspot_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled).unwrap();
    assert_eq!(real.report.breakdown, modeled.report.breakdown);
}

#[test]
fn faster_storage_never_slows_a_run() {
    let cfg = MatmulConfig {
        n: 64,
        block: 16,
        ring: 2,
        seed: 2,
    };
    let mut last = f64::INFINITY;
    for (r, w) in [(125u64, 120u64), (1400, 600), (3500, 2100)] {
        let storage = if r == 125 {
            catalog::hdd_wd5000()
        } else {
            catalog::ssd_with_bandwidth(r, w)
        };
        let run = matmul_apu(&cfg, storage, ExecMode::Modeled).unwrap();
        let t = run.makespan().as_secs_f64();
        assert!(t <= last + 1e-12, "({r},{w}): {t} > {last}");
        last = t;
    }
}

#[test]
fn makespan_at_least_every_single_resource_busy_time() {
    // A FIFO resource can't finish before serving all its requests, so the
    // makespan is bounded below by each device's busy time.
    let run = matmul_apu(
        &MatmulConfig::paper(),
        catalog::ssd_hyperx_predator(),
        ExecMode::Modeled,
    )
    .unwrap();
    let makespan = run.makespan();
    for (name, stats) in &run.report.utilization {
        assert!(
            stats.busy <= makespan,
            "{name} busy {} exceeds makespan {makespan}",
            stats.busy
        );
    }
}

#[test]
fn out_of_core_never_beats_in_memory() {
    for storage in [
        catalog::ssd_with_bandwidth(10_000, 10_000),
        catalog::hdd_wd5000(),
    ] {
        let cfg = HotspotConfig::paper();
        let base = hotspot_in_memory(&cfg, ExecMode::Modeled).unwrap();
        let run = hotspot_apu(&cfg, storage, ExecMode::Modeled).unwrap();
        assert!(run.slowdown_vs(&base) >= 1.0 - 1e-9);
    }
}

#[test]
fn pipelining_hides_io_behind_compute_for_gemm() {
    // The paper's core matmul observation: overlapped execution makes the
    // makespan far smaller than the serial sum of compute and I/O.
    let run = matmul_apu(
        &MatmulConfig::paper(),
        catalog::ssd_hyperx_predator(),
        ExecMode::Modeled,
    )
    .unwrap();
    let b = &run.report.breakdown;
    let serial_sum = b.total_busy();
    let makespan = b.makespan;
    assert!(
        makespan.as_secs_f64() < 0.92 * serial_sum.as_secs_f64(),
        "no overlap: makespan {makespan} vs serial {serial_sum}"
    );
    // And compute dominates the makespan (I/O hidden).
    assert!(b.get(Category::GpuCompute).as_secs_f64() > 0.9 * makespan.as_secs_f64());
}

#[test]
fn chrome_trace_exports_a_full_run() {
    let run_rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Modeled,
    )
    .unwrap();
    northup_suite::apps::matmul::matmul_northup_on(&run_rt, &MatmulConfig::paper()).unwrap();
    let trace = run_rt.chrome_trace();
    assert!(trace.starts_with('[') && trace.ends_with(']'));
    assert!(trace.contains("\"cat\":\"gpu\""));
    assert!(trace.contains("\"cat\":\"io\""));
    // Valid enough to be written next to bench output.
    assert!(trace.matches("\"ph\":\"X\"").count() > 30);
}

#[test]
fn work_queue_statistics_count_every_chunk() {
    let cfg = MatmulConfig {
        n: 64,
        block: 16,
        ring: 2,
        seed: 0,
    };
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let rt = Runtime::new(tree, ExecMode::Modeled).unwrap();
    drop(rt); // matmul builds its own runtime; use the report instead
    let run = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
    // 4x4 tile grid => 4 row-shard tasks spawned through the root.
    assert!(run.report.breakdown.spans > 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Across arbitrary configurations, Modeled and Real timing agree and
    /// the breakdown is deterministic.
    #[test]
    fn mode_independence_holds_generally(
        blocks in 1usize..4,
        seed in 0u64..100,
    ) {
        let cfg = MatmulConfig { n: blocks * 16, block: 16, ring: 2, seed };
        let tree = presets::discrete_gpu_three_level(catalog::hdd_wd5000());
        let real = matmul_northup(&cfg, tree.clone(), ExecMode::Real).unwrap();
        let modeled = matmul_northup(&cfg, tree, ExecMode::Modeled).unwrap();
        prop_assert_eq!(real.report.breakdown, modeled.report.breakdown);
    }

    /// The makespan is monotone in the temporal-blocking depth's compute
    /// (more steps per pass => more total work => no faster).
    #[test]
    fn hotspot_makespan_monotone_in_steps(steps in 1usize..6) {
        let mk = |s: usize| {
            let cfg = HotspotConfig {
                n: 64, block: 32, steps_per_pass: s, passes: 1, ring: 2, seed: 0,
            };
            hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled)
                .unwrap()
                .makespan()
        };
        prop_assert!(mk(steps + 1) >= mk(steps));
    }
}
