//! Work-stealing integration: the real pool computing real kernels, the
//! virtual-time DES's conservation laws, and agreement between the two on
//! relative throughput.

use northup_suite::exec::ThreadPool;
use northup_suite::kernels::{
    matmul_naive, matmul_parallel, multi_step_parallel, DenseMatrix, HotSpotParams,
};
use northup_suite::sim::{deal_round_robin, simulate_stealing, SimWorker};
use proptest::prelude::*;
use std::collections::VecDeque;

#[test]
fn pool_parallel_gemm_matches_naive_under_contention() {
    let pool = ThreadPool::new(8);
    for seed in 0..4u64 {
        let a = DenseMatrix::random(96, 64, seed);
        let b = DenseMatrix::random(64, 80, seed + 100);
        let mut expect = DenseMatrix::zeros(96, 80);
        matmul_naive(&a, &b, &mut expect);
        let mut got = DenseMatrix::zeros(96, 80);
        matmul_parallel(&pool, &a, &b, &mut got);
        assert!(expect.max_abs_diff(&got) < 1e-3, "seed {seed}");
    }
}

#[test]
fn pool_parallel_stencil_matches_blocked() {
    let pool = ThreadPool::new(6);
    let temp = DenseMatrix::random(40, 56, 1);
    let power = DenseMatrix::random(40, 56, 2);
    let prm = HotSpotParams::default();
    let seq = northup_suite::kernels::multi_step_reference(&temp, &power, 3, &prm);
    let par = multi_step_parallel(&pool, &temp, &power, 16, 3, &prm);
    assert!(seq.max_abs_diff(&par) < 1e-4);
}

#[test]
fn many_pools_can_coexist() {
    // Pool-id discrimination in the TLS fast path: tasks of pool A spawned
    // from pool B's workers must not corrupt either.
    let a = ThreadPool::new(2);
    let b = ThreadPool::new(2);
    let count = std::sync::atomic::AtomicUsize::new(0);
    a.scope(|s| {
        for _ in 0..16 {
            s.spawn(|| {
                b.scope(|s2| {
                    for _ in 0..4 {
                        s2.spawn(|| {
                            count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(count.load(std::sync::atomic::Ordering::Relaxed), 64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DES conservation: all work is executed exactly once, busy time equals
    /// work/rate summed over executors, and makespan is within the
    /// list-scheduling bounds.
    #[test]
    fn des_conserves_work(
        tasks in prop::collection::vec(0.1f64..10.0, 1..60),
        workers in 1usize..6,
        steal in any::<bool>(),
    ) {
        let total_work: f64 = tasks.iter().sum();
        let ws: Vec<SimWorker> = (0..workers)
            .map(|i| {
                let victims = if steal {
                    (0..workers).filter(|&v| v != i).collect()
                } else {
                    Vec::new()
                };
                SimWorker::new(format!("w{i}"), 1.0 + i as f64 * 0.5, victims)
            })
            .collect();
        let out = simulate_stealing(&ws, deal_round_robin(&tasks, workers));
        prop_assert_eq!(out.tasks as usize, tasks.len());

        // Work conservation: sum over workers of busy*rate == total work.
        let executed: f64 = out
            .per_worker
            .iter()
            .zip(&ws)
            .map(|(st, w)| st.busy.as_secs_f64() * w.rate)
            .sum();
        prop_assert!((executed - total_work).abs() < 1e-6 * total_work.max(1.0));

        // Bounds: no faster than perfect balance, no slower than the
        // slowest worker doing everything.
        let rate_sum: f64 = ws.iter().map(|w| w.rate).sum();
        let min_rate = ws.iter().map(|w| w.rate).fold(f64::INFINITY, f64::min);
        let m = out.makespan.as_secs_f64();
        prop_assert!(m + 1e-9 >= tasks.iter().fold(0.0f64, |a, &b| a.max(b)) / rate_sum.max(1e9));
        prop_assert!(m <= total_work / min_rate + 1e-6);
    }

    /// Stealing never increases the makespan (with uniform per-task cost
    /// visibility, the schedule dominates the no-stealing one).
    #[test]
    fn stealing_is_never_worse(
        n_tasks in 1usize..80,
        work in 0.5f64..5.0,
        workers in 2usize..6,
    ) {
        let tasks = vec![work; n_tasks];
        let base: Vec<SimWorker> = (0..workers)
            .map(|i| SimWorker::new(format!("w{i}"), 1.0 + (i % 3) as f64, Vec::new()))
            .collect();
        let with: Vec<SimWorker> = (0..workers)
            .map(|i| {
                SimWorker::new(
                    format!("w{i}"),
                    1.0 + (i % 3) as f64,
                    (0..workers).filter(|&v| v != i).collect(),
                )
            })
            .collect();
        let queues = deal_round_robin(&tasks, workers);
        let a = simulate_stealing(&base, queues.clone());
        let b = simulate_stealing(&with, queues);
        prop_assert!(b.makespan <= a.makespan, "{} > {}", b.makespan, a.makespan);
    }

    /// Real deque under arbitrary push/pop/steal interleavings from the
    /// owner thread (single-threaded linearization check).
    #[test]
    fn deque_sequential_semantics(ops in prop::collection::vec(0u8..3, 1..200)) {
        use northup_suite::exec::deque::{deque, Steal};
        let (w, s) = deque::<u32>(256);
        let mut model: VecDeque<u32> = VecDeque::new();
        let mut next = 0u32;
        for op in ops {
            match op {
                0 => {
                    if w.push(next).is_ok() {
                        model.push_back(next);
                    }
                    next += 1;
                }
                1 => {
                    let got = w.pop();
                    prop_assert_eq!(got, model.pop_back());
                }
                _ => {
                    let got = match s.steal() {
                        Steal::Success(v) => Some(v),
                        _ => None,
                    };
                    prop_assert_eq!(got, model.pop_front());
                }
            }
            prop_assert_eq!(w.len(), model.len());
        }
    }
}
