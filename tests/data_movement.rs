//! Property tests on the unified data-management API (paper Table I):
//! round-trips across every storage-class pair, strided rectangles, layout
//! transforms, and capacity accounting under arbitrary alloc/release
//! interleavings.

use northup_suite::prelude::*;
use proptest::prelude::*;

fn rt_three_level() -> Runtime {
    Runtime::new(
        presets::discrete_gpu_three_level(catalog::ssd_hyperx_predator()),
        ExecMode::Real,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Bytes written at the root survive a trip down to the leaf and back,
    /// at arbitrary offsets — through file I/O, memcpy and device DMA.
    #[test]
    fn round_trip_through_all_levels(
        len in 1u64..2000,
        src_off in 0u64..500,
        fill in any::<u8>(),
    ) {
        let rt = rt_three_level();
        let file = rt.alloc(src_off + len, NodeId(0)).unwrap();
        let dram = rt.alloc(len, NodeId(1)).unwrap();
        let dev = rt.alloc(len, NodeId(2)).unwrap();
        let back = rt.alloc(src_off + len, NodeId(0)).unwrap();

        let payload: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
        rt.write_slice(file, src_off, &payload).unwrap();

        rt.move_data(dram, 0, file, src_off, len).unwrap();
        rt.move_data(dev, 0, dram, 0, len).unwrap();
        rt.move_data(dram, 0, dev, 0, len).unwrap();
        rt.move_data(back, src_off, dram, 0, len).unwrap();

        let mut out = vec![0u8; len as usize];
        rt.read_slice(back, src_off, &mut out).unwrap();
        prop_assert_eq!(out, payload);
    }

    /// A strided rectangle extracted from a row-major "matrix" on storage
    /// matches a host-side extraction of the same rectangle.
    #[test]
    fn strided_moves_extract_rectangles(
        rows in 1usize..12,
        cols in 1usize..12,
        r0 in 0usize..4,
        c0 in 0usize..4,
        h in 1usize..6,
        w in 1usize..6,
    ) {
        prop_assume!(r0 + h <= rows && c0 + w <= cols);
        let rt = Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        ).unwrap();
        let grid: Vec<u8> = (0..rows * cols).map(|i| (i % 251) as u8).collect();
        let file = rt.alloc((rows * cols) as u64, NodeId(0)).unwrap();
        rt.write_slice(file, 0, &grid).unwrap();
        let stage = rt.alloc((h * w) as u64, NodeId(1)).unwrap();
        rt.move_data_strided(
            stage, 0, w as u64,
            file, (r0 * cols + c0) as u64, cols as u64,
            w as u64, h as u64,
        ).unwrap();
        let mut got = vec![0u8; h * w];
        rt.read_slice(stage, 0, &mut got).unwrap();
        let expect: Vec<u8> = (0..h)
            .flat_map(|r| grid[(r0 + r) * cols + c0..(r0 + r) * cols + c0 + w].to_vec())
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// move_data_transform == move + host-side permutation, and the inverse
    /// transform restores the original bytes.
    #[test]
    fn transforms_round_trip_across_levels(
        rows in 1usize..10,
        cols in 1usize..10,
        elem in prop::sample::select(vec![1usize, 2, 4]),
    ) {
        let rt = Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        ).unwrap();
        let bytes = (rows * cols * elem) as u64;
        let t = Transform::RowToCol { rows, cols, elem };

        let src = rt.alloc(bytes, NodeId(0)).unwrap();
        let mid = rt.alloc(bytes, NodeId(1)).unwrap();
        let back = rt.alloc(bytes, NodeId(0)).unwrap();
        let data: Vec<u8> = (0..bytes).map(|i| (i * 7 % 256) as u8).collect();
        rt.write_slice(src, 0, &data).unwrap();

        rt.move_data_transform(mid, src, t).unwrap();
        rt.move_data_transform(back, mid, t.inverse()).unwrap();
        let mut out = vec![0u8; bytes as usize];
        rt.read_slice(back, 0, &mut out).unwrap();
        prop_assert_eq!(out, data);
    }

    /// Capacity accounting is exact under arbitrary alloc/release sequences,
    /// and the node always recovers its full capacity.
    #[test]
    fn capacity_accounting_is_exact(ops in prop::collection::vec(1u64..2000, 1..30)) {
        let mut spec = catalog::dram_staging_2gb();
        spec.capacity = 64 * 1024;
        let mut b = northup::TreeBuilder::new(catalog::ssd_hyperx_predator());
        let dram = b.add_child(NodeId(0), spec, catalog::dram_dma_link());
        b.attach_processor(dram, ProcessorDesc::new(ProcKind::Gpu, "apu-gpu", 1 << 20));
        let rt = Runtime::new(b.build(), ExecMode::Real).unwrap();

        let mut live: Vec<(BufferHandle, u64)> = Vec::new();
        let mut used = 0u64;
        for (i, size) in ops.iter().enumerate() {
            if i % 3 == 2 && !live.is_empty() {
                let (h, sz) = live.remove(i % live.len());
                rt.release(h).unwrap();
                used -= sz;
            } else if used + size <= 64 * 1024 {
                let h = rt.alloc(*size, dram).unwrap();
                live.push((h, *size));
                used += size;
            }
            prop_assert_eq!(rt.used(dram), used);
        }
        for (h, _) in live {
            rt.release(h).unwrap();
        }
        prop_assert_eq!(rt.used(dram), 0);
        prop_assert_eq!(rt.available(dram), 64 * 1024);
    }
}

#[test]
fn capacity_exhaustion_is_an_error_not_a_panic() {
    let rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Modeled,
    )
    .unwrap();
    // The staging DRAM holds 2 GiB; a 3 GiB chunk cannot fit.
    let err = rt.alloc(3 << 30, NodeId(1)).unwrap_err();
    assert!(matches!(err, NorthupError::Hw(_)), "{err}");
    // The runtime stays usable.
    let ok = rt.alloc(1 << 20, NodeId(1)).unwrap();
    rt.release(ok).unwrap();
}

#[test]
fn moves_between_sibling_leaves_are_rejected() {
    // Fig. 2's asymmetric tree has multiple branches; data moves along
    // edges only.
    let tree = presets::asymmetric_fig2();
    let rt = Runtime::new(tree, ExecMode::Real).unwrap();
    let a = rt.alloc(16, NodeId(1)).unwrap(); // CPU DRAM leaf
    let b = rt.alloc(16, NodeId(2)).unwrap(); // NVM subtree root
    assert!(matches!(
        rt.move_data(b, 0, a, 0, 16),
        Err(NorthupError::NotAdjacent(_, _))
    ));
}

#[test]
fn zero_length_moves_are_noops_with_latency_only() {
    let rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Real,
    )
    .unwrap();
    let a = rt.alloc(8, NodeId(0)).unwrap();
    let b = rt.alloc(8, NodeId(1)).unwrap();
    rt.move_data(b, 0, a, 0, 0).unwrap();
    rt.move_data(b, 8, a, 8, 0).unwrap(); // offset == size is fine for len 0
}
