//! Cross-crate correctness: every application's out-of-core Northup
//! execution must produce exactly the same result as its in-memory
//! reference, for arbitrary shapes, blockings, storage devices and
//! topologies. These are the end-to-end guarantees behind the paper's
//! portability claim.

use northup_suite::apps::hotspot::hotspot_northup;
use northup_suite::apps::matmul::matmul_northup;
use northup_suite::apps::spmv::spmv_northup;
use northup_suite::prelude::*;
use northup_suite::sparse::gen;
use proptest::prelude::*;

fn storages() -> Vec<DeviceSpec> {
    vec![
        catalog::ssd_hyperx_predator(),
        catalog::hdd_wd5000(),
        catalog::nvm_optane_like(),
        catalog::nvm_as_memory(), // memory-class root: memcpy dispatch path
    ]
}

use northup_suite::hw::catalog;

#[test]
fn matmul_verifies_on_every_storage_class() {
    let cfg = MatmulConfig {
        n: 48,
        block: 16,
        ring: 2,
        seed: 3,
    };
    for storage in storages() {
        let name = storage.name.clone();
        let run = matmul_apu(&cfg, storage, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true), "matmul on {name}");
    }
}

#[test]
fn hotspot_verifies_on_every_storage_class() {
    let cfg = HotspotConfig {
        n: 32,
        block: 16,
        steps_per_pass: 2,
        passes: 2,
        ring: 2,
        seed: 3,
    };
    for storage in storages() {
        let name = storage.name.clone();
        let run = hotspot_apu(&cfg, storage, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true), "hotspot on {name}");
    }
}

#[test]
fn spmv_verifies_on_every_storage_class() {
    let input = SpmvInput::Matrix(gen::powerlaw(300, 300, 64, 0.8, 17));
    for storage in storages() {
        let name = storage.name.clone();
        let run = spmv_apu(&input, storage, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true), "spmv on {name}");
    }
}

#[test]
fn all_apps_verify_on_the_exascale_chain() {
    // Four software-managed levels: NVM -> DRAM -> HBM -> GPU memory.
    let cfg = MatmulConfig {
        n: 32,
        block: 16,
        ring: 2,
        seed: 9,
    };
    let run = matmul_northup(&cfg, presets::exascale_node(), ExecMode::Real).unwrap();
    assert_eq!(run.verified, Some(true));

    let hcfg = HotspotConfig {
        n: 32,
        block: 16,
        steps_per_pass: 3,
        passes: 2,
        ring: 2,
        seed: 1,
    };
    let run = hotspot_northup(&hcfg, presets::exascale_node(), ExecMode::Real).unwrap();
    assert_eq!(run.verified, Some(true));

    let input = SpmvInput::Matrix(gen::banded(200, 2, 5));
    let run = spmv_northup(&input, presets::exascale_node(), ExecMode::Real).unwrap();
    assert_eq!(run.verified, Some(true));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn matmul_exact_for_arbitrary_divisible_shapes(
        blocks in 1usize..5,
        block in prop::sample::select(vec![8usize, 16, 24]),
        seed in 0u64..1000,
    ) {
        let cfg = MatmulConfig { n: blocks * block, block, ring: 2, seed };
        let run = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        prop_assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn hotspot_exact_for_arbitrary_blocking_and_depth(
        tiles in 1usize..4,
        block in prop::sample::select(vec![8usize, 16]),
        steps in 1usize..5,
        passes in 1usize..4,
        seed in 0u64..1000,
    ) {
        let cfg = HotspotConfig {
            n: tiles * block,
            block,
            steps_per_pass: steps,
            passes,
            ring: 2,
            seed,
        };
        let run = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        prop_assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn spmv_exact_for_arbitrary_matrices(
        rows in 20usize..400,
        nnz_per_row in 1usize..12,
        seed in 0u64..1000,
    ) {
        let m = gen::uniform_random(rows, rows.max(nnz_per_row + 1), nnz_per_row, seed);
        let input = SpmvInput::Matrix(m);
        let run = spmv_apu(&input, catalog::hdd_wd5000(), ExecMode::Real).unwrap();
        prop_assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn northup_checksums_match_in_memory(seed in 0u64..1000) {
        let cfg = MatmulConfig { n: 32, block: 16, ring: 2, seed };
        let a = matmul_in_memory(&cfg, ExecMode::Real).unwrap();
        let b = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        let (ca, cb) = (a.checksum.unwrap(), b.checksum.unwrap());
        prop_assert!((ca - cb).abs() <= 1e-6 * ca.abs().max(1.0));
    }
}
