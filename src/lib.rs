//! # northup-suite — the full Northup reproduction, one import away
//!
//! This crate re-exports the whole workspace so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`core`] — the topological tree, unified data-management API, and
//!   recursive runtime (the paper's contribution, crate `northup`).
//! * [`hw`] — simulated heterogeneous devices (SSD/HDD/NVM/DRAM/HBM/GPU
//!   memory) with real-byte backends.
//! * [`sim`] — the deterministic virtual-time substrate.
//! * [`exec`] — the Chase–Lev work-stealing deque and thread pool.
//! * [`sparse`] — CSR matrices, generators, sharding, CSR-Adaptive binning.
//! * [`kernels`] — GEMM / HotSpot-2D / SpMV kernels and device cost models.
//! * [`apps`] — the three paper case studies plus the work-stealing leaf.
//! * [`sched`] — the multi-tenant job scheduler: admission control over
//!   per-node capacity reservations, weighted fair queueing, and the
//!   deterministic service co-simulation.
//! * [`fleet`] — the federation layer: N shard trees behind a
//!   deterministic router with cross-shard checkpoint migration and a
//!   fleet-wide report (DESIGN.md §11).
//!
//! See `examples/quickstart.rs` for the 5-minute tour and DESIGN.md for the
//! full paper-to-code map.

pub use northup as core;
pub use northup_apps as apps;
pub use northup_exec as exec;
pub use northup_fleet as fleet;
pub use northup_hw as hw;
pub use northup_kernels as kernels;
pub use northup_sched as sched;
pub use northup_sim as sim;
pub use northup_sparse as sparse;

/// Most-used items in one import.
pub mod prelude {
    pub use northup::{
        presets, BufferHandle, Ctx, ExecMode, NodeId, NorthupError, ProcKind, ProcessorDesc,
        Result, RunReport, Runtime, Transform, Tree, TreeBuilder,
    };
    pub use northup_apps::{
        hotspot_apu, hotspot_in_memory, matmul_apu, matmul_in_memory, spmv_apu, spmv_in_memory,
        AppRun, BalanceConfig, HotspotConfig, MatmulConfig, SpmvInput,
    };
    pub use northup_fleet::{Fleet, FleetConfig, FleetJob, FleetReport};
    pub use northup_hw::{catalog, DeviceKind, DeviceSpec, StorageClass};
    pub use northup_sched::{
        AdmissionPolicy, JobScheduler, JobSpec, JobState, JobWork, Priority, Reservation,
        SchedReport, SchedulerConfig,
    };
    pub use northup_sim::{Category, SimDur, SimTime};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_quickstart_path() {
        let rt = Runtime::new(
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Real,
        )
        .unwrap();
        let root = rt.root_ctx();
        let buf = root.alloc(128).unwrap();
        rt.release(buf).unwrap();
        assert_eq!(rt.tree().max_level(), 1);
    }
}
