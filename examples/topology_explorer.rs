//! Topology explorer: every machine preset, rendered and queried.
//!
//! Prints the paper's tree abstraction for each built-in machine (Fig. 1c /
//! Fig. 2), exercises the query API (`get_level`, `get_children_list`,
//! `fetch_node_type`, capacities), and demonstrates the NVM
//! virtual-to-physical remapping (the same part as storage vs. as memory,
//! §II/§III-B). Pass `--dot` to emit Graphviz instead.
//!
//! ```text
//! cargo run --example topology_explorer
//! cargo run --example topology_explorer -- --dot > trees.dot
//! ```

use northup_suite::prelude::*;

fn describe(name: &str, tree: &Tree, dot: bool) {
    if dot {
        println!("// {name}\n{}", tree.render_dot());
        return;
    }
    println!("=== {name} ===");
    print!("{}", tree.render_ascii());
    println!(
        "levels 0..={} | {} nodes | {} leaves | processors: {}",
        tree.max_level(),
        tree.len(),
        tree.leaves().count(),
        tree.nodes()
            .flat_map(|n| n.procs.iter().map(|p| p.name.as_str()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    // The capacity/class queries a scheduler would use (paper §III-B).
    for node in tree.nodes() {
        println!(
            "  {}: level {}, class {}, {:.1} GiB, read {:.1} GB/s",
            node.id,
            node.level,
            tree.storage_class(node.id),
            node.mem.capacity as f64 / (1u64 << 30) as f64,
            node.mem.read_bw / 1e9,
        );
    }
    println!();
}

fn main() {
    let dot = std::env::args().any(|a| a == "--dot");
    describe(
        "APU + SSD (paper §V-B)",
        &presets::apu_two_level(catalog::ssd_hyperx_predator()),
        dot,
    );
    describe(
        "discrete GPU, 3 levels (paper §V-C / Fig. 8)",
        &presets::discrete_gpu_three_level(catalog::hdd_wd5000()),
        dot,
    );
    describe(
        "asymmetric heterogeneous tree (paper Fig. 2)",
        &presets::asymmetric_fig2(),
        dot,
    );
    describe(
        "exascale node: NVM+DRAM+HBM+GPU (paper §V-D)",
        &presets::exascale_node(),
        dot,
    );

    if !dot {
        // NVM remapping: same device, different software interface.
        let as_storage = presets::apu_two_level(catalog::nvm_optane_like());
        let as_memory = presets::apu_with_nvm_memory();
        println!("=== NVM virtual-to-physical remapping (§II) ===");
        println!(
            "same NVM part mapped as {} (move_data -> file I/O) or as {} (move_data -> memcpy)",
            as_storage.storage_class(NodeId(0)),
            as_memory.storage_class(NodeId(0)),
        );
    }
}
