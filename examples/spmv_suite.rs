//! CSR-Adaptive SpMV over the synthetic matrix suite (paper §IV-C).
//!
//! The paper draws inputs from the Florida sparse-matrix collection; this
//! reproduction generates structural stand-ins (road / web / FEM / random /
//! circuit classes). For each, the example shows the CSR-Adaptive binning
//! histogram (how many Stream / Vector / VectorL row blocks the matrix
//! produces) and runs the verified out-of-core SpMV on the APU + SSD tree.
//!
//! ```text
//! cargo run --release --example spmv_suite
//! ```

use northup_suite::prelude::*;
use northup_suite::sparse::{bin_rows, kind_histogram, BinningParams, SuiteMatrix};

fn main() -> Result<()> {
    println!(
        "{:<12} {:>9} {:>11} {:>8} {:>22} {:>10} {:>9}",
        "matrix", "rows", "nnz", "nnz/row", "bins (strm/vec/vlong)", "makespan", "slowdown"
    );
    for m in SuiteMatrix::ALL {
        let csr = m.generate(0);
        let stats = csr.row_stats();
        let bins = kind_histogram(&bin_rows(&csr, BinningParams::default()));

        let input = SpmvInput::Matrix(csr.clone());
        let baseline = spmv_in_memory(&input, ExecMode::Real)?;
        let run = spmv_apu(&input, catalog::ssd_hyperx_predator(), ExecMode::Real)?;
        assert_eq!(run.verified, Some(true), "{} mismatch", m.name());

        println!(
            "{:<12} {:>9} {:>11} {:>8.1} {:>22} {:>10} {:>9.3}",
            m.name(),
            csr.rows,
            csr.nnz(),
            stats.mean,
            format!("{}/{}/{}", bins[0], bins[1], bins[2]),
            format!("{}", run.makespan()),
            run.slowdown_vs(&baseline)
        );
    }
    println!("\nall results verified against the reference SpMV");
    println!("(paper-scale 16M-row shape: cargo run -p northup-bench --bin figures -- fig6)");
    Ok(())
}
