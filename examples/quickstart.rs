//! Quickstart: the Listing-3 programming model in five minutes.
//!
//! Builds the paper's two-level APU machine (SSD root + 2 GB staging DRAM
//! with a CPU and an integrated GPU), then writes the canonical Northup
//! recursive function: descend until the leaf, move chunks down, compute,
//! move results up. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use northup_suite::prelude::*;

/// The recursive template of the paper's Listing 3, for a toy elementwise
/// doubling over a 1 MiB array stored on the SSD.
fn myfunction(ctx: &Ctx, input: BufferHandle, output: BufferHandle, len: u64) -> Result<()> {
    let rt = ctx.rt();
    if ctx.level() == ctx.max_level() {
        // compute_task(): we are at the leaf; the data is already here.
        unreachable!("this demo descends explicitly below");
    }

    // Break the problem into chunks sized for the child level and recurse.
    let chunks = 4;
    let chunk = len / chunks;
    for i in 0..chunks {
        ctx.spawn(0, |leaf| -> Result<()> {
            // setup_buffer(): allocate on the current (leaf) node.
            let stage = leaf.alloc(chunk)?;

            // data_down(): SSD -> DRAM (dispatches to a file read).
            rt.move_data(stage, 0, input, i * chunk, chunk)?;

            // compute_task(): double every byte on the GPU.
            let mut bytes = vec![0u8; chunk as usize];
            rt.read_slice(stage, 0, &mut bytes)?;
            for b in &mut bytes {
                *b = b.wrapping_mul(2);
            }
            rt.write_slice(stage, 0, &bytes)?;
            leaf.compute(
                ProcKind::Gpu,
                SimDur::from_micros(200),
                &[stage],
                &[stage],
                &format!("double chunk {i}"),
            )?;

            // data_up(): DRAM -> SSD (dispatches to a file write).
            leaf.move_up(output, i * chunk, stage, 0, chunk)?;
            rt.release(stage)?;
            Ok(())
        })?;
    }
    Ok(())
}

fn main() -> Result<()> {
    // 1. Describe the machine: the runtime abstracts it as a topological tree.
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    println!("System topology:\n{}", tree.render_ascii());

    let rt = Runtime::new(tree, ExecMode::Real)?;

    // 2. Put input data on the slowest storage (the tree root, level 0).
    let len: u64 = 1 << 20;
    let root = rt.root_ctx();
    let input = root.alloc(len)?;
    let output = root.alloc(len)?;
    let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
    rt.write_slice(input, 0, &data)?;

    // 3. Run the recursive divide-and-conquer function.
    myfunction(&root, input, output, len)?;

    // 4. Verify and report.
    let mut result = vec![0u8; len as usize];
    rt.read_slice(output, 0, &mut result)?;
    assert!(result
        .iter()
        .zip(&data)
        .all(|(r, d)| *r == d.wrapping_mul(2)));
    println!("result verified: every byte doubled through SSD -> DRAM -> GPU -> SSD");

    let report = rt.report();
    println!(
        "virtual makespan {} | file I/O {} | GPU {} | buffer setup {}",
        report.makespan(),
        report.breakdown.get(Category::FileIo),
        report.breakdown.get(Category::GpuCompute),
        report.breakdown.get(Category::BufferSetup),
    );
    println!(
        "recursive tasks spawned through the root: {}",
        rt.tasks_spawned(NodeId(0))
    );
    Ok(())
}
