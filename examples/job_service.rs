//! Multi-tenant job service on the two-level APU machine.
//!
//! Replays a synthetic arrival trace of 32 mixed jobs — paper-scale GEMM,
//! HotSpot-2D, and SpMV tenants scaled down 16× — through the
//! `northup-sched` admission-controlled scheduler, twice: once with
//! weighted fair admission (concurrent jobs share the machine whenever
//! their DRAM reservations co-fit) and once with the strict-FIFO
//! baseline (one job owns the machine at a time). Run with:
//!
//! ```text
//! cargo run --example job_service
//! ```

use northup_suite::apps::{
    run_service, run_service_real, run_service_with, synthetic_trace, TraceConfig,
};
use northup_suite::prelude::*;

fn main() {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];
    println!(
        "machine: {} -> {} ({} GiB staging budget)\n",
        tree.node(tree.root()).mem.name,
        tree.node(dram).mem.name,
        tree.node(dram).mem.capacity >> 30
    );

    let cfg = TraceConfig {
        jobs: 32,
        seed: 7,
        mean_gap_us: 2_000,
        scale: 16,
    };

    for policy in [AdmissionPolicy::WeightedFair, AdmissionPolicy::Fifo] {
        let report =
            run_service(&tree, synthetic_trace(&tree, &cfg), policy).expect("service replay");
        println!("{policy:?}: {}", report.summary());

        if policy == AdmissionPolicy::WeightedFair {
            println!("  admission order: {:?}", &report.admission_order[..8]);
            let peak = report.max_committed.get(dram.0).copied().unwrap_or(0);
            println!(
                "  peak DRAM committed: {} MiB of {} MiB budget",
                peak >> 20,
                tree.node(dram).mem.capacity >> 20
            );
            println!("  first few outcomes:");
            for j in report.jobs.iter().take(6) {
                println!(
                    "    {:<11} {:?} {:<9} latency {}",
                    j.name,
                    j.priority,
                    format!("{:?}", j.state),
                    j.latency()
                        .map(|l| format!("{:.3} s", l.as_secs_f64()))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            println!();
        }
    }

    // Chunk-granular preemption: the same mix at paper scale, where
    // hotspot tenants hold ~1/4 of DRAM each and interactive arrivals
    // evict batch jobs at chunk boundaries (evicted jobs resume from
    // their checkpoint — no chunk runs twice).
    let contended = TraceConfig {
        scale: 1,
        ..cfg.clone()
    };
    let preempt = run_service_with(
        &tree,
        synthetic_trace(&tree, &contended),
        SchedulerConfig {
            preempt: true,
            ..SchedulerConfig::default()
        },
    )
    .expect("preemption replay");
    println!("Preemption at paper scale: {}", preempt.summary());
    println!(
        "  mean eviction latency: {:.3} ms\n",
        preempt.mean_preemption_latency().as_secs_f64() * 1e3
    );

    // Real mode: execute the admitted schedule's chunk chains on real
    // threads through RealFabric — every staging alloc metered against
    // the job's admitted CapacityLease.
    let small = TraceConfig { scale: 64, ..cfg };
    let real = run_service_real(
        &tree,
        synthetic_trace(&tree, &small),
        AdmissionPolicy::WeightedFair,
        4,
    )
    .expect("real execution under admitted leases");
    println!(
        "Real execution (scale 64): {} jobs ran {} chunks on {} threads",
        real.jobs.len(),
        real.jobs
            .iter()
            .map(|j| u64::from(j.chunks_run))
            .sum::<u64>(),
        real.threads
    );
}
