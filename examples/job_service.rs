//! Multi-tenant job service on the two-level APU machine.
//!
//! Replays a synthetic arrival trace of 32 mixed jobs — paper-scale GEMM,
//! HotSpot-2D, and SpMV tenants scaled down 16× — through the
//! `northup-sched` admission-controlled scheduler, twice: once with
//! weighted fair admission (concurrent jobs share the machine whenever
//! their DRAM reservations co-fit) and once with the strict-FIFO
//! baseline (one job owns the machine at a time). Run with:
//!
//! ```text
//! cargo run --example job_service
//! ```

use northup_suite::apps::{run_service, synthetic_trace, TraceConfig};
use northup_suite::prelude::*;

fn main() {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let dram = tree.children(tree.root())[0];
    println!(
        "machine: {} -> {} ({} GiB staging budget)\n",
        tree.node(tree.root()).mem.name,
        tree.node(dram).mem.name,
        tree.node(dram).mem.capacity >> 30
    );

    let cfg = TraceConfig {
        jobs: 32,
        seed: 7,
        mean_gap_us: 2_000,
        scale: 16,
    };

    for policy in [AdmissionPolicy::WeightedFair, AdmissionPolicy::Fifo] {
        let report = run_service(&tree, synthetic_trace(&tree, &cfg), policy);
        println!("{policy:?}: {}", report.summary());

        if policy == AdmissionPolicy::WeightedFair {
            println!("  admission order: {:?}", &report.admission_order[..8]);
            let peak = report.max_committed.get(&dram).copied().unwrap_or(0);
            println!(
                "  peak DRAM committed: {} MiB of {} MiB budget",
                peak >> 20,
                tree.node(dram).mem.capacity >> 20
            );
            println!("  first few outcomes:");
            for j in report.jobs.iter().take(6) {
                println!(
                    "    {:<11} {:?} {:<9} latency {}",
                    j.name,
                    j.priority,
                    format!("{:?}", j.state),
                    j.latency()
                        .map(|l| format!("{:.3} s", l.as_secs_f64()))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            println!();
        }
    }
}
