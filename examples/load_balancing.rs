//! CPU+GPU work stealing at the leaf (paper §V-E, Figs. 10–11).
//!
//! Two halves:
//!
//! 1. **Real concurrency** — the Fig. 10 queue organization on actual
//!    threads: per-consumer Chase–Lev deques, "GPU workgroup" threads that
//!    pop their own tails and steal from "CPU" queue heads, processing real
//!    stencil row-blocks. Verifies every task runs exactly once and prints
//!    the steal count.
//! 2. **Virtual time** — the deterministic Fig. 11 study: speedup of
//!    stealing over GPU-only for the paper's three input points and
//!    8/16/32 queues.
//!
//! ```text
//! cargo run --release --example load_balancing
//! ```

use northup_suite::apps::balance::{fig11_speedup, run_balanced, BalanceConfig};
use northup_suite::exec::deque::{deque, Steal, Stealer, Worker};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A leaf task: one row of blocks of the staged chunk.
#[derive(Debug)]
struct RowTask {
    row: usize,
    cells: usize,
}

fn real_stealing_demo() {
    const GPU_WORKERS: usize = 6;
    const CPU_WORKERS: usize = 2;
    const TASKS: usize = 512;

    // Fig. 10: one queue per consumer; tasks dealt round-robin.
    let mut owners: Vec<Worker<RowTask>> = Vec::new();
    let mut stealers: Vec<Stealer<RowTask>> = Vec::new();
    for _ in 0..GPU_WORKERS + CPU_WORKERS {
        let (w, s) = deque::<RowTask>(1024);
        owners.push(w);
        stealers.push(s);
    }
    for t in 0..TASKS {
        owners[t % owners.len()]
            .push(RowTask {
                row: t,
                cells: 16 * 256,
            })
            .expect("queue capacity");
    }

    let done = AtomicUsize::new(0);
    let steals = AtomicUsize::new(0);
    let cpu_queue_range = GPU_WORKERS..GPU_WORKERS + CPU_WORKERS;

    std::thread::scope(|scope| {
        for (i, own) in owners.into_iter().enumerate() {
            let stealers = stealers.clone();
            let done = &done;
            let steals = &steals;
            let is_gpu = i < GPU_WORKERS;
            let victims: Vec<usize> = if is_gpu {
                cpu_queue_range
                    .clone()
                    .chain(0..GPU_WORKERS)
                    .filter(|&v| v != i)
                    .collect()
            } else {
                Vec::new()
            };
            scope.spawn(move || {
                let work = |t: &RowTask| {
                    // Simulated stencil row-block: CPU "threads" are slower.
                    let iters = if is_gpu { t.cells / 64 } else { t.cells / 8 };
                    let mut acc = t.row as u64;
                    for k in 0..iters {
                        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
                    }
                    std::hint::black_box(acc);
                };
                // Pop own tail; when dry, steal from victims' heads.
                loop {
                    if let Some(t) = own.pop() {
                        work(&t);
                        done.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    let mut got = false;
                    for &v in &victims {
                        match stealers[v].steal() {
                            Steal::Success(t) => {
                                work(&t);
                                done.fetch_add(1, Ordering::Relaxed);
                                steals.fetch_add(1, Ordering::Relaxed);
                                got = true;
                                break;
                            }
                            Steal::Retry => got = true, // contention: try again
                            Steal::Empty => {}
                        }
                        if got {
                            break;
                        }
                    }
                    if !got {
                        break; // nothing anywhere: retire
                    }
                }
            });
        }
    });

    assert_eq!(done.load(Ordering::Relaxed), TASKS);
    println!(
        "real threads: {TASKS} row-blocks executed exactly once, {} stolen across queues",
        steals.load(Ordering::Relaxed)
    );
}

fn fig11_study() {
    println!("\nFig. 11 (virtual time): stealing speedup vs GPU-only, per queue count");
    println!(
        "{:<16} {:>4} {:>9} {:>12} {:>8}",
        "input", "q", "speedup", "makespan", "steals"
    );
    for (m, n) in [(16_384usize, 2_048usize), (16_384, 4_096), (32_768, 4_096)] {
        for q in [8usize, 16, 32] {
            let cfg = BalanceConfig {
                gpu_queues: q,
                stealing: true,
                ..BalanceConfig::paper_points(q, true)
                    .into_iter()
                    .find(|c| c.m == m && c.chunk == n)
                    .unwrap()
            };
            let run = run_balanced(&cfg);
            println!(
                "{:<16} {:>4} {:>9.3} {:>12} {:>8}",
                format!("({m},{n})"),
                q,
                fig11_speedup(m, n, q),
                format!("{}", run.makespan),
                run.steals
            );
        }
    }
    println!("(paper: up to ~24% improvement; 32 queues best absolute)");
}

fn main() {
    real_stealing_demo();
    fig11_study();
}
