//! The paper's central code contrast, executable: Listing 2 (hard-wired
//! two-level out-of-core code) vs Listing 3 (the Northup recursive style).
//!
//! "Note that the code will NOT work if adding a new memory level or
//! changing to another heterogeneous architecture. In contrast, the
//! equivalent Northup code works on arbitrary heterogeneous systems."
//!
//! Both versions compute the same elementwise kernel over a dataset on
//! storage. The Listing-2 version bakes in "file -> malloc'd buffer ->
//! device" with exactly two levels; pointing it at the 4-level exascale
//! machine fails by construction. The Listing-3 version walks whatever
//! tree it is given.
//!
//! ```text
//! cargo run --example listing2_vs_listing3
//! ```

use northup_suite::prelude::*;

const LEN: u64 = 1 << 16;
const CHUNKS: u64 = 4;

/// Listing 2: the regular pseudocode, with the two-level structure
/// hard-wired (file level 0, one staging level 1, compute at level 1).
fn listing2_style(rt: &Runtime) -> Result<BufferHandle> {
    let tree = rt.tree();
    // The hard-wired assumptions of Listing 2:
    assert_eq!(
        tree.max_level(),
        1,
        "Listing-2 code is written for exactly two levels and cannot run here"
    );
    assert_eq!(
        tree.storage_class(NodeId(0)),
        StorageClass::File,
        "Listing-2 code open()s a file at the root"
    );

    let fd = rt.alloc(LEN, NodeId(0))?; // file_open + allocation
    let out = rt.alloc(LEN, NodeId(0))?;
    let chunk = LEN / CHUNKS;
    for i in 0..CHUNKS {
        let buffer = rt.alloc(chunk, NodeId(1))?; // malloc
        rt.move_data(buffer, 0, fd, i * chunk, chunk)?; // file_read
        rt.charge_compute(
            NodeId(1),
            ProcKind::Gpu,
            SimDur::from_micros(100),
            &[buffer],
            &[buffer],
            "dLaunchComputation",
        )?;
        rt.move_data(out, i * chunk, buffer, 0, chunk)?; // file_write
        rt.release(buffer)?;
    }
    Ok(out)
}

/// Listing 3: the Northup recursive function — no levels, classes, or
/// device kinds mentioned; the tree supplies them.
fn listing3_style(ctx: &Ctx, input: BufferHandle, output: BufferHandle, len: u64) -> Result<()> {
    let rt = ctx.rt();
    if ctx.is_leaf() {
        // compute_task(): data has arrived wherever the leaf is.
        rt.charge_compute(
            ctx.node(),
            ctx.device().expect("leaf has a processor"),
            SimDur::from_micros(100),
            &[input],
            &[input],
            "compute_task",
        )?;
        rt.move_data(output, 0, input, 0, len)?; // local result
        return Ok(());
    }
    let chunk = len / CHUNKS;
    for i in 0..CHUNKS {
        ctx.spawn(0, |child| -> Result<()> {
            let lower_in = rt.alloc(chunk, child.node())?; // setup_buffer
            let lower_out = rt.alloc(chunk, child.node())?;
            ctx.move_down(lower_in, 0, input, i * chunk, chunk)?; // data_down
            listing3_style(child, lower_in, lower_out, chunk)?; // northup_spawn
            child.move_up(output, i * chunk, lower_out, 0, chunk)?; // data_up
            rt.release(lower_in)?;
            rt.release(lower_out)
        })?;
    }
    Ok(())
}

fn run_listing3(tree: Tree, name: &str) -> Result<()> {
    let levels = tree.max_level() + 1;
    let rt = Runtime::new(tree, ExecMode::Real)?;
    let root = rt.root_ctx();
    let input = root.alloc(LEN)?;
    let output = root.alloc(LEN)?;
    listing3_style(&root, input, output, LEN)?;
    println!(
        "  listing-3 on {name} ({levels} levels): OK, makespan {}",
        rt.makespan()
    );
    Ok(())
}

fn main() -> Result<()> {
    println!("Listing 2 (hard-wired two levels):");
    let apu = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Real,
    )?;
    listing2_style(&apu)?;
    println!(
        "  on the APU machine it was written for: OK, makespan {}",
        apu.makespan()
    );

    let exa = Runtime::new(presets::exascale_node(), ExecMode::Real)?;
    let quiet = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // silence the expected panic
    let broke = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| listing2_style(&exa)));
    std::panic::set_hook(quiet);
    assert!(
        broke.is_err(),
        "Listing-2 code must fail on a deeper machine"
    );
    println!("  on the 4-level exascale machine: FAILS (two-level assumption baked in)");

    println!("\nListing 3 (Northup recursive style) — unchanged code, every machine:");
    run_listing3(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        "APU+SSD",
    )?;
    run_listing3(presets::apu_two_level(catalog::hdd_wd5000()), "APU+HDD")?;
    run_listing3(
        presets::discrete_gpu_three_level(catalog::ssd_hyperx_predator()),
        "discrete GPU",
    )?;
    run_listing3(presets::exascale_node(), "exascale node")?;
    run_listing3(presets::apu_with_nvm_memory(), "NVM-as-memory APU")?;
    println!("\nonce the code is written, it works across heterogeneous architectures (§I)");
    Ok(())
}
