//! Out-of-core dense matrix multiply (paper §IV-A) across three machines.
//!
//! Runs the same Northup GEMM — unchanged application code — over the
//! 2-level APU tree, the 3-level discrete-GPU tree, and the 4-level
//! exascale-node tree, demonstrating the paper's portability claim: "once
//! the code is written, it should work across heterogeneous architectures."
//!
//! ```text
//! cargo run --example out_of_core_gemm            # small, verified
//! cargo run --release --example out_of_core_gemm -- --paper   # 16k modeled
//! ```

use northup_suite::apps::matmul::matmul_northup;
use northup_suite::prelude::*;

fn main() -> Result<()> {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let (cfg, mode) = if paper_scale {
        (MatmulConfig::paper(), ExecMode::Modeled)
    } else {
        (
            MatmulConfig {
                n: 128,
                block: 32,
                ring: 2,
                seed: 11,
            },
            ExecMode::Real,
        )
    };
    println!(
        "GEMM {}x{} (block {}, {:?} mode)",
        cfg.n,
        cfg.n,
        cfg.block,
        if paper_scale { "Modeled" } else { "Real" }
    );

    let baseline = matmul_in_memory(&cfg, mode)?;
    println!("{}", baseline.summary());

    let machines: Vec<(&str, Tree)> = vec![
        (
            "APU + SSD (2 levels)",
            presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ),
        (
            "APU + HDD (2 levels)",
            presets::apu_two_level(catalog::hdd_wd5000()),
        ),
        (
            "discrete GPU + SSD (3 levels)",
            presets::discrete_gpu_three_level(catalog::ssd_hyperx_predator()),
        ),
        ("exascale node (4 levels)", presets::exascale_node()),
    ];

    for (name, tree) in machines {
        let levels = tree.max_level() + 1;
        let run = matmul_northup(&cfg, tree, mode)?;
        println!(
            "{}  [{name}, {levels} levels]  slowdown vs in-memory: {:.3}",
            run.summary(),
            run.slowdown_vs(&baseline)
        );
        if mode == ExecMode::Real {
            assert_eq!(run.verified, Some(true), "result mismatch on {name}");
        }
    }
    println!("same application code ran on every topology — only the tree changed");
    Ok(())
}
