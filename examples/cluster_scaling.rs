//! Distributed Northup (§VII future work): GEMM strong scaling across a
//! cluster, and earliest-finish batch dispatch over heterogeneous nodes.
//!
//! ```text
//! cargo run --release --example cluster_scaling
//! ```

use northup_suite::apps::distributed::{gemm_cluster, scaling_curve, DistGemmConfig};
use northup_suite::apps::subtree::{run_batch, Dispatch};
use northup_suite::prelude::*;

fn main() -> Result<()> {
    // Correctness first: the distributed schedule is exact.
    let run = gemm_cluster(&DistGemmConfig::small(3), ExecMode::Real)?;
    assert_eq!(run.verified, Some(true));
    println!("distributed GEMM verified on 3 nodes (real bytes, PFS + InfiniBand + NVM chains)\n");

    // Strong scaling at paper scale (16k x 16k, 4k blocking, W9100 nodes).
    println!("strong scaling, 16k GEMM:");
    println!("{:>6} {:>12} {:>9}", "nodes", "makespan", "speedup");
    let curve = scaling_curve(16 * 1024, 4 * 1024, &[1, 2, 4, 8])?;
    let t1 = curve[0].1;
    for (nodes, t) in &curve {
        println!("{:>6} {:>11.2}s {:>8.2}x", nodes, t, t1 / t);
    }
    println!("(sublinear: every node re-reads B from the shared parallel file system)\n");

    // Heterogeneous batch dispatch across a mixed cluster.
    let tree = presets::cluster(2, 2);
    let rr = run_batch(tree.clone(), 64, 512, 256, Dispatch::RoundRobin)?;
    let ef = run_batch(tree, 64, 512, 256, Dispatch::EarliestFinish)?;
    println!(
        "mixed cluster batch (2 GPU + 2 CPU nodes): round-robin {} vs earliest-finish {} ({:.2}x)",
        rr.run.makespan(),
        ef.run.makespan(),
        rr.run.makespan().as_secs_f64() / ef.run.makespan().as_secs_f64()
    );
    println!("per-leaf jobs (earliest finish): {:?}", ef.per_leaf);
    Ok(())
}
