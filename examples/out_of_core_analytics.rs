//! Out-of-core analytics: map/reduce over an array bigger than memory,
//! written with the generic chunk pipeline — the "variety of problems"
//! claim (§IV) in ~20 lines of application logic per operator.
//!
//! ```text
//! cargo run --example out_of_core_analytics             # small, verified
//! cargo run --release --example out_of_core_analytics -- --paper
//! ```

use northup_suite::apps::reduce::{map_northup, reduce_northup, ReduceOp, StreamConfig};
use northup_suite::prelude::*;
use northup_suite::sim::Category;

fn main() -> Result<()> {
    let paper = std::env::args().any(|a| a == "--paper");
    let (cfg, mode) = if paper {
        (StreamConfig::paper(), ExecMode::Modeled)
    } else {
        (StreamConfig::small(), ExecMode::Real)
    };
    println!(
        "array: {} elements ({:.2} GiB) in chunks of {}",
        cfg.elements,
        cfg.elements as f64 * 4.0 / (1u64 << 30) as f64,
        cfg.chunk
    );

    let tree = || presets::apu_two_level(catalog::ssd_hyperx_predator());

    let (sum, run) = reduce_northup(&cfg, ReduceOp::Sum, tree(), mode)?;
    println!(
        "sum  = {sum:>14.3}  {}  io share {:.0}%{}",
        run.makespan(),
        100.0 * run.share(Category::FileIo),
        if run.verified == Some(true) {
            "  [verified]"
        } else {
            ""
        }
    );

    let (max, run) = reduce_northup(&cfg, ReduceOp::Max, tree(), mode)?;
    println!(
        "max  = {max:>14.3}  {}{}",
        run.makespan(),
        if run.verified == Some(true) {
            "  [verified]"
        } else {
            ""
        }
    );

    let run = map_northup(&cfg, 2.0, 1.0, tree(), mode)?;
    println!(
        "y = 2x + 1 written back: {}  (read {} + wrote {} bytes){}",
        run.makespan(),
        cfg.elements * 4,
        cfg.elements * 4,
        if run.verified == Some(true) {
            "  [verified]"
        } else {
            ""
        }
    );

    println!("\npure streams cannot hide their I/O — compare with the GEMM example,");
    println!("where the same pipeline hides a disk behind compute (paper Fig. 6).");
    Ok(())
}
