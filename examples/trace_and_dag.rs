//! Tooling tour: Chrome trace export and §III-C task-DAG unfolding.
//!
//! Runs an out-of-core GEMM with DAG recording on, then writes
//!
//! * `northup-trace.json` — the full virtual-time schedule, one track per
//!   activity category; open in `chrome://tracing` or Perfetto to *see*
//!   the loads pipelining behind the GPU kernels;
//! * `northup-dag.dot` — the unfolded dependency graph with the critical
//!   path highlighted; render with `dot -Tsvg`.
//!
//! ```text
//! cargo run --release --example trace_and_dag [out_dir]
//! ```

use northup_suite::apps::matmul::matmul_northup_on;
use northup_suite::prelude::*;

fn main() -> Result<()> {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| ".".to_string());

    let rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Modeled,
    )?;
    rt.enable_dag();
    let run = matmul_northup_on(&rt, &MatmulConfig::paper())?;

    let trace = rt.chrome_trace();
    let dag = rt.task_dag();
    let (cp, path) = dag.critical_path();

    let trace_path = format!("{out_dir}/northup-trace.json");
    let dag_path = format!("{out_dir}/northup-dag.dot");
    std::fs::write(&trace_path, &trace).expect("write trace");
    std::fs::write(&dag_path, dag.render_dot()).expect("write dag");

    println!(
        "out-of-core GEMM (paper scale, modeled): makespan {}",
        run.makespan()
    );
    println!(
        "task DAG: {} ops, {} edges, critical path {} over {} ops",
        dag.len(),
        dag.edges.len(),
        cp,
        path.len()
    );
    println!(
        "average parallelism {:.2}, DAG-scheduler headroom {:.2}x over the FIFO schedule",
        dag.parallelism(),
        dag.headroom(run.makespan())
    );
    println!("category mix: {:?}", dag.category_histogram());
    println!("wrote {trace_path} (chrome://tracing) and {dag_path} (graphviz)");
    Ok(())
}
