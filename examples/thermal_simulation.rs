//! HotSpot-2D thermal simulation, out of core (paper §IV-B).
//!
//! Simulates heat diffusion on a chip floorplan whose temperature grid
//! lives on storage. Demonstrates the exact trapezoid temporal blocking:
//! each out-of-core pass advances many time steps per loaded block, and the
//! result still matches the cell-by-cell reference.
//!
//! ```text
//! cargo run --example thermal_simulation
//! cargo run --release --example thermal_simulation -- --paper
//! ```

use northup_suite::prelude::*;
use northup_suite::sim::Category;

fn main() -> Result<()> {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let (cfg, mode) = if paper_scale {
        (HotspotConfig::paper(), ExecMode::Modeled)
    } else {
        (
            HotspotConfig {
                n: 96,
                block: 32,
                steps_per_pass: 4,
                passes: 3,
                ring: 2,
                seed: 5,
            },
            ExecMode::Real,
        )
    };
    println!(
        "HotSpot-2D {}x{} grid, {} steps/pass x {} passes (block {})",
        cfg.n, cfg.n, cfg.steps_per_pass, cfg.passes, cfg.block
    );

    let baseline = hotspot_in_memory(&cfg, mode)?;
    println!("{}", baseline.summary());

    for (name, storage) in [
        ("ssd", catalog::ssd_hyperx_predator()),
        ("hdd", catalog::hdd_wd5000()),
        ("nvm", catalog::nvm_optane_like()),
    ] {
        let run = hotspot_apu(&cfg, storage, mode)?;
        println!(
            "{}  [{name}] slowdown {:.3}",
            run.summary(),
            run.slowdown_vs(&baseline)
        );
        if mode == ExecMode::Real {
            assert_eq!(
                run.verified,
                Some(true),
                "temporal blocking must be exact on {name}"
            );
        }
    }

    // The memory-intensive stencil is the showcase for faster storage
    // (paper §V-D): show the I/O share shrinking across devices.
    let ssd = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), mode)?;
    let hdd = hotspot_apu(&cfg, catalog::hdd_wd5000(), mode)?;
    println!(
        "I/O share of busy time: hdd {:.0}% -> ssd {:.0}%  (GPU share {:.0}% -> {:.0}%)",
        100.0 * hdd.share(Category::FileIo),
        100.0 * ssd.share(Category::FileIo),
        100.0 * hdd.share(Category::GpuCompute),
        100.0 * ssd.share(Category::GpuCompute),
    );
    Ok(())
}
