//! # northup-sparse — sparse-matrix substrate for the CSR-Adaptive case study
//!
//! The paper's third application is CSR-Adaptive SpMV (§IV-C) on inputs from
//! the Florida sparse-matrix collection. This crate supplies everything that
//! application needs:
//!
//! * [`csr`] — the validated CSR type (`row_ptr`, `col_id`, `data`),
//!   reference SpMV, and row-range slicing with rebased offsets.
//! * [`gen`] — seeded synthetic generators covering the structural classes
//!   (banded, power-law, FEM grid, uniform, block-diagonal) that drive
//!   CSR-Adaptive's kernel choices.
//! * [`suite`] — named stand-ins for collection matrices plus the paper's
//!   16M-row SpMV shape for timing-only runs.
//! * [`shard`] — even-row and nnz-budgeted shard partitioning (§IV-C).
//! * [`binning`] — CSR-Adaptive's CPU-side row binning into
//!   Stream / Vector / VectorL blocks (the paper's \[20\]).
//! * [`ell`] — the ELLPACK alternative layout for the §VI data-layout
//!   study (regular accesses vs padding traffic).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binning;
pub mod csr;
pub mod ell;
pub mod gen;
pub mod shard;
pub mod suite;

pub use binning::{bin_rows, kind_histogram, validate_binning, BinningParams, BlockKind, RowBlock};
pub use csr::{Csr, CsrError, RowStats};
pub use ell::{Ell, ELL_PAD};

/// Inf-norm error between two result vectors (shared by format tests).
pub fn csr_ell_err(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
}
pub use shard::{covers_exactly, partition_by_nnz, partition_even_rows, Shard};
pub use suite::{PaperSpmvShape, SuiteMatrix};
