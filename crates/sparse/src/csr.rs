//! Compressed Sparse Row matrices.
//!
//! The paper's §IV-C: "CSR uses three compact vectors to represent a sparse
//! matrix: `row_ptr`, `col_id` and `data`." This module provides that type
//! with validated invariants, COO construction, a reference SpMV, and the
//! row statistics the CSR-Adaptive binning and nnz-aware sharding need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A CSR sparse matrix over `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Csr {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// `rows + 1` offsets into `col_idx`/`vals`; `row_ptr[0] == 0`.
    pub row_ptr: Vec<usize>,
    /// Column index of each stored entry, ascending within a row.
    pub col_idx: Vec<u32>,
    /// Stored values, parallel to `col_idx`.
    pub vals: Vec<f32>,
}

/// Why a CSR failed validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsrError {
    /// `row_ptr` has the wrong length or does not start at zero.
    BadRowPtr,
    /// `row_ptr` decreases somewhere.
    NonMonotoneRowPtr {
        /// Row at which the decrease occurs.
        row: usize,
    },
    /// `col_idx`/`vals` length disagrees with `row_ptr[rows]`.
    LengthMismatch,
    /// A column index is out of range.
    ColumnOutOfRange {
        /// Offset of the offending entry.
        at: usize,
        /// The offending column.
        col: u32,
    },
    /// Column indices are not strictly ascending within a row.
    UnsortedRow {
        /// The offending row.
        row: usize,
    },
}

impl fmt::Display for CsrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsrError::BadRowPtr => write!(f, "row_ptr malformed"),
            CsrError::NonMonotoneRowPtr { row } => {
                write!(f, "row_ptr decreases at row {row}")
            }
            CsrError::LengthMismatch => write!(f, "col_idx/vals length mismatch"),
            CsrError::ColumnOutOfRange { at, col } => {
                write!(f, "column {col} out of range at offset {at}")
            }
            CsrError::UnsortedRow { row } => write!(f, "row {row} not strictly ascending"),
        }
    }
}

impl std::error::Error for CsrError {}

impl Csr {
    /// An empty `rows x cols` matrix.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Csr {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Build from COO triplets. Duplicate (row, col) entries are summed;
    /// out-of-range triplets panic.
    pub fn from_coo(rows: usize, cols: usize, mut triplets: Vec<(usize, u32, f32)>) -> Self {
        for &(r, c, _) in &triplets {
            assert!(
                r < rows && (c as usize) < cols,
                "triplet ({r},{c}) out of range"
            );
        }
        triplets.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Sum duplicates.
        let mut dedup: Vec<(usize, u32, f32)> = Vec::with_capacity(triplets.len());
        for (r, c, v) in triplets {
            match dedup.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => dedup.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; rows + 1];
        for &(r, _, _) in &dedup {
            row_ptr[r + 1] += 1;
        }
        for i in 0..rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let (col_idx, vals) = dedup.into_iter().map(|(_, c, v)| (c, v)).unzip();
        Csr {
            rows,
            cols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Stored entries in row `r`.
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// The (columns, values) slices of row `r`.
    pub fn row(&self, r: usize) -> (&[u32], &[f32]) {
        let (a, b) = (self.row_ptr[r], self.row_ptr[r + 1]);
        (&self.col_idx[a..b], &self.vals[a..b])
    }

    /// Bytes this matrix occupies in the paper's on-storage format
    /// (`row_ptr` as u32 offsets + `col_id` u32 + `data` f32, per §IV-C).
    pub fn storage_bytes(&self) -> u64 {
        ((self.rows + 1) * 4 + self.nnz() * 8) as u64
    }

    /// Check all CSR invariants.
    pub fn validate(&self) -> Result<(), CsrError> {
        if self.row_ptr.len() != self.rows + 1 || self.row_ptr.first() != Some(&0) {
            return Err(CsrError::BadRowPtr);
        }
        for r in 0..self.rows {
            if self.row_ptr[r + 1] < self.row_ptr[r] {
                return Err(CsrError::NonMonotoneRowPtr { row: r });
            }
        }
        if self.col_idx.len() != self.vals.len() || self.row_ptr[self.rows] != self.vals.len() {
            return Err(CsrError::LengthMismatch);
        }
        for (at, &c) in self.col_idx.iter().enumerate() {
            if c as usize >= self.cols {
                return Err(CsrError::ColumnOutOfRange { at, col: c });
            }
        }
        for r in 0..self.rows {
            let (cols, _) = self.row(r);
            if cols.windows(2).any(|w| w[0] >= w[1]) {
                return Err(CsrError::UnsortedRow { row: r });
            }
        }
        Ok(())
    }

    /// Reference (sequential, textbook) SpMV: `y = A x`.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn spmv_reference(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0f32;
            for (&c, &v) in cols.iter().zip(vals) {
                acc += v * x[c as usize];
            }
            *yr = acc;
        }
    }

    /// Extract rows `[start, end)` as a standalone CSR with rebased
    /// `row_ptr` — this is the paper's "sub-shard" extraction: "the portion
    /// of data constituting a sub-shard is determined with row_ptr\[start\]
    /// and row_ptr\[end\]" (§IV-C).
    pub fn slice_rows(&self, start: usize, end: usize) -> Csr {
        assert!(
            start <= end && end <= self.rows,
            "bad row range {start}..{end}"
        );
        let lo = self.row_ptr[start];
        let hi = self.row_ptr[end];
        Csr {
            rows: end - start,
            cols: self.cols,
            row_ptr: self.row_ptr[start..=end].iter().map(|p| p - lo).collect(),
            col_idx: self.col_idx[lo..hi].to_vec(),
            vals: self.vals[lo..hi].to_vec(),
        }
    }

    /// Transpose (CSC view of the same data, materialized as CSR of A^T).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut cursor = counts;
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            let (cols, vs) = self.row(r);
            for (&c, &v) in cols.iter().zip(vs) {
                let at = cursor[c as usize];
                col_idx[at] = r as u32;
                vals[at] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Basic row-length statistics (for suite reports and binning sanity).
    pub fn row_stats(&self) -> RowStats {
        if self.rows == 0 {
            return RowStats::default();
        }
        let mut min = usize::MAX;
        let mut max = 0usize;
        for r in 0..self.rows {
            let n = self.row_nnz(r);
            min = min.min(n);
            max = max.max(n);
        }
        RowStats {
            min,
            max,
            mean: self.nnz() as f64 / self.rows as f64,
        }
    }
}

/// Row-length summary statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RowStats {
    /// Minimum stored entries in a row.
    pub min: usize,
    /// Maximum stored entries in a row.
    pub max: usize,
    /// Mean stored entries per row.
    pub mean: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // [ 1 0 2 ]
        // [ 0 0 0 ]
        // [ 3 4 0 ]
        Csr::from_coo(
            3,
            3,
            vec![(0, 0, 1.0), (0, 2, 2.0), (2, 0, 3.0), (2, 1, 4.0)],
        )
    }

    #[test]
    fn from_coo_builds_valid_csr() {
        let m = small();
        m.validate().unwrap();
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_ptr, vec![0, 2, 2, 4]);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.row(2), (&[0u32, 1][..], &[3.0f32, 4.0][..]));
    }

    #[test]
    fn from_coo_sums_duplicates() {
        let m = Csr::from_coo(1, 1, vec![(0, 0, 1.5), (0, 0, 2.5)]);
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.vals[0], 4.0);
    }

    #[test]
    fn spmv_reference_matches_dense() {
        let m = small();
        let x = [1.0, 10.0, 100.0];
        let mut y = [0.0; 3];
        m.spmv_reference(&x, &mut y);
        assert_eq!(y, [201.0, 0.0, 43.0]);
    }

    #[test]
    fn slice_rows_rebases() {
        let m = small();
        let s = m.slice_rows(1, 3);
        s.validate().unwrap();
        assert_eq!(s.rows, 2);
        assert_eq!(s.row_ptr, vec![0, 0, 2]);
        let x = [1.0, 10.0, 100.0];
        let mut y = [0.0; 2];
        s.spmv_reference(&x, &mut y);
        assert_eq!(y, [0.0, 43.0]);
    }

    #[test]
    fn slice_full_range_is_identity() {
        let m = small();
        assert_eq!(m.slice_rows(0, 3), m);
    }

    #[test]
    fn validate_catches_bad_row_ptr() {
        let mut m = small();
        m.row_ptr[1] = 5;
        assert!(matches!(
            m.validate(),
            Err(CsrError::NonMonotoneRowPtr { row: 1 }) | Err(CsrError::LengthMismatch)
        ));
    }

    #[test]
    fn validate_catches_column_out_of_range() {
        let mut m = small();
        m.col_idx[0] = 99;
        assert!(matches!(
            m.validate(),
            Err(CsrError::ColumnOutOfRange { at: 0, col: 99 })
        ));
    }

    #[test]
    fn validate_catches_unsorted_row() {
        let mut m = small();
        m.col_idx.swap(0, 1);
        assert!(matches!(
            m.validate(),
            Err(CsrError::UnsortedRow { row: 0 })
        ));
    }

    #[test]
    fn storage_bytes_matches_csr_layout() {
        let m = small();
        assert_eq!(m.storage_bytes(), (4 * 4 + 4 * 8) as u64);
    }

    #[test]
    fn empty_matrix_is_valid() {
        let m = Csr::empty(5, 7);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 0);
        let mut y = [1.0f32; 5];
        m.spmv_reference(&[0.0; 7], &mut y);
        assert_eq!(y, [0.0; 5]);
    }

    #[test]
    fn transpose_is_an_involution_and_swaps_spmv() {
        let m = crate::gen::powerlaw(40, 60, 16, 0.9, 4);
        let t = m.transpose();
        t.validate().unwrap();
        assert_eq!(t.rows, m.cols);
        assert_eq!(t.cols, m.rows);
        assert_eq!(t.transpose(), m, "(A^T)^T == A");
        // y = A x equals z where z_j = sum_i A^T[j,i] x_i ... check via
        // x^T A == (A^T x)^T.
        let x: Vec<f32> = (0..m.rows).map(|i| (i % 5) as f32 - 2.0).collect();
        let mut via_t = vec![0.0f32; m.cols];
        t.spmv_reference(&x, &mut via_t);
        // Reference: manual x^T A.
        let mut direct = vec![0.0f32; m.cols];
        for (r, &xr) in x.iter().enumerate() {
            let (cols, vals) = m.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                direct[c as usize] += v * xr;
            }
        }
        for (a, b) in via_t.iter().zip(&direct) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn row_stats() {
        let s = small().row_stats();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 2);
        assert!((s.mean - 4.0 / 3.0).abs() < 1e-12);
    }
}
