//! CSR-Adaptive row binning (Greathouse & Daga, SC'14 — the paper's \[20\]).
//!
//! CSR-Adaptive "dynamically chooses kernels based on the shapes of sparse
//! matrices" (paper §IV-C). The CPU-side preprocessing walks `row_ptr` and
//! groups consecutive rows into *row blocks*, each tagged with the kernel
//! that will process it:
//!
//! * [`BlockKind::Stream`] — many short rows whose combined nnz fits in GPU
//!   local memory; processed by CSR-Stream (one workgroup streams the whole
//!   block through LDS).
//! * [`BlockKind::Vector`] — a single long row; processed by CSR-Vector
//!   (whole workgroup reduces one row).
//! * [`BlockKind::VectorLong`] — a single extremely long row; processed by
//!   CSR-VectorL (multiple workgroups cooperate via atomics).
//!
//! The paper charges this binning to the CPU in its breakdown ("CSR-Adaptive
//! uses the CPU for binning rows into different categories and spends
//! relatively more time", §V-C) — the runtime reproduces that accounting.

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// Which kernel a row block is routed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockKind {
    /// CSR-Stream: a run of short rows, combined nnz <= `stream_nnz`.
    Stream,
    /// CSR-Vector: one row with `stream_nnz < nnz <= vector_long_nnz`.
    Vector,
    /// CSR-VectorL: one row with nnz > `vector_long_nnz`.
    VectorLong,
}

/// One binned row block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RowBlock {
    /// First row (inclusive).
    pub row_start: usize,
    /// Last row (exclusive).
    pub row_end: usize,
    /// Stored entries covered by the block.
    pub nnz: usize,
    /// Kernel assignment.
    pub kind: BlockKind,
}

/// Binning thresholds (defaults follow the published CSR-Adaptive values:
/// LDS row-block size of 1024 nnz, VectorL cutoff around 16k nnz).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinningParams {
    /// Max combined nnz of a CSR-Stream block (fits GPU local memory).
    pub stream_nnz: usize,
    /// Row nnz above which a single row goes to CSR-VectorL.
    pub vector_long_nnz: usize,
}

impl Default for BinningParams {
    fn default() -> Self {
        BinningParams {
            stream_nnz: 1024,
            vector_long_nnz: 16 * 1024,
        }
    }
}

/// Bin the rows of `m` into row blocks.
pub fn bin_rows(m: &Csr, params: BinningParams) -> Vec<RowBlock> {
    assert!(params.stream_nnz >= 1);
    assert!(params.vector_long_nnz >= params.stream_nnz);
    let mut blocks = Vec::new();
    let mut start = 0usize;
    let mut acc = 0usize;
    let mut r = 0usize;
    while r < m.rows {
        let n = m.row_nnz(r);
        if n > params.stream_nnz {
            // Flush any pending stream block.
            if r > start {
                blocks.push(RowBlock {
                    row_start: start,
                    row_end: r,
                    nnz: acc,
                    kind: BlockKind::Stream,
                });
            }
            blocks.push(RowBlock {
                row_start: r,
                row_end: r + 1,
                nnz: n,
                kind: if n > params.vector_long_nnz {
                    BlockKind::VectorLong
                } else {
                    BlockKind::Vector
                },
            });
            r += 1;
            start = r;
            acc = 0;
        } else if acc + n > params.stream_nnz && r > start {
            blocks.push(RowBlock {
                row_start: start,
                row_end: r,
                nnz: acc,
                kind: BlockKind::Stream,
            });
            start = r;
            acc = 0;
        } else {
            acc += n;
            r += 1;
        }
    }
    if r > start {
        blocks.push(RowBlock {
            row_start: start,
            row_end: r,
            nnz: acc,
            kind: BlockKind::Stream,
        });
    }
    blocks
}

/// Validate that `blocks` tile `m`'s rows exactly once, in order, with
/// consistent nnz counts and kind assignments.
pub fn validate_binning(m: &Csr, blocks: &[RowBlock], params: BinningParams) -> bool {
    let mut next = 0usize;
    for b in blocks {
        if b.row_start != next || b.row_end <= b.row_start {
            return false;
        }
        let nnz = m.row_ptr[b.row_end] - m.row_ptr[b.row_start];
        if nnz != b.nnz {
            return false;
        }
        match b.kind {
            BlockKind::Stream => {
                if b.nnz > params.stream_nnz && b.row_end - b.row_start > 1 {
                    return false;
                }
                // A single-row Stream block must be short.
                if b.row_end - b.row_start == 1 && b.nnz > params.stream_nnz {
                    return false;
                }
            }
            BlockKind::Vector => {
                if b.row_end - b.row_start != 1
                    || b.nnz <= params.stream_nnz
                    || b.nnz > params.vector_long_nnz
                {
                    return false;
                }
            }
            BlockKind::VectorLong => {
                if b.row_end - b.row_start != 1 || b.nnz <= params.vector_long_nnz {
                    return false;
                }
            }
        }
        next = b.row_end;
    }
    next == m.rows
}

/// Count blocks per kind (for suite reports and calibration).
pub fn kind_histogram(blocks: &[RowBlock]) -> [usize; 3] {
    let mut h = [0usize; 3];
    for b in blocks {
        match b.kind {
            BlockKind::Stream => h[0] += 1,
            BlockKind::Vector => h[1] += 1,
            BlockKind::VectorLong => h[2] += 1,
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn uniform_matrix_is_all_stream() {
        let m = gen::uniform_random(500, 1000, 8, 1);
        let p = BinningParams::default();
        let blocks = bin_rows(&m, p);
        assert!(validate_binning(&m, &blocks, p));
        let h = kind_histogram(&blocks);
        assert_eq!(h[1] + h[2], 0, "no vector blocks for uniform short rows");
        // Each stream block packs ~128 rows (1024/8).
        assert!(blocks.iter().all(|b| b.nnz <= 1024));
    }

    #[test]
    fn powerlaw_matrix_uses_vector_kernels() {
        let m = gen::powerlaw(2000, 40_000, 32_000, 0.9, 3);
        let p = BinningParams::default();
        let blocks = bin_rows(&m, p);
        assert!(validate_binning(&m, &blocks, p));
        let h = kind_histogram(&blocks);
        assert!(h[0] > 0, "has stream blocks");
        assert!(h[1] > 0, "has vector rows");
        assert!(h[2] > 0, "has vector-long rows: {h:?}");
    }

    #[test]
    fn blocks_tile_rows_exactly() {
        let m = gen::banded(333, 3, 9);
        let p = BinningParams {
            stream_nnz: 64,
            vector_long_nnz: 128,
        };
        let blocks = bin_rows(&m, p);
        assert!(validate_binning(&m, &blocks, p));
        let rows: usize = blocks.iter().map(|b| b.row_end - b.row_start).sum();
        assert_eq!(rows, 333);
        let nnz: usize = blocks.iter().map(|b| b.nnz).sum();
        assert_eq!(nnz, m.nnz());
    }

    #[test]
    fn empty_rows_pack_into_stream() {
        let m = Csr::empty(100, 10);
        let p = BinningParams::default();
        let blocks = bin_rows(&m, p);
        assert!(validate_binning(&m, &blocks, p));
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].nnz, 0);
    }

    #[test]
    fn single_long_row_matrix() {
        let triplets: Vec<(usize, u32, f32)> = (0..2000u32).map(|c| (0usize, c, 1.0f32)).collect();
        let m = Csr::from_coo(1, 2000, triplets);
        let p = BinningParams {
            stream_nnz: 128,
            vector_long_nnz: 1024,
        };
        let blocks = bin_rows(&m, p);
        assert!(validate_binning(&m, &blocks, p));
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].kind, BlockKind::VectorLong);
    }

    #[test]
    fn threshold_boundaries() {
        // Rows of exactly stream_nnz stay Stream; stream_nnz+1 becomes Vector.
        let p = BinningParams {
            stream_nnz: 4,
            vector_long_nnz: 8,
        };
        let mut triplets = Vec::new();
        for c in 0..4u32 {
            triplets.push((0usize, c, 1.0f32)); // exactly 4 -> stream
        }
        for c in 0..5u32 {
            triplets.push((1usize, c, 1.0f32)); // 5 -> vector
        }
        for c in 0..9u32 {
            triplets.push((2usize, c, 1.0f32)); // 9 -> vector-long
        }
        let m = Csr::from_coo(3, 16, triplets);
        let blocks = bin_rows(&m, p);
        assert!(validate_binning(&m, &blocks, p));
        assert_eq!(blocks[0].kind, BlockKind::Stream);
        assert_eq!(blocks[1].kind, BlockKind::Vector);
        assert_eq!(blocks[2].kind, BlockKind::VectorLong);
    }
}
