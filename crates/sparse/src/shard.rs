//! Row-range sharding of CSR matrices (paper §IV-C).
//!
//! A *shard* is a contiguous run of rows together with the `col_id`/`data`
//! range `row_ptr[start]..row_ptr[end]` it covers. Sharding policies:
//!
//! * [`partition_even_rows`] — "a simple strategy is to evenly divide rows";
//! * [`partition_by_nnz`] — the nnz-aware refinement: rows are accumulated
//!   until the shard's *byte footprint* would exceed the next level's
//!   capacity budget ("if the nnz of a shard is too large to fit in the
//!   next-level memory, it can be further broken into smaller shards").

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// One shard: a contiguous row range of a CSR matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// First row (inclusive).
    pub row_start: usize,
    /// Last row (exclusive).
    pub row_end: usize,
    /// First entry offset (`row_ptr[row_start]`).
    pub nnz_start: usize,
    /// Last entry offset (`row_ptr[row_end]`).
    pub nnz_end: usize,
}

impl Shard {
    /// Rows covered.
    pub fn rows(&self) -> usize {
        self.row_end - self.row_start
    }

    /// Stored entries covered.
    pub fn nnz(&self) -> usize {
        self.nnz_end - self.nnz_start
    }

    /// Bytes of CSR payload this shard moves between levels:
    /// the rebased `row_ptr` slice (u32 each) + `col_id` (u32) + `data` (f32).
    pub fn payload_bytes(&self) -> u64 {
        ((self.rows() + 1) * 4 + self.nnz() * 8) as u64
    }
}

fn shard_of(m: &Csr, start: usize, end: usize) -> Shard {
    Shard {
        row_start: start,
        row_end: end,
        nnz_start: m.row_ptr[start],
        nnz_end: m.row_ptr[end],
    }
}

/// Split into `k` shards of (nearly) equal row counts.
pub fn partition_even_rows(m: &Csr, k: usize) -> Vec<Shard> {
    let k = k.max(1).min(m.rows.max(1));
    let mut shards = Vec::with_capacity(k);
    let base = m.rows / k;
    let extra = m.rows % k;
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        if len == 0 {
            continue;
        }
        shards.push(shard_of(m, start, start + len));
        start += len;
    }
    shards
}

/// Split greedily so each shard's [`Shard::payload_bytes`] stays within
/// `byte_budget`. A single row whose payload alone exceeds the budget gets
/// its own shard (the kernel must then stream it; Northup's recursion would
/// split it again at a deeper level if one exists).
pub fn partition_by_nnz(m: &Csr, byte_budget: u64) -> Vec<Shard> {
    let mut shards = Vec::new();
    if m.rows == 0 {
        return shards;
    }
    let mut start = 0usize;
    let mut r = 0usize;
    while r < m.rows {
        let candidate = shard_of(m, start, r + 1);
        if candidate.payload_bytes() > byte_budget && r > start {
            shards.push(shard_of(m, start, r));
            start = r;
        } else {
            r += 1;
        }
    }
    shards.push(shard_of(m, start, m.rows));
    shards
}

/// Check that `shards` exactly tile `m`'s rows in order.
pub fn covers_exactly(m: &Csr, shards: &[Shard]) -> bool {
    let mut next = 0usize;
    for s in shards {
        if s.row_start != next || s.row_end < s.row_start {
            return false;
        }
        if s.nnz_start != m.row_ptr[s.row_start] || s.nnz_end != m.row_ptr[s.row_end] {
            return false;
        }
        next = s.row_end;
    }
    next == m.rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn even_rows_cover() {
        let m = gen::uniform_random(100, 200, 4, 1);
        for k in [1, 3, 7, 100, 1000] {
            let shards = partition_even_rows(&m, k);
            assert!(covers_exactly(&m, &shards), "k={k}");
            assert!(shards.len() <= 100);
        }
    }

    #[test]
    fn even_rows_balanced() {
        let m = gen::uniform_random(10, 20, 2, 1);
        let shards = partition_even_rows(&m, 3);
        let sizes: Vec<usize> = shards.iter().map(Shard::rows).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn nnz_partition_respects_budget() {
        let m = gen::powerlaw(300, 2000, 512, 1.1, 7);
        let budget = 16 * 1024;
        let shards = partition_by_nnz(&m, budget);
        assert!(covers_exactly(&m, &shards));
        for s in &shards {
            // Either fits, or is a single oversized row.
            assert!(
                s.payload_bytes() <= budget || s.rows() == 1,
                "shard {s:?} = {} B over budget with multiple rows",
                s.payload_bytes()
            );
        }
    }

    #[test]
    fn nnz_partition_single_shard_when_budget_huge() {
        let m = gen::banded(50, 1, 2);
        let shards = partition_by_nnz(&m, u64::MAX);
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].nnz(), m.nnz());
    }

    #[test]
    fn oversized_single_row_gets_own_shard() {
        // One row with 100 entries, budget fits ~2 rows of padding only.
        let mut triplets = vec![];
        for c in 0..100u32 {
            triplets.push((1usize, c, 1.0f32));
        }
        triplets.push((0, 0, 1.0));
        triplets.push((2, 0, 1.0));
        let m = Csr::from_coo(3, 100, triplets);
        let shards = partition_by_nnz(&m, 64);
        assert!(covers_exactly(&m, &shards));
        let big = shards.iter().find(|s| s.nnz() == 100).unwrap();
        assert_eq!(big.rows(), 1);
    }

    #[test]
    fn payload_matches_slice_storage() {
        let m = gen::laplace_2d(8, 8);
        for s in partition_even_rows(&m, 4) {
            let sub = m.slice_rows(s.row_start, s.row_end);
            assert_eq!(s.payload_bytes(), sub.storage_bytes());
            assert_eq!(s.nnz(), sub.nnz());
        }
    }

    #[test]
    fn empty_matrix_yields_no_shards() {
        let m = Csr::empty(0, 10);
        assert!(partition_by_nnz(&m, 100).is_empty());
    }
}
