//! A named synthetic matrix suite standing in for the Florida (SuiteSparse)
//! collection the paper's SpMV inputs come from (§V-A, reference \[23\]).
//!
//! Each entry mimics the structural class of a well-known collection member
//! at a laptop-friendly scale; the [`crate::gen`] generators scale the same
//! shapes up to paper-scale row counts when only timing (not data) is
//! needed.

use crate::csr::Csr;
use crate::gen;
use serde::{Deserialize, Serialize};

/// A named suite entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuiteMatrix {
    /// Banded, short regular rows — road-network-like (e.g. `roadNet-CA`).
    SynRoad,
    /// Power-law rows — web-graph-like (e.g. `wb-edu`).
    SynWeb,
    /// 5-point Laplacian — FEM/PDE-like (e.g. `ecology2`, `thermal2`).
    SynFem,
    /// Uniform random rows — generic balanced sparse.
    SynRand,
    /// Dense diagonal blocks — circuit/chemistry-like (e.g. `ASIC_680k`).
    SynCircuit,
}

impl SuiteMatrix {
    /// All suite members.
    pub const ALL: [SuiteMatrix; 5] = [
        SuiteMatrix::SynRoad,
        SuiteMatrix::SynWeb,
        SuiteMatrix::SynFem,
        SuiteMatrix::SynRand,
        SuiteMatrix::SynCircuit,
    ];

    /// Collection-style name.
    pub fn name(self) -> &'static str {
        match self {
            SuiteMatrix::SynRoad => "syn-road",
            SuiteMatrix::SynWeb => "syn-web",
            SuiteMatrix::SynFem => "syn-fem",
            SuiteMatrix::SynRand => "syn-rand",
            SuiteMatrix::SynCircuit => "syn-circuit",
        }
    }

    /// Generate at a size scale: `scale = 1` is the quick test size
    /// (thousands of rows); each increment roughly quadruples the rows.
    pub fn generate(self, scale: u32) -> Csr {
        let k = 1usize << (2 * scale.min(8)); // 4^scale
        match self {
            SuiteMatrix::SynRoad => gen::banded(2_000 * k, 2, 0xB0AD),
            SuiteMatrix::SynWeb => {
                let rows = 4_000 * k;
                gen::powerlaw(rows, rows, 4_096.min(rows), 1.0, 0x3EB)
            }
            SuiteMatrix::SynFem => {
                let side = (45.0 * (k as f64).sqrt()) as usize;
                gen::laplace_2d(side, side)
            }
            SuiteMatrix::SynRand => gen::uniform_random(1_500 * k, 1_500 * k, 16, 0x5A4D),
            SuiteMatrix::SynCircuit => gen::block_diagonal(60 * k, 24, 0xC13C),
        }
    }
}

/// Paper-scale *shape parameters* for modeled (timing-only) runs: the §IV-C
/// configuration of "16 million rows, stored in SSD/disk drive ... divided
/// into four chunks in row-dimension".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperSpmvShape {
    /// Total rows (16 Mi in the paper).
    pub rows: u64,
    /// Mean stored entries per row.
    pub mean_nnz_per_row: f64,
    /// Number of DRAM chunks ("divided into four chunks").
    pub chunks: usize,
}

impl Default for PaperSpmvShape {
    fn default() -> Self {
        PaperSpmvShape {
            rows: 16 * 1024 * 1024,
            mean_nnz_per_row: 40.0,
            chunks: 4,
        }
    }
}

impl PaperSpmvShape {
    /// Total stored entries.
    pub fn nnz(&self) -> u64 {
        (self.rows as f64 * self.mean_nnz_per_row) as u64
    }

    /// CSR bytes on storage (u32 row_ptr + u32 col_id + f32 data).
    pub fn storage_bytes(&self) -> u64 {
        (self.rows + 1) * 4 + self.nnz() * 8
    }

    /// Bytes of the dense input/output vectors.
    pub fn vector_bytes(&self) -> u64 {
        self.rows * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::{bin_rows, kind_histogram, BinningParams};

    #[test]
    fn all_suite_members_generate_valid_matrices() {
        for m in SuiteMatrix::ALL {
            let csr = m.generate(0);
            csr.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", m.name()));
            assert!(csr.nnz() > 0, "{} is empty", m.name());
        }
    }

    #[test]
    fn suite_spans_binning_behaviors() {
        let p = BinningParams::default();
        // Road: all stream. Web: some vector.
        let road = SuiteMatrix::SynRoad.generate(0);
        let h_road = kind_histogram(&bin_rows(&road, p));
        assert_eq!(h_road[1] + h_road[2], 0);

        let web = SuiteMatrix::SynWeb.generate(0);
        let h_web = kind_histogram(&bin_rows(&web, p));
        assert!(h_web[1] > 0, "web graph has long rows: {h_web:?}");
    }

    #[test]
    fn scale_grows_rows() {
        let s0 = SuiteMatrix::SynRand.generate(0);
        let s1 = SuiteMatrix::SynRand.generate(1);
        assert!(s1.rows > 3 * s0.rows);
    }

    #[test]
    fn paper_shape_matches_section_4c() {
        let shape = PaperSpmvShape::default();
        assert_eq!(shape.rows, 16 * 1024 * 1024);
        assert_eq!(shape.chunks, 4);
        // ~5.4 GB of CSR payload: too big for the 2 GB staging buffer,
        // which is why chunking is required at all.
        assert!(shape.storage_bytes() > 4 * (1 << 30));
    }
}
