//! ELLPACK sparse format — the alternative layout of the paper's §VI
//! discussion ("For sparse-matrix problems, the choice of data layouts not
//! only depends on architectures but also on inputs", citing Bell &
//! Garland).
//!
//! ELL stores every row padded to the same width, column-major across rows,
//! which turns SpMV's accesses into perfectly regular, coalesced streams —
//! ideal for wide SIMD — at the cost of padding traffic. Uniform-row
//! matrices (road networks, stencils) pad almost nothing; power-law
//! matrices pad catastrophically. That trade is exactly what the §VI
//! layout-transforming `move_data` exists to exploit.

use crate::csr::Csr;
use serde::{Deserialize, Serialize};

/// An ELLPACK matrix over `f32`.
///
/// Entries are stored column-of-slots-major: slot `s` of row `r` lives at
/// index `s * rows + r`, so SIMD lanes walking consecutive rows read
/// consecutive memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ell {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Padded row width (max nnz over rows).
    pub width: usize,
    /// Column index per slot (`rows * width`); padding slots hold `u32::MAX`.
    pub col_idx: Vec<u32>,
    /// Value per slot (padding slots hold 0.0).
    pub vals: Vec<f32>,
}

/// Sentinel column index marking a padding slot.
pub const ELL_PAD: u32 = u32::MAX;

impl Ell {
    /// Convert from CSR.
    pub fn from_csr(m: &Csr) -> Ell {
        let width = (0..m.rows).map(|r| m.row_nnz(r)).max().unwrap_or(0);
        let mut col_idx = vec![ELL_PAD; m.rows * width];
        let mut vals = vec![0.0f32; m.rows * width];
        for r in 0..m.rows {
            let (cols, vs) = m.row(r);
            for (s, (&c, &v)) in cols.iter().zip(vs).enumerate() {
                col_idx[s * m.rows + r] = c;
                vals[s * m.rows + r] = v;
            }
        }
        Ell {
            rows: m.rows,
            cols: m.cols,
            width,
            col_idx,
            vals,
        }
    }

    /// Convert back to CSR (dropping padding).
    pub fn to_csr(&self) -> Csr {
        let mut triplets = Vec::new();
        for r in 0..self.rows {
            for s in 0..self.width {
                let c = self.col_idx[s * self.rows + r];
                if c != ELL_PAD {
                    triplets.push((r, c, self.vals[s * self.rows + r]));
                }
            }
        }
        Csr::from_coo(self.rows, self.cols, triplets)
    }

    /// Stored slots including padding.
    pub fn slots(&self) -> usize {
        self.rows * self.width
    }

    /// Real (non-padding) entries.
    pub fn nnz(&self) -> usize {
        self.col_idx.iter().filter(|&&c| c != ELL_PAD).count()
    }

    /// Padding overhead: slots / nnz (1.0 = no padding). Infinite for an
    /// empty matrix with nonzero width (cannot happen from `from_csr`).
    pub fn padding_ratio(&self) -> f64 {
        let nnz = self.nnz();
        if nnz == 0 {
            1.0
        } else {
            self.slots() as f64 / nnz as f64
        }
    }

    /// Bytes of the ELL payload (u32 col + f32 val per slot).
    pub fn storage_bytes(&self) -> u64 {
        (self.slots() * 8) as u64
    }

    /// Reference SpMV over the ELL layout: `y = A x`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv(&self, x: &[f32], y: &mut [f32]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(y.len(), self.rows);
        y.fill(0.0);
        // Slot-major sweep: regular, stride-1 reads of col_idx/vals — the
        // access pattern the format exists for.
        for s in 0..self.width {
            let base = s * self.rows;
            for (r, yr) in y.iter_mut().enumerate() {
                let c = self.col_idx[base + r];
                if c != ELL_PAD {
                    *yr += self.vals[base + r] * x[c as usize];
                }
            }
        }
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> bool {
        self.col_idx.len() == self.slots()
            && self.vals.len() == self.slots()
            && self
                .col_idx
                .iter()
                .all(|&c| c == ELL_PAD || (c as usize) < self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn roundtrip(m: &Csr) {
        let e = Ell::from_csr(m);
        assert!(e.validate());
        assert_eq!(e.nnz(), m.nnz());
        let back = e.to_csr();
        assert_eq!(&back, m, "CSR -> ELL -> CSR roundtrip");
    }

    #[test]
    fn roundtrips_across_structures() {
        roundtrip(&gen::uniform_random(60, 90, 5, 1));
        roundtrip(&gen::banded(50, 3, 2));
        roundtrip(&gen::powerlaw(80, 300, 64, 1.0, 3));
        roundtrip(&Csr::empty(10, 10));
    }

    #[test]
    fn spmv_matches_csr_reference() {
        for m in [
            gen::uniform_random(100, 120, 7, 5),
            gen::powerlaw(150, 400, 96, 0.8, 9),
            gen::laplace_2d(12, 9),
        ] {
            let e = Ell::from_csr(&m);
            let x: Vec<f32> = (0..m.cols).map(|i| ((i % 7) as f32 - 3.0) * 0.5).collect();
            let mut y_csr = vec![0.0f32; m.rows];
            m.spmv_reference(&x, &mut y_csr);
            let mut y_ell = vec![0.0f32; m.rows];
            e.spmv(&x, &mut y_ell);
            let err = crate::csr_ell_err(&y_csr, &y_ell);
            assert!(err < 1e-4, "err {err}");
        }
    }

    #[test]
    fn uniform_rows_pad_nothing() {
        let m = gen::uniform_random(200, 300, 8, 2);
        let e = Ell::from_csr(&m);
        assert_eq!(e.width, 8);
        assert!((e.padding_ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn powerlaw_rows_pad_catastrophically() {
        let m = gen::powerlaw(500, 2000, 1024, 1.0, 7);
        let e = Ell::from_csr(&m);
        assert!(
            e.padding_ratio() > 10.0,
            "one huge row forces width {} on everyone: ratio {}",
            e.width,
            e.padding_ratio()
        );
        assert!(e.storage_bytes() > 10 * m.storage_bytes() / 2);
    }

    #[test]
    fn slot_layout_is_column_major() {
        // Row 0 = [5.0 @ col 2]; row 1 = [7.0 @ col 0, 9.0 @ col 3].
        let m = Csr::from_coo(2, 4, vec![(0, 2, 5.0), (1, 0, 7.0), (1, 3, 9.0)]);
        let e = Ell::from_csr(&m);
        assert_eq!(e.width, 2);
        // Slot 0: rows [0, 1] adjacent.
        assert_eq!(e.col_idx[0], 2);
        assert_eq!(e.col_idx[1], 0);
        // Slot 1: row 0 padded, row 1 holds col 3.
        assert_eq!(e.col_idx[2], ELL_PAD);
        assert_eq!(e.col_idx[3], 3);
        assert_eq!(e.vals[3], 9.0);
    }

    #[test]
    fn empty_matrix_has_zero_width() {
        let e = Ell::from_csr(&Csr::empty(5, 5));
        assert_eq!(e.width, 0);
        assert_eq!(e.slots(), 0);
        assert!((e.padding_ratio() - 1.0).abs() < 1e-12);
    }
}
