//! Synthetic sparse-matrix generators.
//!
//! The paper draws SpMV inputs from the Florida (SuiteSparse) collection,
//! which is not bundled here; these generators produce matrices with the
//! same *structural* properties CSR-Adaptive is sensitive to — the row
//! length distribution (binning decisions) and total nnz (I/O volume and
//! shard sizes). All generators are seeded and deterministic.

use crate::csr::Csr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform-random matrix: every row has exactly `nnz_per_row` entries at
/// uniformly random distinct columns. Models well-balanced matrices where
/// CSR-Stream handles everything.
pub fn uniform_random(rows: usize, cols: usize, nnz_per_row: usize, seed: u64) -> Csr {
    assert!(
        nnz_per_row <= cols,
        "row cannot hold {nnz_per_row} distinct cols"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut row_ptr = Vec::with_capacity(rows + 1);
    let mut col_idx = Vec::with_capacity(rows * nnz_per_row);
    let mut vals = Vec::with_capacity(rows * nnz_per_row);
    row_ptr.push(0usize);
    let mut cols_buf: Vec<u32> = Vec::with_capacity(nnz_per_row);
    for _ in 0..rows {
        cols_buf.clear();
        while cols_buf.len() < nnz_per_row {
            let c = rng.gen_range(0..cols) as u32;
            if !cols_buf.contains(&c) {
                cols_buf.push(c);
            }
        }
        cols_buf.sort_unstable();
        for &c in &cols_buf {
            col_idx.push(c);
            vals.push(rng.gen_range(-1.0f32..1.0));
        }
        row_ptr.push(col_idx.len());
    }
    Csr {
        rows,
        cols,
        row_ptr,
        col_idx,
        vals,
    }
}

/// Banded (diagonal) matrix with `2*half_band + 1` diagonals. Models
/// road-network / structured-mesh matrices: short, regular rows.
pub fn banded(n: usize, half_band: usize, seed: u64) -> Csr {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::new();
    for r in 0..n {
        let lo = r.saturating_sub(half_band);
        let hi = (r + half_band + 1).min(n);
        for c in lo..hi {
            triplets.push((r, c as u32, rng.gen_range(-1.0f32..1.0)));
        }
    }
    Csr::from_coo(n, n, triplets)
}

/// Power-law ("scale-free") matrix: row `r`'s length follows
/// `max_nnz / (1 + r_shuffled)^alpha`, clamped to `[1, max_nnz]`. Models
/// web/social graphs: a few extremely long rows, many short ones — the case
/// CSR-Adaptive's CSR-Vector / VectorL bins exist for.
pub fn powerlaw(rows: usize, cols: usize, max_nnz: usize, alpha: f64, seed: u64) -> Csr {
    assert!(max_nnz <= cols);
    let mut rng = StdRng::seed_from_u64(seed);
    // Shuffle which rows are the heavy ones.
    let mut order: Vec<usize> = (0..rows).collect();
    for i in (1..rows).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    let mut triplets = Vec::new();
    for (r, &rank) in order.iter().enumerate() {
        let len = ((max_nnz as f64) / (1.0 + rank as f64).powf(alpha)).ceil() as usize;
        let len = len.clamp(1, max_nnz);
        let mut cols_buf: Vec<u32> = Vec::with_capacity(len);
        while cols_buf.len() < len {
            let c = rng.gen_range(0..cols) as u32;
            if !cols_buf.contains(&c) {
                cols_buf.push(c);
            }
        }
        for c in cols_buf {
            triplets.push((r, c, rng.gen_range(-1.0f32..1.0)));
        }
    }
    Csr::from_coo(rows, cols, triplets)
}

/// 5-point Laplacian on an `nx x ny` grid (FEM/PDE-style matrix, symmetric
/// structure, exactly the kind of input HPC SpMV sees).
pub fn laplace_2d(nx: usize, ny: usize) -> Csr {
    let n = nx * ny;
    let mut triplets = Vec::with_capacity(5 * n);
    let idx = |x: usize, y: usize| y * nx + x;
    for y in 0..ny {
        for x in 0..nx {
            let r = idx(x, y);
            triplets.push((r, r as u32, 4.0));
            if x > 0 {
                triplets.push((r, idx(x - 1, y) as u32, -1.0));
            }
            if x + 1 < nx {
                triplets.push((r, idx(x + 1, y) as u32, -1.0));
            }
            if y > 0 {
                triplets.push((r, idx(x, y - 1) as u32, -1.0));
            }
            if y + 1 < ny {
                triplets.push((r, idx(x, y + 1) as u32, -1.0));
            }
        }
    }
    Csr::from_coo(n, n, triplets)
}

/// Block-diagonal matrix of dense `block x block` blocks. Models
/// circuit/chemistry matrices with dense local coupling.
pub fn block_diagonal(blocks: usize, block: usize, seed: u64) -> Csr {
    let n = blocks * block;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut triplets = Vec::with_capacity(blocks * block * block);
    for b in 0..blocks {
        let base = b * block;
        for i in 0..block {
            for j in 0..block {
                triplets.push((base + i, (base + j) as u32, rng.gen_range(-1.0f32..1.0)));
            }
        }
    }
    Csr::from_coo(n, n, triplets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_exact_row_lengths() {
        let m = uniform_random(50, 100, 7, 42);
        m.validate().unwrap();
        assert!((0..50).all(|r| m.row_nnz(r) == 7));
        assert_eq!(m.nnz(), 350);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform_random(20, 40, 3, 7), uniform_random(20, 40, 3, 7));
        assert_eq!(powerlaw(30, 60, 20, 1.2, 9), powerlaw(30, 60, 20, 1.2, 9));
        assert_ne!(uniform_random(20, 40, 3, 7), uniform_random(20, 40, 3, 8));
    }

    #[test]
    fn banded_has_expected_bandwidth() {
        let m = banded(10, 2, 1);
        m.validate().unwrap();
        // Middle rows have full band 5; corners are clipped.
        assert_eq!(m.row_nnz(5), 5);
        assert_eq!(m.row_nnz(0), 3);
        for r in 0..10 {
            let (cols, _) = m.row(r);
            for &c in cols {
                assert!((c as i64 - r as i64).abs() <= 2);
            }
        }
    }

    #[test]
    fn powerlaw_is_skewed() {
        let m = powerlaw(200, 1000, 256, 1.0, 3);
        m.validate().unwrap();
        let s = m.row_stats();
        assert!(s.max >= 100, "has heavy rows: {s:?}");
        assert!(s.min <= 2, "has light rows: {s:?}");
        assert!(s.mean < 64.0, "most rows are short: {s:?}");
    }

    #[test]
    fn laplace_structure() {
        let m = laplace_2d(4, 3);
        m.validate().unwrap();
        assert_eq!(m.rows, 12);
        // Interior point has 5 entries, corner has 3.
        assert_eq!(m.row_nnz(5), 5);
        assert_eq!(m.row_nnz(0), 3);
        // Diagonal dominance: row sums are >= 0.
        let x = vec![1.0f32; 12];
        let mut y = vec![0.0f32; 12];
        m.spmv_reference(&x, &mut y);
        assert!(y.iter().all(|&v| v >= -1e-6));
    }

    #[test]
    fn block_diagonal_is_dense_within_blocks() {
        let m = block_diagonal(3, 4, 5);
        m.validate().unwrap();
        assert_eq!(m.nnz(), 3 * 16);
        assert!((0..12).all(|r| m.row_nnz(r) == 4));
        // No coupling across blocks.
        let (cols, _) = m.row(0);
        assert!(cols.iter().all(|&c| c < 4));
    }
}
