//! Fig. 8 bench: breakdown on the 3-level discrete-GPU tree (device memory,
//! main memory, disk drive). The paper's shape — the transfer burden per
//! unit of GPU work rises from matmul to hotspot to csr — is asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use northup_bench::{fig8, run_northup_discrete, App};
use northup_hw::catalog;

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    for app in App::ALL {
        group.bench_with_input(
            BenchmarkId::new("3-level-hdd", app.label()),
            &app,
            |b, &app| {
                b.iter(|| {
                    run_northup_discrete(app, catalog::hdd_wd5000())
                        .unwrap()
                        .makespan()
                })
            },
        );
    }
    group.finish();

    let rows = fig8().expect("fig8");
    println!("\nFig 8 series (xfer share, xfer/gpu burden):");
    for r in &rows {
        println!(
            "  {:<14} xfer {:.2}%  xfer/gpu {:.2}",
            r.app.label(),
            100.0 * r.xfer,
            r.xfer / r.gpu.max(1e-12)
        );
    }
    let burden: Vec<f64> = rows.iter().map(|r| r.xfer / r.gpu.max(1e-12)).collect();
    assert!(burden[0] < burden[1] && burden[1] < burden[2]);
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
