//! Fig. 9 bench: the faster-storage sweep, via full model re-runs and via
//! the paper's first-order projection, with monotonicity asserted.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use northup_bench::{fig9, run_northup_apu, App};
use northup_hw::catalog;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    for app in App::ALL {
        for (r, w) in northup::FIG9_SWEEP {
            group.bench_with_input(
                BenchmarkId::new(format!("{}-{}", r, w), app.label()),
                &app,
                |b, &app| {
                    b.iter(|| {
                        run_northup_apu(app, catalog::ssd_with_bandwidth(r, w))
                            .unwrap()
                            .makespan()
                    })
                },
            );
        }
    }
    group.finish();

    let series = fig9().expect("fig9");
    println!("\nFig 9 series (io / overall normalized to 1400-600):");
    for s in &series {
        let last = s.points.last().unwrap();
        println!(
            "  {:<14} io -> {:.3} ({}% gain)  overall -> {:.3}  in-mem {:.3}",
            s.app.label(),
            last.io_norm,
            (100.0 * (1.0 - last.io_norm)) as i64,
            last.overall_norm,
            s.in_memory_norm
        );
        for w in s.points.windows(2) {
            assert!(w[1].io_norm <= w[0].io_norm + 1e-9);
            assert!(w[1].overall_norm <= w[0].overall_norm + 1e-9);
        }
    }
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
