//! Fig. 11 bench: CPU+GPU work-stealing speedups over GPU-only execution
//! for the paper's three input points and 8/16/32 GPU queues.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use northup_apps::balance::{fig11_absolute, fig11_speedup};
use northup_bench::fig11;

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    for (m, n) in [(16_384usize, 2_048usize), (16_384, 4_096), (32_768, 4_096)] {
        for q in [8usize, 16, 32] {
            group.bench_with_input(BenchmarkId::new(format!("({m},{n})"), q), &q, |b, &q| {
                b.iter(|| fig11_speedup(m, n, q))
            });
        }
    }
    group.finish();

    let bars = fig11();
    println!("\nFig 11 series:");
    for b in &bars {
        println!(
            "  ({},{}) q={:<2} speedup {:.3} makespan {}",
            b.input.0, b.input.1, b.queues, b.speedup, b.absolute
        );
    }
    // 32 queues is the best absolute configuration at every input point.
    for (m, n) in [(16_384usize, 2_048usize), (16_384, 4_096), (32_768, 4_096)] {
        assert!(fig11_absolute(m, n, 32) < fig11_absolute(m, n, 8));
    }
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
