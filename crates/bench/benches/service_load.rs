//! Service-load bench: the multi-tenant scheduler scenario. Measures the
//! cost of one full deterministic co-simulation of a 32-job mixed trace
//! per (policy, offered-load) cell, then prints the throughput / latency
//! / rejection series and asserts the headline shape: concurrent
//! weighted-fair admission beats strict-FIFO serialization on
//! non-conflicting jobs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use northup::presets;
use northup_apps::{run_service, synthetic_trace, TraceConfig};
use northup_bench::service_scenario;
use northup_hw::catalog;
use northup_sched::AdmissionPolicy;

fn bench_service(c: &mut Criterion) {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let mut group = c.benchmark_group("service");
    for gap in [500u64, 8_000] {
        let cfg = TraceConfig {
            mean_gap_us: gap,
            ..TraceConfig::default()
        };
        group.bench_with_input(BenchmarkId::new("fair", gap), &cfg, |b, cfg| {
            b.iter(|| {
                run_service(
                    &tree,
                    synthetic_trace(&tree, cfg),
                    AdmissionPolicy::WeightedFair,
                )
                .expect("fair run")
                .throughput
            })
        });
        group.bench_with_input(BenchmarkId::new("fifo", gap), &cfg, |b, cfg| {
            b.iter(|| {
                run_service(&tree, synthetic_trace(&tree, cfg), AdmissionPolicy::Fifo)
                    .expect("fifo run")
                    .throughput
            })
        });
    }
    group.finish();

    let rows = service_scenario();
    println!("\nService scenario (32 mixed jobs, two-level APU):");
    println!(
        "  gap(us)   fair(jobs/s)  fifo(jobs/s)  p50(s)   p99(s)   reject  \
         preempts  evict-lat(ms)  resized(jobs/s)"
    );
    for r in &rows {
        println!(
            "  {:>7}   {:>11.2}  {:>11.2}  {:>6.3}  {:>6.3}  {:>5.1}%  {:>8}  {:>13.3}  {:>15.2}",
            r.mean_gap_us,
            r.fair_throughput,
            r.fifo_throughput,
            r.p50_latency_s,
            r.p99_latency_s,
            r.rejection_rate * 100.0,
            r.preemptions,
            r.preempt_latency_s * 1e3,
            r.resize_throughput,
        );
    }
    assert!(
        rows.iter().any(|r| r.fair_throughput > r.fifo_throughput),
        "weighted-fair must beat strict FIFO at some offered load"
    );
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
