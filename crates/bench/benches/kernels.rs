//! Real-execution kernel microbenchmarks: the leaf kernels measured for
//! actual wall-clock throughput (these are the only benches that measure
//! real time rather than regenerate virtual-time figures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use northup_exec::ThreadPool;
use northup_kernels::{
    gemm_flops, matmul_naive, matmul_packed, matmul_parallel, matmul_tiled, multi_step_blocked,
    spmv_adaptive, DenseMatrix, HotSpotParams,
};
use northup_sparse::{bin_rows, gen, BinningParams};

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm");
    let n = 192;
    let a = DenseMatrix::random(n, n, 1);
    let b = DenseMatrix::random(n, n, 2);
    group.throughput(Throughput::Elements(
        gemm_flops(n as u64, n as u64, n as u64) as u64,
    ));
    group.bench_function(BenchmarkId::new("naive", n), |bench| {
        bench.iter(|| {
            let mut cm = DenseMatrix::zeros(n, n);
            matmul_naive(&a, &b, &mut cm);
            cm.data[0]
        })
    });
    for tile in [16usize, 32, 64] {
        group.bench_function(BenchmarkId::new("tiled", tile), |bench| {
            bench.iter(|| {
                let mut cm = DenseMatrix::zeros(n, n);
                matmul_tiled(&a, &b, &mut cm, tile);
                cm.data[0]
            })
        });
    }
    group.bench_function("packed", |bench| {
        bench.iter(|| {
            let mut cm = DenseMatrix::zeros(n, n);
            matmul_packed(&a, &b, &mut cm);
            cm.data[0]
        })
    });
    let pool = ThreadPool::with_default_threads();
    group.bench_function(BenchmarkId::new("parallel", pool.threads()), |bench| {
        bench.iter(|| {
            let mut cm = DenseMatrix::zeros(n, n);
            matmul_parallel(&pool, &a, &b, &mut cm);
            cm.data[0]
        })
    });
    group.finish();
}

fn bench_stencil(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotspot");
    let n = 256;
    let temp = DenseMatrix::random(n, n, 3);
    let power = DenseMatrix::random(n, n, 4);
    let prm = HotSpotParams::default();
    group.throughput(Throughput::Elements((n * n) as u64));
    for steps in [1usize, 4] {
        group.bench_function(BenchmarkId::new("blocked", steps), |bench| {
            bench.iter(|| multi_step_blocked(&temp, &power, 64, steps, &prm).data[0])
        });
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for (name, m) in [
        ("uniform", gen::uniform_random(4000, 4000, 16, 1)),
        ("powerlaw", gen::powerlaw(2000, 8000, 2048, 0.9, 2)),
    ] {
        let blocks = bin_rows(&m, BinningParams::default());
        let x: Vec<f32> = (0..m.cols).map(|i| (i as f32 * 0.1).sin()).collect();
        group.throughput(Throughput::Elements(m.nnz() as u64));
        group.bench_function(BenchmarkId::new("adaptive", name), |bench| {
            let mut y = vec![0.0f32; m.rows];
            bench.iter(|| {
                spmv_adaptive(&m, &blocks, &x, &mut y);
                y[0]
            })
        });
    }
    group.finish();
}

fn bench_deque(c: &mut Criterion) {
    use northup_exec::deque::deque;
    let mut group = c.benchmark_group("deque");
    group.bench_function("push-pop", |bench| {
        let (w, _s) = deque::<u64>(1024);
        bench.iter(|| {
            for i in 0..512u64 {
                w.push(i).unwrap();
            }
            let mut acc = 0u64;
            while let Some(v) = w.pop() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    group.bench_function("push-steal", |bench| {
        let (w, s) = deque::<u64>(1024);
        bench.iter(|| {
            for i in 0..512u64 {
                w.push(i).unwrap();
            }
            let mut acc = 0u64;
            while let Some(v) = s.steal_until_settled() {
                acc = acc.wrapping_add(v);
            }
            acc
        })
    });
    group.finish();
}

fn bench_pool_scaling(c: &mut Criterion) {
    // Real wall-clock scaling of the work-stealing pool on the stencil.
    // NOTE: on a single-core host (like some CI machines) this measures
    // oversubscription overhead, not speedup; on multicore hosts the
    // 2/4/8-thread rows drop below the 1-thread row.
    let mut group = c.benchmark_group("pool-scaling");
    let n = 768;
    let temp = DenseMatrix::random(n, n, 7);
    let power = DenseMatrix::random(n, n, 8);
    let prm = HotSpotParams::default();
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        let pool = ThreadPool::new(threads);
        group.bench_function(BenchmarkId::from_parameter(threads), |bench| {
            bench.iter(|| {
                northup_kernels::multi_step_parallel(&pool, &temp, &power, 96, 4, &prm).data[0]
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_gemm,
    bench_stencil,
    bench_spmv,
    bench_deque,
    bench_pool_scaling
);
criterion_main!(benches);
