//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * staging ring depth (how much double buffering buys) — §III-C's
//!   multi-stage queues;
//! * HotSpot temporal-blocking depth (compute/IO ratio knob) — §IV-B;
//! * the §IV-A row-shard reuse (A re-loaded per tile vs kept staged);
//! * NVM mapped as storage vs as memory (§II remapping);
//! * layout-transforming move_data vs plain move + strided access (§VI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use northup::{presets, ExecMode, NodeId, Runtime, Transform};
use northup_apps::{hotspot_apu, matmul_apu, HotspotConfig, MatmulConfig};
use northup_hw::catalog;

fn ablation_ring_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-ring");
    for ring in [2usize, 3, 4] {
        let cfg = MatmulConfig {
            ring,
            ..MatmulConfig::paper()
        };
        let run = matmul_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled).unwrap();
        println!("ring {ring}: gemm hdd makespan {}", run.makespan());
        group.bench_with_input(BenchmarkId::from_parameter(ring), &ring, |b, &ring| {
            let cfg = MatmulConfig {
                ring,
                ..MatmulConfig::paper()
            };
            b.iter(|| {
                matmul_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled)
                    .unwrap()
                    .makespan()
            })
        });
    }
    group.finish();
}

fn ablation_temporal_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-temporal");
    let mut last = f64::INFINITY;
    for steps in [8usize, 16, 32, 64] {
        let cfg = HotspotConfig {
            steps_per_pass: steps,
            passes: 64 / steps, // constant total simulated steps
            ..HotspotConfig::paper()
        };
        let base = northup_apps::hotspot_in_memory(&cfg, ExecMode::Modeled).unwrap();
        let run = hotspot_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled).unwrap();
        let slowdown = run.slowdown_vs(&base);
        println!("steps/pass {steps}: hotspot hdd slowdown {slowdown:.3}");
        // Deeper temporal blocking amortizes I/O: slowdown must not grow.
        assert!(slowdown <= last + 1e-9);
        last = slowdown;
        group.bench_with_input(BenchmarkId::from_parameter(steps), &steps, |b, &steps| {
            let cfg = HotspotConfig {
                steps_per_pass: steps,
                passes: 64 / steps,
                ..HotspotConfig::paper()
            };
            b.iter(|| {
                hotspot_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled)
                    .unwrap()
                    .makespan()
            })
        });
    }
    group.finish();
}

fn ablation_nvm_mapping(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-nvm");
    let cfg = MatmulConfig::paper();
    let as_storage = northup_apps::matmul::matmul_northup(
        &cfg,
        presets::apu_two_level(catalog::nvm_optane_like()),
        ExecMode::Modeled,
    )
    .unwrap();
    let as_memory = northup_apps::matmul::matmul_northup(
        &cfg,
        presets::apu_with_nvm_memory(),
        ExecMode::Modeled,
    )
    .unwrap();
    println!(
        "nvm-as-storage {} vs nvm-as-memory {} (same part, different mapping)",
        as_storage.makespan(),
        as_memory.makespan()
    );
    for (name, tree) in [
        (
            "as-storage",
            presets::apu_two_level(catalog::nvm_optane_like()),
        ),
        ("as-memory", presets::apu_with_nvm_memory()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                northup_apps::matmul::matmul_northup(&cfg, tree.clone(), ExecMode::Modeled)
                    .unwrap()
                    .makespan()
            })
        });
    }
    group.finish();
}

fn ablation_layout_transform(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-transform");
    // Moving a 64 MiB matrix down with an inline transpose vs moving raw
    // bytes: the §VI extension charges the permute pass but saves the
    // strided access on the consumer side.
    let rows = 4096usize;
    let cols = 4096usize;
    for (name, transform) in [
        ("plain", None),
        (
            "transpose",
            Some(Transform::RowToCol {
                rows,
                cols,
                elem: 4,
            }),
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let rt = Runtime::new(
                    presets::apu_two_level(catalog::ssd_hyperx_predator()),
                    ExecMode::Modeled,
                )
                .unwrap();
                let bytes = (rows * cols * 4) as u64;
                let src = rt.alloc(bytes, NodeId(0)).unwrap();
                let dst = rt.alloc(bytes, NodeId(1)).unwrap();
                match transform {
                    Some(t) => rt.move_data_transform(dst, src, t).unwrap(),
                    None => rt.move_data(dst, 0, src, 0, bytes).unwrap(),
                };
                rt.makespan()
            })
        });
    }
    group.finish();
}

fn ablation_spmv_layout(c: &mut Criterion) {
    use northup_apps::layout::format_study;
    use northup_sparse::gen;
    let mut group = c.benchmark_group("ablation-spmv-layout");
    let rows = format_study(&[
        ("uniform", gen::uniform_random(3000, 3000, 16, 1)),
        ("banded", gen::banded(4000, 4, 2)),
        ("powerlaw", gen::powerlaw(3000, 3000, 2048, 0.9, 2)),
    ])
    .expect("format study");
    for r in &rows {
        println!(
            "spmv layout [{}]: padding {:.2}x  csr {}  ell-on-migrate {}  winner {}",
            r.input,
            r.padding,
            r.csr,
            r.ell,
            if r.ell_wins() { "ELL" } else { "CSR" }
        );
    }
    // SVI: the right layout depends on the input.
    assert!(rows[0].ell_wins() && !rows[2].ell_wins());
    for r in rows {
        let input = r.input.clone();
        group.bench_function(&input, |b| b.iter(|| (r.csr, r.ell)));
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_ring_depth,
    ablation_temporal_blocking,
    ablation_nvm_mapping,
    ablation_layout_transform,
    ablation_spmv_layout
);
criterion_main!(benches);
