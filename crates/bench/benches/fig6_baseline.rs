//! Fig. 6 bench: regenerates the in-memory vs SSD vs HDD comparison for
//! all three applications and asserts the paper's shape on every sample.
//! The measured quantity is the cost of one full deterministic model run
//! per (app, storage) cell; the printed figure data comes from the
//! `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use northup_bench::{fig6, run_in_memory, run_northup_apu, App};
use northup_hw::catalog;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    for app in App::ALL {
        group.bench_with_input(
            BenchmarkId::new("in-memory", app.label()),
            &app,
            |b, &app| b.iter(|| run_in_memory(app).unwrap().makespan()),
        );
        group.bench_with_input(
            BenchmarkId::new("northup-ssd", app.label()),
            &app,
            |b, &app| {
                b.iter(|| {
                    run_northup_apu(app, catalog::ssd_hyperx_predator())
                        .unwrap()
                        .makespan()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("northup-hdd", app.label()),
            &app,
            |b, &app| {
                b.iter(|| {
                    run_northup_apu(app, catalog::hdd_wd5000())
                        .unwrap()
                        .makespan()
                })
            },
        );
    }
    group.finish();

    // Print the actual figure data once per bench run and check the shape.
    let rows = fig6().expect("fig6");
    println!("\nFig 6 series (slowdown vs in-memory):");
    for r in &rows {
        println!("  {:<14} ssd {:.3}  hdd {:.3}", r.app.label(), r.ssd, r.hdd);
    }
    assert!(rows[0].ssd < rows[1].ssd && rows[1].ssd < rows[2].ssd);
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
