//! Fig. 7 bench: execution-breakdown regeneration on the 2-level APU tree.
//! Each sample recomputes the full breakdown for one (app, storage) cell;
//! the shape assertions reproduce the paper's qualitative claims.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use northup_bench::{fig7, run_northup_apu, App};
use northup_hw::catalog;
use northup_sim::Category;

fn bench_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    for app in App::ALL {
        for (storage, spec) in [
            ("hdd", catalog::hdd_wd5000()),
            ("ssd", catalog::ssd_hyperx_predator()),
        ] {
            group.bench_with_input(BenchmarkId::new(storage, app.label()), &app, |b, &app| {
                b.iter(|| {
                    run_northup_apu(app, spec.clone())
                        .unwrap()
                        .report
                        .breakdown
                        .share(Category::GpuCompute)
                })
            });
        }
    }
    group.finish();

    let rows = fig7().expect("fig7");
    println!("\nFig 7 series (gpu share of busy time):");
    for r in &rows {
        println!(
            "  {:<14} {:<4} gpu {:.1}% io {:.1}%",
            r.app.label(),
            r.storage,
            100.0 * r.gpu,
            100.0 * r.io
        );
    }
    // Paper shapes: GPU share rises from hdd to ssd for every app, and the
    // CSR runs charge visible CPU (binning) time.
    for app in App::ALL {
        let hdd = rows
            .iter()
            .find(|r| r.app == app && r.storage == "hdd")
            .unwrap();
        let ssd = rows
            .iter()
            .find(|r| r.app == app && r.storage == "ssd")
            .unwrap();
        assert!(ssd.gpu > hdd.gpu);
    }
    assert!(rows
        .iter()
        .filter(|r| r.app == App::Spmv)
        .all(|r| r.cpu > 0.01));
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
