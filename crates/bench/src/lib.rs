//! # northup-bench — regeneration of every figure in the paper's evaluation
//!
//! One function per figure, all running the paper-scale **Modeled** runs
//! (deterministic virtual time; see DESIGN.md §5 for the calibration).
//! The `figures` binary prints each series; the Criterion benches under
//! `benches/` wrap the same functions.
//!
//! | paper | function | what it shows |
//! |---|---|---|
//! | Fig. 6 | [`fig6`] | in-memory vs SSD vs HDD normalized runtime |
//! | Fig. 7 | [`fig7`] | APU 2-level execution breakdown |
//! | Fig. 8 | [`fig8`] | discrete-GPU 3-level breakdown |
//! | Fig. 9 | [`fig9`] | faster-storage projection sweep |
//! | Fig. 11 | [`fig11`] | CPU+GPU work-stealing speedups |
//! | headline | [`headline`] | abstract's "average 17% slower than in-memory" |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod artifact;

use northup::{presets, ExecMode, NorthupError, RunReport, Runtime};
use northup_apps::{
    fig11_speedup, hotspot_apu, hotspot_in_memory, matmul_apu, matmul_in_memory, spmv_apu,
    spmv_in_memory, AppRun, HotspotConfig, MatmulConfig, SpmvInput,
};
use northup_apps::{run_service, run_service_with, synthetic_trace, TraceConfig};
use northup_hw::{catalog, DeviceSpec};
use northup_sched::{
    AdmissionPolicy, FaultPlan, JobScheduler, JobSpec, JobState, JobWork, NodeBudgets, Reservation,
    ResizeDrain, SchedulerConfig,
};
use northup_sim::{Category, SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// The three evaluated applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum App {
    /// Dense matrix multiply (§IV-A).
    Matmul,
    /// HotSpot-2D stencil (§IV-B).
    Hotspot,
    /// CSR-Adaptive SpMV (§IV-C).
    Spmv,
}

impl App {
    /// All apps in figure order.
    pub const ALL: [App; 3] = [App::Matmul, App::Hotspot, App::Spmv];

    /// Label used in figure rows.
    pub fn label(self) -> &'static str {
        match self {
            App::Matmul => "dense-matmul",
            App::Hotspot => "hotspot-2d",
            App::Spmv => "csr-adaptive",
        }
    }
}

/// Run an app's in-memory baseline at paper scale.
pub fn run_in_memory(app: App) -> Result<AppRun, NorthupError> {
    match app {
        App::Matmul => matmul_in_memory(&MatmulConfig::paper(), ExecMode::Modeled),
        App::Hotspot => hotspot_in_memory(&HotspotConfig::paper(), ExecMode::Modeled),
        App::Spmv => spmv_in_memory(&SpmvInput::paper(), ExecMode::Modeled),
    }
}

/// Run an app's Northup out-of-core version on the 2-level APU tree with a
/// given storage device.
pub fn run_northup_apu(app: App, storage: DeviceSpec) -> Result<AppRun, NorthupError> {
    match app {
        App::Matmul => matmul_apu(&MatmulConfig::paper(), storage, ExecMode::Modeled),
        App::Hotspot => hotspot_apu(&HotspotConfig::paper(), storage, ExecMode::Modeled),
        App::Spmv => spmv_apu(&SpmvInput::paper(), storage, ExecMode::Modeled),
    }
}

/// Run an app on the 3-level discrete-GPU tree.
pub fn run_northup_discrete(app: App, storage: DeviceSpec) -> Result<AppRun, NorthupError> {
    let tree = presets::discrete_gpu_three_level(storage.clone());
    match app {
        App::Matmul => {
            northup_apps::matmul::matmul_northup(&MatmulConfig::paper(), tree, ExecMode::Modeled)
        }
        App::Hotspot => {
            northup_apps::hotspot::hotspot_northup(&HotspotConfig::paper(), tree, ExecMode::Modeled)
        }
        App::Spmv => {
            let tree = presets::discrete_gpu_three_level(northup_apps::spmv::spmv_storage(storage));
            northup_apps::spmv::spmv_northup(&SpmvInput::paper(), tree, ExecMode::Modeled)
        }
    }
}

// ---------------------------------------------------------------------------
// Fig. 6
// ---------------------------------------------------------------------------

/// One Fig. 6 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Application.
    pub app: App,
    /// In-memory baseline makespan (normalization denominator).
    pub in_memory: SimDur,
    /// Northup + SSD normalized runtime.
    pub ssd: f64,
    /// Northup + HDD normalized runtime.
    pub hdd: f64,
}

/// Regenerate Fig. 6: normalized runtime of in-memory vs Northup-SSD vs
/// Northup-HDD on the APU.
pub fn fig6() -> Result<Vec<Fig6Row>, NorthupError> {
    App::ALL
        .iter()
        .map(|&app| {
            let base = run_in_memory(app)?;
            let ssd = run_northup_apu(app, catalog::ssd_hyperx_predator())?;
            let hdd = run_northup_apu(app, catalog::hdd_wd5000())?;
            Ok(Fig6Row {
                app,
                in_memory: base.makespan(),
                ssd: ssd.slowdown_vs(&base),
                hdd: hdd.slowdown_vs(&base),
            })
        })
        .collect()
}

/// Fig. 6 companion at the paper's larger 32k x 32k input (§V-A quotes
/// both sizes). SpMV has a single paper-scale shape, so this covers the
/// two dense apps.
pub fn fig6_large() -> Result<Vec<Fig6Row>, NorthupError> {
    let mut rows = Vec::new();
    {
        // At 32k the paper's 4k blocking no longer fits the staging ring;
        // the SIII-B auto-planner picks the right one (2k).
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let cfg = MatmulConfig::auto(&tree, 32 * 1024, 1)?;
        let base = matmul_in_memory(&cfg, ExecMode::Modeled)?;
        let ssd = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled)?;
        let hdd = matmul_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled)?;
        rows.push(Fig6Row {
            app: App::Matmul,
            in_memory: base.makespan(),
            ssd: ssd.slowdown_vs(&base),
            hdd: hdd.slowdown_vs(&base),
        });
    }
    {
        let cfg = HotspotConfig {
            n: 32 * 1024,
            ..HotspotConfig::paper()
        };
        let base = hotspot_in_memory(&cfg, ExecMode::Modeled)?;
        let ssd = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled)?;
        let hdd = hotspot_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled)?;
        rows.push(Fig6Row {
            app: App::Hotspot,
            in_memory: base.makespan(),
            ssd: ssd.slowdown_vs(&base),
            hdd: hdd.slowdown_vs(&base),
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Figs. 7 and 8
// ---------------------------------------------------------------------------

/// One breakdown row (Figs. 7/8 bars): shares of summed busy time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BreakdownRow {
    /// Application.
    pub app: App,
    /// Storage device label.
    pub storage: String,
    /// CPU compute share.
    pub cpu: f64,
    /// GPU compute share.
    pub gpu: f64,
    /// Buffer setup share.
    pub setup: f64,
    /// File I/O + memcpy share.
    pub io: f64,
    /// Host<->device transfer share (the paper's "OpenCL transfers").
    pub xfer: f64,
    /// Makespan of the run.
    pub makespan: SimDur,
}

fn breakdown_row(app: App, storage: &str, report: &RunReport) -> BreakdownRow {
    let b = &report.breakdown;
    BreakdownRow {
        app,
        storage: storage.to_string(),
        cpu: b.share(Category::CpuCompute),
        gpu: b.share(Category::GpuCompute),
        setup: b.share(Category::BufferSetup),
        io: b.share(Category::FileIo) + b.share(Category::MemCopy),
        xfer: b.share(Category::DeviceTransfer),
        makespan: b.makespan,
    }
}

/// Regenerate Fig. 7: execution breakdown on the 2-level APU tree with HDD
/// and SSD storages.
pub fn fig7() -> Result<Vec<BreakdownRow>, NorthupError> {
    let mut rows = Vec::new();
    for &app in &App::ALL {
        let hdd = run_northup_apu(app, catalog::hdd_wd5000())?;
        rows.push(breakdown_row(app, "hdd", &hdd.report));
    }
    for &app in &App::ALL {
        let ssd = run_northup_apu(app, catalog::ssd_hyperx_predator())?;
        rows.push(breakdown_row(app, "ssd", &ssd.report));
    }
    Ok(rows)
}

/// Regenerate Fig. 8: breakdown on the 3-level discrete-GPU tree
/// (GPU device memory, main memory, disk drive).
pub fn fig8() -> Result<Vec<BreakdownRow>, NorthupError> {
    App::ALL
        .iter()
        .map(|&app| {
            let run = run_northup_discrete(app, catalog::hdd_wd5000())?;
            Ok(breakdown_row(app, "hdd(3-level)", &run.report))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 9
// ---------------------------------------------------------------------------

/// One point of the Fig. 9 sweep for one app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Point {
    /// (read, write) MB/s of the projected SSD.
    pub bw: (u64, u64),
    /// I/O time normalized to the 1400/600 base case (re-run model).
    pub io_norm: f64,
    /// Overall runtime normalized to the base case (re-run model).
    pub overall_norm: f64,
    /// Overall normalized, via the paper's first-order projection instead
    /// of a re-run (cross-check column).
    pub overall_first_order: f64,
}

/// Fig. 9 series for one app.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Series {
    /// Application.
    pub app: App,
    /// Sweep points, slowest first.
    pub points: Vec<Fig9Point>,
    /// The in-memory Δ reference, normalized to the base case.
    pub in_memory_norm: f64,
}

/// Regenerate Fig. 9: I/O and overall performance with faster storage,
/// normalized to the entry SSD, with the in-memory Δ points.
pub fn fig9() -> Result<Vec<Fig9Series>, NorthupError> {
    App::ALL
        .iter()
        .map(|&app| {
            let base = run_northup_apu(app, catalog::ssd_with_bandwidth(1400, 600))?;
            let base_io = base.report.breakdown.get(Category::FileIo);
            let base_overall = base.makespan();
            let base_device = "ssd-1400-600".to_string();
            let mut points = Vec::new();
            for &(r, w) in &northup::FIG9_SWEEP {
                let run = run_northup_apu(app, catalog::ssd_with_bandwidth(r, w))?;
                let io = run.report.breakdown.get(Category::FileIo);
                // The first-order replay must use the *effective* bandwidth
                // the app sees (CSR-Adaptive's variable buffers degrade it).
                let mut point = northup_hw::BwPoint::from_mb_s(r, w);
                if app == App::Spmv {
                    point.read_bw *= northup_apps::calibration::SPMV_IO_EFFICIENCY;
                    point.write_bw *= northup_apps::calibration::SPMV_IO_EFFICIENCY;
                }
                let fo = northup::project_run(&base.report, &base_device, point);
                points.push(Fig9Point {
                    bw: (r, w),
                    io_norm: io.as_secs_f64() / base_io.as_secs_f64().max(1e-12),
                    overall_norm: run.makespan().as_secs_f64() / base_overall.as_secs_f64(),
                    overall_first_order: fo.overall.as_secs_f64() / base_overall.as_secs_f64(),
                });
            }
            let in_mem = run_in_memory(app)?;
            Ok(Fig9Series {
                app,
                points,
                in_memory_norm: in_mem.makespan().as_secs_f64() / base_overall.as_secs_f64(),
            })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 11
// ---------------------------------------------------------------------------

/// One Fig. 11 bar.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Bar {
    /// Input point (m, n): grid dim on SSD, chunk dim in DRAM.
    pub input: (usize, usize),
    /// GPU queue count.
    pub queues: usize,
    /// Speedup of CPU+GPU stealing over GPU-only at the same queue count.
    pub speedup: f64,
    /// Absolute makespan of the stealing configuration.
    pub absolute: SimDur,
}

/// Regenerate Fig. 11: work-stealing speedups for the three input points
/// and 8/16/32 GPU queues.
pub fn fig11() -> Vec<Fig11Bar> {
    let mut bars = Vec::new();
    for (m, n) in [(16_384usize, 2_048usize), (16_384, 4_096), (32_768, 4_096)] {
        for q in [8usize, 16, 32] {
            bars.push(Fig11Bar {
                input: (m, n),
                queues: q,
                speedup: fig11_speedup(m, n, q),
                absolute: northup_apps::balance::fig11_absolute(m, n, q),
            });
        }
    }
    bars
}

// ---------------------------------------------------------------------------
// Discussion study: explicit management vs transparent caching (§VI)
// ---------------------------------------------------------------------------

/// Result of the §VI caching study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CachingStudy {
    /// One streaming pass over `stream_mb`: (transparent cache, Northup
    /// explicit HDD, cache hit rate).
    pub streaming: (SimDur, SimDur, f64),
    /// `passes` passes over a `reuse_mb` working set that fits the cache:
    /// (transparent cache, Northup explicit with an SSD level, hit rate).
    pub reuse: (SimDur, SimDur, f64),
}

/// Compare the §VI baseline — an SSD acting as a transparent LRU cache over
/// the HDD — against Northup's explicitly managed hierarchy, on a streaming
/// workload (no reuse) and a high-reuse workload.
pub fn caching_study() -> Result<CachingStudy, NorthupError> {
    use northup_hw::CachedDevice;
    use northup_sim::SimTime;

    let block = 1u64 << 20;
    let cache_bytes = 256u64 << 20;

    // --- Streaming: one pass over 1 GiB, no reuse. ---
    let stream_mb = 1024u64;
    let mut cached = CachedDevice::new(
        catalog::ssd_hyperx_predator(),
        catalog::hdd_wd5000(),
        block,
        cache_bytes,
    );
    let mut t = SimTime::ZERO;
    for mb in 0..stream_mb {
        t = cached.read(t, mb << 20, 1 << 20).end;
    }
    let cached_stream = t.since(SimTime::ZERO);
    let stream_hit_rate = cached.stats().hit_rate();

    // Northup explicit: stream straight off the HDD into DRAM, pipelined.
    let rt = Runtime::new(
        presets::apu_two_level(catalog::hdd_wd5000()),
        ExecMode::Modeled,
    )?;
    let file = rt.alloc(stream_mb << 20, rt.tree().root())?;
    let stage = [
        rt.alloc(1 << 20, northup::NodeId(1))?,
        rt.alloc(1 << 20, northup::NodeId(1))?,
    ];
    for mb in 0..stream_mb {
        rt.move_data(stage[(mb % 2) as usize], 0, file, mb << 20, 1 << 20)?;
    }
    let explicit_stream = rt.makespan();

    // --- Reuse: 8 passes over 128 MiB (fits the cache). ---
    let reuse_mb = 128u64;
    let passes = 8u64;
    let mut cached = CachedDevice::new(
        catalog::ssd_hyperx_predator(),
        catalog::hdd_wd5000(),
        block,
        cache_bytes,
    );
    let mut t = SimTime::ZERO;
    for _ in 0..passes {
        for mb in 0..reuse_mb {
            t = cached.read(t, mb << 20, 1 << 20).end;
        }
    }
    let cached_reuse = t.since(SimTime::ZERO);
    let reuse_hit_rate = cached.stats().hit_rate();

    // Northup explicit with an SSD level: HDD -> SSD once, then every pass
    // streams from the SSD (Northup *knows* the working set is reused, so
    // it pins it one level up — no per-block fills, no tag checks).
    let mut b = northup::TreeBuilder::new(catalog::hdd_wd5000());
    let ssd = b.add_child(
        northup::NodeId(0),
        catalog::ssd_hyperx_predator(),
        catalog::dram_dma_link(),
    );
    let dram = b.add_child(ssd, catalog::dram_staging_2gb(), catalog::dram_dma_link());
    b.attach_processor(
        dram,
        northup::ProcessorDesc::new(northup::ProcKind::Gpu, "apu-gpu", 1 << 20),
    );
    let rt = Runtime::new(b.build(), ExecMode::Modeled)?;
    let file = rt.alloc(reuse_mb << 20, rt.tree().root())?;
    let pinned = rt.alloc(reuse_mb << 20, ssd)?;
    rt.move_data(pinned, 0, file, 0, reuse_mb << 20)?;
    let stage = [rt.alloc(1 << 20, dram)?, rt.alloc(1 << 20, dram)?];
    for p in 0..passes {
        for mb in 0..reuse_mb {
            rt.move_data(
                stage[((p * reuse_mb + mb) % 2) as usize],
                0,
                pinned,
                mb << 20,
                1 << 20,
            )?;
        }
    }
    let explicit_reuse = rt.makespan();

    Ok(CachingStudy {
        streaming: (cached_stream, explicit_stream, stream_hit_rate),
        reuse: (cached_reuse, explicit_reuse, reuse_hit_rate),
    })
}

// ---------------------------------------------------------------------------
// Headline
// ---------------------------------------------------------------------------

/// The abstract's headline: per-app gap between Northup (fast SSD) and
/// in-memory processing, and their average (paper: 5%, 15%, 30% -> ~17%).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// Per-app (label, gap) where gap = slowdown - 1.
    pub gaps: Vec<(String, f64)>,
    /// Mean gap.
    pub average: f64,
}

/// Compute the headline number at the fast end of the Fig. 9 sweep
/// (3500/2100 MB/s), where the paper's 5/15/30% gaps are quoted (§V-D).
pub fn headline() -> Result<Headline, NorthupError> {
    let mut gaps = Vec::new();
    for &app in &App::ALL {
        let base = run_in_memory(app)?;
        let fast = run_northup_apu(app, catalog::ssd_with_bandwidth(3500, 2100))?;
        gaps.push((app.label().to_string(), fast.slowdown_vs(&base) - 1.0));
    }
    let average = gaps.iter().map(|(_, g)| g).sum::<f64>() / gaps.len() as f64;
    Ok(Headline { gaps, average })
}

// ---------------------------------------------------------------------------
// Multi-tenant service scenario (northup-sched)
// ---------------------------------------------------------------------------

/// One offered-load point of the multi-tenant service scenario: the same
/// mixed GEMM/HotSpot/SpMV arrival trace replayed under weighted-fair
/// admission and under the strict-FIFO baseline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServiceRow {
    /// Mean virtual inter-arrival gap (µs); smaller ⇒ higher offered load.
    pub mean_gap_us: u64,
    /// Completed jobs per virtual second, weighted-fair admission.
    pub fair_throughput: f64,
    /// Completed jobs per virtual second, strict-FIFO serialization.
    pub fifo_throughput: f64,
    /// Median arrival→finish latency (s), weighted-fair.
    pub p50_latency_s: f64,
    /// 99th-percentile arrival→finish latency (s), weighted-fair.
    pub p99_latency_s: f64,
    /// Rejected / submitted, weighted-fair (backpressure at high load).
    pub rejection_rate: f64,
    /// Chunk-boundary evictions with preemption enabled (weighted-fair).
    pub preemptions: usize,
    /// Mean eviction-request → eviction-effect delay (s) with preemption
    /// enabled — how long a victim's in-flight chunk kept its capacity.
    pub preempt_latency_s: f64,
    /// Completed jobs per virtual second through a mid-trace budget
    /// shrink-and-restore (`resize_budgets`, drain = `Preempt`).
    pub resize_throughput: f64,
    /// Completed jobs per virtual second under the seeded chaos plan
    /// (deterministic transient device faults + retry/backoff).
    pub chaos_throughput: f64,
    /// Stage faults the chaos plan injected across the trace.
    pub chaos_faults: usize,
    /// Bounded-backoff retries the scheduler performed recovering them.
    pub chaos_retries: u64,
    /// Virtual time spent in retry backoff (s).
    pub chaos_backoff_s: f64,
    /// Jobs that hit at least one fault and still completed.
    pub chaos_recovered: usize,
    /// Jobs the chaos run failed outright (retry budget exhausted).
    pub chaos_failed: usize,
}

/// Sweep offered load for a 32-job mixed trace on the two-level APU:
/// throughput (jobs/s), p50/p99 virtual-time latency, and rejection rate
/// vs. the arrival gap, with the strict-FIFO baseline alongside, plus the
/// preemption-enabled run (eviction count and latency) and a live-resize
/// run that halves every budget for the middle of the trace.
pub fn service_scenario() -> Vec<ServiceRow> {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    [500u64, 2_000, 8_000, 32_000]
        .iter()
        .map(|&gap| {
            let cfg = TraceConfig {
                mean_gap_us: gap,
                ..TraceConfig::default()
            };
            let fair = run_service(
                &tree,
                synthetic_trace(&tree, &cfg),
                AdmissionPolicy::WeightedFair,
            )
            .expect("weighted-fair service run");
            let fifo = run_service(&tree, synthetic_trace(&tree, &cfg), AdmissionPolicy::Fifo)
                .expect("fifo service run");
            // Preemption and live resize only matter when the staging
            // level is contended, so those two series run the same mix at
            // paper scale (scale = 1): hotspot holds ~1/4 of DRAM and
            // arrivals overlap, so interactive bursts actually evict.
            let contended = TraceConfig {
                scale: 1,
                ..cfg.clone()
            };
            let preempt = run_service_with(
                &tree,
                synthetic_trace(&tree, &contended),
                SchedulerConfig {
                    preempt: true,
                    ..SchedulerConfig::default()
                },
            )
            .expect("preemption service run");
            // Live reconfiguration: lose half of every memory level for
            // the middle half of the trace span, evicting as needed.
            let resized = {
                let mut sched = JobScheduler::new(
                    tree.clone(),
                    SchedulerConfig {
                        preempt: true,
                        resize_drain: ResizeDrain::Preempt,
                        ..SchedulerConfig::default()
                    },
                );
                for spec in synthetic_trace(&tree, &contended) {
                    sched.submit(spec);
                }
                let full = NodeBudgets::from_tree(&tree, 1.0);
                let span_s = contended.jobs as f64 * gap as f64 * 1e-6;
                sched.resize_budgets(SimTime::from_secs_f64(span_s * 0.25), full.scaled(0.5));
                sched.resize_budgets(SimTime::from_secs_f64(span_s * 0.75), full);
                sched.run().expect("resize service run")
            };
            // Chaos: the same trace under a seeded transient-fault plan
            // (~3% per stage booking); retries and backoff are charged in
            // virtual time, so fault tolerance shows up as a throughput
            // delta against the fault-free fair run.
            let chaos = run_service_with(
                &tree,
                synthetic_trace(&tree, &cfg),
                SchedulerConfig {
                    fault_plan: Some(FaultPlan::new(29).transient_rate(2_000)),
                    ..SchedulerConfig::default()
                },
            )
            .expect("chaos service run");
            ServiceRow {
                mean_gap_us: gap,
                fair_throughput: fair.throughput,
                fifo_throughput: fifo.throughput,
                p50_latency_s: fair.p50_latency.as_secs_f64(),
                p99_latency_s: fair.p99_latency.as_secs_f64(),
                rejection_rate: fair.rejection_rate,
                preemptions: preempt.total_preemptions(),
                preempt_latency_s: preempt.mean_preemption_latency().as_secs_f64(),
                resize_throughput: resized.throughput,
                chaos_throughput: chaos.throughput,
                chaos_faults: chaos.fault_log.len(),
                chaos_retries: chaos.total_retries(),
                chaos_backoff_s: chaos.total_backoff().as_secs_f64(),
                chaos_recovered: chaos.jobs_recovered(),
                chaos_failed: chaos.count(JobState::Failed),
            }
        })
        .collect()
}

/// Fault accounting for one seeded chaos scenario (the CI `chaos` step's
/// artifact row; see DESIGN.md §10).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosSummary {
    /// Scenario name (`transient-recovery` / `persistent-quarantine`).
    pub scenario: String,
    /// Fault-plan seed (fixed — the run must replay bit-identically).
    pub seed: u64,
    /// Jobs submitted / completed / failed / rejected.
    pub jobs: usize,
    /// Jobs that reached `Done`.
    pub done: usize,
    /// Jobs that reached `Failed`.
    pub failed: usize,
    /// Jobs rejected at admission (infeasible after quarantine).
    pub rejected: usize,
    /// Stage faults injected (transient + persistent).
    pub faults: usize,
    /// Bounded-backoff retries performed.
    pub retries: u64,
    /// Virtual time spent backing off (s).
    pub backoff_s: f64,
    /// Fault-driven chain re-routes onto surviving leaves.
    pub reroutes: u64,
    /// Jobs that observed at least one fault and still finished `Done`.
    pub recovered: usize,
    /// Nodes fenced by quarantine (raw ids).
    pub quarantined: Vec<usize>,
    /// Trace makespan in virtual seconds.
    pub makespan_s: f64,
    /// Whether a second same-seed run reproduced the report bit for bit.
    pub replay_identical: bool,
}

/// The two fixed-seed chaos scenarios behind the CI `chaos` gate:
///
/// 1. **transient-recovery** — a transient-only plan over the two-level
///    APU; every job must recover to `Done` through retry/backoff alone.
/// 2. **persistent-quarantine** — a persistent plan scoped to the Fig. 2
///    DRAM leaf; the node must be fenced and the whole trace must still
///    complete on the surviving subtrees.
///
/// Each scenario runs twice and records whether the `SchedReport`
/// reproduced bit-identically (`replay_identical`) — the consumer (the
/// `chaos_report` binary, and CI through it) fails if it did not.
pub fn chaos_accounting() -> Vec<ChaosSummary> {
    let job = |name: String, chunks: u32| {
        JobSpec::new(
            name,
            Reservation::new(),
            JobWork::new(chunks)
                .read(16 << 20)
                .xfer(16 << 20)
                .compute(SimDur::from_millis(1))
                .write(4 << 20),
        )
    };
    let transient = || {
        let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
        let mut sched = JobScheduler::new(
            tree,
            SchedulerConfig {
                fault_plan: Some(FaultPlan::new(42).transient_rate(3_000)),
                ..SchedulerConfig::default()
            },
        );
        for i in 0..12 {
            sched.submit(job(format!("t{i}"), 4));
        }
        sched.run().expect("transient chaos run")
    };
    let persistent = || {
        let tree = presets::asymmetric_fig2();
        let mut sched = JobScheduler::new(
            tree,
            SchedulerConfig {
                fault_plan: Some(
                    FaultPlan::new(7)
                        .persistent_rate(65_536)
                        .on_nodes([northup::NodeId(1)]),
                ),
                quarantine_after: 2,
                ..SchedulerConfig::default()
            },
        );
        for i in 0..8 {
            sched.submit(job(format!("p{i}"), 3));
        }
        sched.run().expect("persistent chaos run")
    };
    let summarize = |scenario: &str, seed: u64, run: &dyn Fn() -> northup_sched::SchedReport| {
        let a = run();
        let b = run();
        ChaosSummary {
            scenario: scenario.to_string(),
            seed,
            jobs: a.jobs.len(),
            done: a.count(JobState::Done),
            failed: a.count(JobState::Failed),
            rejected: a.count(JobState::Rejected),
            faults: a.fault_log.len(),
            retries: a.total_retries(),
            backoff_s: a.total_backoff().as_secs_f64(),
            reroutes: a.jobs.iter().map(|j| u64::from(j.fault.reroutes)).sum(),
            recovered: a.jobs_recovered(),
            quarantined: a.quarantined_nodes().iter().map(|n| n.0).collect(),
            makespan_s: a.makespan.as_secs_f64(),
            replay_identical: format!("{a:?}") == format!("{b:?}"),
        }
    };
    vec![
        summarize("transient-recovery", 42, &transient),
        summarize("persistent-quarantine", 7, &persistent),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_holds() {
        let rows = fig6().unwrap();
        assert_eq!(rows.len(), 3);
        let m = &rows[0];
        let h = &rows[1];
        let s = &rows[2];
        // GEMM least slowed; CSR most slowed on SSD; HDD >= SSD everywhere.
        assert!(m.ssd < h.ssd && h.ssd < s.ssd, "{rows:?}");
        for r in &rows {
            assert!(r.hdd >= r.ssd * 0.999, "{r:?}");
            assert!(r.ssd >= 1.0);
        }
        // GEMM hides I/O nearly completely.
        assert!(m.ssd < 1.15, "{}", m.ssd);
    }

    #[test]
    fn fig6_large_preserves_the_shape() {
        let rows = fig6_large().unwrap();
        assert_eq!(rows.len(), 2);
        // The 32k GEMM is even more compute-bound than 16k: I/O still hides.
        assert!(rows[0].ssd < 1.1, "{rows:?}");
        assert!(rows[1].hdd > rows[1].ssd);
    }

    #[test]
    fn fig7_shares_sum_to_one() {
        for row in fig7().unwrap() {
            let sum = row.cpu + row.gpu + row.setup + row.io + row.xfer;
            assert!((sum - 1.0).abs() < 1e-9, "{row:?}");
        }
    }

    #[test]
    fn fig7_gpu_share_rises_with_ssd() {
        let rows = fig7().unwrap();
        for &app in &App::ALL {
            let hdd = rows
                .iter()
                .find(|r| r.app == app && r.storage == "hdd")
                .unwrap();
            let ssd = rows
                .iter()
                .find(|r| r.app == app && r.storage == "ssd")
                .unwrap();
            assert!(
                ssd.gpu > hdd.gpu,
                "{}: gpu share {} -> {}",
                app.label(),
                hdd.gpu,
                ssd.gpu
            );
        }
    }

    #[test]
    fn fig8_transfer_burden_ordered_like_paper() {
        // Paper: OpenCL transfers 7% / 12% / 33% for matmul / hotspot / csr —
        // the transfer burden grows from matmul to csr. On our disk-backed
        // 3-level tree the file I/O dominates the absolute shares, so the
        // robust paper shape is the transfer time *relative to GPU compute*
        // (bytes moved per unit of useful work), which must increase
        // strictly from matmul to hotspot to csr.
        let rows = fig8().unwrap();
        let ratio: Vec<f64> = rows.iter().map(|r| r.xfer / r.gpu.max(1e-12)).collect();
        assert!(ratio[0] < ratio[1], "{ratio:?}");
        assert!(ratio[1] < ratio[2], "{ratio:?}");
        assert!(rows.iter().all(|r| r.xfer > 0.0));
    }

    #[test]
    fn fig9_monotone_and_bounded_by_in_memory() {
        for series in fig9().unwrap() {
            for w in series.points.windows(2) {
                assert!(w[1].io_norm <= w[0].io_norm + 1e-9, "{series:?}");
                assert!(w[1].overall_norm <= w[0].overall_norm + 1e-9);
                assert!(w[1].overall_first_order <= w[0].overall_first_order + 1e-9);
            }
            assert!(
                (series.points[0].overall_norm - 1.0).abs() < 1e-9,
                "base point is the normalization"
            );
            // In-memory is the performance upper bound (paper §V-D).
            let fastest = series.points.last().unwrap();
            assert!(series.in_memory_norm <= fastest.overall_norm + 1e-9);
        }
    }

    #[test]
    fn fig11_has_nine_bars_and_32_is_best_absolute() {
        let bars = fig11();
        assert_eq!(bars.len(), 9);
        for input in [(16_384usize, 2_048usize), (16_384, 4_096), (32_768, 4_096)] {
            let abs: Vec<SimDur> = bars
                .iter()
                .filter(|b| b.input == input)
                .map(|b| b.absolute)
                .collect();
            assert!(abs[2] < abs[1] && abs[1] < abs[0], "{input:?}: {abs:?}");
        }
    }

    #[test]
    fn caching_study_matches_the_papers_argument() {
        let study = caching_study().unwrap();
        // Streaming (no reuse): the transparent cache pays fill overhead
        // for nothing — Northup's explicit streaming is faster.
        let (cached, explicit, hit) = study.streaming;
        assert_eq!(hit, 0.0, "streaming never reuses a block");
        assert!(
            explicit < cached,
            "explicit {explicit} should beat cache {cached} on streaming"
        );
        // High reuse: both approaches serve from the SSD after the cold
        // pass; explicit management is at least as fast (no per-block
        // fill+re-read overhead).
        let (cached, explicit, hit) = study.reuse;
        assert!(hit > 0.8, "reuse workload mostly hits: {hit}");
        assert!(
            explicit <= cached,
            "explicit {explicit} should match/beat cache {cached} on reuse"
        );
    }

    #[test]
    fn service_scenario_fair_beats_fifo_somewhere() {
        let rows = service_scenario();
        assert_eq!(rows.len(), 4);
        // Acceptance: concurrent admission of non-conflicting jobs yields
        // higher aggregate throughput than strict FIFO serialization.
        assert!(
            rows.iter().any(|r| r.fair_throughput > r.fifo_throughput),
            "{rows:?}"
        );
        for r in &rows {
            assert!((0.0..=1.0).contains(&r.rejection_rate));
            assert!(r.p99_latency_s >= r.p50_latency_s);
            assert!(r.resize_throughput > 0.0, "{r:?}");
            assert!(r.preempt_latency_s >= 0.0);
            assert!(r.chaos_throughput > 0.0, "{r:?}");
            assert!(r.chaos_backoff_s >= 0.0);
        }
        // The chaos series must actually inject and recover somewhere.
        assert!(
            rows.iter()
                .any(|r| r.chaos_faults > 0 && r.chaos_recovered > 0),
            "chaos series never faulted: {rows:?}"
        );
        // At the highest offered load the contended trace must actually
        // exercise chunk-boundary eviction.
        assert!(
            rows.iter().any(|r| r.preemptions > 0),
            "no load point preempted: {rows:?}"
        );
    }

    #[test]
    fn headline_average_is_moderate() {
        let h = headline().unwrap();
        assert_eq!(h.gaps.len(), 3);
        // Paper: 17% average. Our model should land within a loose band.
        assert!((0.02..0.60).contains(&h.average), "{h:?}");
    }
}
