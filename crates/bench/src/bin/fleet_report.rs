//! CI fleet gate: replay a 100k-job mixed-application trace across a
//! 16-shard federation with one scripted shard quarantine, verify the
//! DESIGN.md §11 guarantees, and emit the deterministic fleet report
//! plus a throughput artifact.
//!
//! ```text
//! cargo run --release -p northup-bench --bin fleet_report
//! cargo run --release -p northup-bench --bin fleet_report -- fleet-report.json BENCH_fleet.json
//! ```
//!
//! Exit code is non-zero when the acceptance criteria fail:
//!
//! * two same-seed runs must produce **byte-identical** report JSON;
//! * the fleet capacity invariant must hold (no shard's committed peak
//!   exceeds its budget);
//! * the scripted fault plan on shard 0 must fence a node and force at
//!   least one **cross-shard migration**, and every migrated job that
//!   completed must carry exactly the chunk checksum a single-shard run
//!   of the same uid would have produced (the exactly-once witness);
//! * every chunk fleet-wide ran exactly once.

use northup::{FaultKind, FaultPlan};
use northup_apps::{fleet_trace, service::TraceConfig};
use northup_bench::artifact::Artifact;
use northup_fleet::{chunk_checksum, Fleet, FleetConfig, FleetReport};
use northup_sched::JobState;
use std::time::Instant;

const SHARDS: usize = 16;
const JOBS: usize = 100_000;
const SEED: u64 = 2026_0807;

/// The gate's federation: the standard 16-shard preset with shard 0
/// scripted to fence its staging node early (two persistent faults at
/// the first two decisions, `quarantine_after = 2`). Every other shard
/// stays clean, so migrants always have somewhere to land.
///
/// Fault-aware placement is switched off for the gate: it steers every
/// later job off the sickening leaf after the *first* scripted fault —
/// exactly its purpose, but it keeps the second scripted ordinal from
/// ever firing, and this gate exists to exercise the quarantine →
/// probation → cross-shard-migration path, not the mitigation that
/// avoids it (that satellite has its own scheduler-level tests).
fn config() -> FleetConfig {
    let mut cfg = FleetConfig::preset(SHARDS, SEED);
    cfg.sched.quarantine_after = 2;
    cfg.sched.fault_aware_placement = false;
    let staging = cfg.tree.children(cfg.tree.root())[0];
    cfg.shard_overrides.insert(
        0,
        FaultPlan::new(SEED)
            .script(staging, 0, FaultKind::Persistent)
            .script(staging, 1, FaultKind::Persistent),
    );
    cfg
}

fn trace_cfg() -> TraceConfig {
    TraceConfig {
        jobs: JOBS,
        seed: SEED,
        mean_gap_us: 500,
        scale: 32,
    }
}

fn run_once() -> FleetReport {
    let cfg = config();
    let trace = fleet_trace(&cfg, &trace_cfg());
    let mut fleet = Fleet::new(cfg).unwrap_or_else(|e| {
        eprintln!("fleet_report: bad config: {e}");
        std::process::exit(2);
    });
    for job in trace {
        fleet.submit(job);
    }
    fleet.run().unwrap_or_else(|e| {
        eprintln!("fleet_report: run failed: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args.next();
    let bench_path = args.next();

    let wall = Instant::now();
    let report = run_once();
    let wall_s = wall.elapsed().as_secs_f64();
    let json = report.to_json();

    let replay = run_once();
    let replay_identical = json == replay.to_json();

    println!("== fleet gate: {SHARDS} shards × {JOBS} jobs, seed {SEED} ==");
    println!("{}", report.summary());
    println!(
        "{:>10.2}s wall  {:>10.0} jobs/s  {:>12.0} events/s  rounds {}",
        wall_s,
        JOBS as f64 / wall_s,
        report.events as f64 / wall_s,
        report.rounds,
    );
    for c in &report.per_class {
        println!(
            "  class {:<12} completed {:>7}  p50 {:>10.6}s  p99 {:>10.6}s",
            format!("{:?}", c.class),
            c.completed,
            c.p50.as_secs_f64(),
            c.p99.as_secs_f64(),
        );
    }

    let mut failures = Vec::new();
    if !replay_identical {
        failures.push("report drifted between same-seed runs".to_string());
    }
    if !report.capacity_ok {
        failures.push("fleet capacity invariant violated".to_string());
    }
    if !report.exactly_once() {
        failures.push("a chunk ran twice or was skipped".to_string());
    }
    if report.shards[0].quarantines == 0 {
        failures.push("scripted plan fenced nothing on shard 0".to_string());
    }
    if report.migrations.is_empty() {
        failures.push("quarantine displaced no jobs".to_string());
    }
    let mut migrated_done = 0usize;
    for m in &report.migrations {
        if m.from != 0 {
            failures.push(format!(
                "job {} exported from clean shard {}",
                m.uid, m.from
            ));
        }
        let out = report.outcome(m.uid).expect("migrated uid settles");
        if out.state == JobState::Done {
            migrated_done += 1;
            let single_shard = chunk_checksum(m.uid, 0..out.chunks_done);
            if out.checksum != single_shard || !out.exactly_once {
                failures.push(format!(
                    "job {} checksum {:016x} != single-shard {:016x}",
                    m.uid, out.checksum, single_shard
                ));
            }
        }
    }
    if migrated_done == 0 {
        failures.push("no migrated job completed on a surviving shard".to_string());
    }
    let done = report.count(JobState::Done);
    if done * 10 < JOBS * 9 {
        failures.push(format!("only {done}/{JOBS} jobs done"));
    }

    if let Some(path) = &report_path {
        write_or_die(path, &json);
    }
    if let Some(path) = &bench_path {
        write_or_die(
            path,
            &bench_json(&report, wall_s, replay_identical, migrated_done),
        );
    }

    if failures.is_empty() {
        println!(
            "fleet gate: OK ({} migrations, {migrated_done} completed after migration)",
            report.migrations.len()
        );
    } else {
        for f in &failures {
            eprintln!("fleet gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn write_or_die(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("fleet_report: cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");
}

/// Throughput artifact in the shared `northup-bench-v2` envelope (see
/// [`northup_bench::artifact`]). Wall time and rates vary run to run;
/// everything else is deterministic.
fn bench_json(
    r: &FleetReport,
    wall_s: f64,
    replay_identical: bool,
    migrated_done: usize,
) -> String {
    Artifact::new("fleet")
        .num("seed", r.seed)
        .num("shards", r.shards.len() as u64)
        .num("jobs", r.outcomes.len() as u64)
        .num("done", r.count(JobState::Done) as u64)
        .num("failed", r.count(JobState::Failed) as u64)
        .num("rejected", r.count(JobState::Rejected) as u64)
        .num("events", r.events)
        .num("rounds", u64::from(r.rounds))
        .num("migrations", r.migrations.len() as u64)
        .num("migrated_done", migrated_done as u64)
        .float("makespan_s", r.makespan.as_secs_f64(), 9)
        .float("wall_s", wall_s, 3)
        .float("jobs_per_sec", r.outcomes.len() as f64 / wall_s, 0)
        .float("events_per_sec", r.events as f64 / wall_s, 0)
        .flag("capacity_ok", r.capacity_ok)
        .flag("exactly_once", r.exactly_once())
        .flag("replay_identical", replay_identical)
        .finish()
}
