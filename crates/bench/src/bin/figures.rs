//! Figure-regeneration harness: prints the data series behind every figure
//! in the paper's evaluation section.
//!
//! ```text
//! cargo run -p northup-bench --bin figures            # all figures
//! cargo run -p northup-bench --bin figures -- fig6    # one figure
//! cargo run -p northup-bench --bin figures -- headline
//! ```

use northup_bench as nb;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");

    if want("fig6") {
        print_fig6();
    }
    if want("fig7") {
        print_fig7();
    }
    if want("fig8") {
        print_fig8();
    }
    if want("fig9") {
        print_fig9();
    }
    if want("fig11") {
        print_fig11();
    }
    if want("fig6-large") {
        print_fig6_large();
    }
    if want("cache") {
        print_cache_study();
    }
    if want("extensions") {
        print_extensions();
    }
    if want("headline") {
        print_headline();
    }
}

fn print_fig6_large() {
    println!("== Fig 6 companion: 32k x 32k inputs ==");
    println!("{:<14} {:>12} {:>8} {:>8}", "app", "in-mem", "ssd", "hdd");
    for row in nb::fig6_large().expect("fig6 large") {
        println!(
            "{:<14} {:>12} {:>8.3} {:>8.3}",
            row.app.label(),
            format!("{}", row.in_memory),
            row.ssd,
            row.hdd
        );
    }
    println!();
}

fn print_cache_study() {
    println!("== Discussion (SVI): transparent SSD cache vs explicit Northup management ==");
    let study = nb::caching_study().expect("caching study");
    let (c, e, h) = study.streaming;
    println!(
        "streaming 1 GiB (no reuse):  cache {c}  explicit {e}  (hit rate {:.0}%)",
        100.0 * h
    );
    let (c, e, h) = study.reuse;
    println!(
        "8 passes over 128 MiB:       cache {c}  explicit {e}  (hit rate {:.0}%)",
        100.0 * h
    );
    println!("paper SVI: caching \"may only be efficient for ... a high degree of reuse\"");
    println!();
}

fn print_extensions() {
    use northup::{presets, ExecMode, Runtime};
    use northup_apps::adaptive::{adaptive_stencil_stream, Policy};
    use northup_apps::matmul::matmul_northup_on;
    use northup_apps::subtree::{run_batch, Dispatch};
    use northup_apps::MatmulConfig;
    use northup_hw::catalog;

    println!("== Extensions (paper future work, quantified) ==");

    // SIII-C DAG unfolding headroom.
    let rt = Runtime::new(
        presets::apu_two_level(catalog::ssd_hyperx_predator()),
        ExecMode::Modeled,
    )
    .expect("runtime");
    rt.enable_dag();
    let run = matmul_northup_on(&rt, &MatmulConfig::paper()).expect("gemm");
    let dag = rt.task_dag();
    let (cp, _) = dag.critical_path();
    println!(
        "dag unfolding (gemm/ssd): {} ops, critical path {}, observed {}, headroom {:.2}x, avg parallelism {:.2}",
        dag.len(),
        cp,
        run.makespan(),
        dag.headroom(run.makespan()),
        dag.parallelism()
    );

    // SIII-E adaptive mapping.
    for block in [8usize, 1024] {
        let out = adaptive_stencil_stream(32, block, 8, Policy::Adaptive).expect("adaptive");
        println!(
            "adaptive mapping (block {block}): settled on {} ({:?})",
            out.settled, out.per_device
        );
    }

    // SV-E subtree dispatch.
    let tree = presets::asymmetric_fig2_with(catalog::ssd_hyperx_predator());
    let rr = run_batch(tree.clone(), 60, 512, 256, Dispatch::RoundRobin).expect("rr");
    let ef = run_batch(tree, 60, 512, 256, Dispatch::EarliestFinish).expect("ef");
    println!(
        "asymmetric-subtree batch: round-robin {} vs earliest-finish {} ({:.2}x)",
        rr.run.makespan(),
        ef.run.makespan(),
        rr.run.makespan().as_secs_f64() / ef.run.makespan().as_secs_f64()
    );

    // SVI data-layout study (CSR vs ELL-on-migrate).
    {
        use northup_apps::layout::format_study;
        let rows = format_study(&[
            (
                "uniform",
                northup_sparse::gen::uniform_random(3000, 3000, 16, 1),
            ),
            (
                "powerlaw",
                northup_sparse::gen::powerlaw(3000, 3000, 2048, 0.9, 2),
            ),
        ])
        .expect("format study");
        for r in &rows {
            println!(
                "spmv layout [{}]: padding {:.2}x  csr {}  ell-on-migrate {}  winner {}",
                r.input,
                r.padding,
                r.csr,
                r.ell,
                if r.ell_wins() { "ELL" } else { "CSR" }
            );
        }
    }

    // SIII-E data-parallel leaf split.
    {
        use northup_apps::{hotspot_split_leaf, optimal_gpu_fraction, HotspotConfig};
        let cfg = HotspotConfig {
            block: 4 * 1024,
            ..HotspotConfig::paper()
        };
        let f = optimal_gpu_fraction();
        let gpu_only =
            hotspot_split_leaf(&cfg, 1.0, catalog::ssd_hyperx_predator(), ExecMode::Modeled)
                .expect("gpu only");
        let split = hotspot_split_leaf(&cfg, f, catalog::ssd_hyperx_predator(), ExecMode::Modeled)
            .expect("split");
        println!(
            "leaf split (hotspot): gpu-only {} vs cpu+gpu split@{:.2} {} ({:.2}x)",
            gpu_only.makespan(),
            f,
            split.makespan(),
            gpu_only.makespan().as_secs_f64() / split.makespan().as_secs_f64()
        );
    }
    println!();
}

fn print_fig6() {
    println!("== Fig 6: normalized runtime (slowdown vs in-memory), APU 2-level ==");
    println!("{:<14} {:>12} {:>8} {:>8}", "app", "in-mem", "ssd", "hdd");
    for row in nb::fig6().expect("fig6") {
        println!(
            "{:<14} {:>12} {:>8.3} {:>8.3}",
            row.app.label(),
            format!("{}", row.in_memory),
            row.ssd,
            row.hdd
        );
    }
    println!("paper: matmul ~1.05-1.1 | hotspot ~1.3 (ssd) / 2-2.5 (hdd) | csr ~2.4 / ~2.5");
    println!();
}

fn print_breakdown(rows: &[nb::BreakdownRow]) {
    println!(
        "{:<14} {:<14} {:>6} {:>6} {:>6} {:>6} {:>6} {:>12}",
        "app", "storage", "cpu%", "gpu%", "setup%", "io%", "xfer%", "makespan"
    );
    for r in rows {
        println!(
            "{:<14} {:<14} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>12}",
            r.app.label(),
            r.storage,
            100.0 * r.cpu,
            100.0 * r.gpu,
            100.0 * r.setup,
            100.0 * r.io,
            100.0 * r.xfer,
            format!("{}", r.makespan)
        );
    }
}

fn print_fig7() {
    println!("== Fig 7: execution breakdown, APU 2-level (shares of busy time) ==");
    print_breakdown(&nb::fig7().expect("fig7"));
    println!("paper: gpu share — matmul majority | hotspot 22%(hdd)->59%(ssd) | csr 28%->41%");
    println!();
}

fn print_fig8() {
    println!("== Fig 8: execution breakdown, discrete GPU 3-level (devmem+DRAM+hdd) ==");
    print_breakdown(&nb::fig8().expect("fig8"));
    println!("paper: xfer share — matmul 7% | hotspot 12% | csr 33%");
    println!();
}

fn print_fig9() {
    println!("== Fig 9: faster-storage sweep (normalized to 1400/600 SSD) ==");
    for series in nb::fig9().expect("fig9") {
        println!("--- {} ---", series.app.label());
        println!(
            "{:>12} {:>8} {:>9} {:>12}",
            "(r,w) MB/s", "io", "overall", "first-order"
        );
        for p in &series.points {
            println!(
                "{:>12} {:>8.3} {:>9.3} {:>12.3}",
                format!("{}/{}", p.bw.0, p.bw.1),
                p.io_norm,
                p.overall_norm,
                p.overall_first_order
            );
        }
        println!(
            "{:>12} {:>8} {:>9.3}  (in-memory Δ)",
            "in-mem", "-", series.in_memory_norm
        );
    }
    println!("paper: hotspot/csr gain up to ~65% I/O, ~30% overall across the sweep");
    println!();
}

fn print_fig11() {
    println!("== Fig 11: CPU+GPU work stealing vs GPU-only (HotSpot, APU+SSD) ==");
    println!(
        "{:<16} {:>7} {:>9} {:>12}",
        "input (m,n)", "queues", "speedup", "makespan"
    );
    for bar in nb::fig11() {
        println!(
            "{:<16} {:>7} {:>9.3} {:>12}",
            format!("({},{})", bar.input.0, bar.input.1),
            bar.queues,
            bar.speedup,
            format!("{}", bar.absolute)
        );
    }
    println!("paper: up to ~24% improvement; 32 queues best absolute performance");
    println!();
}

fn print_headline() {
    println!("== Headline: Northup (fast SSD 3500/2100) vs in-memory ==");
    let h = nb::headline().expect("headline");
    for (app, gap) in &h.gaps {
        println!("{app:<14} {:>6.1}% slower", 100.0 * gap);
    }
    println!(
        "average        {:>6.1}%  (paper: 5/15/30% -> ~17%)",
        100.0 * h.average
    );
}
