//! CI event-engine gate: replay seeded single-scheduler traces through
//! the calendar-queue engine, pin the schedules against the digests the
//! pre-rewrite `BinaryHeap` engine produced, and measure sustained
//! events/s on a 10^6-job trace.
//!
//! ```text
//! cargo run --release -p northup-bench --bin sched_engine
//! cargo run --release -p northup-bench --bin sched_engine -- out.json BENCH_sched.json
//! cargo run --release -p northup-bench --bin sched_engine -- --capture
//! ```
//!
//! Exit code is non-zero when the acceptance criteria fail:
//!
//! * schedule digests at 32/1k/100k-job scale (plus a 1k chaos profile
//!   exercising retry, probation, quota, resize, and preemption events)
//!   must equal the **pre-rewrite** engine's digests, pinned below —
//!   the engine rewrite must not move a single event;
//! * two same-seed 10^6-job runs must produce identical digests;
//! * with a committed baseline (second argument), events/s must not drop
//!   more than 20% below the baseline's `events_per_sec`.
//!
//! `--capture` prints the digests without comparing (used once, against
//! the old engine, to pin the constants).

use northup::{FaultPlan, Tree};
use northup_apps::{synthetic_trace, TraceConfig};
use northup_bench::artifact::{field_f64, Artifact};
use northup_sched::{
    report_digest, JobScheduler, JobState, NodeBudgets, Probation, SchedReport, SchedulerConfig,
    TenantQuota,
};
use northup_sim::SimTime;
use std::time::Instant;

const SEED: u64 = 2026_0807;
/// Mean inter-arrival gap (µs of virtual time) keeping one fleet-shard
/// scheduler near saturation: low enough that classes queue and contend,
/// high enough that the queue drains and ~every job completes.
const MEAN_GAP_US: u64 = 7_000;
const PERF_JOBS: usize = 1_000_000;

/// Schedule digests of the pre-rewrite `BinaryHeap` engine (captured
/// with `--capture` at the commit introducing this gate, before the
/// calendar-queue engine replaced it). The rewrite contract is that
/// these never change.
const EXPECT_CLEAN: [(usize, u64); 3] = [
    (32, 0x5888_a823_8b27_8f64),
    (1_000, 0x3d7e_9686_2fc1_8207),
    (100_000, 0x7a1b_3a70_5162_4de3),
];
const EXPECT_CHAOS: (usize, u64) = (1_000, 0x96ef_3603_8234_e5c4);

fn tree() -> Tree {
    northup::presets::fleet_shard()
}

fn trace_cfg(jobs: usize) -> TraceConfig {
    TraceConfig {
        jobs,
        seed: SEED,
        mean_gap_us: MEAN_GAP_US,
        scale: 32,
    }
}

fn clean_cfg() -> SchedulerConfig {
    SchedulerConfig {
        max_queue: 8192,
        ..SchedulerConfig::default()
    }
}

/// The chaos profile: every optional event source switched on, so the
/// digest pins retry (EV_RETRY), probation probes (EV_PROBE), quota
/// wakes (EV_QUOTA), a live resize (EV_RESIZE), and preemption paths on
/// the calendar queue — not just arrivals and stage completions.
fn chaos_cfg() -> SchedulerConfig {
    SchedulerConfig {
        max_queue: 8192,
        preempt: true,
        tenant_quota: Some(TenantQuota::new(48e9, 24e9)),
        fault_plan: Some(FaultPlan::new(SEED).transient_rate(400).persistent_rate(24)),
        quarantine_after: 3,
        probation: Some(Probation::default()),
        ..SchedulerConfig::default()
    }
}

fn run(jobs: usize, cfg: SchedulerConfig, resize: bool) -> SchedReport {
    let tree = tree();
    let trace = synthetic_trace(&tree, &trace_cfg(jobs));
    let mut sched = JobScheduler::new(tree.clone(), cfg);
    for spec in trace {
        sched.submit(spec);
    }
    if resize {
        // One mid-trace shrink-and-recover so EV_RESIZE is on the queue.
        let full = NodeBudgets::from_tree(&tree, 1.0);
        sched.resize_budgets(SimTime::from_secs_f64(0.5), full.scaled(0.6));
        sched.resize_budgets(SimTime::from_secs_f64(1.5), full);
    }
    sched.run().unwrap_or_else(|e| {
        eprintln!("sched_engine: run failed: {e}");
        std::process::exit(2);
    })
}

fn main() {
    let mut args = std::env::args().skip(1);
    let first = args.next();
    let capture = first.as_deref() == Some("--capture");
    let bench_path = if capture { None } else { first };
    let baseline_path = args.next();

    let mut failures = Vec::new();

    println!("== sched engine gate: seed {SEED}, gap {MEAN_GAP_US} µs ==");
    let mut digests = Vec::new();
    for (jobs, expect) in EXPECT_CLEAN {
        let r = run(jobs, clean_cfg(), false);
        let d = report_digest(&r);
        digests.push((format!("clean_{jobs}"), d));
        println!(
            "  clean {jobs:>7} jobs: digest {d:016x}  events {:>9}  done {:>7}  {}",
            r.events,
            r.count(JobState::Done),
            if capture {
                "captured".to_string()
            } else if d == expect {
                "ok".to_string()
            } else {
                format!("DRIFT (pinned {expect:016x})")
            },
        );
        if !capture && d != expect {
            failures.push(format!(
                "schedule digest drift at {jobs}-job scale: {d:016x} != pinned {expect:016x}"
            ));
        }
    }
    {
        let (jobs, expect) = EXPECT_CHAOS;
        let r = run(jobs, chaos_cfg(), true);
        let d = report_digest(&r);
        digests.push((format!("chaos_{jobs}"), d));
        println!(
            "  chaos {jobs:>7} jobs: digest {d:016x}  events {:>9}  faults {:>5}  {}",
            r.events,
            r.fault_log.len(),
            if capture {
                "captured".to_string()
            } else if d == expect {
                "ok".to_string()
            } else {
                format!("DRIFT (pinned {expect:016x})")
            },
        );
        if r.fault_log.is_empty() {
            failures.push("chaos profile injected nothing".to_string());
        }
        if !capture && d != expect {
            failures.push(format!(
                "chaos digest drift at {jobs}-job scale: {d:016x} != pinned {expect:016x}"
            ));
        }
    }
    if capture {
        println!("-- capture mode: pin these in sched_engine.rs --");
        for (name, d) in &digests {
            println!("  {name}: 0x{d:016x}");
        }
        return;
    }

    // The 10^6-job perf run: wall-clock the engine, then replay for
    // determinism at scale.
    let wall = Instant::now();
    let report = run(PERF_JOBS, clean_cfg(), false);
    let wall_s = wall.elapsed().as_secs_f64();
    let digest = report_digest(&report);
    let events_per_sec = report.events as f64 / wall_s;
    println!("{}", report.summary());
    println!(
        "{:>10.2}s wall  {:>10.0} jobs/s  {:>12.0} events/s  {} events  digest {digest:016x}",
        wall_s,
        PERF_JOBS as f64 / wall_s,
        events_per_sec,
        report.events,
    );
    let done = report.count(JobState::Done);
    if done * 10 < PERF_JOBS * 9 {
        failures.push(format!(
            "only {done}/{PERF_JOBS} jobs done — the trace no longer saturates sensibly"
        ));
    }

    let replay = run(PERF_JOBS, clean_cfg(), false);
    if report_digest(&replay) != digest {
        failures.push("10^6-job replay diverged between same-seed runs".to_string());
    }

    if let Some(path) = &baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => match field_f64(&text, "events_per_sec") {
                Some(base) if events_per_sec < base * 0.8 => failures.push(format!(
                    "events/s regression: {events_per_sec:.0} < 80% of baseline {base:.0}"
                )),
                Some(base) => println!(
                    "baseline {base:.0} events/s: {:.1}% of baseline",
                    100.0 * events_per_sec / base
                ),
                None => failures.push(format!("baseline {path} has no events_per_sec")),
            },
            Err(e) => failures.push(format!("cannot read baseline {path}: {e}")),
        }
    }

    if let Some(path) = &bench_path {
        let mut a = Artifact::new("sched-engine")
            .num("seed", SEED)
            .num("jobs", PERF_JOBS as u64)
            .num("done", done as u64)
            .num("rejected", report.count(JobState::Rejected) as u64)
            .num("events", report.events)
            .float("makespan_s", report.makespan.as_secs_f64(), 9)
            .float("wall_s", wall_s, 3)
            .float("jobs_per_sec", PERF_JOBS as f64 / wall_s, 0)
            .float("events_per_sec", events_per_sec, 0)
            .digest("digest_perf", digest);
        for (name, d) in &digests {
            a = a.digest(&format!("digest_{name}"), *d);
        }
        let json = a.flag("replay_identical", true).finish();
        std::fs::write(path, &json).unwrap_or_else(|e| {
            eprintln!("sched_engine: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }

    if failures.is_empty() {
        println!("sched engine gate: OK ({events_per_sec:.0} events/s)");
    } else {
        for f in &failures {
            eprintln!("sched engine gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}
