//! CI overload gate: replay a fixed-seed open-loop overload trace at
//! 1×/1.5×/2× estimated capacity through the SLO feedback controller
//! and certify the tentpole claim — at 2× offered load the controller
//! holds the Interactive p99 inside its SLO while Batch/Normal absorb
//! the shedding and brownout, and the same trace **without** the
//! controller breaches the target (the regression witness).
//!
//! ```text
//! cargo run --release -p northup-bench --bin slo_report
//! cargo run --release -p northup-bench --bin slo_report -- slo-report.json BENCH_slo.json
//! ```
//!
//! Exit code is non-zero when the acceptance criteria fail:
//!
//! * two same-seed runs of the whole study must produce
//!   **byte-identical** report JSON (every control decision is a pure
//!   function of virtual time and seeded state);
//! * at 2×: controller-on Interactive p99 ≤ target, controller-off
//!   Interactive p99 > target, sheds > 0, **zero** Interactive sheds,
//!   brownout engaged (degraded jobs > 0);
//! * at 1×: the controller never sheds (no false positives at capacity);
//! * the autoscale variant's §V-D projection reports the capacity this
//!   trace needs (> 100%) and actually grows the budgets (tier 4);
//! * every arrival is accounted for: done + failed + rejected +
//!   cancelled = submitted, and the typed rejection reasons partition
//!   the rejected count.

use northup::presets;
use northup_apps::{overload_slo, overload_trace, run_service_slo, OverloadConfig};
use northup_bench::artifact::Artifact;
use northup_hw::catalog;
use northup_sched::{JobState, Priority, RejectReason, SchedReport};
use std::fmt::Write as _;
use std::time::Instant;

const JOBS: usize = 320;
const SEED: u64 = 11;
const LOADS: [u32; 3] = [100, 150, 200];
const WITNESS_LOAD: u32 = 200;

fn trace_cfg(load_pct: u32) -> OverloadConfig {
    OverloadConfig {
        jobs: JOBS,
        seed: SEED,
        load_pct,
        ..OverloadConfig::default()
    }
}

struct Study {
    /// Controller-on runs, one per entry of [`LOADS`].
    on: Vec<SchedReport>,
    /// Controller-off witness at [`WITNESS_LOAD`].
    off: SchedReport,
    /// Autoscale variant at [`WITNESS_LOAD`].
    auto: SchedReport,
}

fn run_once() -> Study {
    let tree = presets::apu_two_level(catalog::ssd_hyperx_predator());
    let run = |load, slo| {
        run_service_slo(&tree, overload_trace(&tree, &trace_cfg(load)), slo).unwrap_or_else(|e| {
            eprintln!("slo_report: run failed: {e}");
            std::process::exit(2);
        })
    };
    Study {
        on: LOADS
            .iter()
            .map(|&l| run(l, Some(overload_slo())))
            .collect(),
        off: run(WITNESS_LOAD, None),
        auto: run(WITNESS_LOAD, Some(overload_slo().with_autoscale(400))),
    }
}

fn p99i(r: &SchedReport) -> u64 {
    r.class_p99(Priority::Interactive).0
}

fn sheds_interactive(r: &SchedReport) -> usize {
    r.shed_log
        .iter()
        .filter(|s| s.class == Priority::Interactive)
        .count()
}

fn max_tier(r: &SchedReport) -> u8 {
    r.slo_log.iter().map(|s| s.tier).max().unwrap_or(0)
}

/// Deterministic study JSON — the double-run determinism witness.
fn report_json(s: &Study) -> String {
    let row = |r: &SchedReport| {
        format!(
            "{{\"done\": {}, \"rejected\": {}, \"cancelled\": {}, \"sheds\": {}, \
             \"sheds_interactive\": {}, \"degraded\": {}, \"p99_interactive_ns\": {}, \
             \"p99_normal_ns\": {}, \"p99_batch_ns\": {}, \"max_tier\": {}, \
             \"control_ticks\": {}, \"capacity_needed_pct\": {}, \
             \"reject_reasons\": {{\"queue_full\": {}, \"shed\": {}, \
             \"quota_exceeded\": {}, \"infeasible\": {}}}}}",
            r.count(JobState::Done),
            r.count(JobState::Rejected),
            r.count(JobState::Cancelled),
            r.shed_log.len(),
            sheds_interactive(r),
            r.degraded_jobs(),
            p99i(r),
            r.class_p99(Priority::Normal).0,
            r.class_p99(Priority::Batch).0,
            max_tier(r),
            r.slo_log.len(),
            r.capacity_needed_pct,
            r.rejected_for(RejectReason::QueueFull),
            r.rejected_for(RejectReason::Shed),
            r.rejected_for(RejectReason::QuotaExceeded),
            r.rejected_for(RejectReason::Infeasible),
        )
    };
    let mut out = String::with_capacity(2048);
    out.push_str("{\n  \"schema\": \"northup-slo-report-v1\",\n");
    let _ = writeln!(out, "  \"jobs\": {JOBS},\n  \"seed\": {SEED},");
    let _ = writeln!(
        out,
        "  \"target_interactive_ns\": {},",
        overload_slo().targets[0].0
    );
    out.push_str("  \"controlled\": [\n");
    for (i, (load, r)) in LOADS.iter().zip(s.on.iter()).enumerate() {
        let _ = writeln!(
            out,
            "    {{\"load_pct\": {load}, \"run\": {}}}{}",
            row(r),
            if i + 1 < LOADS.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"uncontrolled\": {{\"load_pct\": {WITNESS_LOAD}, \"run\": {}}},",
        row(&s.off)
    );
    let _ = writeln!(
        out,
        "  \"autoscaled\": {{\"load_pct\": {WITNESS_LOAD}, \"final_scale_pct\": {}, \"run\": {}}}",
        s.auto.slo_log.last().map(|x| x.scale_pct).unwrap_or(100),
        row(&s.auto)
    );
    out.push_str("}\n");
    out
}

fn main() {
    let mut args = std::env::args().skip(1);
    let report_path = args.next();
    let bench_path = args.next();

    let wall = Instant::now();
    let study = run_once();
    let wall_s = wall.elapsed().as_secs_f64();
    let json = report_json(&study);

    let replay_identical = json == report_json(&run_once());

    let target = overload_slo().targets[0].0;
    let overload = &study.on[LOADS.iter().position(|&l| l == WITNESS_LOAD).unwrap()];
    let at_capacity = &study.on[0];

    println!("== slo gate: {JOBS} jobs, seed {SEED}, loads {LOADS:?} ==");
    for (load, r) in LOADS.iter().zip(study.on.iter()) {
        println!(
            "  {load:>3}% on : p99i {:>7.3}ms  done {:>3}  sheds {:>3}  degraded {:>3}  tier {}  needed {}%",
            p99i(r) as f64 / 1e6,
            r.count(JobState::Done),
            r.shed_log.len(),
            r.degraded_jobs(),
            max_tier(r),
            r.capacity_needed_pct,
        );
    }
    println!(
        "  {WITNESS_LOAD:>3}% off: p99i {:>7.3}ms  done {:>3}  (target {:.3}ms)",
        p99i(&study.off) as f64 / 1e6,
        study.off.count(JobState::Done),
        target as f64 / 1e6,
    );
    println!(
        "  {WITNESS_LOAD:>3}% auto: p99i {:>6.3}ms  done {:>3}  scale {}%  needed {}%",
        p99i(&study.auto) as f64 / 1e6,
        study.auto.count(JobState::Done),
        study
            .auto
            .slo_log
            .last()
            .map(|x| x.scale_pct)
            .unwrap_or(100),
        study.auto.capacity_needed_pct,
    );
    println!("  {wall_s:.2}s wall");

    let mut failures = Vec::new();
    if !replay_identical {
        failures.push("report drifted between same-seed runs".to_string());
    }
    if p99i(overload) > target {
        failures.push(format!(
            "controller failed to hold the SLO at {WITNESS_LOAD}%: p99i {} > target {target}",
            p99i(overload)
        ));
    }
    if p99i(&study.off) <= target {
        failures.push(format!(
            "witness run did not breach at {WITNESS_LOAD}%: p99i {} <= target {target}",
            p99i(&study.off)
        ));
    }
    if overload.shed_log.is_empty() {
        failures.push("no shedding at 2x overload".to_string());
    }
    if sheds_interactive(overload) > 0 {
        failures.push("the guaranteed class was shed".to_string());
    }
    if overload.degraded_jobs() == 0 {
        failures.push("brownout never engaged at 2x overload".to_string());
    }
    if !at_capacity.shed_log.is_empty() {
        failures.push("false-positive shedding at 1x capacity".to_string());
    }
    if study.auto.capacity_needed_pct <= 100 {
        failures.push("autoscale projection reported no extra capacity needed".to_string());
    }
    if study
        .auto
        .slo_log
        .last()
        .map(|x| x.scale_pct)
        .unwrap_or(100)
        <= 100
    {
        failures.push("autoscale never grew the budgets (tier 4 unreached)".to_string());
    }
    for (name, r) in [("on", overload), ("off", &study.off), ("auto", &study.auto)] {
        if !r.all_terminal() {
            failures.push(format!("{name}: a job never reached a terminal state"));
        }
        let settled = r.count(JobState::Done)
            + r.count(JobState::Failed)
            + r.count(JobState::Rejected)
            + r.count(JobState::Cancelled);
        if settled != JOBS {
            failures.push(format!("{name}: {settled}/{JOBS} arrivals accounted for"));
        }
        let by_reason = RejectReason::ALL
            .iter()
            .map(|&x| r.rejected_for(x))
            .sum::<usize>();
        if by_reason != r.count(JobState::Rejected) {
            failures.push(format!(
                "{name}: typed reasons cover {by_reason} of {} rejections",
                r.count(JobState::Rejected)
            ));
        }
    }

    if let Some(path) = &report_path {
        write_or_die(path, &json);
    }
    if let Some(path) = &bench_path {
        write_or_die(path, &bench_json(&study, wall_s, replay_identical));
    }

    if failures.is_empty() {
        println!(
            "slo gate: OK (held {:.3}ms <= {:.3}ms at {WITNESS_LOAD}%, witness breached at {:.3}ms)",
            p99i(overload) as f64 / 1e6,
            target as f64 / 1e6,
            p99i(&study.off) as f64 / 1e6,
        );
    } else {
        for f in &failures {
            eprintln!("slo gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}

fn write_or_die(path: &str, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| {
        eprintln!("slo_report: cannot write {path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {path}");
}

/// Throughput artifact in the shared `northup-bench-v2` envelope. Wall
/// time varies run to run; everything else is deterministic.
fn bench_json(s: &Study, wall_s: f64, replay_identical: bool) -> String {
    let target = overload_slo().targets[0].0;
    let overload = &s.on[LOADS.iter().position(|&l| l == WITNESS_LOAD).unwrap()];
    Artifact::new("slo")
        .num("seed", SEED)
        .num("jobs", JOBS as u64)
        .num("witness_load_pct", u64::from(WITNESS_LOAD))
        .num("target_interactive_ns", target)
        .num("p99_interactive_on_ns", p99i(overload))
        .num("p99_interactive_off_ns", p99i(&s.off))
        .num("p99_interactive_auto_ns", p99i(&s.auto))
        .num("done_on", overload.count(JobState::Done) as u64)
        .num("done_off", s.off.count(JobState::Done) as u64)
        .num("done_auto", s.auto.count(JobState::Done) as u64)
        .num("sheds_on", overload.shed_log.len() as u64)
        .num("degraded_on", overload.degraded_jobs() as u64)
        .num("capacity_needed_pct", u64::from(s.auto.capacity_needed_pct))
        .num(
            "final_scale_pct",
            u64::from(s.auto.slo_log.last().map(|x| x.scale_pct).unwrap_or(100)),
        )
        .float("wall_s", wall_s, 3)
        .flag("held_slo", p99i(overload) <= target)
        .flag("witness_breached", p99i(&s.off) > target)
        .flag("no_interactive_shed", sheds_interactive(overload) == 0)
        .flag("replay_identical", replay_identical)
        .finish()
}
