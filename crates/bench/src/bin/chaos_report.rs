//! CI chaos gate: run the fixed-seed fault scenarios, print the fault
//! accounting, and emit it as a JSON artifact.
//!
//! ```text
//! cargo run --release -p northup-bench --bin chaos_report             # print only
//! cargo run --release -p northup-bench --bin chaos_report -- out.json # + artifact
//! ```
//!
//! Exit code is non-zero when the acceptance criteria fail: the
//! transient scenario must recover every job to `Done`, the persistent
//! scenario must quarantine its target node and still complete every
//! job the surviving budget admits, and both must replay bit-identically
//! under the same seed (DESIGN.md §10).

use northup_bench::{chaos_accounting, ChaosSummary};

fn main() {
    let out = std::env::args().nth(1);
    let rows = chaos_accounting();

    println!("== seeded chaos: fault accounting ==");
    println!(
        "{:<22} {:>5} {:>5} {:>7} {:>7} {:>8} {:>10} {:>9} {:>10} {:>7}",
        "scenario",
        "jobs",
        "done",
        "faults",
        "retries",
        "backoff",
        "recovered",
        "reroutes",
        "fenced",
        "replay"
    );
    for r in &rows {
        println!(
            "{:<22} {:>5} {:>5} {:>7} {:>7} {:>7.4}s {:>10} {:>9} {:>10} {:>7}",
            r.scenario,
            r.jobs,
            r.done,
            r.faults,
            r.retries,
            r.backoff_s,
            r.recovered,
            r.reroutes,
            format!("{:?}", r.quarantined),
            if r.replay_identical { "exact" } else { "DRIFT" },
        );
    }

    if let Some(path) = &out {
        std::fs::write(path, to_json(&rows)).unwrap_or_else(|e| {
            eprintln!("chaos_report: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("wrote {path}");
    }

    let mut failures = Vec::new();
    for r in &rows {
        if !r.replay_identical {
            failures.push(format!(
                "{}: report drifted between same-seed runs",
                r.scenario
            ));
        }
        if r.faults == 0 {
            failures.push(format!("{}: plan injected nothing", r.scenario));
        }
    }
    let transient = &rows[0];
    if transient.done != transient.jobs || transient.recovered == 0 {
        failures.push(format!(
            "transient-recovery: {}/{} done, {} recovered — expected full recovery",
            transient.done, transient.jobs, transient.recovered
        ));
    }
    let persistent = &rows[1];
    if persistent.quarantined.is_empty() {
        failures.push("persistent-quarantine: no node was fenced".to_string());
    }
    if persistent.done != persistent.jobs {
        failures.push(format!(
            "persistent-quarantine: {}/{} done — free jobs must finish on survivors",
            persistent.done, persistent.jobs
        ));
    }
    if failures.is_empty() {
        println!("chaos gate: OK");
    } else {
        for f in &failures {
            eprintln!("chaos gate FAILED: {f}");
        }
        std::process::exit(1);
    }
}

/// Hand-rolled JSON (no serde_json in the tree); field set mirrors
/// [`ChaosSummary`].
fn to_json(rows: &[ChaosSummary]) -> String {
    let mut s = String::from("{\n  \"scenarios\": [");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"scenario\": \"{}\", \"seed\": {}, \"jobs\": {}, \"done\": {}, \
             \"failed\": {}, \"rejected\": {}, \"faults\": {}, \"retries\": {}, \
             \"backoff_s\": {:.9}, \"reroutes\": {}, \"recovered\": {}, \
             \"quarantined\": {:?}, \"makespan_s\": {:.9}, \"replay_identical\": {}}}",
            r.scenario,
            r.seed,
            r.jobs,
            r.done,
            r.failed,
            r.rejected,
            r.faults,
            r.retries,
            r.backoff_s,
            r.reroutes,
            r.recovered,
            r.quarantined,
            r.makespan_s,
            r.replay_identical
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}
