//! Hand-rolled bench-artifact JSON (no `serde_json` in the tree).
//!
//! Every committed throughput artifact (`BENCH_sched.json`,
//! `BENCH_fleet.json`) shares one envelope: the `northup-bench-v2`
//! schema with a `suite` discriminator, then suite-specific fields in
//! insertion order. One builder means one escaping/formatting policy and
//! one parser — the CI regression gates read committed baselines back
//! with [`field_f64`] instead of each bin growing its own scanner.

use std::fmt::Write as _;

/// The shared schema tag of all committed bench artifacts.
pub const BENCH_SCHEMA: &str = "northup-bench-v2";

/// Builder for one flat JSON artifact. Field order is insertion order,
/// so same fields + same values ⇒ byte-identical artifacts.
#[derive(Debug, Clone)]
pub struct Artifact {
    body: String,
}

impl Artifact {
    /// Start an artifact in the shared envelope: `schema` is
    /// [`BENCH_SCHEMA`], `suite` names the producing gate.
    pub fn new(suite: &str) -> Self {
        let mut a = Artifact {
            body: String::new(),
        };
        a.body.push_str("{\n");
        a.push_raw("schema", &format!("\"{BENCH_SCHEMA}\""));
        a.push_raw("suite", &format!("\"{suite}\""));
        a
    }

    fn push_raw(&mut self, key: &str, value: &str) {
        if self.body.len() > 2 {
            self.body.push_str(",\n");
        }
        let _ = write!(self.body, "  \"{key}\": {value}");
    }

    /// An unsigned integer field.
    pub fn num(mut self, key: &str, v: u64) -> Self {
        self.push_raw(key, &v.to_string());
        self
    }

    /// A float field with fixed decimals (stable formatting).
    pub fn float(mut self, key: &str, v: f64, decimals: usize) -> Self {
        self.push_raw(key, &format!("{v:.decimals$}"));
        self
    }

    /// A boolean field.
    pub fn flag(mut self, key: &str, v: bool) -> Self {
        self.push_raw(key, if v { "true" } else { "false" });
        self
    }

    /// A hex-formatted 64-bit digest field (quoted, zero-padded).
    pub fn digest(mut self, key: &str, v: u64) -> Self {
        self.push_raw(key, &format!("\"{v:016x}\""));
        self
    }

    /// Close the artifact.
    pub fn finish(mut self) -> String {
        self.body.push_str("\n}\n");
        self.body
    }
}

/// Extract a numeric field from a flat artifact produced by
/// [`Artifact`]: finds `"key":` and parses the following number. Returns
/// `None` when the key is absent or its value is not numeric (quoted
/// digests are not numbers on purpose).
pub fn field_f64(json: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+'))
        .unwrap_or(rest.len());
    if end == 0 {
        return None;
    }
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_round_trips_fields() {
        let json = Artifact::new("sched-engine")
            .num("jobs", 1_000_000)
            .float("wall_s", 1.25, 3)
            .flag("ok", true)
            .digest("digest", 0xdead_beef)
            .finish();
        assert!(json.contains("\"schema\": \"northup-bench-v2\""));
        assert!(json.contains("\"suite\": \"sched-engine\""));
        assert_eq!(field_f64(&json, "jobs"), Some(1_000_000.0));
        assert_eq!(field_f64(&json, "wall_s"), Some(1.25));
        assert_eq!(field_f64(&json, "digest"), None, "digests are quoted");
        assert_eq!(field_f64(&json, "missing"), None);
    }

    #[test]
    fn same_fields_same_bytes() {
        let mk = || Artifact::new("s").num("a", 1).finish();
        assert_eq!(mk(), mk());
    }
}
