//! Storage backends holding the actual bytes behind each tree node.
//!
//! The paper's unified interface hides *how* a node is reached: `alloc()` on
//! a file-type node opens a file and later reads/writes go through
//! seek+read/write syscalls, while memory-type nodes are plain heap buffers
//! and device-type nodes are runtime-managed buffers (Listing 4). We keep
//! that structure:
//!
//! * [`HeapBackend`] — heap `Vec<u8>` blocks (DRAM, HBM, and simulated GPU
//!   device memory all hold real bytes here).
//! * [`FileBackend`] — one *real* file per allocation in a managed scratch
//!   directory, accessed with positioned read/write exactly like the paper's
//!   `file_write(fd, buf, count, offset)` wrapper.
//! * [`PhantomBackend`] — capacity accounting only, for paper-scale modeled
//!   runs (a 32k x 32k float matrix is 4 GiB; we simulate its timing without
//!   materializing it).
//!
//! Every backend enforces its device capacity, which is what drives the
//! runtime's chunk-size decisions ("by examining the capacity and usage, a
//! program can decide the blocking size", §III-B).

use std::collections::HashMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors from storage backends.
#[derive(Debug)]
pub enum HwError {
    /// Allocation would exceed the device capacity.
    OutOfCapacity {
        /// Device name.
        device: String,
        /// Bytes requested.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// The block id is unknown (never allocated or already released).
    InvalidBlock(BlockId),
    /// An access runs past the end of the block.
    OutOfBounds {
        /// Block accessed.
        block: BlockId,
        /// Offset of the access.
        offset: u64,
        /// Length of the access.
        len: u64,
        /// Size of the block.
        size: u64,
    },
    /// Underlying OS I/O failure (file backends).
    Io(io::Error),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::OutOfCapacity {
                device,
                requested,
                available,
            } => write!(
                f,
                "device '{device}' out of capacity: requested {requested} B, available {available} B"
            ),
            HwError::InvalidBlock(b) => write!(f, "invalid block {b:?}"),
            HwError::OutOfBounds {
                block,
                offset,
                len,
                size,
            } => write!(
                f,
                "access [{offset}, {offset}+{len}) out of bounds for block {block:?} of size {size}"
            ),
            HwError::Io(e) => write!(f, "I/O error: {e}"),
        }
    }
}

impl std::error::Error for HwError {}

impl From<io::Error> for HwError {
    fn from(e: io::Error) -> Self {
        HwError::Io(e)
    }
}

/// Result alias for backend operations.
pub type HwResult<T> = Result<T, HwError>;

/// Opaque identifier of one allocation within a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BlockId(pub u64);

/// Common interface of all storage backends.
pub trait StorageBackend: Send {
    /// Allocate `size` bytes; contents read as zero until written.
    fn alloc(&mut self, size: u64) -> HwResult<BlockId>;
    /// Release an allocation.
    fn release(&mut self, block: BlockId) -> HwResult<()>;
    /// Read `dst.len()` bytes starting at `offset`.
    fn read(&mut self, block: BlockId, offset: u64, dst: &mut [u8]) -> HwResult<()>;
    /// Write `src` starting at `offset`.
    fn write(&mut self, block: BlockId, offset: u64, src: &[u8]) -> HwResult<()>;
    /// Size of a block.
    fn size_of(&self, block: BlockId) -> HwResult<u64>;
    /// Bytes currently allocated.
    fn used(&self) -> u64;
    /// Total capacity in bytes.
    fn capacity(&self) -> u64;
    /// Bytes still available.
    fn available(&self) -> u64 {
        self.capacity().saturating_sub(self.used())
    }
}

fn check_bounds(block: BlockId, offset: u64, len: u64, size: u64) -> HwResult<()> {
    if offset.checked_add(len).is_none_or(|end| end > size) {
        return Err(HwError::OutOfBounds {
            block,
            offset,
            len,
            size,
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Heap backend
// ---------------------------------------------------------------------------

/// Heap-buffer backend for memory- and device-class nodes.
pub struct HeapBackend {
    name: String,
    capacity: u64,
    used: u64,
    next: u64,
    blocks: HashMap<u64, Vec<u8>>,
}

impl HeapBackend {
    /// Create a heap backend with the given capacity.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        HeapBackend {
            name: name.into(),
            capacity,
            used: 0,
            next: 0,
            blocks: HashMap::new(),
        }
    }
}

impl StorageBackend for HeapBackend {
    fn alloc(&mut self, size: u64) -> HwResult<BlockId> {
        if size > self.available() {
            return Err(HwError::OutOfCapacity {
                device: self.name.clone(),
                requested: size,
                available: self.available(),
            });
        }
        let id = self.next;
        self.next += 1;
        self.blocks.insert(id, vec![0u8; size as usize]);
        self.used += size;
        Ok(BlockId(id))
    }

    fn release(&mut self, block: BlockId) -> HwResult<()> {
        let buf = self
            .blocks
            .remove(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        self.used -= buf.len() as u64;
        Ok(())
    }

    fn read(&mut self, block: BlockId, offset: u64, dst: &mut [u8]) -> HwResult<()> {
        let buf = self
            .blocks
            .get(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        check_bounds(block, offset, dst.len() as u64, buf.len() as u64)?;
        let o = offset as usize;
        dst.copy_from_slice(&buf[o..o + dst.len()]);
        Ok(())
    }

    fn write(&mut self, block: BlockId, offset: u64, src: &[u8]) -> HwResult<()> {
        let buf = self
            .blocks
            .get_mut(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        check_bounds(block, offset, src.len() as u64, buf.len() as u64)?;
        let o = offset as usize;
        buf[o..o + src.len()].copy_from_slice(src);
        Ok(())
    }

    fn size_of(&self, block: BlockId) -> HwResult<u64> {
        self.blocks
            .get(&block.0)
            .map(|b| b.len() as u64)
            .ok_or(HwError::InvalidBlock(block))
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

// ---------------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------------

static SCRATCH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// File backend for storage-class nodes: one real file per allocation in a
/// private scratch directory (removed on drop). Mirrors the paper's resource
/// management: "Alloc() allocates space on the disk drive by generating a
/// file ... we maintain a list of file names" (§III-D).
pub struct FileBackend {
    name: String,
    dir: PathBuf,
    capacity: u64,
    used: u64,
    next: u64,
    files: HashMap<u64, (File, u64)>,
}

impl FileBackend {
    /// Create a file backend with a fresh scratch directory under the OS
    /// temp dir.
    pub fn new(name: impl Into<String>, capacity: u64) -> HwResult<Self> {
        let name = name.into();
        let id = SCRATCH_COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "northup-{}-{}-{}",
            std::process::id(),
            name.replace(['/', ' '], "_"),
            id
        ));
        fs::create_dir_all(&dir)?;
        Ok(FileBackend {
            name,
            dir,
            capacity,
            used: 0,
            next: 0,
            files: HashMap::new(),
        })
    }

    /// Path of the scratch directory holding the files.
    pub fn scratch_dir(&self) -> &std::path::Path {
        &self.dir
    }
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        self.files.clear(); // close handles before removing
        let _ = fs::remove_dir_all(&self.dir);
    }
}

#[cfg(unix)]
fn read_at(f: &File, offset: u64, dst: &mut [u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.read_exact_at(dst, offset)
}

#[cfg(unix)]
fn write_at(f: &File, offset: u64, src: &[u8]) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    f.write_all_at(src, offset)
}

#[cfg(not(unix))]
fn read_at(mut f: &File, offset: u64, dst: &mut [u8]) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    f.seek(SeekFrom::Start(offset))?;
    f.read_exact(dst)
}

#[cfg(not(unix))]
fn write_at(mut f: &File, offset: u64, src: &[u8]) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    f.seek(SeekFrom::Start(offset))?;
    f.write_all(src)
}

impl StorageBackend for FileBackend {
    fn alloc(&mut self, size: u64) -> HwResult<BlockId> {
        if size > self.available() {
            return Err(HwError::OutOfCapacity {
                device: self.name.clone(),
                requested: size,
                available: self.available(),
            });
        }
        let id = self.next;
        self.next += 1;
        let path = self.dir.join(format!("blk-{id}.bin"));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.set_len(size)?; // sparse: reads back as zeros
        self.files.insert(id, (file, size));
        self.used += size;
        Ok(BlockId(id))
    }

    fn release(&mut self, block: BlockId) -> HwResult<()> {
        let (_, size) = self
            .files
            .remove(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        self.used -= size;
        let _ = fs::remove_file(self.dir.join(format!("blk-{}.bin", block.0)));
        Ok(())
    }

    fn read(&mut self, block: BlockId, offset: u64, dst: &mut [u8]) -> HwResult<()> {
        let (file, size) = self
            .files
            .get(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        check_bounds(block, offset, dst.len() as u64, *size)?;
        read_at(file, offset, dst)?;
        Ok(())
    }

    fn write(&mut self, block: BlockId, offset: u64, src: &[u8]) -> HwResult<()> {
        let (file, size) = self
            .files
            .get(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        check_bounds(block, offset, src.len() as u64, *size)?;
        write_at(file, offset, src)?;
        Ok(())
    }

    fn size_of(&self, block: BlockId) -> HwResult<u64> {
        self.files
            .get(&block.0)
            .map(|(_, s)| *s)
            .ok_or(HwError::InvalidBlock(block))
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

// ---------------------------------------------------------------------------
// Phantom backend
// ---------------------------------------------------------------------------

/// Capacity-accounting-only backend for modeled (paper-scale) runs.
///
/// Reads fill the destination with zeros so modeled runs stay deterministic;
/// writes validate bounds and are otherwise dropped.
pub struct PhantomBackend {
    name: String,
    capacity: u64,
    used: u64,
    next: u64,
    sizes: HashMap<u64, u64>,
}

impl PhantomBackend {
    /// Create a phantom backend with the given capacity.
    pub fn new(name: impl Into<String>, capacity: u64) -> Self {
        PhantomBackend {
            name: name.into(),
            capacity,
            used: 0,
            next: 0,
            sizes: HashMap::new(),
        }
    }
}

impl StorageBackend for PhantomBackend {
    fn alloc(&mut self, size: u64) -> HwResult<BlockId> {
        if size > self.available() {
            return Err(HwError::OutOfCapacity {
                device: self.name.clone(),
                requested: size,
                available: self.available(),
            });
        }
        let id = self.next;
        self.next += 1;
        self.sizes.insert(id, size);
        self.used += size;
        Ok(BlockId(id))
    }

    fn release(&mut self, block: BlockId) -> HwResult<()> {
        let size = self
            .sizes
            .remove(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        self.used -= size;
        Ok(())
    }

    fn read(&mut self, block: BlockId, offset: u64, dst: &mut [u8]) -> HwResult<()> {
        let size = *self
            .sizes
            .get(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        check_bounds(block, offset, dst.len() as u64, size)?;
        dst.fill(0);
        Ok(())
    }

    fn write(&mut self, block: BlockId, offset: u64, src: &[u8]) -> HwResult<()> {
        let size = *self
            .sizes
            .get(&block.0)
            .ok_or(HwError::InvalidBlock(block))?;
        check_bounds(block, offset, src.len() as u64, size)
    }

    fn size_of(&self, block: BlockId) -> HwResult<u64> {
        self.sizes
            .get(&block.0)
            .copied()
            .ok_or(HwError::InvalidBlock(block))
    }

    fn used(&self) -> u64 {
        self.used
    }

    fn capacity(&self) -> u64 {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(b: &mut dyn StorageBackend) {
        let before = b.used();
        let blk = b.alloc(64).unwrap();
        assert_eq!(b.size_of(blk).unwrap(), 64);
        assert_eq!(b.used(), before + 64);
        b.write(blk, 8, &[1, 2, 3, 4]).unwrap();
        let mut out = [0u8; 4];
        b.read(blk, 8, &mut out).unwrap();
        // Phantom backends drop writes; heap/file must round-trip.
        b.release(blk).unwrap();
        assert_eq!(b.used(), before);
    }

    #[test]
    fn heap_roundtrip_and_zero_init() {
        let mut b = HeapBackend::new("dram", 1024);
        let blk = b.alloc(16).unwrap();
        let mut out = [9u8; 16];
        b.read(blk, 0, &mut out).unwrap();
        assert_eq!(out, [0u8; 16], "fresh allocation reads as zeros");
        b.write(blk, 4, &[7, 7]).unwrap();
        b.read(blk, 0, &mut out).unwrap();
        assert_eq!(&out[4..6], &[7, 7]);
        roundtrip(&mut b);
    }

    #[test]
    fn file_backend_uses_real_files() {
        let mut b = FileBackend::new("ssd", 4096).unwrap();
        let blk = b.alloc(128).unwrap();
        let path = b.scratch_dir().join("blk-0.bin");
        assert!(path.exists(), "allocation creates a real file");
        b.write(blk, 100, &[0xAB; 28]).unwrap();
        let mut out = [0u8; 28];
        b.read(blk, 100, &mut out).unwrap();
        assert_eq!(out, [0xAB; 28]);
        // Sparse region reads back zeros.
        let mut head = [1u8; 10];
        b.read(blk, 0, &mut head).unwrap();
        assert_eq!(head, [0u8; 10]);
    }

    #[test]
    fn file_backend_scratch_removed_on_drop() {
        let dir;
        {
            let mut b = FileBackend::new("ssd", 4096).unwrap();
            b.alloc(16).unwrap();
            dir = b.scratch_dir().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "scratch dir cleaned up");
    }

    #[test]
    fn capacity_enforced() {
        let mut b = HeapBackend::new("small", 100);
        let a = b.alloc(60).unwrap();
        match b.alloc(60) {
            Err(HwError::OutOfCapacity {
                requested,
                available,
                ..
            }) => {
                assert_eq!(requested, 60);
                assert_eq!(available, 40);
            }
            other => panic!("expected OutOfCapacity, got {other:?}"),
        }
        b.release(a).unwrap();
        b.alloc(100).unwrap();
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut b = HeapBackend::new("x", 1024);
        let blk = b.alloc(10).unwrap();
        let mut buf = [0u8; 4];
        assert!(matches!(
            b.read(blk, 8, &mut buf),
            Err(HwError::OutOfBounds { .. })
        ));
        assert!(matches!(
            b.write(blk, u64::MAX, &buf),
            Err(HwError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn invalid_block_rejected() {
        let mut b = HeapBackend::new("x", 1024);
        let blk = b.alloc(10).unwrap();
        b.release(blk).unwrap();
        assert!(matches!(b.release(blk), Err(HwError::InvalidBlock(_))));
        let mut buf = [0u8; 1];
        assert!(matches!(
            b.read(blk, 0, &mut buf),
            Err(HwError::InvalidBlock(_))
        ));
    }

    #[test]
    fn phantom_tracks_capacity_without_bytes() {
        let mut b = PhantomBackend::new("huge", 1 << 40); // 1 TiB "allocated"
        let blk = b.alloc(4 << 30).unwrap(); // 4 GiB costs no real memory
        assert_eq!(b.used(), 4 << 30);
        let mut buf = [5u8; 8];
        b.read(blk, 0, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8], "phantom reads are deterministic zeros");
        roundtrip(&mut b);
    }

    #[test]
    fn zero_size_alloc_is_fine() {
        let mut b = HeapBackend::new("x", 10);
        let blk = b.alloc(0).unwrap();
        assert_eq!(b.size_of(blk).unwrap(), 0);
        b.read(blk, 0, &mut []).unwrap();
    }
}
