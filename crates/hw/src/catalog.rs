//! Catalog of device models used by the paper's evaluation (§V-A) plus the
//! emerging-memory devices its discussion motivates (stacked DRAM, NVM).
//!
//! Bandwidths are the figures the paper quotes (SSD 1400/600 MB/s read/write)
//! or first-order public specs for the named parts. Capacities matter only
//! for admission control (how many chunks fit in a staging level), so they
//! are the configured values from §V-A (e.g. the 2 GB DRAM staging buffer).

use crate::spec::{gb_s, gib, mb_s, DeviceKind, DeviceSpec, LinkSpec, StorageClass};
use northup_sim::SimDur;

/// The paper's SATA hard drive (WD5000AAKX, ~125 MB/s sequential, ~8 ms seek).
pub fn hdd_wd5000() -> DeviceSpec {
    DeviceSpec::new(
        "wd5000aakx",
        DeviceKind::Hdd,
        gib(500),
        mb_s(125),
        mb_s(120),
    )
    .with_latency(SimDur::from_millis(8), SimDur::from_millis(8))
}

/// The paper's entry-level PCIe SSD (HyperX Predator: 1400/600 MB/s).
pub fn ssd_hyperx_predator() -> DeviceSpec {
    DeviceSpec::new(
        "hyperx-predator",
        DeviceKind::Ssd,
        gib(480),
        mb_s(1400),
        mb_s(600),
    )
    .with_latency(SimDur::from_micros(60), SimDur::from_micros(30))
}

/// A parametric PCIe SSD with the given (read, write) MB/s — the §V-D
/// projection sweeps these from (1400, 600) to (3500, 2100).
pub fn ssd_with_bandwidth(read_mb_s: u64, write_mb_s: u64) -> DeviceSpec {
    DeviceSpec::new(
        format!("ssd-{read_mb_s}-{write_mb_s}"),
        DeviceKind::Ssd,
        gib(960),
        mb_s(read_mb_s),
        mb_s(write_mb_s),
    )
    .with_latency(SimDur::from_micros(60), SimDur::from_micros(30))
}

/// Optane-class byte-addressable NVM, default-mapped as fast storage.
pub fn nvm_optane_like() -> DeviceSpec {
    DeviceSpec::new("nvm", DeviceKind::Nvm, gib(512), mb_s(2500), mb_s(2000))
        .with_latency(SimDur::from_micros(10), SimDur::from_micros(10))
}

/// The same NVM part remapped into the physical address space (paper §II:
/// "a design can treat the NVM as part of physical address space ... or as
/// fast storage").
pub fn nvm_as_memory() -> DeviceSpec {
    nvm_optane_like().with_class(StorageClass::Memory)
}

/// Host DRAM as configured for out-of-core runs: the 2 GB staging buffer of
/// §V-A, at APU-class shared bandwidth.
pub fn dram_staging_2gb() -> DeviceSpec {
    DeviceSpec::new("dram-staging", DeviceKind::Dram, gib(2), gb_s(20), gb_s(20))
}

/// Host DRAM as configured for in-memory baselines (16 GB, §V-A).
pub fn dram_16gb() -> DeviceSpec {
    DeviceSpec::new("dram", DeviceKind::Dram, gib(16), gb_s(20), gb_s(20))
}

/// Die-stacked DRAM / HBM level for the exascale-node preset (§V-D
/// discussion: stacked memory fills the SRAM-DRAM gap).
pub fn stacked_dram_4gb() -> DeviceSpec {
    DeviceSpec::new("hbm", DeviceKind::StackedDram, gib(4), gb_s(256), gb_s(256))
}

/// FirePro W9100-class device memory (16 GB GDDR5, ~260 GB/s effective).
pub fn gpu_devmem_w9100() -> DeviceSpec {
    DeviceSpec::new(
        "w9100-mem",
        DeviceKind::GpuDevice,
        gib(16),
        gb_s(260),
        gb_s(260),
    )
}

/// A smaller discrete-GPU memory for tighter chunking scenarios.
pub fn gpu_devmem_4gb() -> DeviceSpec {
    DeviceSpec::new(
        "gpu-mem-4g",
        DeviceKind::GpuDevice,
        gib(4),
        gb_s(224),
        gb_s(224),
    )
}

/// PCIe 3.0 x16-class host<->device link (~12 GB/s effective).
pub fn pcie3_x16() -> LinkSpec {
    LinkSpec::new("pcie3-x16", gb_s(12), SimDur::from_micros(20))
}

/// On-package link between CPU and integrated GPU on an APU (shares DRAM;
/// effectively a zero-copy path, modeled as a fat low-latency link).
pub fn apu_onchip_link() -> LinkSpec {
    LinkSpec::new("apu-onchip", gb_s(20), SimDur::from_micros(2))
}

/// A generic DMA link between two host-memory levels.
pub fn dram_dma_link() -> LinkSpec {
    LinkSpec::new("dram-dma", gb_s(18), SimDur::from_micros(5))
}

/// EDR InfiniBand-class network link between cluster nodes (~12.5 GB/s,
/// microsecond latency) — the point-to-point bandwidth §VI compares NVMs
/// against ("bandwidth of these devices is already beginning to eclipse
/// available point-to-point network bandwidth").
pub fn infiniband_edr() -> LinkSpec {
    LinkSpec::new("ib-edr", mb_s(12_500), SimDur::from_micros(2))
}

/// A parallel-file-system volume shared by a cluster (Lustre-class
/// aggregate streaming bandwidth).
pub fn parallel_fs() -> DeviceSpec {
    DeviceSpec::new("pfs", DeviceKind::Hdd, gib(100_000), gb_s(20), gb_s(15))
        .with_latency(SimDur::from_millis(1), SimDur::from_millis(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_ssd_matches_quoted_numbers() {
        let ssd = ssd_hyperx_predator();
        assert_eq!(ssd.read_bw, 1.4e9);
        assert_eq!(ssd.write_bw, 6.0e8);
        assert_eq!(ssd.class, StorageClass::File);
    }

    #[test]
    fn hdd_is_much_slower_than_ssd() {
        assert!(hdd_wd5000().read_bw * 8.0 < ssd_hyperx_predator().read_bw);
    }

    #[test]
    fn projection_sweep_endpoints() {
        let slow = ssd_with_bandwidth(1400, 600);
        let fast = ssd_with_bandwidth(3500, 2100);
        assert_eq!(slow.read_bw, 1.4e9);
        assert_eq!(fast.read_bw, 3.5e9);
        assert_eq!(fast.write_bw, 2.1e9);
    }

    #[test]
    fn nvm_remap_changes_only_class() {
        let s = nvm_optane_like();
        let m = nvm_as_memory();
        assert_eq!(s.kind, m.kind);
        assert_eq!(s.read_bw, m.read_bw);
        assert_ne!(s.class, m.class);
    }

    #[test]
    fn staging_buffer_is_2gb() {
        assert_eq!(dram_staging_2gb().capacity, 2 * 1024 * 1024 * 1024);
    }

    #[test]
    fn memory_hierarchy_orders_by_bandwidth() {
        // hdd < ssd < nvm < dram < hbm/gpu — the spectrum §V-D argues fills in.
        let bws = [
            hdd_wd5000().read_bw,
            ssd_hyperx_predator().read_bw,
            nvm_optane_like().read_bw,
            dram_16gb().read_bw,
            stacked_dram_4gb().read_bw,
        ];
        for w in bws.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
    }
}
