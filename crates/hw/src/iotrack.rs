//! I/O accounting and the first-order storage projection (paper §V-D).
//!
//! The paper: "we develop an emulator capable of performing a first-order
//! projection by keeping track of read/writes issued by application I/Os and
//! considering read/write bandwidths of the storage." [`IoTracker`] is that
//! tracker: every byte moved to or from a device is recorded per device, and
//! [`IoTracker::project`] recomputes the total I/O time under a hypothetical
//! (read, write) bandwidth pair.

use northup_sim::{transfer_time, SimDur};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Direction of a recorded I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dir {
    /// Device → host.
    Read,
    /// Host → device.
    Write,
}

/// Accumulated counters for one device.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoTotals {
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Read operations issued.
    pub read_ops: u64,
    /// Write operations issued.
    pub write_ops: u64,
}

impl IoTotals {
    /// Total bytes in both directions.
    pub fn bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Total operations in both directions.
    pub fn ops(&self) -> u64 {
        self.read_ops + self.write_ops
    }
}

/// A hypothetical device performance point for projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BwPoint {
    /// Read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Per-read-op latency.
    pub read_latency: SimDur,
    /// Per-write-op latency.
    pub write_latency: SimDur,
}

impl BwPoint {
    /// A point from (read, write) MB/s with zero latency.
    pub fn from_mb_s(read: u64, write: u64) -> Self {
        BwPoint {
            read_bw: read as f64 * 1e6,
            write_bw: write as f64 * 1e6,
            read_latency: SimDur::ZERO,
            write_latency: SimDur::ZERO,
        }
    }
}

/// Per-device byte/op accounting.
#[derive(Debug, Clone, Default)]
pub struct IoTracker {
    totals: BTreeMap<String, IoTotals>,
}

impl IoTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        IoTracker::default()
    }

    /// Record one I/O against `device`.
    pub fn record(&mut self, device: &str, dir: Dir, bytes: u64) {
        let t = self.totals.entry(device.to_string()).or_default();
        match dir {
            Dir::Read => {
                t.bytes_read += bytes;
                t.read_ops += 1;
            }
            Dir::Write => {
                t.bytes_written += bytes;
                t.write_ops += 1;
            }
        }
    }

    /// Totals for one device (zero if never seen).
    pub fn totals(&self, device: &str) -> IoTotals {
        self.totals.get(device).copied().unwrap_or_default()
    }

    /// All devices seen, in name order.
    pub fn devices(&self) -> impl Iterator<Item = (&str, IoTotals)> {
        self.totals.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Grand totals across devices.
    pub fn grand_totals(&self) -> IoTotals {
        let mut g = IoTotals::default();
        for t in self.totals.values() {
            g.bytes_read += t.bytes_read;
            g.bytes_written += t.bytes_written;
            g.read_ops += t.read_ops;
            g.write_ops += t.write_ops;
        }
        g
    }

    /// First-order projected I/O time for `device` at a hypothetical
    /// bandwidth point: `Σ latency + bytes/bw` over recorded operations.
    pub fn project(&self, device: &str, point: BwPoint) -> SimDur {
        let t = self.totals(device);
        let read = transfer_time(t.bytes_read, point.read_bw, SimDur::ZERO)
            + point.read_latency * t.read_ops;
        let write = transfer_time(t.bytes_written, point.write_bw, SimDur::ZERO)
            + point.write_latency * t.write_ops;
        read + write
    }

    /// Clear all counters.
    pub fn reset(&mut self) {
        self.totals.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_per_device_and_direction() {
        let mut t = IoTracker::new();
        t.record("ssd", Dir::Read, 100);
        t.record("ssd", Dir::Read, 50);
        t.record("ssd", Dir::Write, 30);
        t.record("hdd", Dir::Write, 7);
        let ssd = t.totals("ssd");
        assert_eq!(ssd.bytes_read, 150);
        assert_eq!(ssd.read_ops, 2);
        assert_eq!(ssd.bytes_written, 30);
        assert_eq!(t.totals("hdd").write_ops, 1);
        assert_eq!(t.totals("nvme"), IoTotals::default());
        assert_eq!(t.grand_totals().bytes(), 187);
    }

    #[test]
    fn projection_matches_first_order_formula() {
        let mut t = IoTracker::new();
        // 1400 MB read + 600 MB written.
        t.record("ssd", Dir::Read, 1_400_000_000);
        t.record("ssd", Dir::Write, 600_000_000);
        // At the paper's entry SSD speeds this is exactly 1s + 1s.
        let base = t.project("ssd", BwPoint::from_mb_s(1400, 600));
        assert!((base.as_secs_f64() - 2.0).abs() < 1e-9);
        // At the fast end of the §V-D sweep I/O shrinks substantially.
        let fast = t.project("ssd", BwPoint::from_mb_s(3500, 2100));
        assert!((fast.as_secs_f64() - (0.4 + 600.0 / 2100.0)).abs() < 1e-6);
        assert!(fast < base);
    }

    #[test]
    fn projection_is_monotone_in_bandwidth() {
        let mut t = IoTracker::new();
        t.record("ssd", Dir::Read, 10_000_000_000);
        t.record("ssd", Dir::Write, 3_000_000_000);
        let mut last = SimDur(u64::MAX);
        for (r, w) in [(1400, 600), (2000, 1000), (2800, 1600), (3500, 2100)] {
            let p = t.project("ssd", BwPoint::from_mb_s(r, w));
            assert!(p < last, "({r},{w}) -> {p} not faster than {last}");
            last = p;
        }
    }

    #[test]
    fn latency_term_scales_with_ops() {
        let mut t = IoTracker::new();
        for _ in 0..10 {
            t.record("hdd", Dir::Read, 0);
        }
        let point = BwPoint {
            read_bw: 1e9,
            write_bw: 1e9,
            read_latency: SimDur::from_millis(8),
            write_latency: SimDur::ZERO,
        };
        assert_eq!(t.project("hdd", point), SimDur::from_millis(80));
    }

    #[test]
    fn reset_clears() {
        let mut t = IoTracker::new();
        t.record("ssd", Dir::Read, 1);
        t.reset();
        assert_eq!(t.grand_totals(), IoTotals::default());
    }
}
