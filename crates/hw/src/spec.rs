//! Device and link specifications.
//!
//! A [`DeviceSpec`] is the static description of one memory or storage node
//! in the Northup tree: what kind of device it is, how it is reached
//! (file-I/O syscalls vs. load/store vs. device DMA — the paper's
//! `storage_type` in Listing 1), its capacity, and its first-order
//! performance parameters (read/write bandwidth and per-operation latency).

use northup_sim::SimDur;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical technology of a memory/storage node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Rotating SATA disk (the paper's WD5000AAKX).
    Hdd,
    /// Flash SSD (the paper's HyperX Predator PCIe SSD).
    Ssd,
    /// Byte-addressable non-volatile memory (Optane-class).
    Nvm,
    /// Commodity DRAM.
    Dram,
    /// Die-stacked / high-bandwidth memory (HBM).
    StackedDram,
    /// Discrete-GPU device memory (GDDR/HBM behind PCIe).
    GpuDevice,
    /// Software-managed on-chip scratchpad (GPU local memory).
    Scratchpad,
}

impl DeviceKind {
    /// The default software interface class for this technology.
    ///
    /// NVM is deliberately ambiguous: the paper (§II, §III-B) stresses that
    /// the *same* physical device can be mapped either as fast storage or as
    /// part of the physical address space, and that Northup's
    /// virtual-to-physical mapping can be reconfigured per use case. Use
    /// [`DeviceSpec::with_class`] to override.
    pub fn default_class(self) -> StorageClass {
        match self {
            DeviceKind::Hdd | DeviceKind::Ssd => StorageClass::File,
            DeviceKind::Nvm => StorageClass::File,
            DeviceKind::Dram | DeviceKind::StackedDram => StorageClass::Memory,
            DeviceKind::GpuDevice | DeviceKind::Scratchpad => StorageClass::Device,
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Hdd => "hdd",
            DeviceKind::Ssd => "ssd",
            DeviceKind::Nvm => "nvm",
            DeviceKind::Dram => "dram",
            DeviceKind::StackedDram => "hbm",
            DeviceKind::GpuDevice => "gpumem",
            DeviceKind::Scratchpad => "lds",
        };
        f.write_str(s)
    }
}

/// How software reaches a node — the dispatch key of the unified data API
/// (paper Listing 4 switches on `FILE_TYPE` vs `MEM_TYPE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageClass {
    /// Reached through file I/O (open/seek/read/write on descriptors).
    File,
    /// Reached through plain loads/stores (malloc'd host memory).
    Memory,
    /// Reached through a device runtime (OpenCL buffers + DMA in the paper).
    Device,
}

impl fmt::Display for StorageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StorageClass::File => "file",
            StorageClass::Memory => "memory",
            StorageClass::Device => "device",
        })
    }
}

/// Static description of one memory/storage device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable name ("hyperx-predator").
    pub name: String,
    /// Technology.
    pub kind: DeviceKind,
    /// Software interface class (dispatch key for data movement).
    pub class: StorageClass,
    /// Usable capacity in bytes.
    pub capacity: u64,
    /// Sequential read bandwidth, bytes/s.
    pub read_bw: f64,
    /// Sequential write bandwidth, bytes/s.
    pub write_bw: f64,
    /// Per-operation read latency (seek/command overhead).
    pub read_latency: SimDur,
    /// Per-operation write latency.
    pub write_latency: SimDur,
}

impl DeviceSpec {
    /// Construct a spec with zero per-op latency.
    pub fn new(
        name: impl Into<String>,
        kind: DeviceKind,
        capacity: u64,
        read_bw: f64,
        write_bw: f64,
    ) -> Self {
        DeviceSpec {
            name: name.into(),
            kind,
            class: kind.default_class(),
            capacity,
            read_bw,
            write_bw,
            read_latency: SimDur::ZERO,
            write_latency: SimDur::ZERO,
        }
    }

    /// Override the storage class (e.g. map NVM as load/store memory instead
    /// of fast storage — the paper's reconfigurable virtual-to-physical
    /// mapping).
    pub fn with_class(mut self, class: StorageClass) -> Self {
        self.class = class;
        self
    }

    /// Set per-operation latencies.
    pub fn with_latency(mut self, read: SimDur, write: SimDur) -> Self {
        self.read_latency = read;
        self.write_latency = write;
        self
    }

    /// Scale both bandwidths by `factor` (used for the variable-buffer-size
    /// effective-bandwidth degradation of CSR-Adaptive I/O, paper §V-B).
    pub fn scaled_bandwidth(mut self, factor: f64) -> Self {
        self.read_bw *= factor;
        self.write_bw *= factor;
        self
    }
}

/// Static description of a link between two levels (PCIe, on-chip bus, DMA).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Human-readable name ("pcie3-x16").
    pub name: String,
    /// Bandwidth in bytes/s (symmetric).
    pub bandwidth: f64,
    /// Per-transfer latency (submission + DMA setup).
    pub latency: SimDur,
}

impl LinkSpec {
    /// Construct a link spec.
    pub fn new(name: impl Into<String>, bandwidth: f64, latency: SimDur) -> Self {
        LinkSpec {
            name: name.into(),
            bandwidth,
            latency,
        }
    }
}

/// Convenience: megabytes/s to bytes/s (the unit the paper quotes SSD specs in).
pub const fn mb_s(mb: u64) -> f64 {
    (mb * 1_000_000) as f64
}

/// Convenience: gigabytes/s to bytes/s.
pub const fn gb_s(gb: u64) -> f64 {
    (gb * 1_000_000_000) as f64
}

/// Convenience: gibibytes to bytes.
pub const fn gib(n: u64) -> u64 {
    n * 1024 * 1024 * 1024
}

/// Convenience: mebibytes to bytes.
pub const fn mib(n: u64) -> u64 {
    n * 1024 * 1024
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_classes_match_paper_usage() {
        assert_eq!(DeviceKind::Hdd.default_class(), StorageClass::File);
        assert_eq!(DeviceKind::Ssd.default_class(), StorageClass::File);
        assert_eq!(DeviceKind::Dram.default_class(), StorageClass::Memory);
        assert_eq!(DeviceKind::GpuDevice.default_class(), StorageClass::Device);
    }

    #[test]
    fn nvm_can_be_remapped_as_memory() {
        let as_storage = DeviceSpec::new("optane", DeviceKind::Nvm, gib(512), gb_s(2), gb_s(1));
        assert_eq!(as_storage.class, StorageClass::File);
        let as_memory = as_storage.with_class(StorageClass::Memory);
        assert_eq!(as_memory.class, StorageClass::Memory);
        assert_eq!(as_memory.kind, DeviceKind::Nvm);
    }

    #[test]
    fn unit_helpers() {
        assert_eq!(mb_s(1400), 1.4e9);
        assert_eq!(gb_s(12), 1.2e10);
        assert_eq!(gib(2), 2_147_483_648);
        assert_eq!(mib(1), 1_048_576);
    }

    #[test]
    fn bandwidth_scaling() {
        let d =
            DeviceSpec::new("ssd", DeviceKind::Ssd, gib(1), 1000.0, 500.0).scaled_bandwidth(0.5);
        assert_eq!(d.read_bw, 500.0);
        assert_eq!(d.write_bw, 250.0);
    }
}
