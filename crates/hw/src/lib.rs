//! # northup-hw — simulated heterogeneous memory & storage devices
//!
//! The paper evaluates Northup on a machine with DRAM, a PCIe SSD, a SATA
//! disk and (for the three-level experiments) discrete-GPU device memory.
//! This crate is that machine's stand-in:
//!
//! * [`spec`] — [`DeviceSpec`]/[`LinkSpec`]: kind, interface class
//!   (file / memory / device — the paper's `storage_type`), capacity, and
//!   first-order read/write bandwidth + latency.
//! * [`catalog`] — the concrete parts from §V-A (WD5000AAKX HDD, HyperX
//!   Predator SSD, W9100 device memory, PCIe link) plus the emerging devices
//!   the discussion motivates (NVM mappable as storage *or* memory, stacked
//!   DRAM).
//! * [`backend`] — where bytes actually live: heap buffers for memory/device
//!   nodes, *real files* (positioned read/write, like the paper's Listing 4
//!   wrapper) for storage nodes, and a capacity-only phantom backend for
//!   paper-scale modeled runs.
//! * [`iotrack`] — per-device byte/op accounting powering the §V-D
//!   faster-storage projection.
//! * [`cache`] — the transparent SSD-over-HDD LRU block cache that §VI
//!   contrasts Northup's explicit management against.
//!
//! Performance (virtual time) is charged by `northup-sim` resources built
//! from these specs; this crate never sleeps or measures wall time.

#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod catalog;
pub mod fault;
pub mod iotrack;
pub mod spec;

pub use backend::{
    BlockId, FileBackend, HeapBackend, HwError, HwResult, PhantomBackend, StorageBackend,
};
pub use cache::{CacheStats, CachedDevice};
pub use fault::{FaultOps, FaultyBackend};
pub use iotrack::{BwPoint, Dir, IoTotals, IoTracker};
pub use spec::{gb_s, gib, mb_s, mib, DeviceKind, DeviceSpec, LinkSpec, StorageClass};
