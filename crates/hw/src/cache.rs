//! Transparent block caching — the alternative Northup argues against.
//!
//! Paper §VI ("Northup for HPC"): "NVMs (e.g., SSDs) are usually treated as
//! a general-purpose caching layer or burst buffer between compute nodes
//! and storages. However, this may only be efficient for a subset of
//! workloads with a high degree of reuse."
//!
//! [`CachedDevice`] models that baseline: a fast device (SSD) acting as an
//! LRU block cache in front of a slow one (HDD), with write-through
//! semantics. Reads hit (fast read) or miss (slow read + fast fill + fast
//! read). The comparison scenarios in `northup-bench` pit it against
//! Northup's explicitly managed two-level hierarchy: streaming workloads
//! thrash the cache and pay the fill overhead for nothing; high-reuse
//! working sets that fit the cache approach pure-SSD speed.

use crate::spec::DeviceSpec;
use northup_sim::{transfer_time, Resource, Served, SimDur, SimTime};
use std::collections::{BTreeMap, HashMap};

/// Hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Block accesses served from the cache.
    pub hits: u64,
    /// Block accesses that went to the slow device.
    pub misses: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; zero when no accesses happened.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU set of cached block indices.
#[derive(Debug, Default)]
struct Lru {
    /// block index -> recency stamp
    map: HashMap<u64, u64>,
    /// recency stamp -> block index (oldest first)
    order: BTreeMap<u64, u64>,
    next_stamp: u64,
}

impl Lru {
    fn touch(&mut self, block: u64) -> bool {
        let present = if let Some(&old) = self.map.get(&block) {
            self.order.remove(&old);
            true
        } else {
            false
        };
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        self.map.insert(block, stamp);
        self.order.insert(stamp, block);
        present
    }

    fn evict_oldest(&mut self) -> Option<u64> {
        let (&stamp, &block) = self.order.iter().next()?;
        self.order.remove(&stamp);
        self.map.remove(&block);
        Some(block)
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// A slow device fronted by a transparent fast LRU block cache.
pub struct CachedDevice {
    fast: DeviceSpec,
    slow: DeviceSpec,
    fast_res: Resource,
    slow_res: Resource,
    block: u64,
    capacity_blocks: usize,
    lru: Lru,
    stats: CacheStats,
}

impl CachedDevice {
    /// Build a cache of `cache_bytes` in `block`-sized units of `fast` in
    /// front of `slow`.
    pub fn new(fast: DeviceSpec, slow: DeviceSpec, block: u64, cache_bytes: u64) -> Self {
        assert!(block > 0);
        let capacity_blocks = (cache_bytes / block).max(1) as usize;
        CachedDevice {
            fast_res: Resource::new(&fast.name, fast.read_bw, SimDur::ZERO),
            slow_res: Resource::new(&slow.name, slow.read_bw, SimDur::ZERO),
            fast,
            slow,
            block,
            capacity_blocks,
            lru: Lru::default(),
            stats: CacheStats::default(),
        }
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Read `[offset, offset + len)`; returns the service interval.
    pub fn read(&mut self, ready: SimTime, offset: u64, len: u64) -> Served {
        let start_blk = offset / self.block;
        let end_blk = (offset + len).div_ceil(self.block).max(start_blk + 1);
        let mut t = ready;
        let first_start = None::<SimTime>;
        let mut first = first_start;
        for blk in start_blk..end_blk {
            let served = if self.lru.touch(blk) {
                self.stats.hits += 1;
                // Hit: fast read of one block.
                let dur = transfer_time(self.block, self.fast.read_bw, self.fast.read_latency);
                self.fast_res.serve_for(t, dur)
            } else {
                self.stats.misses += 1;
                if self.lru.len() > self.capacity_blocks {
                    self.lru.evict_oldest();
                    self.stats.evictions += 1;
                }
                // Miss: slow read, then fill + read on the fast device.
                let slow_dur = transfer_time(self.block, self.slow.read_bw, self.slow.read_latency);
                let s = self.slow_res.serve_for(t, slow_dur);
                let fill_dur =
                    transfer_time(self.block, self.fast.write_bw, self.fast.write_latency)
                        + transfer_time(self.block, self.fast.read_bw, self.fast.read_latency);
                self.fast_res.serve_for(s.end, fill_dur)
            };
            first = first.or(Some(served.start));
            t = served.end;
        }
        Served {
            start: first.unwrap_or(ready),
            end: t,
        }
    }

    /// Write-through write of `[offset, offset + len)`.
    pub fn write(&mut self, ready: SimTime, offset: u64, len: u64) -> Served {
        let start_blk = offset / self.block;
        let end_blk = (offset + len).div_ceil(self.block).max(start_blk + 1);
        let mut t = ready;
        let mut first = None::<SimTime>;
        for blk in start_blk..end_blk {
            if self.lru.touch(blk) {
                self.stats.hits += 1;
            } else {
                self.stats.misses += 1;
                if self.lru.len() > self.capacity_blocks {
                    self.lru.evict_oldest();
                    self.stats.evictions += 1;
                }
            }
            let fast = self.fast_res.serve_for(
                t,
                transfer_time(self.block, self.fast.write_bw, self.fast.write_latency),
            );
            let slow = self.slow_res.serve_for(
                fast.end,
                transfer_time(self.block, self.slow.write_bw, self.slow.write_latency),
            );
            first = first.or(Some(fast.start));
            t = slow.end;
        }
        Served {
            start: first.unwrap_or(ready),
            end: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn dev(cache_mb: u64) -> CachedDevice {
        CachedDevice::new(
            catalog::ssd_hyperx_predator(),
            catalog::hdd_wd5000(),
            1 << 20, // 1 MiB blocks
            cache_mb << 20,
        )
    }

    #[test]
    fn repeated_reads_hit() {
        let mut d = dev(64);
        d.read(SimTime::ZERO, 0, 8 << 20);
        assert_eq!(d.stats().misses, 8);
        let t0 = d.read(SimTime::ZERO, 0, 8 << 20);
        assert_eq!(d.stats().hits, 8);
        // Second pass is fast: pure SSD reads.
        let ssd_time = 8.0 * ((1 << 20) as f64 / 1.4e9 + 60e-6);
        assert!((t0.duration().as_secs_f64() - ssd_time).abs() < 1e-4);
    }

    #[test]
    fn streaming_beyond_capacity_thrashes() {
        let mut d = dev(16); // 16 MiB cache
                             // Two passes over a 64 MiB stream: everything evicted before reuse.
        for _ in 0..2 {
            for mb in 0..64u64 {
                d.read(SimTime::ZERO, mb << 20, 1 << 20);
            }
        }
        let s = d.stats();
        assert_eq!(s.hits, 0, "{s:?}");
        assert_eq!(s.misses, 128);
        assert!(s.evictions > 90);
    }

    #[test]
    fn working_set_within_capacity_converges_to_all_hits() {
        let mut d = dev(64);
        for pass in 0..4 {
            for mb in 0..32u64 {
                d.read(SimTime::ZERO, mb << 20, 1 << 20);
            }
            if pass == 0 {
                assert_eq!(d.stats().misses, 32);
            }
        }
        let s = d.stats();
        assert_eq!(s.misses, 32, "only the cold pass misses");
        assert_eq!(s.hits, 96);
        assert!(s.hit_rate() > 0.74);
    }

    #[test]
    fn lru_evicts_the_oldest_block() {
        let mut d = CachedDevice::new(
            catalog::ssd_hyperx_predator(),
            catalog::hdd_wd5000(),
            1 << 20,
            2 << 20, // 2 blocks
        );
        d.read(SimTime::ZERO, 0 << 20, 1 << 20); // block 0
        d.read(SimTime::ZERO, 1 << 20, 1 << 20); // block 1
        d.read(SimTime::ZERO, 0, 1 << 20); // touch 0 (hit)
        d.read(SimTime::ZERO, 2 << 20, 1 << 20); // block 2: evicts 1
        d.read(SimTime::ZERO, 0, 1 << 20); // 0 still cached
        let s = d.stats();
        assert_eq!(s.hits, 2, "{s:?}");
        d.read(SimTime::ZERO, 1 << 20, 1 << 20); // 1 was evicted: miss
        assert_eq!(d.stats().misses, 4);
    }

    #[test]
    fn miss_costs_more_than_hit() {
        let mut d = dev(64);
        let miss = d.read(SimTime::ZERO, 0, 1 << 20);
        let hit = d.read(miss.end, 0, 1 << 20);
        assert!(miss.duration().as_secs_f64() > 3.0 * hit.duration().as_secs_f64());
    }

    #[test]
    fn writes_are_write_through() {
        let mut d = dev(64);
        let w = d.write(SimTime::ZERO, 0, 1 << 20);
        // Write-through pays the slow device's write bandwidth.
        assert!(w.duration().as_secs_f64() > (1 << 20) as f64 / 125e6 * 0.9);
        // But the block is now cached for reads.
        d.read(w.end, 0, 1 << 20);
        assert_eq!(d.stats().hits, 1);
    }

    #[test]
    fn unaligned_reads_touch_all_spanned_blocks() {
        let mut d = dev(64);
        // 1.5 MiB starting mid-block spans 3 blocks.
        d.read(SimTime::ZERO, 512 << 10, 3 << 19);
        assert_eq!(d.stats().misses, 2);
    }
}
