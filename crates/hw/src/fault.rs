//! Fault injection for storage backends.
//!
//! Real storage fails; a runtime that owns data movement must surface
//! device errors as recoverable `Result`s, never corrupt its accounting,
//! and stay usable afterwards. [`FaultyBackend`] wraps any backend and
//! deterministically fails selected operations so tests can drive those
//! paths.

use crate::backend::{BlockId, HwError, HwResult, StorageBackend};
use std::io;

/// Which operations the injector may fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOps {
    /// Only reads fail.
    Reads,
    /// Only writes fail.
    Writes,
    /// Reads and writes fail.
    ReadsAndWrites,
    /// Allocations fail.
    Allocs,
}

/// A backend that injects an I/O error on every `fail_every`-th matching
/// operation (1-based: `fail_every == 1` fails them all).
pub struct FaultyBackend<B> {
    inner: B,
    ops: FaultOps,
    fail_every: u64,
    counter: u64,
    injected: u64,
}

impl<B: StorageBackend> FaultyBackend<B> {
    /// Wrap `inner`, failing every `fail_every`-th operation of kind `ops`.
    pub fn new(inner: B, ops: FaultOps, fail_every: u64) -> Self {
        FaultyBackend::starting_at(inner, ops, fail_every, 0)
    }

    /// Like [`FaultyBackend::new`], but with the operation counter
    /// pre-advanced to `offset`. A rebuilt arena (e.g. a fabric `reset`)
    /// passes the number of operations already performed so the fault
    /// phase continues across the rebuild instead of restarting — the
    /// combined stream stays identical to one uninterrupted backend.
    pub fn starting_at(inner: B, ops: FaultOps, fail_every: u64, offset: u64) -> Self {
        FaultyBackend {
            inner,
            ops,
            fail_every: fail_every.max(1),
            counter: offset,
            injected: 0,
        }
    }

    /// Number of faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    fn trip(&mut self, matches: bool) -> HwResult<()> {
        if !matches {
            return Ok(());
        }
        self.counter += 1;
        if self.counter.is_multiple_of(self.fail_every) {
            self.injected += 1;
            return Err(HwError::Io(io::Error::other("injected device fault")));
        }
        Ok(())
    }
}

impl<B: StorageBackend> StorageBackend for FaultyBackend<B> {
    fn alloc(&mut self, size: u64) -> HwResult<BlockId> {
        self.trip(self.ops == FaultOps::Allocs)?;
        self.inner.alloc(size)
    }

    fn release(&mut self, block: BlockId) -> HwResult<()> {
        self.inner.release(block)
    }

    fn read(&mut self, block: BlockId, offset: u64, dst: &mut [u8]) -> HwResult<()> {
        self.trip(matches!(
            self.ops,
            FaultOps::Reads | FaultOps::ReadsAndWrites
        ))?;
        self.inner.read(block, offset, dst)
    }

    fn write(&mut self, block: BlockId, offset: u64, src: &[u8]) -> HwResult<()> {
        self.trip(matches!(
            self.ops,
            FaultOps::Writes | FaultOps::ReadsAndWrites
        ))?;
        self.inner.write(block, offset, src)
    }

    fn size_of(&self, block: BlockId) -> HwResult<u64> {
        self.inner.size_of(block)
    }

    fn used(&self) -> u64 {
        self.inner.used()
    }

    fn capacity(&self) -> u64 {
        self.inner.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::HeapBackend;

    #[test]
    fn fails_every_nth_read() {
        let mut b = FaultyBackend::new(HeapBackend::new("x", 1024), FaultOps::Reads, 3);
        let blk = b.alloc(8).unwrap();
        let mut buf = [0u8; 8];
        assert!(b.read(blk, 0, &mut buf).is_ok());
        assert!(b.read(blk, 0, &mut buf).is_ok());
        assert!(matches!(b.read(blk, 0, &mut buf), Err(HwError::Io(_))));
        assert!(b.read(blk, 0, &mut buf).is_ok());
        assert_eq!(b.injected(), 1);
    }

    #[test]
    fn writes_unaffected_by_read_faults() {
        let mut b = FaultyBackend::new(HeapBackend::new("x", 1024), FaultOps::Reads, 1);
        let blk = b.alloc(4).unwrap();
        assert!(b.write(blk, 0, &[1, 2, 3, 4]).is_ok());
        let mut buf = [0u8; 4];
        assert!(b.read(blk, 0, &mut buf).is_err());
    }

    #[test]
    fn alloc_faults_leave_accounting_clean() {
        let mut b = FaultyBackend::new(HeapBackend::new("x", 1024), FaultOps::Allocs, 2);
        let a = b.alloc(100).unwrap();
        assert!(matches!(b.alloc(100), Err(HwError::Io(_))));
        assert_eq!(b.used(), 100, "failed alloc consumed nothing");
        b.release(a).unwrap();
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn starting_at_continues_the_phase_of_an_interrupted_stream() {
        // One uninterrupted backend over 6 reads...
        let mut whole = FaultyBackend::new(HeapBackend::new("x", 1024), FaultOps::Reads, 3);
        let blk = whole.alloc(4).unwrap();
        let mut buf = [0u8; 4];
        let pattern: Vec<bool> = (0..6)
            .map(|_| whole.read(blk, 0, &mut buf).is_err())
            .collect();
        // ...equals 2 reads on a fresh one plus 4 on a rebuilt one that
        // starts at offset 2.
        let mut first = FaultyBackend::new(HeapBackend::new("x", 1024), FaultOps::Reads, 3);
        let blk = first.alloc(4).unwrap();
        let mut split: Vec<bool> = (0..2)
            .map(|_| first.read(blk, 0, &mut buf).is_err())
            .collect();
        let mut second =
            FaultyBackend::starting_at(HeapBackend::new("x", 1024), FaultOps::Reads, 3, 2);
        let blk = second.alloc(4).unwrap();
        split.extend((0..4).map(|_| second.read(blk, 0, &mut buf).is_err()));
        assert_eq!(pattern, split);
    }

    #[test]
    fn fail_every_one_fails_everything_matching() {
        let mut b = FaultyBackend::new(HeapBackend::new("x", 1024), FaultOps::ReadsAndWrites, 1);
        let blk = b.alloc(4).unwrap();
        assert!(b.write(blk, 0, &[0; 4]).is_err());
        let mut buf = [0u8; 4];
        assert!(b.read(blk, 0, &mut buf).is_err());
        assert_eq!(b.injected(), 2);
    }
}
