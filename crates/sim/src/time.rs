//! Virtual time primitives.
//!
//! All performance numbers in the Northup reproduction come from a
//! deterministic virtual clock rather than wall-clock measurement. Time is
//! kept as integer nanoseconds so that runs are bit-for-bit reproducible
//! across machines and across repeated runs (no floating-point accumulation
//! order issues, no `Instant` nondeterminism).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of virtual time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from (possibly fractional) seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime(secs_to_ns(s))
    }

    /// This instant expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`; saturates to zero if `earlier` is later.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDur {
    /// The zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Construct from (possibly fractional) seconds. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDur(secs_to_ns(s))
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDur(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDur(ms.saturating_mul(1_000_000))
    }

    /// This duration expressed in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is exactly zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The fraction `self / total`, or 0 when `total` is zero.
    ///
    /// Used for breakdown percentages (paper Figs. 7 and 8).
    pub fn fraction_of(self, total: SimDur) -> f64 {
        if total.0 == 0 {
            0.0
        } else {
            self.0 as f64 / total.0 as f64
        }
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }
}

fn secs_to_ns(s: f64) -> u64 {
    if !s.is_finite() || s <= 0.0 {
        return 0;
    }
    let ns = s * 1e9;
    if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns.round() as u64
    }
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDur) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, d: SimDur) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, other: SimTime) -> SimDur {
        self.since(other)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDur {
    fn add_assign(&mut self, other: SimDur) {
        *self = *self + other;
    }
}

impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, other: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(other.0))
    }
}

impl SubAssign for SimDur {
    fn sub_assign(&mut self, other: SimDur) {
        *self = *self - other;
    }
}

impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, k: u64) -> SimDur {
        SimDur(self.0.saturating_mul(k))
    }
}

impl Mul<f64> for SimDur {
    type Output = SimDur;
    fn mul(self, k: f64) -> SimDur {
        SimDur::from_secs_f64(self.as_secs_f64() * k)
    }
}

impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, k: u64) -> SimDur {
        SimDur(self.0 / k.max(1))
    }
}

impl Sum for SimDur {
    fn sum<I: Iterator<Item = SimDur>>(iter: I) -> SimDur {
        iter.fold(SimDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else {
            write!(f, "{:.3}us", s * 1e6)
        }
    }
}

/// Time taken to move `bytes` at `bytes_per_sec`, plus a fixed per-op latency.
///
/// This is the first-order transfer model the paper's §V-D emulator uses:
/// `t = latency + bytes / bandwidth`.
pub fn transfer_time(bytes: u64, bytes_per_sec: f64, latency: SimDur) -> SimDur {
    if bytes == 0 {
        return latency;
    }
    if bytes_per_sec <= 0.0 {
        return SimDur(u64::MAX);
    }
    latency + SimDur::from_secs_f64(bytes as f64 / bytes_per_sec)
}

/// Time taken to execute `work` abstract units at `units_per_sec`.
pub fn work_time(work: f64, units_per_sec: f64) -> SimDur {
    if work <= 0.0 {
        return SimDur::ZERO;
    }
    if units_per_sec <= 0.0 {
        return SimDur(u64::MAX);
    }
    SimDur::from_secs_f64(work / units_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs_f64(1.5);
        let d = SimDur::from_secs_f64(0.25);
        assert_eq!((t + d).as_secs_f64(), 1.75);
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(a.since(b), SimDur::ZERO);
        assert_eq!(b.since(a), SimDur::from_secs_f64(1.0));
    }

    #[test]
    fn negative_and_nan_seconds_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::NAN), SimDur::ZERO);
        assert_eq!(SimDur::from_secs_f64(f64::NEG_INFINITY), SimDur::ZERO);
    }

    #[test]
    fn transfer_time_matches_first_order_model() {
        // 1400 MB/s read of 1400 MB takes 1 second plus latency.
        let bw = 1400.0 * 1e6;
        let lat = SimDur::from_micros(100);
        let t = transfer_time(1_400_000_000, bw, lat);
        assert!((t.as_secs_f64() - 1.0001).abs() < 1e-6, "{t}");
    }

    #[test]
    fn transfer_of_zero_bytes_costs_only_latency() {
        let lat = SimDur::from_micros(50);
        assert_eq!(transfer_time(0, 1e9, lat), lat);
    }

    #[test]
    fn zero_bandwidth_is_effectively_infinite_time() {
        assert_eq!(transfer_time(1, 0.0, SimDur::ZERO), SimDur(u64::MAX));
    }

    #[test]
    fn work_time_scales_linearly() {
        let t1 = work_time(1e9, 1e9);
        let t2 = work_time(2e9, 1e9);
        assert_eq!(t1.as_secs_f64(), 1.0);
        assert_eq!(t2.as_secs_f64(), 2.0);
    }

    #[test]
    fn fraction_of_handles_zero_total() {
        assert_eq!(SimDur::from_millis(5).fraction_of(SimDur::ZERO), 0.0);
        let half = SimDur::from_millis(5).fraction_of(SimDur::from_millis(10));
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn durations_sum() {
        let total: SimDur = (1..=4).map(SimDur::from_millis).sum();
        assert_eq!(total, SimDur::from_millis(10));
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDur::from_secs_f64(2.5)), "2.500s");
        assert_eq!(format!("{}", SimDur::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDur::from_micros(7)), "7.000us");
    }
}
