//! # northup-sim — deterministic virtual-time simulation substrate
//!
//! The Northup paper measures wall-clock time on real AMD hardware (APUs, a
//! FirePro W9100, a PCIe SSD and a SATA disk). This reproduction replaces
//! wall-clock measurement with a deterministic virtual-time model so that
//! every figure regenerates identically on any machine:
//!
//! * [`time`] — integer-nanosecond [`SimTime`]/[`SimDur`] and the first-order
//!   transfer/work cost formulas.
//! * [`resource`] — FIFO bandwidth servers ([`Resource`]) and bounded staging
//!   capacity ([`SlotPool`]); compute/I-O overlap emerges from issuing
//!   dependent requests to separate resources.
//! * [`timeline`] — per-category span recording for the paper's execution
//!   breakdowns (Figs. 7 and 8).
//! * [`workers`] — a discrete-event simulation of queue-based CPU+GPU work
//!   stealing (Fig. 10 / Fig. 11).
//!
//! The real data movement and real kernels live in other crates; this crate
//! only answers "when would that have finished on the paper's hardware?".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod resource;
pub mod time;
pub mod timeline;
pub mod workers;

pub use resource::{Resource, ResourceStats, Served, Slot, SlotPool};
pub use time::{transfer_time, work_time, SimDur, SimTime};
pub use timeline::{Breakdown, Category, Span, Timeline};
pub use workers::{deal_round_robin, simulate_stealing, SimWorker, StealOutcome, WorkerStats};
