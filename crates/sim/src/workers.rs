//! Discrete-event simulation of queue-based work stealing.
//!
//! This models the paper's §V-E / Fig. 10 organization: each consumer (a CPU
//! thread or a GPU workgroup) owns a work queue; a consumer pops tasks from
//! the *tail* of its local queue and, when the local queue runs dry, steals
//! from the *head* of a victim's queue. All tasks exist up front (they are
//! the rows of blocks of one staged chunk), so the simulation is a simple
//! deterministic event loop over "which worker becomes free next".
//!
//! Worker heterogeneity is expressed with a per-worker service rate: GPU
//! workgroups complete rows of blocks faster than CPU threads, which is what
//! makes stealing profitable (paper: "GPU workgroups may process tasks faster
//! than CPU threads, so GPU workgroups may steal ... from a CPU queue").

use crate::time::{SimDur, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Configuration of one simulated consumer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimWorker {
    /// Work units completed per second.
    pub rate: f64,
    /// Queue indices this worker may steal from when its own queue is empty.
    /// An empty list disables stealing for this worker.
    pub victims: Vec<usize>,
    /// Label for reports ("gpu-wg-3", "cpu-1").
    pub label: String,
}

impl SimWorker {
    /// Convenience constructor.
    pub fn new(label: impl Into<String>, rate: f64, victims: Vec<usize>) -> Self {
        SimWorker {
            rate,
            victims,
            label: label.into(),
        }
    }
}

/// Per-worker outcome statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerStats {
    /// Total time spent executing tasks.
    pub busy: SimDur,
    /// Tasks executed from the local queue.
    pub local_tasks: u64,
    /// Tasks executed after stealing them.
    pub stolen_tasks: u64,
    /// Time this worker retired (found no work anywhere).
    pub finished_at: SimTime,
}

/// Result of a stealing simulation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StealOutcome {
    /// Completion time of the last task.
    pub makespan: SimDur,
    /// Per-worker statistics, parallel to the worker list.
    pub per_worker: Vec<WorkerStats>,
    /// Total successful steals.
    pub steals: u64,
    /// Total tasks executed.
    pub tasks: u64,
}

impl StealOutcome {
    /// Sum of all executed work time across workers.
    pub fn total_busy(&self) -> SimDur {
        self.per_worker.iter().map(|w| w.busy).sum()
    }
}

/// Simulate work stealing over `queues` of task costs (work units), one queue
/// per worker (`queues.len()` must equal `workers.len()`).
///
/// Local pops take the queue tail; steals take a victim's head, matching the
/// lock-free deque discipline in the paper (\[24\]) and in
/// `northup-exec`'s Chase-Lev implementation. The victim chosen is the one
/// with the most remaining tasks (ties broken by lowest index) — a
/// "steal-from-richest" heuristic that keeps the simulation deterministic.
///
/// # Panics
///
/// Panics if lengths mismatch, a victim index is out of range, or a worker
/// rate is not strictly positive.
pub fn simulate_stealing(workers: &[SimWorker], queues: Vec<VecDeque<f64>>) -> StealOutcome {
    assert_eq!(
        workers.len(),
        queues.len(),
        "one queue per worker (got {} workers, {} queues)",
        workers.len(),
        queues.len()
    );
    for w in workers {
        assert!(w.rate > 0.0, "worker {} has non-positive rate", w.label);
        for &v in &w.victims {
            assert!(v < queues.len(), "victim index {v} out of range");
        }
    }

    let mut queues = queues;
    let mut stats = vec![WorkerStats::default(); workers.len()];
    let mut steals = 0u64;
    let mut tasks = 0u64;
    let mut makespan = SimTime::ZERO;

    // Min-heap of (next-free time, worker index).
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = (0..workers.len())
        .map(|i| Reverse((SimTime::ZERO, i)))
        .collect();

    while let Some(Reverse((now, w))) = heap.pop() {
        // Grab work: local tail first, then steal a victim's head.
        let (work, stolen) = if let Some(work) = queues[w].pop_back() {
            (Some(work), false)
        } else {
            let victim = workers[w]
                .victims
                .iter()
                .copied()
                .filter(|&v| !queues[v].is_empty())
                .max_by_key(|&v| (queues[v].len(), Reverse(v)));
            match victim {
                Some(v) => (queues[v].pop_front(), true),
                None => (None, false),
            }
        };

        match work {
            Some(work) => {
                let dur = SimDur::from_secs_f64(work / workers[w].rate);
                let end = now + dur;
                stats[w].busy += dur;
                if stolen {
                    stats[w].stolen_tasks += 1;
                    steals += 1;
                } else {
                    stats[w].local_tasks += 1;
                }
                tasks += 1;
                makespan = makespan.max(end);
                heap.push(Reverse((end, w)));
            }
            None => {
                // No work anywhere this worker can reach: retire. Tasks are
                // never spawned mid-run, so no new work can appear for it.
                stats[w].finished_at = now;
            }
        }
    }

    StealOutcome {
        makespan: makespan.since(SimTime::ZERO),
        per_worker: stats,
        steals,
        tasks,
    }
}

/// Build queues by dealing `costs` round-robin across `n_queues` queues,
/// mirroring how the runtime assigns rows of blocks to leaf queues
/// (paper Fig. 10: "the task of each row of blocks is assigned to one queue").
pub fn deal_round_robin(costs: &[f64], n_queues: usize) -> Vec<VecDeque<f64>> {
    let n = n_queues.max(1);
    let mut queues = vec![VecDeque::new(); n];
    for (i, &c) in costs.iter().enumerate() {
        queues[i % n].push_back(c);
    }
    queues
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize, work: f64) -> Vec<f64> {
        vec![work; n]
    }

    #[test]
    fn executes_every_task_exactly_once() {
        let workers = vec![
            SimWorker::new("a", 1.0, vec![1]),
            SimWorker::new("b", 2.0, vec![0]),
        ];
        let queues = deal_round_robin(&uniform(17, 3.0), 2);
        let out = simulate_stealing(&workers, queues);
        assert_eq!(out.tasks, 17);
        let executed: u64 = out
            .per_worker
            .iter()
            .map(|w| w.local_tasks + w.stolen_tasks)
            .sum();
        assert_eq!(executed, 17);
        // Conservation of work: total busy equals total work / per-worker rates.
        assert!(out.total_busy() > SimDur::ZERO);
    }

    #[test]
    fn stealing_beats_no_stealing_under_imbalance() {
        // All work starts in the slow worker's queue; a fast worker that can
        // steal should cut the makespan dramatically.
        let costs = uniform(64, 1.0);
        let mut queues = vec![VecDeque::new(), VecDeque::new()];
        for &c in &costs {
            queues[0].push_back(c);
        }

        let no_steal = vec![
            SimWorker::new("slow", 1.0, vec![]),
            SimWorker::new("fast", 8.0, vec![]),
        ];
        let base = simulate_stealing(&no_steal, queues.clone());

        let with_steal = vec![
            SimWorker::new("slow", 1.0, vec![]),
            SimWorker::new("fast", 8.0, vec![0]),
        ];
        let balanced = simulate_stealing(&with_steal, queues);

        assert!(balanced.steals > 0);
        assert!(
            balanced.makespan.as_secs_f64() < base.makespan.as_secs_f64() / 4.0,
            "stealing {} vs baseline {}",
            balanced.makespan,
            base.makespan
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let workers: Vec<SimWorker> = (0..6)
            .map(|i| {
                SimWorker::new(
                    format!("w{i}"),
                    1.0 + i as f64,
                    (0..6).filter(|&v| v != i).collect(),
                )
            })
            .collect();
        let costs: Vec<f64> = (0..200).map(|i| 1.0 + (i % 7) as f64).collect();
        let a = simulate_stealing(&workers, deal_round_robin(&costs, 6));
        let b = simulate_stealing(&workers, deal_round_robin(&costs, 6));
        assert_eq!(a, b);
    }

    #[test]
    fn faster_worker_takes_more_tasks() {
        let workers = vec![
            SimWorker::new("cpu", 1.0, vec![1]),
            SimWorker::new("gpu", 4.0, vec![0]),
        ];
        let out = simulate_stealing(&workers, deal_round_robin(&uniform(100, 1.0), 2));
        let cpu = out.per_worker[0].local_tasks + out.per_worker[0].stolen_tasks;
        let gpu = out.per_worker[1].local_tasks + out.per_worker[1].stolen_tasks;
        assert!(gpu > cpu * 2, "gpu={gpu} cpu={cpu}");
    }

    #[test]
    fn victim_restriction_is_honored() {
        // Worker 1 may not steal; all its idle time is wasted.
        let workers = vec![
            SimWorker::new("loaded", 1.0, vec![]),
            SimWorker::new("idle", 100.0, vec![]),
        ];
        let mut queues = vec![VecDeque::new(), VecDeque::new()];
        queues[0].extend([1.0, 1.0, 1.0, 1.0]);
        let out = simulate_stealing(&workers, queues);
        assert_eq!(out.steals, 0);
        assert_eq!(out.per_worker[1].local_tasks, 0);
        assert!((out.makespan.as_secs_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn makespan_bounds_hold() {
        // makespan >= total_work / sum(rates) (perfect balance)
        // makespan <= total_work / min(rate)  (worst case single worker)
        let workers = vec![
            SimWorker::new("a", 2.0, vec![1, 2]),
            SimWorker::new("b", 3.0, vec![0, 2]),
            SimWorker::new("c", 5.0, vec![0, 1]),
        ];
        let costs: Vec<f64> = (0..50).map(|i| (i % 5) as f64 + 0.5).collect();
        let total: f64 = costs.iter().sum();
        let out = simulate_stealing(&workers, deal_round_robin(&costs, 3));
        let lower = total / (2.0 + 3.0 + 5.0);
        let upper = total / 2.0;
        let m = out.makespan.as_secs_f64();
        assert!(m >= lower - 1e-9, "m={m} lower={lower}");
        assert!(m <= upper + 1e-9, "m={m} upper={upper}");
    }

    #[test]
    #[should_panic(expected = "one queue per worker")]
    fn mismatched_lengths_panic() {
        let workers = vec![SimWorker::new("a", 1.0, vec![])];
        simulate_stealing(&workers, vec![VecDeque::new(), VecDeque::new()]);
    }

    #[test]
    fn round_robin_deal_covers_all() {
        let qs = deal_round_robin(&[1.0, 2.0, 3.0, 4.0, 5.0], 2);
        assert_eq!(qs[0].len() + qs[1].len(), 5);
        assert_eq!(qs[0], VecDeque::from(vec![1.0, 3.0, 5.0]));
    }
}
