//! Execution-breakdown recording.
//!
//! The paper's Figs. 7 and 8 break total Northup execution time into CPU
//! compute, GPU compute, buffer setup, and data transfers / I/O. The
//! [`Timeline`] records every scheduled span with a [`Category`] and
//! aggregates per-category busy time plus the overall makespan.

use crate::time::{SimDur, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Activity categories matching the paper's breakdown figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Leaf computation on a CPU (including CSR-Adaptive row binning).
    CpuCompute,
    /// Leaf computation on a GPU.
    GpuCompute,
    /// Buffer allocation / release / bookkeeping ("buffer setup").
    BufferSetup,
    /// File-storage I/O: open/read/write/close against HDD/SSD/NVM-as-storage.
    FileIo,
    /// Host<->device transfers over a link (the paper's "OpenCL transfers").
    DeviceTransfer,
    /// Memory-to-memory copies within a level (memcpy / DMA between DRAMs).
    MemCopy,
    /// Anything else (runtime overhead, tree lookups, queue management).
    Runtime,
}

impl Category {
    /// All categories in report order.
    pub const ALL: [Category; 7] = [
        Category::CpuCompute,
        Category::GpuCompute,
        Category::BufferSetup,
        Category::FileIo,
        Category::DeviceTransfer,
        Category::MemCopy,
        Category::Runtime,
    ];

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            Category::CpuCompute => "cpu",
            Category::GpuCompute => "gpu",
            Category::BufferSetup => "setup",
            Category::FileIo => "io",
            Category::DeviceTransfer => "xfer",
            Category::MemCopy => "memcpy",
            Category::Runtime => "runtime",
        }
    }

    fn index(self) -> usize {
        match self {
            Category::CpuCompute => 0,
            Category::GpuCompute => 1,
            Category::BufferSetup => 2,
            Category::FileIo => 3,
            Category::DeviceTransfer => 4,
            Category::MemCopy => 5,
            Category::Runtime => 6,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One recorded span of activity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Start of the activity in virtual time.
    pub start: SimTime,
    /// End of the activity in virtual time.
    pub end: SimTime,
    /// What kind of activity this was.
    pub category: Category,
    /// Human-readable label ("load chunk (2,3)").
    pub label: String,
}

impl Span {
    /// Length of the span.
    pub fn duration(&self) -> SimDur {
        self.end.since(self.start)
    }
}

/// Aggregated per-category busy time plus the makespan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Busy time per category, indexed by [`Category::ALL`] order.
    pub busy: [SimDur; 7],
    /// Latest end time over all spans.
    pub makespan: SimDur,
    /// Number of recorded spans.
    pub spans: usize,
}

impl Breakdown {
    /// Busy time for one category.
    pub fn get(&self, c: Category) -> SimDur {
        self.busy[c.index()]
    }

    /// Sum of all per-category busy times. Can exceed the makespan when
    /// activities overlap (e.g. I/O hidden behind GPU compute).
    pub fn total_busy(&self) -> SimDur {
        self.busy.iter().copied().sum()
    }

    /// Fraction of summed busy time attributed to `c`.
    ///
    /// This is the quantity plotted in the paper's Figs. 7 and 8.
    pub fn share(&self, c: Category) -> f64 {
        self.get(c).fraction_of(self.total_busy())
    }

    /// Combined compute share (CPU + GPU).
    pub fn compute(&self) -> SimDur {
        self.get(Category::CpuCompute) + self.get(Category::GpuCompute)
    }

    /// Combined data-movement time (file I/O + device transfers + memcpy).
    pub fn movement(&self) -> SimDur {
        self.get(Category::FileIo)
            + self.get(Category::DeviceTransfer)
            + self.get(Category::MemCopy)
    }
}

/// Records activity spans and computes breakdowns.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    spans: Vec<Span>,
    keep_spans: bool,
    busy: [SimDur; 7],
    makespan: SimTime,
    count: usize,
}

impl Timeline {
    /// A timeline that aggregates only (does not retain individual spans).
    pub fn new() -> Self {
        Timeline::default()
    }

    /// A timeline that additionally retains every span for trace export.
    pub fn with_spans() -> Self {
        Timeline {
            keep_spans: true,
            ..Timeline::default()
        }
    }

    /// Record an activity span.
    pub fn record(
        &mut self,
        start: SimTime,
        end: SimTime,
        category: Category,
        label: impl Into<String>,
    ) {
        let end = end.max(start);
        self.busy[category.index()] += end.since(start);
        self.makespan = self.makespan.max(end);
        self.count += 1;
        if self.keep_spans {
            self.spans.push(Span {
                start,
                end,
                category,
                label: label.into(),
            });
        }
    }

    /// The latest end time recorded so far.
    pub fn makespan(&self) -> SimDur {
        self.makespan.since(SimTime::ZERO)
    }

    /// Retained spans (empty unless constructed with [`with_spans`](Self::with_spans)).
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Aggregate into a [`Breakdown`].
    pub fn breakdown(&self) -> Breakdown {
        Breakdown {
            busy: self.busy,
            makespan: self.makespan(),
            spans: self.count,
        }
    }

    /// Export retained spans as a Chrome trace-event JSON array (open in
    /// `chrome://tracing` or Perfetto). Each category gets its own track.
    /// Empty unless the timeline was built with [`with_spans`](Self::with_spans).
    pub fn chrome_trace(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let cat = s.category;
            let tid = Category::ALL
                .iter()
                .position(|&c| c == cat)
                .unwrap_or(Category::ALL.len());
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":0,\"tid\":{}}}",
                s.label.replace('\\', "\\\\").replace('"', "'"),
                cat.label(),
                s.start.0 / 1_000,
                s.duration().0.max(1) / 1_000,
                tid
            ));
        }
        out.push(']');
        out
    }

    /// Clear all recorded data.
    pub fn reset(&mut self) {
        self.spans.clear();
        self.busy = [SimDur::ZERO; 7];
        self.makespan = SimTime::ZERO;
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDur::from_millis(ms)
    }

    #[test]
    fn aggregates_per_category() {
        let mut t = Timeline::new();
        t.record(at(0), at(10), Category::FileIo, "read");
        t.record(at(5), at(25), Category::GpuCompute, "kernel");
        t.record(at(25), at(30), Category::FileIo, "write");
        let b = t.breakdown();
        assert_eq!(b.get(Category::FileIo), SimDur::from_millis(15));
        assert_eq!(b.get(Category::GpuCompute), SimDur::from_millis(20));
        assert_eq!(b.makespan, SimDur::from_millis(30));
        assert_eq!(b.spans, 3);
    }

    #[test]
    fn overlap_makes_busy_exceed_makespan() {
        let mut t = Timeline::new();
        t.record(at(0), at(10), Category::FileIo, "a");
        t.record(at(0), at(10), Category::GpuCompute, "b");
        let b = t.breakdown();
        assert_eq!(b.total_busy(), SimDur::from_millis(20));
        assert_eq!(b.makespan, SimDur::from_millis(10));
    }

    #[test]
    fn shares_sum_to_one() {
        let mut t = Timeline::new();
        t.record(at(0), at(10), Category::CpuCompute, "");
        t.record(at(0), at(30), Category::GpuCompute, "");
        t.record(at(0), at(60), Category::FileIo, "");
        let b = t.breakdown();
        let sum: f64 = Category::ALL.iter().map(|&c| b.share(c)).sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((b.share(Category::FileIo) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn inverted_span_is_clamped() {
        let mut t = Timeline::new();
        t.record(at(10), at(5), Category::Runtime, "bad");
        assert_eq!(t.breakdown().get(Category::Runtime), SimDur::ZERO);
        assert_eq!(t.makespan(), SimDur::from_millis(10));
    }

    #[test]
    fn spans_retained_only_when_requested() {
        let mut plain = Timeline::new();
        plain.record(at(0), at(1), Category::Runtime, "x");
        assert!(plain.spans().is_empty());

        let mut traced = Timeline::with_spans();
        traced.record(at(0), at(1), Category::Runtime, "x");
        assert_eq!(traced.spans().len(), 1);
        assert_eq!(traced.spans()[0].label, "x");
    }

    #[test]
    fn chrome_trace_exports_retained_spans() {
        let mut t = Timeline::with_spans();
        t.record(at(1), at(3), Category::FileIo, "load \"x\"");
        t.record(at(3), at(7), Category::GpuCompute, "kernel");
        let json = t.chrome_trace();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"cat\":\"io\""));
        assert!(json.contains("\"cat\":\"gpu\""));
        assert!(json.contains("\"ts\":1000"), "{json}");
        assert!(json.contains("\"dur\":4000"));
        // Quotes in labels are sanitized so the JSON stays valid.
        assert!(!json.contains("load \"x\""));
        // Without span retention the trace is empty.
        let mut plain = Timeline::new();
        plain.record(at(0), at(1), Category::Runtime, "x");
        assert_eq!(plain.chrome_trace(), "[]");
    }

    #[test]
    fn reset_clears_everything() {
        let mut t = Timeline::with_spans();
        t.record(at(0), at(1), Category::MemCopy, "x");
        t.reset();
        assert_eq!(t.breakdown(), Breakdown::default());
        assert!(t.spans().is_empty());
    }
}
