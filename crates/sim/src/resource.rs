//! FIFO bandwidth resources.
//!
//! A [`Resource`] models a single hardware unit that serves requests one at a
//! time in issue order: a storage device, a DMA/PCIe link, or a processor.
//! Requests are expressed either as byte transfers (served at the resource's
//! bandwidth) or as abstract work (served at a caller-provided rate).
//!
//! The scheduling rule is the classic list-scheduling recurrence
//!
//! ```text
//! start = max(ready, busy_until)
//! end   = start + duration
//! ```
//!
//! which is exactly what a FIFO discrete-event server would produce given the
//! same issue order, but can be computed eagerly while the Northup runtime
//! executes the real program. Overlap between, say, the SSD and the GPU falls
//! out naturally because each is its own `Resource`.

use crate::time::{transfer_time, work_time, SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Accumulated utilization statistics for a resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Total time the resource spent serving requests.
    pub busy: SimDur,
    /// Number of requests served.
    pub ops: u64,
    /// Total bytes served (zero for pure work requests).
    pub bytes: u64,
}

/// A FIFO server with a fixed bandwidth and per-operation latency.
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    bytes_per_sec: f64,
    latency: SimDur,
    busy_until: SimTime,
    stats: ResourceStats,
}

/// The scheduled interval of a single served request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Served {
    /// When service began (>= the request's ready time).
    pub start: SimTime,
    /// When service completed.
    pub end: SimTime,
}

impl Served {
    /// Length of the service interval.
    pub fn duration(&self) -> SimDur {
        self.end.since(self.start)
    }
}

impl Resource {
    /// Create a bandwidth resource. `bytes_per_sec` applies to
    /// [`serve_bytes`](Self::serve_bytes); `latency` is charged per operation.
    pub fn new(name: impl Into<String>, bytes_per_sec: f64, latency: SimDur) -> Self {
        Resource {
            name: name.into(),
            bytes_per_sec,
            latency,
            busy_until: SimTime::ZERO,
            stats: ResourceStats::default(),
        }
    }

    /// Create a resource used only via [`serve_for`](Self::serve_for) /
    /// [`serve_work`](Self::serve_work) (e.g. a processor).
    pub fn new_compute(name: impl Into<String>) -> Self {
        Resource::new(name, f64::INFINITY, SimDur::ZERO)
    }

    /// Resource name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The time at which all currently issued requests will have completed.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Utilization statistics so far.
    pub fn stats(&self) -> ResourceStats {
        self.stats
    }

    /// Configured bandwidth in bytes per second.
    pub fn bandwidth(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Replace the bandwidth (used by the §V-D faster-storage projection to
    /// re-run a workload under a different device).
    pub fn set_bandwidth(&mut self, bytes_per_sec: f64) {
        self.bytes_per_sec = bytes_per_sec;
    }

    /// Serve a byte transfer that becomes ready at `ready`.
    pub fn serve_bytes(&mut self, ready: SimTime, bytes: u64) -> Served {
        let dur = if self.bytes_per_sec.is_infinite() {
            self.latency
        } else {
            transfer_time(bytes, self.bytes_per_sec, self.latency)
        };
        self.stats.bytes += bytes;
        self.enqueue(ready, dur)
    }

    /// Serve an abstract work request at `units_per_sec`.
    pub fn serve_work(&mut self, ready: SimTime, work: f64, units_per_sec: f64) -> Served {
        let dur = work_time(work, units_per_sec);
        self.enqueue(ready, dur)
    }

    /// Serve a request of a precomputed duration.
    pub fn serve_for(&mut self, ready: SimTime, dur: SimDur) -> Served {
        self.enqueue(ready, dur)
    }

    fn enqueue(&mut self, ready: SimTime, dur: SimDur) -> Served {
        let start = ready.max(self.busy_until);
        let end = start + dur;
        self.busy_until = end;
        self.stats.busy += dur;
        self.stats.ops += 1;
        Served { start, end }
    }

    /// Reset the queue and statistics, keeping the configuration.
    pub fn reset(&mut self) {
        self.busy_until = SimTime::ZERO;
        self.stats = ResourceStats::default();
    }
}

/// A pool of `k` interchangeable slots, used to model bounded staging
/// capacity: at most `k` chunks may be in flight below a memory level at
/// once (paper §III-C, "whenever the space of lower memory levels is freed,
/// more chunks can be scheduled for movement").
#[derive(Debug, Clone)]
pub struct SlotPool {
    free_at: Vec<SimTime>,
}

/// A claim on one slot of a [`SlotPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Slot {
    /// Index of the slot within the pool.
    pub index: usize,
    /// The time at which the slot actually became available to this claim.
    pub available_at: SimTime,
}

impl SlotPool {
    /// A pool with `k` slots, all free at t = 0. `k` is clamped to at least 1.
    pub fn new(k: usize) -> Self {
        SlotPool {
            free_at: vec![SimTime::ZERO; k.max(1)],
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.free_at.len()
    }

    /// Always false; pools have at least one slot.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Claim the earliest-free slot for a request ready at `ready`.
    ///
    /// The claim must later be returned with [`release`](Self::release);
    /// until then the slot is considered occupied forever.
    pub fn acquire(&mut self, ready: SimTime) -> Slot {
        let (index, &free) = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, t)| (**t, *i))
            .expect("pool has at least one slot");
        let available_at = ready.max(free);
        self.free_at[index] = SimTime(u64::MAX);
        Slot {
            index,
            available_at,
        }
    }

    /// Release a claimed slot at time `at`.
    pub fn release(&mut self, slot: Slot, at: SimTime) {
        self.free_at[slot.index] = at;
    }

    /// Reset all slots to free at t = 0.
    pub fn reset(&mut self) {
        self.free_at.fill(SimTime::ZERO);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDur {
        SimDur::from_millis(n)
    }

    fn at_ms(n: u64) -> SimTime {
        SimTime::ZERO + ms(n)
    }

    #[test]
    fn fifo_serializes_requests() {
        let mut r = Resource::new("ssd", 1000.0 * 1e6, SimDur::ZERO); // 1 GB/s
        let a = r.serve_bytes(SimTime::ZERO, 500_000_000); // 0.5s
        let b = r.serve_bytes(SimTime::ZERO, 500_000_000); // queued behind a
        assert_eq!(a.start, SimTime::ZERO);
        assert!((a.end.as_secs_f64() - 0.5).abs() < 1e-9);
        assert_eq!(b.start, a.end);
        assert!((b.end.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(r.stats().ops, 2);
        assert_eq!(r.stats().bytes, 1_000_000_000);
    }

    #[test]
    fn ready_time_delays_start() {
        let mut r = Resource::new("hdd", 1e6, SimDur::ZERO);
        let s = r.serve_bytes(at_ms(100), 0);
        assert_eq!(s.start, at_ms(100));
    }

    #[test]
    fn idle_gap_is_not_counted_busy() {
        let mut r = Resource::new("dev", 1e9, SimDur::ZERO);
        r.serve_bytes(SimTime::ZERO, 1_000_000); // 1ms busy
        r.serve_bytes(at_ms(500), 1_000_000); // 1ms busy after a long gap
        assert_eq!(r.stats().busy, ms(2));
        assert_eq!(r.busy_until(), at_ms(501));
    }

    #[test]
    fn compute_resource_serves_work() {
        let mut p = Resource::new_compute("gpu");
        let s = p.serve_work(SimTime::ZERO, 2.0e12, 1.0e12); // 2 TFLOP at 1 TF/s
        assert!((s.duration().as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn two_resources_overlap() {
        // An I/O device and a GPU working concurrently: the makespan is the
        // max of the two pipelines, not the sum.
        let mut io = Resource::new("ssd", 1e9, SimDur::ZERO);
        let mut gpu = Resource::new_compute("gpu");
        let load = io.serve_bytes(SimTime::ZERO, 1_000_000_000); // 1s
        let compute = gpu.serve_for(load.end, ms(100));
        let load2 = io.serve_bytes(SimTime::ZERO, 1_000_000_000); // overlaps compute
        let compute2 = gpu.serve_for(load2.end, ms(100));
        assert!(load2.start == load.end, "second load starts when I/O frees");
        assert!(compute.end < load2.end, "GPU idle waiting for second load");
        assert!((compute2.end.as_secs_f64() - 2.1).abs() < 1e-9);
    }

    #[test]
    fn set_bandwidth_changes_future_service() {
        let mut r = Resource::new("ssd", 1e9, SimDur::ZERO);
        let a = r.serve_bytes(SimTime::ZERO, 1_000_000_000);
        r.set_bandwidth(2e9);
        let b = r.serve_bytes(SimTime::ZERO, 1_000_000_000);
        assert!((a.duration().as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((b.duration().as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_queue_and_stats() {
        let mut r = Resource::new("x", 1e6, ms(1));
        r.serve_bytes(SimTime::ZERO, 10);
        r.reset();
        assert_eq!(r.busy_until(), SimTime::ZERO);
        assert_eq!(r.stats(), ResourceStats::default());
    }

    #[test]
    fn slot_pool_limits_concurrency() {
        let mut pool = SlotPool::new(2);
        let s1 = pool.acquire(SimTime::ZERO);
        let s2 = pool.acquire(SimTime::ZERO);
        assert_eq!(s1.available_at, SimTime::ZERO);
        assert_eq!(s2.available_at, SimTime::ZERO);
        // Third request must wait for a release.
        pool.release(s1, at_ms(300));
        let s3 = pool.acquire(at_ms(10));
        assert_eq!(s3.available_at, at_ms(300));
        // Fourth waits for s2's release even if requested later.
        pool.release(s2, at_ms(700));
        let s4 = pool.acquire(at_ms(650));
        assert_eq!(s4.available_at, at_ms(700));
    }

    #[test]
    fn slot_pool_zero_clamps_to_one() {
        let mut pool = SlotPool::new(0);
        assert_eq!(pool.len(), 1);
        let s = pool.acquire(SimTime::ZERO);
        pool.release(s, at_ms(5));
        assert_eq!(pool.acquire(SimTime::ZERO).available_at, at_ms(5));
    }
}
