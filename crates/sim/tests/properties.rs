//! Property tests on the virtual-time substrate: FIFO resource laws,
//! slot-pool admission, timeline aggregation, and steal-simulation
//! conservation under arbitrary request sequences.

use northup_sim::{Resource, SimDur, SimTime, SlotPool, Timeline};
use proptest::prelude::*;

proptest! {
    /// FIFO law: every request starts no earlier than its ready time and no
    /// earlier than the previous request's start; busy time equals the sum
    /// of durations; requests never overlap.
    #[test]
    fn resource_fifo_laws(reqs in prop::collection::vec((0u64..10_000, 0u64..5_000), 1..100)) {
        let mut r = Resource::new("dev", 1e6, SimDur::ZERO); // 1 B/us
        let mut prev_end = SimTime::ZERO;
        let mut total = SimDur::ZERO;
        for &(ready_us, bytes) in &reqs {
            let ready = SimTime(ready_us * 1_000);
            let s = r.serve_bytes(ready, bytes);
            prop_assert!(s.start >= ready);
            prop_assert!(s.start >= prev_end, "no overlap on a FIFO server");
            prop_assert!(s.end >= s.start);
            total += s.duration();
            prev_end = s.end;
        }
        prop_assert_eq!(r.stats().busy, total);
        prop_assert_eq!(r.stats().ops as usize, reqs.len());
        prop_assert_eq!(r.busy_until(), prev_end);
    }

    /// Makespan on one resource is at least max(total busy, latest ready).
    #[test]
    fn resource_makespan_bounds(reqs in prop::collection::vec((0u64..1_000, 1u64..1_000), 1..60)) {
        let mut r = Resource::new("dev", 1e9, SimDur::ZERO);
        let mut last_end = SimTime::ZERO;
        for &(ready_us, bytes) in &reqs {
            let s = r.serve_bytes(SimTime(ready_us * 1_000), bytes);
            last_end = last_end.max(s.end);
        }
        let busy = r.stats().busy;
        prop_assert!(last_end.since(SimTime::ZERO) >= busy);
    }

    /// Slot pools never hand out more than `k` concurrently-held slots:
    /// the i-th acquisition (0-based) is available no earlier than the
    /// (i-k)-th release.
    #[test]
    fn slot_pool_respects_capacity(
        k in 1usize..5,
        holds in prop::collection::vec(1u64..100, 1..40),
    ) {
        let mut pool = SlotPool::new(k);
        let mut releases: Vec<SimTime> = Vec::new();
        for (i, &hold_ms) in holds.iter().enumerate() {
            let slot = pool.acquire(SimTime::ZERO);
            if i >= k {
                let mut sorted = releases.clone();
                sorted.sort();
                let gate = sorted[i - k];
                prop_assert!(
                    slot.available_at >= gate,
                    "slot {i} at {} before gate {}",
                    slot.available_at,
                    gate
                );
            }
            let freed = slot.available_at + SimDur::from_millis(hold_ms);
            pool.release(slot, freed);
            releases.push(freed);
        }
    }

    /// Timeline aggregation equals a straightforward reference fold.
    #[test]
    fn timeline_matches_reference_fold(
        spans in prop::collection::vec((0u64..1_000, 0u64..1_000, 0usize..7), 0..80)
    ) {
        use northup_sim::Category;
        let mut t = Timeline::new();
        let mut ref_busy = [0u64; 7];
        let mut ref_makespan = 0u64;
        for &(start_us, dur_us, cat_i) in &spans {
            let cat = Category::ALL[cat_i];
            let start = SimTime(start_us * 1_000);
            let end = SimTime((start_us + dur_us) * 1_000);
            t.record(start, end, cat, "x");
            ref_busy[cat_i] += dur_us * 1_000;
            ref_makespan = ref_makespan.max(end.0);
        }
        let b = t.breakdown();
        for (i, &cat) in Category::ALL.iter().enumerate() {
            prop_assert_eq!(b.get(cat).0, ref_busy[i]);
        }
        prop_assert_eq!(b.makespan.0, ref_makespan);
        prop_assert_eq!(b.spans, spans.len());
        // Shares sum to 1 whenever anything was recorded.
        if b.total_busy().0 > 0 {
            let sum: f64 = Category::ALL.iter().map(|&c| b.share(c)).sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    /// Faster workers never lengthen a stealing schedule.
    #[test]
    fn steal_sim_monotone_in_rates(
        tasks in prop::collection::vec(0.5f64..5.0, 1..40),
        base_rate in 0.5f64..4.0,
        boost in 1.0f64..3.0,
    ) {
        use northup_sim::{deal_round_robin, simulate_stealing, SimWorker};
        let make = |rate: f64| {
            (0..3usize)
                .map(|i| SimWorker::new(format!("w{i}"), rate, (0..3).filter(|&v| v != i).collect()))
                .collect::<Vec<_>>()
        };
        let slow = simulate_stealing(&make(base_rate), deal_round_robin(&tasks, 3));
        let fast = simulate_stealing(&make(base_rate * boost), deal_round_robin(&tasks, 3));
        prop_assert!(fast.makespan <= slow.makespan);
    }
}
