//! Deterministic concurrency stress tests for the real-mode thread
//! path: the Chase–Lev deque under contention and exactly-once chunk
//! commits under injected storage faults.
//!
//! These are the runtime counterparts of the analyzer's R10–R12 rules:
//! the invariants checked here (every value claimed exactly once, every
//! chunk committed exactly once despite retries) are precisely what the
//! lock-set and atomic-ordering contracts protect. No randomness — the
//! schedules vary run to run, but every invariant must hold on all of
//! them, at thread counts 1, 2, and 8.

use northup_exec::chain::CancelToken;
use northup_exec::deque::{deque, Steal};
use northup_exec::pool::ThreadPool;
use northup_hw::{FaultOps, FaultyBackend, HeapBackend, StorageBackend};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::Duration;

/// Hammer one owner (push + pop) against N stealers; every pushed value
/// must be claimed by exactly one thread, and the claim counts must add
/// up: `owner_pops + steals == pushed`.
#[test]
fn deque_owner_vs_stealers_claims_each_value_exactly_once() {
    const VALUES: usize = 10_000;
    for &stealers in &[1usize, 2, 8] {
        let (worker, stealer) = deque::<usize>(VALUES.next_power_of_two());
        let hits: Vec<AtomicU32> = (0..VALUES).map(|_| AtomicU32::new(0)).collect();
        let done = AtomicBool::new(false);
        let steals = AtomicU64::new(0);
        let mut owner_pops = 0u64;

        std::thread::scope(|s| {
            for _ in 0..stealers {
                let stealer = stealer.clone();
                let hits = &hits;
                let done = &done;
                let steals = &steals;
                s.spawn(move || loop {
                    match stealer.steal() {
                        Steal::Success(v) => {
                            hits[v].fetch_add(1, Ordering::Relaxed);
                            steals.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                });
            }

            // Owner: push everything, popping every few pushes so both
            // ends of the deque stay contended, then drain.
            for v in 0..VALUES {
                let mut val = v;
                while let Err(back) = worker.push(val) {
                    val = back; // full: make room by claiming one ourselves
                    if let Some(got) = worker.pop() {
                        hits[got].fetch_add(1, Ordering::Relaxed);
                        owner_pops += 1;
                    }
                }
                if v % 7 == 0 {
                    if let Some(got) = worker.pop() {
                        hits[got].fetch_add(1, Ordering::Relaxed);
                        owner_pops += 1;
                    }
                }
            }
            while let Some(got) = worker.pop() {
                hits[got].fetch_add(1, Ordering::Relaxed);
                owner_pops += 1;
            }
            done.store(true, Ordering::Release);
        });

        // Exactly-once: every value claimed by precisely one thread.
        for (v, h) in hits.iter().enumerate() {
            assert_eq!(
                h.load(Ordering::Relaxed),
                1,
                "value {v} claimed {} times with {stealers} stealer(s)",
                h.load(Ordering::Relaxed)
            );
        }
        // Claim accounting closes: nothing lost, nothing duplicated.
        let stolen = steals.load(Ordering::Relaxed);
        assert_eq!(
            owner_pops + stolen,
            VALUES as u64,
            "owner_pops {owner_pops} + steals {stolen} with {stealers} stealer(s)"
        );
    }
}

/// Run a retrying chain whose chunks write through a fault-injecting
/// backend: every third write fails, the chain retries, and each chunk
/// must still commit exactly once with the full checksum intact — at
/// pool sizes 1, 2, and 8.
#[test]
fn chain_commits_exactly_once_under_injected_faults() {
    const CHUNKS: u32 = 16;
    const LANES: usize = 100;
    for &threads in &[1usize, 2, 8] {
        let pool = ThreadPool::new(threads);
        let token = CancelToken::new();
        let mut backend =
            FaultyBackend::new(HeapBackend::new("stress", 64 * 1024), FaultOps::Writes, 3);
        let block = backend.alloc(u64::from(CHUNKS) * 8).expect("alloc");
        let commits: Vec<AtomicU32> = (0..CHUNKS).map(|_| AtomicU32::new(0)).collect();

        let stats = pool.run_chain_with_retry(
            0,
            CHUNKS,
            &token,
            4,
            |_, _| Duration::from_micros(50),
            |i| {
                // Fan the chunk's payload computation across the pool,
                // then commit it with a single (possibly faulted) write.
                // A failed attempt leaves no trace: the write is the
                // transaction point and the commit marker only moves on
                // success.
                let acc = AtomicU64::new(0);
                pool.par_for(LANES, 7, |r| {
                    let base = u64::from(i) * LANES as u64;
                    let part: u64 = r.map(|k| base + k as u64).sum();
                    acc.fetch_add(part, Ordering::Relaxed);
                });
                let payload = acc.load(Ordering::Relaxed);
                if backend
                    .write(block, u64::from(i) * 8, &payload.to_le_bytes())
                    .is_err()
                {
                    return false;
                }
                commits[i as usize].fetch_add(1, Ordering::Relaxed);
                true
            },
        );

        assert_eq!(stats.completed, CHUNKS, "{threads} thread(s)");
        assert!(!stats.gave_up, "{threads} thread(s)");
        // Every third write faults, so the chain must have retried, and
        // retries must match the injector's own count exactly.
        assert!(stats.retries > 0, "{threads} thread(s)");
        assert_eq!(
            u64::from(stats.retries),
            backend.injected(),
            "{threads} thread(s)"
        );
        // Exactly-once commit per chunk, despite the retried attempts.
        for (i, c) in commits.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "chunk {i} committed {} times with {threads} thread(s)",
                c.load(Ordering::Relaxed)
            );
        }
        // Checksum: read back every chunk's payload and compare against
        // the closed form for sum(base..base+LANES).
        for i in 0..CHUNKS {
            let mut buf = [0u8; 8];
            backend
                .read(block, u64::from(i) * 8, &mut buf)
                .expect("read");
            let base = u64::from(i) * LANES as u64;
            let expect: u64 = (base..base + LANES as u64).sum();
            assert_eq!(
                u64::from_le_bytes(buf),
                expect,
                "chunk {i} payload with {threads} thread(s)"
            );
        }
    }
}
