//! # northup-exec — lock-free work stealing (paper §V-E substrate)
//!
//! The paper implements CPU↔GPU load balancing with per-consumer work queues
//! and lock-free stealing using acquire/release atomics (\[24\] in the paper,
//! the Chase–Lev deque). This crate provides:
//!
//! * [`deque`](mod@deque) — a bounded Chase–Lev deque: one owner pushes/pops at the
//!   tail, thieves steal at the head with a CAS, exactly the head/tail
//!   discipline of the paper's Fig. 10.
//! * [`pool`] — a work-stealing thread pool built on those deques, used to
//!   run the reproduction's real kernels in parallel (in-memory baselines
//!   and Northup leaf computation).
//! * [`chain`] — chunk-chain execution hooks: [`CancelToken`] and
//!   [`ThreadPool::run_chain`], the chunk-boundary cancellation
//!   discipline real-thread fabrics use for chunk-granular preemption.
//!
//! The virtual-time *model* of the same stealing protocol (used for the
//! deterministic Fig. 11 numbers) lives in `northup_sim::workers`; this
//! crate is the real concurrent implementation.

#![warn(missing_docs)]

pub mod chain;
pub mod deque;
pub mod pool;

pub use chain::{CancelToken, ChainRunStats};
pub use deque::{deque, Steal, Stealer, Worker};
pub use pool::{Scope, ThreadPool};
