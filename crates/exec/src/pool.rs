//! Work-stealing thread pool built on the Chase–Lev deque.
//!
//! This is the real-execution counterpart of the virtual-time worker
//! simulation in `northup-sim`: in-memory baselines and Northup leaf
//! computation run their kernels on this pool, so the lock-free stealing
//! path is exercised for real, not just modeled.
//!
//! Design: each worker thread owns a [`deque::Worker`]; tasks spawned from a
//! worker go to its local deque (bottom), idle workers steal from victims'
//! tops, and external threads submit through a shared injector. A blocked
//! `Scope::wait` helps execute tasks instead of sleeping, so nested scopes
//! cannot deadlock the pool.

use crate::deque::{self, Steal, Stealer, Worker};
use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

const LOCAL_QUEUE_CAP: usize = 8192;

static POOL_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (pool id, pointer to this thread's local deque). The pointer is valid
    /// for the worker thread's whole life; the pool id guards against a
    /// thread of pool A being asked to push into pool B.
    static LOCAL: Cell<(u64, *const Worker<Job>)> = const { Cell::new((0, std::ptr::null())) };
}

struct Shared {
    id: u64,
    injector: Mutex<VecDeque<Job>>,
    stealers: Vec<Stealer<Job>>,
    sleepers: AtomicUsize,
    lock: Mutex<()>,
    cond: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn pop_injected(&self) -> Option<Job> {
        self.injector.lock().pop_front()
    }

    fn inject(&self, job: Job) {
        self.injector.lock().push_back(job);
        self.wake_one();
    }

    fn wake_one(&self) {
        if self.sleepers.load(Ordering::Acquire) > 0 {
            let _g = self.lock.lock();
            self.cond.notify_one();
        }
    }

    fn wake_all(&self) {
        let _g = self.lock.lock();
        self.cond.notify_all();
    }

    /// Try to find a job: injector first (freshest external work), then steal
    /// round-robin starting after `home` to spread contention.
    fn find_job(&self, home: usize) -> Option<Job> {
        if let Some(job) = self.pop_injected() {
            return Some(job);
        }
        let n = self.stealers.len();
        let mut retry = true;
        while retry {
            retry = false;
            for k in 1..=n {
                let v = (home + k) % n;
                match self.stealers[v].steal() {
                    Steal::Success(job) => return Some(job),
                    Steal::Retry => retry = true,
                    Steal::Empty => {}
                }
            }
        }
        None
    }
}

/// A fixed-size work-stealing thread pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    threads: usize,
}

impl ThreadPool {
    /// Spawn a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let id = POOL_IDS.fetch_add(1, Ordering::Relaxed);
        let mut workers = Vec::with_capacity(threads);
        let mut stealers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (w, s) = deque::deque::<Job>(LOCAL_QUEUE_CAP);
            workers.push(w);
            stealers.push(s);
        }
        let shared = Arc::new(Shared {
            id,
            injector: Mutex::new(VecDeque::new()),
            stealers,
            sleepers: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cond: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let handles = workers
            .into_iter()
            .enumerate()
            .map(|(i, local)| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("northup-worker-{i}"))
                    .spawn(move || worker_loop(shared, local, i))
                    // analyze:allow(panic-paths): pool construction; OS refusing a thread at startup is unrecoverable setup, not a runtime path
                    .expect("spawn worker thread")
            })
            .collect();
        ThreadPool {
            shared,
            handles,
            threads,
        }
    }

    /// A pool sized to the machine (`available_parallelism`, capped at 16).
    pub fn with_default_threads() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(16);
        ThreadPool::new(n)
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a detached task.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'static) {
        self.submit(Box::new(f));
    }

    fn submit(&self, job: Job) {
        // If called from one of this pool's workers, push to its local deque
        // (the fast path the Chase-Lev design exists for).
        let pushed_local = LOCAL.with(|tls| {
            let (pool, ptr) = tls.get();
            if pool == self.shared.id && !ptr.is_null() {
                // Safety: ptr points at the current thread's own Worker,
                // alive for the thread's lifetime; we are that thread.
                let local = unsafe { &*ptr };
                match local.push(job) {
                    Ok(()) => {
                        self.shared.wake_one();
                        Ok(())
                    }
                    Err(job) => Err(job),
                }
            } else {
                Err(job)
            }
        });
        if let Err(job) = pushed_local {
            self.shared.inject(job);
        }
    }

    /// Run `f` with a [`Scope`] that can spawn borrowed tasks; returns after
    /// every spawned task (transitively) finishes. Panics from tasks are
    /// propagated to the caller.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            lock: Mutex::new(()),
            cond: Condvar::new(),
        });
        let scope = Scope {
            pool: self,
            state: Arc::clone(&state),
            _env: PhantomData,
        };
        let result = f(&scope);
        scope.wait();
        if let Some(payload) = state.panic.lock().take() {
            resume_unwind(payload);
        }
        result
    }

    /// Run two closures potentially in parallel, returning both results.
    pub fn join<RA: Send, RB: Send>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB) {
        let mut ra = None;
        let mut rb = None;
        self.scope(|s| {
            s.spawn(|| ra = Some(a()));
            rb = Some(b());
        });
        // analyze:allow(panic-paths): scope() joins both closures before returning, so both Options are always Some
        (ra.expect("task a completed"), rb.expect("task b ran"))
    }

    /// Parallel loop over `0..n` in chunks of `grain`, calling
    /// `f(start..end)` for each chunk.
    pub fn par_for(
        &self,
        n: usize,
        grain: usize,
        f: impl Fn(std::ops::Range<usize>) + Sync + Send,
    ) {
        if n == 0 {
            return;
        }
        let grain = grain.max(1);
        let f = &f;
        self.scope(|s| {
            let mut start = 0;
            while start < n {
                let end = (start + grain).min(n);
                s.spawn(move || f(start..end));
                start = end;
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

struct ScopeState {
    pending: AtomicUsize,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    lock: Mutex<()>,
    cond: Condvar,
}

/// Spawning context handed to [`ThreadPool::scope`]. Tasks may borrow from
/// the enclosing environment (`'env`).
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    state: Arc<ScopeState>,
    _env: PhantomData<fn(&'env ()) -> &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawn a task that may borrow from `'env`.
    pub fn spawn(&self, f: impl FnOnce() + Send + 'env) {
        let state = Arc::clone(&self.state);
        state.pending.fetch_add(1, Ordering::AcqRel);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                let mut slot = state.panic.lock();
                slot.get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = state.lock.lock();
                state.cond.notify_all();
            }
        });
        // Safety: `Scope::wait` (called by `ThreadPool::scope` before it
        // returns) blocks until `pending` reaches zero, so the closure —
        // including its borrows of `'env` — cannot outlive the scope. This is
        // the standard scoped-spawn lifetime erasure (cf. crossbeam/rayon).
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        self.pool.submit(job);
    }

    /// Block until all tasks spawned on this scope completed, helping to
    /// execute pool work while waiting (so nested scopes cannot deadlock).
    fn wait(&self) {
        let shared = &self.pool.shared;
        while self.state.pending.load(Ordering::Acquire) > 0 {
            // Prefer local work if we are a pool worker; otherwise
            // steal/drain the injector like a worker would.
            let job = LOCAL.with(|tls| {
                let (pool, ptr) = tls.get();
                if pool == shared.id && !ptr.is_null() {
                    // Safety: see `submit`.
                    unsafe { &*ptr }.pop()
                } else {
                    None
                }
            });
            let job = job.or_else(|| shared.find_job(0));
            match job {
                Some(job) => job(),
                None => {
                    // Nothing to help with; sleep until a completion or new work.
                    let mut g = self.state.lock.lock();
                    if self.state.pending.load(Ordering::Acquire) > 0 {
                        self.state
                            .cond
                            .wait_for(&mut g, std::time::Duration::from_millis(1));
                    }
                }
            }
        }
    }
}

fn worker_loop(shared: Arc<Shared>, local: Worker<Job>, index: usize) {
    LOCAL.with(|tls| tls.set((shared.id, &local as *const _)));
    loop {
        if let Some(job) = local.pop().or_else(|| shared.find_job(index)) {
            job();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Sleep with a timed wait as a lost-wakeup safety net.
        shared.sleepers.fetch_add(1, Ordering::AcqRel);
        let mut g = shared.lock.lock();
        // analyze:allow(blocking-extent): the injector re-check must happen under the sleep lock to avoid lost wakeups, and injector is a leaf lock held O(1)
        let empty = local.is_empty() && shared.injector.lock().is_empty();
        if empty && !shared.shutdown.load(Ordering::Acquire) {
            shared
                .cond
                .wait_for(&mut g, std::time::Duration::from_millis(5));
        }
        drop(g);
        shared.sleepers.fetch_sub(1, Ordering::AcqRel);
    }
    LOCAL.with(|tls| tls.set((0, std::ptr::null())));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spawn_runs_detached_tasks() {
        let pool = ThreadPool::new(4);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            pool.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        // Scope flush: an empty scope waits for nothing, so use a scoped task
        // barrier instead.
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {});
            }
        });
        // Detached tasks have no completion guarantee at this point; poll.
        for _ in 0..1000 {
            if counter.load(Ordering::Relaxed) == 100 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn scope_borrows_environment() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u32; 64];
        let chunks: Vec<&mut [u32]> = data.chunks_mut(8).collect();
        pool.scope(|s| {
            for (i, chunk) in chunks.into_iter().enumerate() {
                s.spawn(move || {
                    for v in chunk.iter_mut() {
                        *v = i as u32;
                    }
                });
            }
        });
        assert_eq!(data[0], 0);
        assert_eq!(data[63], 7);
        assert!(data
            .chunks(8)
            .enumerate()
            .all(|(i, c)| c.iter().all(|&v| v == i as u32)));
    }

    #[test]
    fn scope_waits_for_all_tasks() {
        let pool = ThreadPool::new(2);
        let counter = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..500 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let counter = Arc::new(AtomicU32::new(0));
        pool.scope(|outer| {
            for _ in 0..8 {
                let c = Arc::clone(&counter);
                let pool_ref = &pool;
                outer.spawn(move || {
                    pool_ref.scope(|inner| {
                        for _ in 0..8 {
                            let c2 = Arc::clone(&c);
                            inner.spawn(move || {
                                c2.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn join_returns_both_results() {
        let pool = ThreadPool::new(3);
        let (a, b) = pool.join(|| 6 * 7, || "hi".to_string());
        assert_eq!(a, 42);
        assert_eq!(b, "hi");
    }

    #[test]
    fn par_for_covers_range_exactly_once() {
        let pool = ThreadPool::new(4);
        let hits: Vec<AtomicU32> = (0..1000).map(|_| AtomicU32::new(0)).collect();
        pool.par_for(1000, 37, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_for_zero_is_noop() {
        let pool = ThreadPool::new(2);
        pool.par_for(0, 8, |_| panic!("must not be called"));
    }

    #[test]
    fn panics_propagate_from_scope() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task exploded"));
                s.spawn(|| {}); // healthy sibling still runs
            });
        }));
        assert!(result.is_err(), "scope re-raises the task panic");
        // Pool remains usable afterwards.
        let c = AtomicU32::new(0);
        pool.scope(|s| {
            s.spawn(|| {
                c.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn heavy_mixed_load_stress() {
        let pool = ThreadPool::new(8);
        let total = Arc::new(AtomicUsize::new(0));
        pool.scope(|s| {
            for i in 0..200 {
                let total = Arc::clone(&total);
                s.spawn(move || {
                    // Uneven task sizes to force stealing.
                    let mut acc = 0usize;
                    for k in 0..(i % 17) * 1000 + 1 {
                        acc = acc.wrapping_add(k);
                    }
                    std::hint::black_box(acc);
                    total.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn single_thread_pool_works() {
        let pool = ThreadPool::new(1);
        let c = AtomicU32::new(0);
        pool.scope(|s| {
            for _ in 0..50 {
                s.spawn(|| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }
}
