//! Chunk-chain execution hooks: cooperative cancellation at chunk
//! boundaries.
//!
//! A stage chain (see `northup::fabric`) is a sequence of chunks executed
//! in order; each chunk may fan work out across the pool internally, but
//! chunks themselves never overlap. That boundary is where eviction is
//! cheap: nothing is in flight, every completed chunk is a checkpoint,
//! and a preempted chain resumes from its next unprocessed chunk. This
//! module provides the two pieces a real-execution fabric needs:
//!
//! * [`CancelToken`] — a shared flag a scheduler flips to request
//!   eviction; the chain observes it only *between* chunks, so no chunk
//!   is ever torn mid-flight.
//! * [`ThreadPool::run_chain`] — drive chunks `start..chunks` in order,
//!   honoring the token at every boundary, returning how many chunks
//!   completed in this run.

use crate::pool::ThreadPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A shared cancellation flag observed at chunk boundaries.
///
/// Cloning the `Arc` shares the flag: the scheduler keeps one end to
/// request eviction, the running chain polls the other between chunks.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Arc<Self> {
        Arc::new(CancelToken::default())
    }

    /// Request cancellation: the chain stops before its next chunk.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

/// Accounting from a retrying chain run ([`ThreadPool::run_chain_with_retry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainRunStats {
    /// Chunks completed in this run (`start + completed` is the next
    /// checkpoint, exactly as for [`ThreadPool::run_chain`]).
    pub completed: u32,
    /// Failed attempts that were retried.
    pub retries: u32,
    /// True when a chunk exhausted its attempts — the chain stopped on a
    /// persistent failure rather than cancellation or completion.
    pub gave_up: bool,
}

impl ThreadPool {
    /// Run chunks `start..chunks` of a chain in order on the calling
    /// thread, checking `token` before each chunk. `chunk(i)` returns
    /// `true` to continue or `false` to abort the chain (an error path);
    /// chunk bodies are free to parallelize internally via this pool
    /// ([`scope`](Self::scope) / [`par_for`](Self::par_for)).
    ///
    /// Returns the number of chunks completed *in this run*, so
    /// `start + completed` is the chain's next checkpoint.
    pub fn run_chain(
        &self,
        start: u32,
        chunks: u32,
        token: &CancelToken,
        mut chunk: impl FnMut(u32) -> bool,
    ) -> u32 {
        let mut done = 0;
        for i in start..chunks {
            if token.is_cancelled() || !chunk(i) {
                break;
            }
            done += 1;
        }
        done
    }

    /// Like [`run_chain`](Self::run_chain), but a chunk returning `false`
    /// is retried (after `backoff(chunk, retry)` of real wall-clock sleep)
    /// up to `max_attempts` total tries before the chain gives up.
    ///
    /// The token is honored at every chunk boundary *and* during backoff
    /// sleeps (sliced, so eviction is never delayed by a long backoff);
    /// a cancelled backoff abandons the in-flight chunk without counting
    /// it completed, exactly as if the cancellation had arrived at the
    /// preceding boundary. Chunk bodies must therefore be transactional:
    /// a failed attempt may run again (`RealFabric::run_chunk` commits its
    /// checksum only on success for precisely this reason).
    pub fn run_chain_with_retry(
        &self,
        start: u32,
        chunks: u32,
        token: &CancelToken,
        max_attempts: u32,
        mut backoff: impl FnMut(u32, u32) -> Duration,
        mut chunk: impl FnMut(u32) -> bool,
    ) -> ChainRunStats {
        let max_attempts = max_attempts.max(1);
        let mut stats = ChainRunStats::default();
        'chunks: for i in start..chunks {
            if token.is_cancelled() {
                break;
            }
            let mut attempt = 0u32;
            loop {
                if chunk(i) {
                    stats.completed += 1;
                    continue 'chunks;
                }
                attempt += 1;
                if attempt >= max_attempts {
                    stats.gave_up = true;
                    break 'chunks;
                }
                stats.retries += 1;
                if !sleep_unless_cancelled(token, backoff(i, attempt)) {
                    break 'chunks;
                }
            }
        }
        stats
    }
}

/// Sleep for `dur` in short slices, polling `token` between slices.
/// Returns false if cancellation arrived before the sleep finished.
fn sleep_unless_cancelled(token: &CancelToken, dur: Duration) -> bool {
    let slice = Duration::from_millis(1);
    let mut left = dur;
    while left > Duration::ZERO {
        if token.is_cancelled() {
            return false;
        }
        let step = left.min(slice);
        std::thread::sleep(step);
        left -= step;
    }
    !token.is_cancelled()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_all_chunks_without_cancellation() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        let seen = std::cell::RefCell::new(Vec::new());
        let done = pool.run_chain(0, 5, &token, |i| {
            seen.borrow_mut().push(i);
            true
        });
        assert_eq!(done, 5);
        assert_eq!(seen.into_inner(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancellation_takes_effect_at_the_next_boundary() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        let t = Arc::clone(&token);
        let done = pool.run_chain(0, 10, &token, |i| {
            if i == 2 {
                t.cancel(); // mid-chunk request...
            }
            true // ...the current chunk still completes
        });
        assert_eq!(done, 3, "chunks 0..=2 completed, boundary stopped 3");
    }

    #[test]
    fn resume_from_checkpoint_covers_each_chunk_once() {
        let pool = ThreadPool::new(2);
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let token = CancelToken::new();
        let t = Arc::clone(&token);
        let first = pool.run_chain(0, 8, &token, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                t.cancel();
            }
            true
        });
        // Evicted after `first` chunks; resume from the checkpoint.
        let token2 = CancelToken::new();
        let second = pool.run_chain(first, 8, &token2, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert_eq!(first + second, 8);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_bodies_may_parallelize_on_the_pool() {
        let pool = ThreadPool::new(4);
        let token = CancelToken::new();
        let total = AtomicU32::new(0);
        let done = pool.run_chain(0, 3, &token, |_| {
            pool.par_for(100, 7, |r| {
                total.fetch_add(r.len() as u32, Ordering::Relaxed);
            });
            true
        });
        assert_eq!(done, 3);
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn failing_chunk_aborts_the_chain() {
        let pool = ThreadPool::new(1);
        let token = CancelToken::new();
        let done = pool.run_chain(0, 5, &token, |i| i != 2);
        assert_eq!(done, 2, "chunks 0 and 1 completed; 2 failed");
    }

    #[test]
    fn retrying_chain_recovers_transient_chunk_failures() {
        let pool = ThreadPool::new(1);
        let token = CancelToken::new();
        let mut fails_left = [0u32, 2, 0, 1]; // per-chunk transient failures
        let stats = pool.run_chain_with_retry(
            0,
            4,
            &token,
            4,
            |_, _| Duration::from_micros(100),
            |i| {
                let f = &mut fails_left[i as usize];
                if *f > 0 {
                    *f -= 1;
                    false
                } else {
                    true
                }
            },
        );
        assert_eq!(stats.completed, 4);
        assert_eq!(stats.retries, 3);
        assert!(!stats.gave_up);
    }

    #[test]
    fn retrying_chain_gives_up_after_max_attempts() {
        let pool = ThreadPool::new(1);
        let token = CancelToken::new();
        let tries = AtomicU32::new(0);
        let stats = pool.run_chain_with_retry(
            0,
            3,
            &token,
            3,
            |_, _| Duration::ZERO,
            |i| {
                if i == 1 {
                    tries.fetch_add(1, Ordering::Relaxed);
                    false // chunk 1 fails persistently
                } else {
                    true
                }
            },
        );
        assert_eq!(stats.completed, 1, "chunk 0 only; the chain stopped at 1");
        assert!(stats.gave_up);
        assert_eq!(tries.load(Ordering::Relaxed), 3, "all attempts consumed");
        assert_eq!(stats.retries, 2);
    }

    #[test]
    fn cancellation_during_backoff_stops_the_chain_promptly() {
        let pool = ThreadPool::new(1);
        let token = CancelToken::new();
        let t = Arc::clone(&token);
        let start = std::time::Instant::now();
        let stats = pool.run_chain_with_retry(
            0,
            2,
            &token,
            10,
            |_, _| Duration::from_secs(30), // would stall for minutes...
            |_| {
                t.cancel(); // ...but eviction arrives mid-backoff
                false
            },
        );
        assert_eq!(stats.completed, 0);
        assert!(!stats.gave_up, "cancelled, not exhausted");
        assert!(start.elapsed() < Duration::from_secs(5), "sliced sleep");
    }
}
