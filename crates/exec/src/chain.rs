//! Chunk-chain execution hooks: cooperative cancellation at chunk
//! boundaries.
//!
//! A stage chain (see `northup::fabric`) is a sequence of chunks executed
//! in order; each chunk may fan work out across the pool internally, but
//! chunks themselves never overlap. That boundary is where eviction is
//! cheap: nothing is in flight, every completed chunk is a checkpoint,
//! and a preempted chain resumes from its next unprocessed chunk. This
//! module provides the two pieces a real-execution fabric needs:
//!
//! * [`CancelToken`] — a shared flag a scheduler flips to request
//!   eviction; the chain observes it only *between* chunks, so no chunk
//!   is ever torn mid-flight.
//! * [`ThreadPool::run_chain`] — drive chunks `start..chunks` in order,
//!   honoring the token at every boundary, returning how many chunks
//!   completed in this run.

use crate::pool::ThreadPool;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag observed at chunk boundaries.
///
/// Cloning the `Arc` shares the flag: the scheduler keeps one end to
/// request eviction, the running chain polls the other between chunks.
#[derive(Debug, Default)]
pub struct CancelToken {
    cancelled: AtomicBool,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Arc<Self> {
        Arc::new(CancelToken::default())
    }

    /// Request cancellation: the chain stops before its next chunk.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }
}

impl ThreadPool {
    /// Run chunks `start..chunks` of a chain in order on the calling
    /// thread, checking `token` before each chunk. `chunk(i)` returns
    /// `true` to continue or `false` to abort the chain (an error path);
    /// chunk bodies are free to parallelize internally via this pool
    /// ([`scope`](Self::scope) / [`par_for`](Self::par_for)).
    ///
    /// Returns the number of chunks completed *in this run*, so
    /// `start + completed` is the chain's next checkpoint.
    pub fn run_chain(
        &self,
        start: u32,
        chunks: u32,
        token: &CancelToken,
        mut chunk: impl FnMut(u32) -> bool,
    ) -> u32 {
        let mut done = 0;
        for i in start..chunks {
            if token.is_cancelled() || !chunk(i) {
                break;
            }
            done += 1;
        }
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn runs_all_chunks_without_cancellation() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        let seen = std::cell::RefCell::new(Vec::new());
        let done = pool.run_chain(0, 5, &token, |i| {
            seen.borrow_mut().push(i);
            true
        });
        assert_eq!(done, 5);
        assert_eq!(seen.into_inner(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cancellation_takes_effect_at_the_next_boundary() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        let t = Arc::clone(&token);
        let done = pool.run_chain(0, 10, &token, |i| {
            if i == 2 {
                t.cancel(); // mid-chunk request...
            }
            true // ...the current chunk still completes
        });
        assert_eq!(done, 3, "chunks 0..=2 completed, boundary stopped 3");
    }

    #[test]
    fn resume_from_checkpoint_covers_each_chunk_once() {
        let pool = ThreadPool::new(2);
        let hits: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let token = CancelToken::new();
        let t = Arc::clone(&token);
        let first = pool.run_chain(0, 8, &token, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
            if i == 3 {
                t.cancel();
            }
            true
        });
        // Evicted after `first` chunks; resume from the checkpoint.
        let token2 = CancelToken::new();
        let second = pool.run_chain(first, 8, &token2, |i| {
            hits[i as usize].fetch_add(1, Ordering::Relaxed);
            true
        });
        assert_eq!(first + second, 8);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn chunk_bodies_may_parallelize_on_the_pool() {
        let pool = ThreadPool::new(4);
        let token = CancelToken::new();
        let total = AtomicU32::new(0);
        let done = pool.run_chain(0, 3, &token, |_| {
            pool.par_for(100, 7, |r| {
                total.fetch_add(r.len() as u32, Ordering::Relaxed);
            });
            true
        });
        assert_eq!(done, 3);
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn failing_chunk_aborts_the_chain() {
        let pool = ThreadPool::new(1);
        let token = CancelToken::new();
        let done = pool.run_chain(0, 5, &token, |i| i != 2);
        assert_eq!(done, 2, "chunks 0 and 1 completed; 2 failed");
    }
}
