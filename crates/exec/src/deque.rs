//! Bounded lock-free Chase–Lev work-stealing deque.
//!
//! The paper's §V-E load balancer lets GPU workgroups steal rows of blocks
//! from CPU thread queues using "atomics with the platform-scope and acquire
//! memory ordering ... to implement the lock-free stealing \[24\]". This is
//! the same algorithm — the Chase–Lev deque, with the memory orderings from
//! Lê et al., *Correct and Efficient Work-Stealing for Weak Memory Models*
//! (PPoPP'13):
//!
//! * the **owner** pushes and pops at the *bottom* (the paper's "tail
//!   pointer");
//! * any number of **thieves** steal at the *top* (the paper's "head
//!   pointer") with a CAS.
//!
//! The buffer is fixed-capacity (a power of two). That suits the Northup
//! use case — queues are filled with a chunk's rows of blocks up front — and
//! sidesteps the memory-reclamation problem of the growable variant. `push`
//! reports a full deque by giving the value back.

use std::cell::UnsafeCell;
use std::fmt;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicIsize, Ordering};
use std::sync::Arc;

/// Result of a steal attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was observed empty.
    Empty,
    /// Lost a race with the owner or another thief; retrying may succeed.
    Retry,
    /// Stole a value.
    Success(T),
}

impl<T> Steal<T> {
    /// Convert to `Option`, treating `Retry` as `None`.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }
}

struct Inner<T> {
    /// Next slot the owner will push into (owner-written).
    bottom: AtomicIsize,
    /// Next slot thieves will steal from (CAS-advanced).
    top: AtomicIsize,
    mask: isize,
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// Safety: slots are only read by whoever wins ownership of an index — the
// owner via the bottom protocol, a thief via the top CAS. The orderings below
// ensure a slot's contents are published before its index becomes claimable.
unsafe impl<T: Send> Sync for Inner<T> {}
unsafe impl<T: Send> Send for Inner<T> {}

/// Owner handle: push and pop at the bottom. Not `Clone` — exactly one owner.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
}

/// Thief handle: steal at the top. Freely cloneable across threads.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Worker").field("len", &self.len()).finish()
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stealer").finish_non_exhaustive()
    }
}

/// Create a deque of capacity `cap` (rounded up to a power of two, min 2).
pub fn deque<T: Send>(cap: usize) -> (Worker<T>, Stealer<T>) {
    let cap = cap.max(2).next_power_of_two();
    let buf = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        bottom: AtomicIsize::new(0),
        top: AtomicIsize::new(0),
        mask: (cap - 1) as isize,
        buf,
    });
    (
        Worker {
            inner: Arc::clone(&inner),
        },
        Stealer { inner },
    )
}

impl<T> Inner<T> {
    #[inline]
    fn slot(&self, index: isize) -> *mut MaybeUninit<T> {
        self.buf[(index & self.mask) as usize].get()
    }
}

impl<T> Worker<T> {
    /// Best-effort current length (exact only when quiescent).
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Acquire);
        let t = self.inner.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Best-effort emptiness check.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A new thief handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> Worker<T> {
    /// Push a value at the bottom. Returns `Err(value)` if the deque is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &*self.inner;
        // analyze:allow(atomic-order): the owner is the only thread that stores `bottom`, so its own program order already sequences this read
        let b = inner.bottom.load(Ordering::Relaxed);
        let t = inner.top.load(Ordering::Acquire);
        if b - t > inner.mask {
            return Err(value); // full
        }
        // Safety: index b is not visible to thieves until the Release store
        // of bottom below, and the owner is the only pusher.
        unsafe { (*inner.slot(b)).write(value) };
        inner.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pop a value at the bottom (LIFO with respect to `push`).
    pub fn pop(&self) -> Option<T> {
        let inner = &*self.inner;
        let b = inner.bottom.load(Ordering::Relaxed) - 1;
        inner.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);

        if t <= b {
            // Non-empty.
            // Safety: either b > t (slot b unreachable by thieves after the
            // fence) or b == t and the CAS below decides ownership.
            let value = unsafe { (*inner.slot(b)).assume_init_read() };
            if t == b {
                // Last element: race the thieves for it.
                if inner
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_err()
                {
                    // A thief won; it now owns the value we just copied.
                    std::mem::forget(value);
                    inner.bottom.store(b + 1, Ordering::Relaxed);
                    return None;
                }
                inner.bottom.store(b + 1, Ordering::Relaxed);
            }
            Some(value)
        } else {
            // Was empty; restore bottom.
            inner.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }
}

impl<T> Stealer<T> {
    /// Best-effort current length.
    pub fn len(&self) -> usize {
        let b = self.inner.bottom.load(Ordering::Acquire);
        let t = self.inner.top.load(Ordering::Acquire);
        (b - t).max(0) as usize
    }

    /// Best-effort emptiness check.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Send> Stealer<T> {
    /// Attempt to steal one value from the top (FIFO with respect to `push`).
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t < b {
            // Safety: we copy the slot first, then claim it with the CAS; on
            // CAS failure someone else owns it, so we forget our copy.
            let value = unsafe { (*inner.slot(t)).assume_init_read() };
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_err()
            {
                std::mem::forget(value);
                return Steal::Retry;
            }
            Steal::Success(value)
        } else {
            Steal::Empty
        }
    }

    /// Steal, retrying while the result is `Retry`.
    pub fn steal_until_settled(&self) -> Option<T> {
        loop {
            match self.steal() {
                Steal::Success(v) => return Some(v),
                Steal::Empty => return None,
                Steal::Retry => std::hint::spin_loop(),
            }
        }
    }
}

impl<T> Drop for Worker<T> {
    fn drop(&mut self) {
        // The owner being dropped means no concurrent pushes; drain what the
        // thieves haven't taken. Stealers still alive see an empty deque.
        let inner = &*self.inner;
        let mut t = inner.top.load(Ordering::Acquire);
        let b = inner.bottom.load(Ordering::Acquire);
        while t < b {
            if inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Acquire)
                .is_ok()
            {
                // Safety: the successful CAS grants ownership of slot t.
                unsafe {
                    drop((*inner.slot(t)).assume_init_read());
                }
                t += 1;
            } else {
                t = inner.top.load(Ordering::Acquire);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::thread;

    #[test]
    fn push_pop_lifo() {
        let (w, _s) = deque::<u32>(8);
        w.push(1).unwrap();
        w.push(2).unwrap();
        w.push(3).unwrap();
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn steal_fifo() {
        let (w, s) = deque::<u32>(8);
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn full_deque_returns_value() {
        let (w, _s) = deque::<u32>(2);
        w.push(1).unwrap();
        w.push(2).unwrap();
        assert_eq!(w.push(3), Err(3));
        assert_eq!(w.pop(), Some(2));
        w.push(3).unwrap();
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (w, _s) = deque::<u32>(5); // rounds to 8
        for i in 0..8 {
            w.push(i).unwrap();
        }
        assert_eq!(w.push(99), Err(99));
    }

    #[test]
    fn owner_and_thief_interleave() {
        let (w, s) = deque::<u32>(16);
        w.push(1).unwrap();
        w.push(2).unwrap();
        w.push(3).unwrap();
        assert_eq!(s.steal(), Steal::Success(1)); // head
        assert_eq!(w.pop(), Some(3)); // tail
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn concurrent_steal_no_loss_no_dup() {
        const N: usize = 20_000;
        const THIEVES: usize = 4;
        let (w, s) = deque::<usize>(32_768);
        for i in 0..N {
            w.push(i).unwrap();
        }

        let mut sets: Vec<HashSet<usize>> = Vec::new();
        thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..THIEVES {
                let s = s.clone();
                handles.push(scope.spawn(move || {
                    let mut got = HashSet::new();
                    loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                assert!(got.insert(v));
                            }
                            Steal::Empty => break,
                            Steal::Retry => std::hint::spin_loop(),
                        }
                    }
                    got
                }));
            }
            let mut own = HashSet::new();
            while let Some(v) = w.pop() {
                assert!(own.insert(v));
            }
            sets.push(own);
            for h in handles {
                sets.push(h.join().unwrap());
            }
        });

        let mut all = HashSet::new();
        for set in &sets {
            for &v in set {
                assert!(all.insert(v), "value {v} executed twice");
            }
        }
        assert_eq!(all.len(), N, "all values observed exactly once");
    }

    #[test]
    fn concurrent_push_pop_steal_stress() {
        // Owner keeps pushing while thieves drain: total consumed must equal
        // total produced.
        const ROUNDS: usize = 200;
        const BATCH: usize = 64;
        let (w, s) = deque::<usize>(BATCH * 2);
        let consumed = AtomicUsize::new(0);
        let done = std::sync::atomic::AtomicBool::new(false);

        thread::scope(|scope| {
            for _ in 0..3 {
                let s = s.clone();
                let consumed = &consumed;
                let done = &done;
                scope.spawn(move || loop {
                    match s.steal() {
                        Steal::Success(_) => {
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                        Steal::Empty => {
                            if done.load(Ordering::Acquire) && s.is_empty() {
                                break;
                            }
                            std::hint::spin_loop();
                        }
                        Steal::Retry => std::hint::spin_loop(),
                    }
                });
            }

            let mut produced = 0usize;
            for round in 0..ROUNDS {
                for i in 0..BATCH {
                    let mut v = round * BATCH + i;
                    loop {
                        match w.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                // Help drain while full.
                                if w.pop().is_some() {
                                    consumed.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    }
                    produced += 1;
                }
                // Owner consumes some of its own work.
                for _ in 0..BATCH / 2 {
                    if w.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            while w.pop().is_some() {
                consumed.fetch_add(1, Ordering::Relaxed);
            }
            done.store(true, Ordering::Release);
            let _ = produced;
        });

        // Remaining items (if any) sit in the deque; drain them.
        let mut remaining = 0;
        while w.pop().is_some() {
            remaining += 1;
        }
        assert_eq!(
            consumed.load(Ordering::Relaxed) + remaining,
            ROUNDS * BATCH,
            "every pushed item is consumed exactly once"
        );
    }

    #[test]
    fn drop_releases_unconsumed_values() {
        // Use Arc counters to check no leaks/double-drops.
        let counter = Arc::new(());
        {
            let (w, _s) = deque::<Arc<()>>(8);
            for _ in 0..5 {
                w.push(Arc::clone(&counter)).unwrap();
            }
            w.pop();
        }
        assert_eq!(Arc::strong_count(&counter), 1, "all clones dropped");
    }
}
