//! Offline shim of `proptest` 1.x.
//!
//! Provides the subset of the proptest API this workspace uses —
//! `proptest! { #[test] fn f(x in strategy) { .. } }`, range/tuple/vec
//! strategies, `prop_oneof!`, `prop_assert*!`, `prop_assume!`,
//! `ProptestConfig::with_cases` — on a deterministic splitmix64 generator
//! seeded from the test's module path, name, and case index. There is no
//! shrinking and no persistence file: a failing case reports the case
//! index, and re-running reproduces it exactly because seeding never
//! involves wall-clock time or OS entropy.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// `proptest::prelude::prop` — entry to `prop::collection` /
    /// `prop::sample` paths used in strategy expressions.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod sample {
    use crate::strategy::Select;

    /// `prop::sample::select(options)` — uniform choice of one element.
    pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select: empty option list");
        Select { options }
    }
}

/// Deterministic seed for one test case: FNV-1a over the test identity,
/// mixed with the case index. No time, no OS entropy.
pub fn case_seed(module: &str, test: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in module.bytes().chain([b':']).chain(test.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The macro that defines property tests. Each inner `fn` (which must
/// carry its own `#[test]` attribute, as with real proptest) becomes a
/// zero-argument test running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @munch ($cfg) $($rest)* }
    };
    (@munch ($cfg:expr)) => {};
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg_pat:pat in $arg_strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            let mut ran: u32 = 0;
            while ran < config.cases {
                let seed = $crate::case_seed(module_path!(), stringify!($name), case);
                let mut rng = $crate::test_runner::TestRng::from_seed(seed);
                case += 1;
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(let $arg_pat =
                            $crate::strategy::Strategy::generate(&($arg_strat), &mut rng);)+
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => ran += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < config.cases * 16 + 1024,
                            "too many prop_assume rejections ({rejected}) in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed at case {} (seed {seed:#x}): {msg}",
                            stringify!($name),
                            case - 1
                        );
                    }
                }
            }
        }
        $crate::proptest! { @munch ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @munch ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let options: ::std::vec::Vec<
            ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>,
        > = vec![$(::std::boxed::Box::new($strat)),+];
        $crate::strategy::Union::new(options)
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
