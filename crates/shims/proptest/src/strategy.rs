//! Value-generation strategies. Unlike real proptest there is no
//! shrinking, so a strategy is just a deterministic sampler: the same
//! `TestRng` state always yields the same value.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }
}

/// `Just(v)` — always yields a clone of `v`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Bounded resampling: with no shrinker, a filter that almost
        // never passes should fail loudly rather than spin.
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter {:?} rejected 10000 consecutive samples",
            self.whence
        );
    }
}

/// `prop_oneof!` backing type: uniform choice among boxed alternatives.
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof: no alternatives");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

/// `prop::collection::vec` backing type.
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start).max(1) as u64;
        let n = self.len.start + rng.below(span) as usize;
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::sample::select` backing type.
pub struct Select<T: Clone> {
    pub(crate) options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].clone()
    }
}

/// `any::<T>()` marker strategy.
pub struct Any<T>(PhantomData<T>);

pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + ((self.end - self.start) as f64 * rng.unit_f64()) as $t
            }
        }
    )*};
}

impl_range_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
    (A 0, B 1, C 2, D 3, E 4, F 5)
}
