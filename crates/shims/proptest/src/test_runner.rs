//! Case runner support types: config, failure/reject signalling, and the
//! deterministic per-case generator.

/// Subset of `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this shim trades a little
        // coverage for test-suite latency since there is no shrinker to
        // localize failures quickly.
        ProptestConfig { cases: 64 }
    }
}

/// Subset of `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case found a property violation.
    Fail(String),
    /// The case's inputs were vetoed by `prop_assume!`; it does not
    /// count toward the case budget.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic per-case generator (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform double in `[0, 1)` from the high 53 bits.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}
