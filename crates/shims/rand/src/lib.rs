//! Offline shim of `rand` 0.8.
//!
//! Exposes exactly the surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open and
//! inclusive integer/float ranges — backed by a splitmix64 core. The
//! stream differs from upstream `rand`'s ChaCha-based `StdRng`, which is
//! fine here: every consumer seeds explicitly and only requires
//! reproducibility within this workspace, not bit-compatibility with the
//! real crate.

use std::ops::{Range, RangeInclusive};

/// Core generator state: splitmix64 (Steele et al.), a full-period
/// 64-bit mixer that is more than adequate for test-data generation.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Values that `gen_range` can sample from a range. Mirrors the role of
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self;
    fn sample_inclusive(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                // 53 high bits give a uniform double in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                lo + ((hi - lo) as f64 * unit) as $t
            }
            #[inline]
            fn sample_inclusive(rng: &mut SplitMix64, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut SplitMix64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample(self, rng: &mut SplitMix64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Subset of `rand::Rng`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: AsMut<SplitMix64>,
    {
        range.sample(self.as_mut())
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: AsMut<SplitMix64>,
    {
        let unit = (self.as_mut().next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic standard generator.
#[derive(Debug, Clone)]
pub struct StdRng {
    core: SplitMix64,
}

impl AsMut<SplitMix64> for StdRng {
    #[inline]
    fn as_mut(&mut self) -> &mut SplitMix64 {
        &mut self.core
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
}

impl SeedableRng for StdRng {
    #[inline]
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            core: SplitMix64 { state: seed },
        }
    }
}

pub mod rngs {
    pub use super::StdRng;
}

pub mod prelude {
    pub use super::{Rng, SeedableRng, StdRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(0..17usize);
            assert!(v < 17);
            let w = rng.gen_range(0..=5u64);
            assert!(w <= 5);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn values_spread_across_the_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
