//! Offline shim of `criterion` 0.5.
//!
//! Implements the measurement surface the workspace's benches use —
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Throughput`, `iter` — with a plain fixed-sample wall-clock loop and a
//! one-line-per-benchmark report. No warm-up analysis, outlier
//! rejection, or HTML output; `cargo bench` still exercises every bench
//! body end-to-end and prints comparable mean timings.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId {
            function: Some(s.clone()),
            parameter: None,
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct Bencher {
    /// Mean seconds per iteration measured by the last `iter` call.
    mean: f64,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` for a small fixed number of timed iterations and records
    /// the mean. Return values are passed through `black_box` so the
    /// closure body is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed shakedown iteration (cold caches, lazy init).
        black_box(f());
        let iters = self.sample_size.max(1) as u32;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean = start.elapsed().as_secs_f64() / iters as f64;
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, b.mean);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            mean: 0.0,
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, b.mean);
        self
    }

    pub fn finish(&mut self) {}

    fn report(&mut self, id: &BenchmarkId, mean_s: f64) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean_s > 0.0 => {
                format!("  ({:.3e} elem/s)", n as f64 / mean_s)
            }
            Some(Throughput::Bytes(n)) if mean_s > 0.0 => {
                format!("  ({:.3e} B/s)", n as f64 / mean_s)
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: mean {:.3} ms{}",
            self.name,
            id.render(),
            mean_s * 1e3,
            rate
        );
        self.criterion.benchmarks_run += 1;
    }
}

#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            sample_size: 10,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let name = id.render();
        self.benchmark_group(name).bench_function("", f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn final_summary(&self) {
        eprintln!("ran {} benchmarks", self.benchmarks_run);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` invokes harness=false bench binaries with
            // `--test`; benches only run under `cargo bench` (`--bench`)
            // or a direct invocation with no flags.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}
