//! Offline shim of `serde`.
//!
//! The workspace annotates public config/report types with
//! `#[derive(Serialize, Deserialize)]` so that a real serde can be dropped
//! in by downstream users, but no code in-tree serializes anything. In
//! offline builds the traits are plain markers and the derives (from the
//! sibling `serde_derive` shim) expand to empty impls.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime elided: nothing
/// in-tree ever bounds on it).
pub trait Deserialize {}
