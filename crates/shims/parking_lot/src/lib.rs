//! Offline shim of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API:
//! `lock()` returns the guard directly, and a poisoned std mutex (a
//! panicked holder) is recovered with `into_inner` rather than unwrapped,
//! matching parking_lot's semantics of simply not having poisoning.

use std::ops::{Deref, DerefMut};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { guard: Some(guard) }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Guard holding the std guard in an `Option` so [`Condvar`] can take it
/// out while blocked and put the re-acquired guard back afterwards.
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard taken during wait")
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.guard.take().expect("guard taken during wait");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.guard = Some(inner);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.guard.take().expect("guard taken during wait");
        match self.inner.wait_timeout(inner, timeout) {
            Ok((g, res)) => {
                guard.guard = Some(g);
                WaitTimeoutResult(res.timed_out())
            }
            Err(e) => {
                let (g, res) = e.into_inner();
                guard.guard = Some(g);
                WaitTimeoutResult(res.timed_out())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g);
    }
}
