//! Offline shim of `serde_derive`.
//!
//! This workspace builds in environments with no crates.io access, and
//! nothing in it actually serializes bytes — `#[derive(Serialize,
//! Deserialize)]` annotations exist so downstream users can plug a real
//! serde in. The derives therefore expand to marker-trait impls only.

use proc_macro::{Ident, TokenStream, TokenTree};

/// Pull the deriven type's name out of the item token stream: the first
/// identifier after the `struct`/`enum` keyword.
fn type_name(item: TokenStream) -> Option<Ident> {
    let mut saw_kw = false;
    for tt in item {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(id);
            }
            if s == "struct" || s == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Collect the generic parameter names of the item (`<T, U: Bound>` -> `T, U`).
/// Lifetimes and const generics are not used by any annotated type in this
/// workspace, so only plain type parameters are handled.
fn generic_params(item: TokenStream) -> Vec<String> {
    let mut out = Vec::new();
    let mut tokens = item.into_iter();
    // Skip until the type name, then inspect what follows.
    let mut saw_kw = false;
    let mut named = false;
    let mut depth = 0usize;
    let mut expecting_param = false;
    for tt in tokens.by_ref() {
        match &tt {
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if named && depth > 0 && expecting_param {
                    out.push(s);
                    expecting_param = false;
                } else if saw_kw && !named {
                    named = true;
                } else if !saw_kw && (s == "struct" || s == "enum") {
                    saw_kw = true;
                }
            }
            TokenTree::Punct(p) => match p.as_char() {
                '<' => {
                    if named {
                        depth += 1;
                        if depth == 1 {
                            expecting_param = true;
                        }
                    }
                }
                '>' => {
                    if depth > 0 {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                }
                ',' if depth == 1 => expecting_param = true,
                ':' if depth == 1 => expecting_param = false,
                _ => {}
            },
            _ => {
                if named && depth == 0 {
                    break;
                }
            }
        }
    }
    out
}

fn marker_impl(trait_name: &str, item: TokenStream) -> TokenStream {
    let Some(name) = type_name(item.clone()) else {
        return TokenStream::new();
    };
    let params = generic_params(item);
    let src = if params.is_empty() {
        format!("impl serde::{trait_name} for {name} {{}}")
    } else {
        let list = params.join(", ");
        format!("impl<{list}> serde::{trait_name} for {name}<{list}> {{}}")
    };
    src.parse().unwrap_or_default()
}

/// No-op `Serialize` derive: emits a marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(item: TokenStream) -> TokenStream {
    marker_impl("Serialize", item)
}

/// No-op `Deserialize` derive: emits a marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(item: TokenStream) -> TokenStream {
    marker_impl("Deserialize", item)
}
