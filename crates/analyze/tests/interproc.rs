//! Interprocedural fixtures: every test here spans at least two files,
//! and the determinism-taint cases cross a crate boundary — the wrapped
//! `Instant` lives in `crates/hw` while the finding lands at the call
//! site in `crates/sched`. This is the acceptance fixture for the
//! call-graph layer: a per-file analysis cannot produce these findings.

use northup_analyze::analyze_sources;
use northup_analyze::diag::rules;

fn world(srcs: &[(&str, &str)]) -> northup_analyze::Report {
    let owned: Vec<(String, String)> = srcs
        .iter()
        .map(|(p, s)| (p.to_string(), s.to_string()))
        .collect();
    analyze_sources(&owned)
}

/// A nondeterminism source and a wrapper around it, both in `crates/hw`
/// — outside R8's modeled-path scope, so neither is a finding *there*.
const HW_ENTROPY: &str = "\
pub fn jitter_seed() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().subsec_nanos() as u64
}

pub fn seed_mix(salt: u64) -> u64 {
    jitter_seed() ^ salt
}
";

#[test]
fn taint_crosses_crate_boundary_through_a_wrapper() {
    let r = world(&[
        ("crates/hw/src/entropy.rs", HW_ENTROPY),
        (
            "crates/sched/src/pick.rs",
            "fn choose(weights: &[u64]) -> usize {\n\
             \x20   let seed = seed_mix(17);\n\
             \x20   (seed as usize) % weights.len()\n\
             }\n",
        ),
    ]);
    let taint: Vec<_> = r
        .failing()
        .filter(|f| f.rule == rules::DETERMINISM_TAINT)
        .collect();
    assert_eq!(taint.len(), 1, "{taint:?}");
    let f = taint[0];
    // The finding is at the sched call site, two hops from the source.
    assert_eq!(f.path, "crates/sched/src/pick.rs");
    assert_eq!(f.line, 2);
    assert!(f.message.contains("call to `seed_mix`"), "{}", f.message);
    // The witness names the defining file in the *other* crate and the
    // full chain down to the direct source.
    assert!(
        f.message.contains("crates/hw/src/entropy.rs"),
        "{}",
        f.message
    );
    assert!(
        f.message.contains("seed_mix → jitter_seed"),
        "{}",
        f.message
    );
    assert_eq!(f.severity().as_str(), "error");
}

#[test]
fn direct_call_to_remote_source_is_flagged() {
    let r = world(&[
        ("crates/hw/src/entropy.rs", HW_ENTROPY),
        (
            "crates/fleet/src/spread.rs",
            "fn scatter() -> u64 {\n\
             \x20   jitter_seed()\n\
             }\n",
        ),
    ]);
    let taint: Vec<_> = r
        .failing()
        .filter(|f| f.rule == rules::DETERMINISM_TAINT)
        .collect();
    assert_eq!(taint.len(), 1, "{taint:?}");
    assert_eq!(taint[0].path, "crates/fleet/src/spread.rs");
    assert_eq!(taint[0].line, 2);
}

#[test]
fn carve_out_wrappers_do_not_propagate_taint() {
    // sim/src/time.rs is the sanctioned wrapper for real time: its fns
    // never become tainted, so sched code calling them stays clean.
    let r = world(&[
        (
            "crates/sim/src/time.rs",
            "pub fn wall_anchor() -> u64 {\n\
             \x20   let t = std::time::Instant::now();\n\
             \x20   t.elapsed().as_nanos() as u64\n\
             }\n",
        ),
        (
            "crates/sched/src/anchor.rs",
            "fn resync() -> u64 {\n\
             \x20   wall_anchor()\n\
             }\n",
        ),
    ]);
    assert_eq!(
        r.failing()
            .filter(|f| f.rule == rules::DETERMINISM_TAINT)
            .count(),
        0
    );
}

#[test]
fn test_fns_do_not_poison_same_named_runtime_fns() {
    // Propagation is name-keyed; a #[cfg(test)] fn that touches Instant
    // must not taint an unrelated runtime fn that shares its name.
    let r = world(&[
        (
            "crates/hw/src/probe.rs",
            "#[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn poll() { let t = std::time::Instant::now(); let _ = t; }\n\
             }\n",
        ),
        (
            "crates/sched/src/duty.rs",
            "fn poll() -> u64 { 7 }\n\
             fn tick() -> u64 {\n\
             \x20   poll()\n\
             }\n",
        ),
    ]);
    assert_eq!(
        r.failing()
            .filter(|f| f.rule == rules::DETERMINISM_TAINT)
            .count(),
        0
    );
}

#[test]
fn tainted_call_site_is_suppressable_with_justification() {
    let r = world(&[
        ("crates/hw/src/entropy.rs", HW_ENTROPY),
        (
            "crates/sched/src/banner.rs",
            "fn banner_tag() -> u64 {\n\
             \x20   // analyze:allow(determinism-taint): log banner only; never schedule-visible\n\
             \x20   seed_mix(9)\n\
             }\n",
        ),
    ]);
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

#[test]
fn unit_mismatch_at_cross_crate_call_site() {
    // The callee declares its parameter in bytes (crates/fleet); the
    // caller passes nanoseconds (crates/sched). The finding lands at the
    // caller's line.
    let fleet = "pub fn admit(payload_bytes: u64) -> bool {\n\
                 \x20   payload_bytes > 0\n\
                 }\n";
    let r = world(&[
        ("crates/fleet/src/link.rs", fleet),
        (
            "crates/sched/src/gate.rs",
            "fn gate(deadline_ns: u64) -> bool {\n\
             \x20   admit(deadline_ns)\n\
             }\n",
        ),
    ]);
    let units: Vec<_> = r
        .failing()
        .filter(|f| f.rule == rules::UNIT_CONSISTENCY)
        .collect();
    assert_eq!(units.len(), 1, "{units:?}");
    assert_eq!(units[0].path, "crates/sched/src/gate.rs");
    assert_eq!(units[0].line, 2);
    assert!(
        units[0].message.contains("parameter `payload_bytes`"),
        "{}",
        units[0].message
    );
    // Passing an actual byte count is clean.
    let r = world(&[
        ("crates/fleet/src/link.rs", fleet),
        (
            "crates/sched/src/gate.rs",
            "fn gate(staged_bytes: u64) -> bool {\n\
             \x20   admit(staged_bytes)\n\
             }\n",
        ),
    ]);
    assert_eq!(
        r.failing()
            .filter(|f| f.rule == rules::UNIT_CONSISTENCY)
            .count(),
        0
    );
}
