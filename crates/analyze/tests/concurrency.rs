//! Fixture tests for the concurrency soundness rules (R10–R12): every
//! rule gets a seeded true-positive with an exact `file:line` assert, a
//! clean fixture exercising its carve-outs, and a
//! suppressed-with-justification fixture — all through the public
//! [`northup_analyze::analyze_sources`] entry point, exactly as the CLI
//! runs.

use northup_analyze::analyze_sources;
use northup_analyze::diag::rules;

fn one(path: &str, src: &str) -> northup_analyze::Report {
    analyze_sources(&[(path.to_string(), src.to_string())])
}

fn failing_count(r: &northup_analyze::Report, rule: &str) -> usize {
    r.failing().filter(|f| f.rule == rule).count()
}

fn failing_lines(r: &northup_analyze::Report, rule: &str) -> Vec<u32> {
    r.failing()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// --------------------------------------------------------------- R10

/// A fixture shared struct: `epoch` is declared guarded by `lock`.
const GUARDED_DECL: &str = "\
pub struct Table {
    lock: Mutex<()>,
    /// guarded by `lock`
    epoch: u64,
}
";

#[test]
fn lockset_guarded_access_without_guard_true_positive() {
    let src = format!("{GUARDED_DECL}fn bad(t: &Table) -> u64 {{\n    t.epoch\n}}\n");
    let r = one("crates/exec/src/table.rs", &src);
    assert_eq!(failing_lines(&r, rules::LOCK_SET), vec![7]);
    let f = r.failing().find(|f| f.rule == rules::LOCK_SET).unwrap();
    assert!(f.message.contains("guarded by `lock`"), "{}", f.message);
    assert!(
        f.message.contains("crates/exec/src/table.rs:4"),
        "declaration site missing: {}",
        f.message
    );
}

#[test]
fn lockset_guard_extent_ends_at_drop() {
    // Covered while the let-bound guard lives; flagged after `drop(g)`,
    // on the exact line.
    let src = format!(
        "{GUARDED_DECL}fn churn(t: &Table) -> u64 {{\n\
         \x20   let g = t.lock.lock();\n\
         \x20   let early = t.epoch;\n\
         \x20   drop(g);\n\
         \x20   early + t.epoch\n\
         }}\n"
    );
    let r = one("crates/exec/src/table.rs", &src);
    assert_eq!(failing_lines(&r, rules::LOCK_SET), vec![10]);
}

#[test]
fn lockset_entry_held_helper_is_clean() {
    // `helper` is only ever invoked under `lock`: the entry-held
    // fixpoint proves the guard and the access is clean.
    let src = format!(
        "{GUARDED_DECL}fn outer(t: &Table) -> u64 {{\n\
         \x20   let _g = t.lock.lock();\n\
         \x20   helper(t)\n\
         }}\n\
         fn helper(t: &Table) -> u64 {{\n\
         \x20   t.epoch\n\
         }}\n"
    );
    let r = one("crates/exec/src/table.rs", &src);
    assert_eq!(failing_count(&r, rules::LOCK_SET), 0);
}

#[test]
fn lockset_escaping_write_caught_through_call_graph_hop() {
    // The seeded race: a closure escapes into `spawn`, calls a helper,
    // and the helper writes a plain field of a shared struct with no
    // lock held — caught one call-graph hop away from the spawn site,
    // with the witness chain back to it.
    let src = "\
pub struct Stats {
    total: AtomicU64,
    hits: u64,
}
fn launch(pool: &ThreadPool, s: &Arc<Stats>) {
    pool.spawn(move || bump(s));
}
fn bump(s: &Stats) {
    s.hits += 1;
}
";
    let r = one("crates/exec/src/stats.rs", src);
    assert_eq!(failing_lines(&r, rules::LOCK_SET), vec![9]);
    let f = r.failing().find(|f| f.rule == rules::LOCK_SET).unwrap();
    assert!(
        f.message
            .contains("closure passed to `spawn` at crates/exec/src/stats.rs:6"),
        "{}",
        f.message
    );
    assert!(f.message.contains("bump"), "{}", f.message);
}

#[test]
fn lockset_write_inside_spawn_closure_true_positive() {
    let src = "\
pub struct Stats {
    total: AtomicU64,
    hits: u64,
}
fn launch(pool: &ThreadPool, s: &Arc<Stats>) {
    pool.spawn(move || s.hits += 1);
}
";
    let r = one("crates/exec/src/stats.rs", src);
    assert_eq!(failing_lines(&r, rules::LOCK_SET), vec![6]);
}

#[test]
fn lockset_clean_cases() {
    // A write from non-escaping code, a read from escaping code, and a
    // guarded-by-lock write under the guard are all clean.
    let src = "\
pub struct Stats {
    total: AtomicU64,
    lock: Mutex<()>,
    hits: u64,
}
fn local_only(s: &mut Stats) {
    s.hits += 1;
}
fn launch(pool: &ThreadPool, s: &Arc<Stats>) {
    pool.spawn(move || report(s));
}
fn report(s: &Stats) -> u64 {
    s.hits
}
fn under_lock(s: &Stats) {
    let _g = s.lock.lock();
    s.hits += 1;
}
";
    let r = one("crates/exec/src/stats.rs", src);
    assert_eq!(failing_count(&r, rules::LOCK_SET), 0);
    // Outside the concurrency scope the rule does not run.
    let src = format!("{GUARDED_DECL}fn bad(t: &Table) -> u64 {{ t.epoch }}\n");
    let r = one("crates/core/src/table.rs", &src);
    assert_eq!(failing_count(&r, rules::LOCK_SET), 0);
}

#[test]
fn lockset_suppressed_with_justification() {
    let src = format!(
        "{GUARDED_DECL}fn snapshot(t: &Table) -> u64 {{\n\
         \x20   // analyze:allow(lock-set): read-only stats snapshot; a torn epoch only skews one log line\n\
         \x20   t.epoch\n\
         }}\n"
    );
    let r = one("crates/exec/src/table.rs", &src);
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// --------------------------------------------------------------- R11

#[test]
fn atomic_relaxed_load_on_consumption_edge_true_positive() {
    let src = "\
pub struct Gate {
    ready: AtomicBool,
}
fn publish(g: &Gate) {
    g.ready.store(true, Ordering::Release);
}
fn consume(g: &Gate) -> bool {
    g.ready.load(Ordering::Relaxed)
}
";
    let r = one("crates/sched/src/gate.rs", src);
    assert_eq!(failing_lines(&r, rules::ATOMIC_ORDER), vec![8]);
    let f = r.failing().find(|f| f.rule == rules::ATOMIC_ORDER).unwrap();
    assert!(f.message.contains("consumption edge"), "{}", f.message);
    assert!(
        f.message.contains("Release `store`"),
        "protocol peer missing: {}",
        f.message
    );
}

#[test]
fn atomic_relaxed_store_on_publication_edge_through_call_graph_hop() {
    // The seeded Relaxed-on-publication fixture: the flawed store sits
    // in a helper invoked from a spawned closure (a call-graph hop off
    // the thread boundary); the Acquire load elsewhere makes `ready` a
    // protocol atomic, so the Relaxed store is flagged at its exact
    // line with the consumer as witness.
    let src = "\
pub struct Gate {
    ready: AtomicBool,
}
fn launch(pool: &ThreadPool, g: &Arc<Gate>) {
    pool.spawn(move || publish(g));
}
fn publish(g: &Gate) {
    g.ready.store(true, Ordering::Relaxed);
}
fn consume(g: &Gate) -> bool {
    g.ready.load(Ordering::Acquire)
}
";
    let r = one("crates/exec/src/gate.rs", src);
    assert_eq!(failing_lines(&r, rules::ATOMIC_ORDER), vec![8]);
    let f = r.failing().find(|f| f.rule == rules::ATOMIC_ORDER).unwrap();
    assert!(f.message.contains("publication edge"), "{}", f.message);
    assert!(
        f.message
            .contains("Acquire `load` at crates/exec/src/gate.rs:11"),
        "{}",
        f.message
    );
}

#[test]
fn atomic_clean_cases() {
    // A pure Relaxed counter has no protocol edges; a Relaxed load in a
    // `fence(SeqCst)` fn is the Chase–Lev idiom; the CAS failure
    // ordering is canonically Relaxed; test code is out of scope.
    let src = "\
pub struct Ctr {
    n: AtomicU64,
    top: AtomicIsize,
}
fn add(c: &Ctr) {
    c.n.fetch_add(1, Ordering::Relaxed);
}
fn get(c: &Ctr) -> u64 {
    c.n.load(Ordering::Relaxed)
}
fn steal(c: &Ctr) -> isize {
    let t = c.top.load(Ordering::Relaxed);
    std::sync::atomic::fence(Ordering::SeqCst);
    t
}
fn claim(c: &Ctr, t: isize) -> bool {
    c.top
        .compare_exchange(t, t + 1, Ordering::AcqRel, Ordering::Relaxed)
        .is_ok()
}
#[cfg(test)]
mod tests {
    #[test]
    fn t(c: &super::Ctr) {
        c.top.store(1, Ordering::Relaxed);
    }
}
";
    let r = one("crates/exec/src/ctr.rs", src);
    assert_eq!(failing_count(&r, rules::ATOMIC_ORDER), 0);
}

#[test]
fn atomic_suppressed_with_justification() {
    let src = "\
pub struct Gate {
    ready: AtomicBool,
}
fn publish(g: &Gate) {
    g.ready.store(true, Ordering::Release);
}
fn consume(g: &Gate) -> bool {
    // analyze:allow(atomic-order): the caller is the owner thread; its own program order sequences this read
    g.ready.load(Ordering::Relaxed)
}
";
    let r = one("crates/sched/src/gate.rs", src);
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// --------------------------------------------------------------- R12

#[test]
fn blocking_direct_blocker_under_guard_true_positive() {
    let src = "\
fn convoy(s: &S, rx: &Receiver<u64>) {
    let _g = s.state.lock();
    let _ = rx.recv();
}
";
    let r = one("crates/exec/src/convoy.rs", src);
    assert_eq!(failing_lines(&r, rules::BLOCKING_EXTENT), vec![3]);
    let f = r
        .failing()
        .find(|f| f.rule == rules::BLOCKING_EXTENT)
        .unwrap();
    assert!(f.message.contains("`recv` blocks"), "{}", f.message);
    assert!(f.message.contains("guard `state`"), "{}", f.message);
}

#[test]
fn blocking_taint_reaches_through_a_helper() {
    // `pause` blocks only transitively (it calls `sleep`); holding the
    // guard across the `pause()` call is flagged with the taint chain.
    let src = "\
fn convoy(s: &S) {
    let _g = s.state.lock();
    pause();
}
fn pause() {
    std::thread::sleep(Duration::from_millis(1));
}
";
    let r = one("crates/sched/src/convoy.rs", src);
    assert_eq!(failing_lines(&r, rules::BLOCKING_EXTENT), vec![3]);
    let f = r
        .failing()
        .find(|f| f.rule == rules::BLOCKING_EXTENT)
        .unwrap();
    assert!(f.message.contains("may block via"), "{}", f.message);
}

#[test]
fn blocking_nested_acquisition_true_positive() {
    let src = "\
fn nested(s: &S) {
    let _a = s.alpha.lock();
    let _b = s.beta.lock();
}
";
    let r = one("crates/exec/src/nested.rs", src);
    assert_eq!(failing_lines(&r, rules::BLOCKING_EXTENT), vec![3]);
    let f = r
        .failing()
        .find(|f| f.rule == rules::BLOCKING_EXTENT)
        .unwrap();
    assert!(
        f.message.contains("acquiring `beta` while guard `alpha`"),
        "{}",
        f.message
    );
}

#[test]
fn blocking_clean_cases() {
    // A condvar wait handed the held guard is the sleep protocol, not a
    // convoy; dropping the guard before blocking is the fix the rule
    // asks for; atomics under a guard never block.
    let src = "\
fn idle(p: &P) {
    let mut g = p.lock.lock();
    p.cond.wait_for(&mut g, IDLE_WAIT);
}
fn polite(s: &S, rx: &Receiver<u64>) {
    let g = s.state.lock();
    drop(g);
    let _ = rx.recv();
}
fn counted(s: &S) {
    let _g = s.state.lock();
    s.hits.fetch_add(1, Ordering::Relaxed);
}
";
    let r = one("crates/exec/src/quiet.rs", src);
    assert_eq!(failing_count(&r, rules::BLOCKING_EXTENT), 0);
}

#[test]
fn blocking_suppressed_with_justification() {
    let src = "\
fn worker(s: &S) {
    let _g = s.lock.lock();
    // analyze:allow(blocking-extent): the re-check must happen under the sleep lock to avoid lost wakeups
    let empty = s.injector.lock().is_empty();
    let _ = empty;
}
";
    let r = one("crates/exec/src/worker.rs", src);
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}
