//! Lexer torture tests: raw strings with multiple hashes, nested block
//! comments, byte literals, and the interactions between them. The
//! analyzer's soundness rests on the lexer never mistaking literal or
//! comment *content* for code — a `panic!` inside an `r##"…"##` string
//! must not become a finding, and an `analyze:allow` inside a nested
//! block comment must still parse as one comment token.

use northup_analyze::lexer::{lex, TokKind};

fn idents(src: &str) -> Vec<String> {
    lex(src)
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.clone())
        .collect()
}

fn count(src: &str, kind: TokKind) -> usize {
    lex(src).iter().filter(|t| t.kind == kind).count()
}

#[test]
fn multi_hash_raw_strings_swallow_their_content() {
    // One hash, two hashes, three hashes — content with quotes, hashes,
    // and code-looking text must stay inside one Str token.
    let one = r####"let a = r#"panic!("x") "quoted" Instant"#;"####;
    assert_eq!(idents(one), vec!["let", "a"]);
    assert_eq!(count(one, TokKind::Str), 1);

    // `"#` inside an r##"..."## string does NOT terminate it.
    let two = "let b = r##\"inner \"# still inside # \" end\"##;";
    assert_eq!(count(two, TokKind::Str), 1);
    assert_eq!(idents(two), vec!["let", "b"]);

    let three = "let c = r###\"has \"## and \"# and \" inside\"###; let d = 1;";
    assert_eq!(count(three, TokKind::Str), 1);
    assert_eq!(idents(three), vec!["let", "c", "let", "d"]);
}

#[test]
fn byte_raw_strings_and_byte_strings() {
    let src = "let a = br#\"thread_rng \"quoted\"\"#; let b = b\"SystemTime\";";
    assert_eq!(count(src, TokKind::Str), 2);
    assert!(!idents(src)
        .iter()
        .any(|i| i == "thread_rng" || i == "SystemTime"));
}

#[test]
fn raw_string_prefix_is_not_split_off_longer_idents() {
    // `error"x"` is ident `error` then string — the trailing `r` of the
    // ident must not start a raw string.
    let src = "let error = 1; error\"x\";";
    assert!(idents(src).contains(&"error".to_string()));
    assert_eq!(count(src, TokKind::Str), 1);
}

#[test]
fn nested_block_comments_close_at_matching_depth() {
    let src = "/* outer /* inner /* deep */ still inner */ still outer */ fn after() {}";
    let toks = lex(src);
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
        1
    );
    assert_eq!(idents(src), vec!["fn", "after"]);
    // The whole nested comment is one token whose text spans all levels.
    let c = toks.iter().find(|t| t.kind == TokKind::Comment).unwrap();
    assert!(c.text.contains("deep"));
}

#[test]
fn allow_directive_inside_nested_block_comment_is_one_comment() {
    let src = "/* analyze:allow(panic-paths): /* nested */ justified */ x.unwrap();";
    let toks = lex(src);
    let comments: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
    assert_eq!(comments.len(), 1);
    assert!(comments[0].text.starts_with("/* analyze:allow"));
    assert!(comments[0].text.ends_with("justified */"));
}

#[test]
fn byte_char_literals_do_not_leak_an_ident() {
    let src = "let nl = b'\\n'; let ch = b'x'; let q = 'q';";
    let toks = lex(src);
    assert_eq!(
        toks.iter().filter(|t| t.kind == TokKind::Char).count(),
        3,
        "b'\\n', b'x', and 'q' are all char-class tokens"
    );
    // No stray `b` idents from the prefixes.
    assert_eq!(idents(src), vec!["let", "nl", "let", "ch", "let", "q"]);
}

#[test]
fn line_numbers_survive_multiline_raw_strings_and_comments() {
    let src = "a\nr#\"line\ntwo\nthree\"#\n/* one\ntwo */\nz";
    let toks = lex(src);
    let a = toks.iter().find(|t| t.is_ident("a")).unwrap();
    let z = toks.iter().find(|t| t.is_ident("z")).unwrap();
    assert_eq!(a.line, 1);
    assert_eq!(z.line, 7);
}

#[test]
fn unterminated_torture_inputs_do_not_panic() {
    lex("r###\"never closed\"## almost");
    lex("/* /* /* deeply unterminated */ */");
    lex("b'");
    lex("b'\\");
    lex("r#");
}

#[test]
fn hash_count_must_match_exactly() {
    // r#"..."## — the extra hash after the close is its own token, and
    // the string still terminates at `"#`.
    let src = "let x = r#\"s\"#; #[attr] fn f() {}";
    let toks = lex(src);
    assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    assert!(idents(src).contains(&"attr".to_string()));
}
