//! Per-rule fixture tests: every rule has a true-positive fixture, a
//! clean fixture, and a suppressed-with-justification fixture, exercised
//! through the public [`northup_analyze::analyze_sources`] entry point
//! exactly as the CLI does.

use northup_analyze::analyze_sources;
use northup_analyze::diag::rules;

fn one(path: &str, src: &str) -> northup_analyze::Report {
    analyze_sources(&[(path.to_string(), src.to_string())])
}

fn failing_count(r: &northup_analyze::Report, rule: &str) -> usize {
    r.failing().filter(|f| f.rule == rule).count()
}

// ---------------------------------------------------------------- R1

#[test]
fn determinism_true_positive() {
    let r = one(
        "crates/core/src/clock.rs",
        "use std::time::Instant;\nfn now() { let t = Instant::now(); }\n",
    );
    assert!(failing_count(&r, rules::DETERMINISM_SOURCES) >= 1);
}

#[test]
fn determinism_clean_and_exemptions() {
    // Virtual time in core is fine.
    let r = one(
        "crates/core/src/clock.rs",
        "use northup_sim::SimTime;\nfn now(t: SimTime) -> SimTime { t }\n",
    );
    assert_eq!(failing_count(&r, rules::DETERMINISM_SOURCES), 0);
    // The two carve-outs: sim's own clock module and sched's real backend.
    for path in ["crates/sim/src/time.rs", "crates/sched/src/real.rs"] {
        let r = one(
            path,
            "use std::time::Instant;\nfn t() { Instant::now(); }\n",
        );
        assert_eq!(failing_count(&r, rules::DETERMINISM_SOURCES), 0, "{path}");
    }
    // Outside the scoped crates the rule does not apply at all.
    let r = one(
        "crates/bench/src/wall.rs",
        "use std::time::Instant;\nfn t() { Instant::now(); }\n",
    );
    assert_eq!(failing_count(&r, rules::DETERMINISM_SOURCES), 0);
}

#[test]
fn determinism_suppressed_with_justification() {
    let r = one(
        "crates/sim/src/warmup.rs",
        "// analyze:allow(determinism-sources): wall-clock used only for a log banner\n\
         fn t() { std::time::Instant::now(); }\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R2

#[test]
fn ordered_iteration_true_positive() {
    let r = one(
        "crates/sched/src/table.rs",
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
    );
    assert!(failing_count(&r, rules::ORDERED_ITERATION) >= 1);
}

#[test]
fn ordered_iteration_clean() {
    let r = one(
        "crates/sched/src/table.rs",
        "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n",
    );
    assert_eq!(failing_count(&r, rules::ORDERED_ITERATION), 0);
    // HashSet in test code is out of scope.
    let r = one(
        "crates/core/src/x.rs",
        "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() { let _s: HashSet<u8> = HashSet::new(); }\n}\n",
    );
    assert_eq!(failing_count(&r, rules::ORDERED_ITERATION), 0);
}

#[test]
fn ordered_iteration_suppressed_with_justification() {
    let r = one(
        "crates/core/src/cache.rs",
        "// analyze:allow(ordered-iteration): cache is never iterated, only probed by key\n\
         use std::collections::HashMap;\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R3

#[test]
fn lease_true_positive() {
    let r = one(
        "crates/apps/src/leak.rs",
        "fn leak(rt: &Runtime) {\n    let b = rt.alloc(1024, root).unwrap();\n    let _ = b;\n}\n",
    );
    assert!(failing_count(&r, rules::LEASE_DISCIPLINE) >= 1);
}

#[test]
fn lease_clean_release_and_escape() {
    // Released in the same item: clean.
    let r = one(
        "crates/apps/src/ok.rs",
        "fn ok(rt: &Runtime) {\n    let b = rt.alloc(1024, root).unwrap();\n    rt.release(b).unwrap();\n}\n",
    );
    assert_eq!(failing_count(&r, rules::LEASE_DISCIPLINE), 0);
    // Handle escapes via the return type: caller owns it, clean.
    let r = one(
        "crates/apps/src/escape.rs",
        "fn escape(rt: &Runtime) -> Result<BufferHandle> {\n    rt.alloc(1024, root)\n}\n",
    );
    assert_eq!(failing_count(&r, rules::LEASE_DISCIPLINE), 0);
}

#[test]
fn lease_suppressed_with_justification() {
    let r = one(
        "crates/apps/src/pinned.rs",
        "fn pinned(rt: &Runtime) {\n    // analyze:allow(lease-discipline): buffer lives for the whole run; Runtime drop reclaims it\n    let b = rt.alloc(1024, root).unwrap();\n    let _ = b;\n}\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R4

#[test]
fn panic_paths_true_positive() {
    let r = one(
        "crates/core/src/hot.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 1);
    let r = one("crates/exec/src/hot.rs", "fn f() { panic!(\"boom\"); }\n");
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 1);
    let r = one(
        "crates/sched/src/hot.rs",
        "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 1);
}

#[test]
fn panic_paths_clean() {
    // Typed error instead of panic: clean.
    let r = one(
        "crates/core/src/hot.rs",
        "fn f(x: Option<u32>) -> Result<u32> { x.ok_or(NorthupError::Empty) }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
    // unwrap in #[cfg(test)] code is fine.
    let r = one(
        "crates/core/src/hot.rs",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
    // `unwrap` mentioned in a comment or string is not a finding.
    let r = one(
        "crates/core/src/hot.rs",
        "// never unwrap() here\nfn f() -> &'static str { \"x.unwrap()\" }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
    // apps is outside R4's scope.
    let r = one("crates/apps/src/hot.rs", "fn f() { x.unwrap(); }\n");
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
}

#[test]
fn panic_paths_suppressed_with_justification() {
    let r = one(
        "crates/exec/src/hot.rs",
        "fn f(x: Option<u32>) -> u32 {\n    // analyze:allow(panic-paths): invariant established two lines up; unreachable in practice\n    x.unwrap()\n}\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R5

#[test]
fn lock_order_true_positive() {
    let r = one(
        "crates/exec/src/locks.rs",
        "fn ab(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
         fn ba(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }\n",
    );
    assert!(failing_count(&r, rules::LOCK_ORDER) >= 1);
}

#[test]
fn lock_order_clean() {
    // Consistent order across functions: no cycle.
    let r = one(
        "crates/exec/src/locks.rs",
        "fn ab(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
         fn ab2(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n",
    );
    assert_eq!(failing_count(&r, rules::LOCK_ORDER), 0);
    // Dropping the first guard before taking the second breaks the edge.
    let r = one(
        "crates/exec/src/locks.rs",
        "fn ab(s: &S) { let a = s.alpha.lock(); drop(a); let _b = s.beta.lock(); }\n\
         fn ba(s: &S) { let b = s.beta.lock(); drop(b); let _a = s.alpha.lock(); }\n",
    );
    assert_eq!(failing_count(&r, rules::LOCK_ORDER), 0);
}

#[test]
fn lock_order_transitive_cycle_through_calls() {
    // f holds alpha and calls g, which takes beta; h orders them the
    // other way — a cycle only visible through the call graph.
    let r = one(
        "crates/sched/src/locks.rs",
        "fn f(s: &S) { let _a = s.alpha.lock(); g(s); }\n\
         fn g(s: &S) { let _b = s.beta.lock(); }\n\
         fn h(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }\n",
    );
    assert!(failing_count(&r, rules::LOCK_ORDER) >= 1);
}

#[test]
fn lock_order_suppressed_with_justification() {
    // A cycle reports one finding per edge, so each participating
    // acquisition site needs its own justified allow.
    let r = one(
        "crates/exec/src/locks.rs",
        "// analyze:allow(lock-order): ab runs only on the worker path, never concurrently with ba\n\
         fn ab(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
         // analyze:allow(lock-order): ba only runs at shutdown after workers quiesce\n\
         fn ba(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }\n",
    );
    assert_eq!(failing_count(&r, rules::LOCK_ORDER), 0);
    assert!(r.findings.iter().any(|f| f.suppressed));
}

// ------------------------------------------------- suppression hygiene

#[test]
fn empty_justification_always_fails() {
    let r = one(
        "crates/core/src/cache.rs",
        "// analyze:allow(ordered-iteration):\nuse std::collections::HashMap;\n",
    );
    // The HashMap finding may be suppressed, but the empty justification
    // itself is a failing meta-finding — the tree cannot go green.
    assert!(failing_count(&r, rules::SUPPRESSION) >= 1);
    assert!(!r.is_clean());
}

#[test]
fn unknown_rule_in_allow_fails() {
    let r = one(
        "crates/core/src/cache.rs",
        "// analyze:allow(made-up-rule): sounds legit\nfn f() {}\n",
    );
    assert!(failing_count(&r, rules::SUPPRESSION) >= 1);
}

#[test]
fn unused_justified_allow_is_harmless() {
    let r = one(
        "crates/core/src/fine.rs",
        "// analyze:allow(panic-paths): defensive allow on a line that is clean\nfn f() {}\n",
    );
    assert_eq!(r.failing().count(), 0);
}
