//! Per-rule fixture tests: every rule has a true-positive fixture, a
//! clean fixture, and a suppressed-with-justification fixture, exercised
//! through the public [`northup_analyze::analyze_sources`] entry point
//! exactly as the CLI does. The seeded-bad fixtures for R6–R9 assert
//! exact `file:line` diagnostics.

use northup_analyze::analyze_sources;
use northup_analyze::diag::rules;

fn one(path: &str, src: &str) -> northup_analyze::Report {
    analyze_sources(&[(path.to_string(), src.to_string())])
}

fn failing_count(r: &northup_analyze::Report, rule: &str) -> usize {
    r.failing().filter(|f| f.rule == rule).count()
}

fn failing_lines(r: &northup_analyze::Report, rule: &str) -> Vec<u32> {
    r.failing()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

// ---------------------------------------------------------------- R2

#[test]
fn ordered_iteration_true_positive() {
    let r = one(
        "crates/sched/src/table.rs",
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n",
    );
    assert!(failing_count(&r, rules::ORDERED_ITERATION) >= 1);
}

#[test]
fn ordered_iteration_clean() {
    let r = one(
        "crates/sched/src/table.rs",
        "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); }\n",
    );
    assert_eq!(failing_count(&r, rules::ORDERED_ITERATION), 0);
    // HashSet in test code is out of scope.
    let r = one(
        "crates/core/src/x.rs",
        "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n    #[test]\n    fn t() { let _s: HashSet<u8> = HashSet::new(); }\n}\n",
    );
    assert_eq!(failing_count(&r, rules::ORDERED_ITERATION), 0);
}

#[test]
fn ordered_iteration_suppressed_with_justification() {
    let r = one(
        "crates/core/src/cache.rs",
        "// analyze:allow(ordered-iteration): cache is never iterated, only probed by key\n\
         use std::collections::HashMap;\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R3

#[test]
fn lease_true_positive() {
    let r = one(
        "crates/apps/src/leak.rs",
        "fn leak(rt: &Runtime) {\n    let b = rt.alloc(1024, root).unwrap();\n    let _ = b;\n}\n",
    );
    assert!(failing_count(&r, rules::LEASE_DISCIPLINE) >= 1);
}

#[test]
fn lease_clean_release_and_escape() {
    // Released in the same item: clean.
    let r = one(
        "crates/apps/src/ok.rs",
        "fn ok(rt: &Runtime) {\n    let b = rt.alloc(1024, root).unwrap();\n    rt.release(b).unwrap();\n}\n",
    );
    assert_eq!(failing_count(&r, rules::LEASE_DISCIPLINE), 0);
    // Handle escapes via the return type: caller owns it, clean.
    let r = one(
        "crates/apps/src/escape.rs",
        "fn escape(rt: &Runtime) -> Result<BufferHandle> {\n    rt.alloc(1024, root)\n}\n",
    );
    assert_eq!(failing_count(&r, rules::LEASE_DISCIPLINE), 0);
}

#[test]
fn lease_suppressed_with_justification() {
    let r = one(
        "crates/apps/src/pinned.rs",
        "fn pinned(rt: &Runtime) {\n    // analyze:allow(lease-discipline): buffer lives for the whole run; Runtime drop reclaims it\n    let b = rt.alloc(1024, root).unwrap();\n    let _ = b;\n}\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R4

#[test]
fn panic_paths_true_positive() {
    let r = one(
        "crates/core/src/hot.rs",
        "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 1);
    let r = one("crates/exec/src/hot.rs", "fn f() { panic!(\"boom\"); }\n");
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 1);
    let r = one(
        "crates/sched/src/hot.rs",
        "fn f(x: Option<u32>) -> u32 { x.expect(\"present\") }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 1);
}

#[test]
fn panic_paths_clean() {
    // Typed error instead of panic: clean.
    let r = one(
        "crates/core/src/hot.rs",
        "fn f(x: Option<u32>) -> Result<u32> { x.ok_or(NorthupError::Empty) }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
    // unwrap in #[cfg(test)] code is fine.
    let r = one(
        "crates/core/src/hot.rs",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
    // `unwrap` mentioned in a comment or string is not a finding.
    let r = one(
        "crates/core/src/hot.rs",
        "// never unwrap() here\nfn f() -> &'static str { \"x.unwrap()\" }\n",
    );
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
    // apps is outside R4's scope.
    let r = one("crates/apps/src/hot.rs", "fn f() { x.unwrap(); }\n");
    assert_eq!(failing_count(&r, rules::PANIC_PATHS), 0);
}

#[test]
fn panic_paths_suppressed_with_justification() {
    let r = one(
        "crates/exec/src/hot.rs",
        "fn f(x: Option<u32>) -> u32 {\n    // analyze:allow(panic-paths): invariant established two lines up; unreachable in practice\n    x.unwrap()\n}\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R5

#[test]
fn lock_order_true_positive() {
    let r = one(
        "crates/exec/src/locks.rs",
        "fn ab(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
         fn ba(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }\n",
    );
    assert!(failing_count(&r, rules::LOCK_ORDER) >= 1);
}

#[test]
fn lock_order_clean() {
    // Consistent order across functions: no cycle.
    let r = one(
        "crates/exec/src/locks.rs",
        "fn ab(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
         fn ab2(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n",
    );
    assert_eq!(failing_count(&r, rules::LOCK_ORDER), 0);
    // Dropping the first guard before taking the second breaks the edge.
    let r = one(
        "crates/exec/src/locks.rs",
        "fn ab(s: &S) { let a = s.alpha.lock(); drop(a); let _b = s.beta.lock(); }\n\
         fn ba(s: &S) { let b = s.beta.lock(); drop(b); let _a = s.alpha.lock(); }\n",
    );
    assert_eq!(failing_count(&r, rules::LOCK_ORDER), 0);
}

#[test]
fn lock_order_transitive_cycle_through_calls() {
    // f holds alpha and calls g, which takes beta; h orders them the
    // other way — a cycle only visible through the call graph.
    let r = one(
        "crates/sched/src/locks.rs",
        "fn f(s: &S) { let _a = s.alpha.lock(); g(s); }\n\
         fn g(s: &S) { let _b = s.beta.lock(); }\n\
         fn h(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }\n",
    );
    assert!(failing_count(&r, rules::LOCK_ORDER) >= 1);
}

#[test]
fn lock_order_suppressed_with_justification() {
    // A cycle reports one finding per edge, so each participating
    // acquisition site needs its own justified allow.
    let r = one(
        "crates/exec/src/locks.rs",
        "// analyze:allow(lock-order): ab runs only on the worker path, never concurrently with ba\n\
         fn ab(s: &S) { let _a = s.alpha.lock(); let _b = s.beta.lock(); }\n\
         // analyze:allow(lock-order): ba only runs at shutdown after workers quiesce\n\
         fn ba(s: &S) { let _b = s.beta.lock(); let _a = s.alpha.lock(); }\n",
    );
    assert_eq!(failing_count(&r, rules::LOCK_ORDER), 0);
    assert!(r.findings.iter().any(|f| f.suppressed));
}

// ---------------------------------------------------------------- R6

#[test]
fn unit_mixed_arithmetic_true_positive() {
    let r = one(
        "crates/fleet/src/score.rs",
        "fn score(deadline_ns: u64, payload_bytes: u64) -> u64 {\n\
         \x20   deadline_ns + payload_bytes\n\
         }\n",
    );
    assert_eq!(failing_lines(&r, rules::UNIT_CONSISTENCY), vec![2]);
    let f = r
        .failing()
        .find(|f| f.rule == rules::UNIT_CONSISTENCY)
        .unwrap();
    assert!(f.message.contains("deadline_ns"), "{}", f.message);
    assert!(f.message.contains("payload_bytes"), "{}", f.message);
}

#[test]
fn unit_mixed_comparison_true_positive() {
    let r = one(
        "crates/sched/src/quota.rs",
        "fn over(t_ns: u64, quota_bytes: u64) -> bool {\n\
         \x20   t_ns < quota_bytes\n\
         }\n",
    );
    assert_eq!(failing_lines(&r, rules::UNIT_CONSISTENCY), vec![2]);
}

#[test]
fn unit_field_and_type_inference() {
    // `latency: SimDur` is ns by declared type; adding a byte count to
    // it through field access must flag, on the exact line.
    let r = one(
        "crates/fleet/src/link.rs",
        "struct Link {\n\
         \x20   latency: SimDur,\n\
         \x20   staged_bytes: u64,\n\
         }\n\
         impl Link {\n\
         \x20   fn broken(&self) -> u64 {\n\
         \x20       self.latency + self.staged_bytes\n\
         \x20   }\n\
         }\n",
    );
    assert_eq!(failing_lines(&r, rules::UNIT_CONSISTENCY), vec![7]);
}

#[test]
fn unit_clean_cases() {
    // Same unit: fine. Multiplication/division change units: erased,
    // never flagged. Unknown operands never flag.
    let r = one(
        "crates/fleet/src/score.rs",
        "fn ok(a_ns: u64, b_ns: u64, n: u64, c_bytes: u64) -> u64 {\n\
         \x20   let total_ns = a_ns + b_ns;\n\
         \x20   let scaled = n * c_bytes;\n\
         \x20   let mixed_product = a_ns + n * c_bytes;\n\
         \x20   total_ns + scaled + mixed_product\n\
         }\n",
    );
    assert_eq!(failing_count(&r, rules::UNIT_CONSISTENCY), 0);
    // Out-of-scope crate: no findings.
    let r = one(
        "crates/apps/src/x.rs",
        "fn f(a_ns: u64, b_bytes: u64) -> u64 { a_ns + b_bytes }\n",
    );
    assert_eq!(failing_count(&r, rules::UNIT_CONSISTENCY), 0);
    // Test code is out of scope.
    let r = one(
        "crates/fleet/src/score.rs",
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let x = 1_u64; let _ = x + 2; }\n    fn h(a_ns: u64, b_bytes: u64) -> u64 { a_ns + b_bytes }\n}\n",
    );
    assert_eq!(failing_count(&r, rules::UNIT_CONSISTENCY), 0);
}

#[test]
fn unit_call_site_argument_check() {
    // Interprocedural: the declared parameter is bytes, the argument is
    // ns — flagged at the call site.
    let r = one(
        "crates/fleet/src/xfer.rs",
        "fn transfer(bytes: u64) -> u64 { bytes }\n\
         fn caller(window_ns: u64) -> u64 {\n\
         \x20   transfer(window_ns)\n\
         }\n",
    );
    assert_eq!(failing_lines(&r, rules::UNIT_CONSISTENCY), vec![3]);
    let f = r
        .failing()
        .find(|f| f.rule == rules::UNIT_CONSISTENCY)
        .unwrap();
    assert!(f.message.contains("parameter `bytes`"), "{}", f.message);
}

#[test]
fn unit_suppressed_with_justification() {
    let r = one(
        "crates/fleet/src/score.rs",
        "fn score(deadline_ns: u64, payload_bytes: u64) -> u64 {\n\
         \x20   // analyze:allow(unit-consistency): score is an intentionally unitless blend\n\
         \x20   deadline_ns + payload_bytes\n\
         }\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R7

/// A fixture arena: `hot` is declared indexed by `JobId.0`.
const ARENA_DECL: &str = "\
pub struct RunState {
    /// Dense per-job state, indexed by `JobId.0`.
    pub hot: Vec<HotJob>,
}
";

#[test]
fn arena_literal_index_true_positive() {
    let src = format!(
        "{ARENA_DECL}fn peek(st: &RunState) -> u32 {{\n\
         \x20   st.hot[3].chain\n\
         }}\n"
    );
    let r = one("crates/sched/src/peek.rs", &src);
    assert_eq!(failing_lines(&r, rules::ARENA_INDEX), vec![6]);
}

#[test]
fn arena_cross_domain_index_true_positive() {
    // `hot` is JobId-indexed; indexing it with a NodeId projection is
    // the cross-domain hazard.
    let src = format!(
        "{ARENA_DECL}fn wrong(st: &RunState, node: NodeId) -> u32 {{\n\
         \x20   st.hot[node.0 as usize].chain\n\
         }}\n"
    );
    let r = one("crates/sched/src/wrong.rs", &src);
    assert_eq!(failing_lines(&r, rules::ARENA_INDEX), vec![6]);
    let f = r.failing().find(|f| f.rule == rules::ARENA_INDEX).unwrap();
    assert!(f.message.contains("JobId"), "{}", f.message);
    assert!(f.message.contains("NodeId"), "{}", f.message);
}

#[test]
fn arena_raw_index_true_positive() {
    let src = format!(
        "{ARENA_DECL}fn raw(st: &RunState) -> u32 {{\n\
         \x20   let k = pick();\n\
         \x20   st.hot[k].chain\n\
         }}\n"
    );
    let r = one("crates/sched/src/raw.rs", &src);
    assert_eq!(failing_lines(&r, rules::ARENA_INDEX), vec![7]);
}

#[test]
fn arena_stale_index_after_compaction() {
    let src = format!(
        "{ARENA_DECL}fn stale(st: &mut RunState) {{\n\
         \x20   for i in 0..st.hot.len() {{\n\
         \x20       touch(st.hot[i]);\n\
         \x20       st.hot.swap_remove(i);\n\
         \x20       audit(st.hot[i]);\n\
         \x20   }}\n\
         }}\n"
    );
    let r = one("crates/sched/src/stale.rs", &src);
    assert_eq!(failing_lines(&r, rules::ARENA_INDEX), vec![9]);
    let f = r.failing().find(|f| f.rule == rules::ARENA_INDEX).unwrap();
    assert!(f.message.contains("swap_remove"), "{}", f.message);
}

#[test]
fn arena_clean_cases() {
    // Matching-domain projection, sanctioned loop var, growth (push) not
    // treated as compaction, and owner (`self.`) access: all clean.
    let src = format!(
        "{ARENA_DECL}fn fine(st: &mut RunState, id: JobId) -> u32 {{\n\
         \x20   for i in 0..st.hot.len() {{\n\
         \x20       touch(st.hot[i]);\n\
         \x20       st.hot.push(fresh());\n\
         \x20       touch(st.hot[i]);\n\
         \x20   }}\n\
         \x20   st.hot[id.0 as usize].chain\n\
         }}\n\
         impl RunState {{\n\
         \x20   fn own(&self, k: usize) -> u32 {{ self.hot[k].chain }}\n\
         }}\n"
    );
    let r = one("crates/sched/src/fine.rs", &src);
    assert_eq!(failing_count(&r, rules::ARENA_INDEX), 0);
}

#[test]
fn arena_suppressed_with_justification() {
    let src = format!(
        "{ARENA_DECL}fn boot(st: &RunState) -> u32 {{\n\
         \x20   // analyze:allow(arena-index): job 0 is the sentinel root; exists by construction\n\
         \x20   st.hot[0].chain\n\
         }}\n"
    );
    let r = one("crates/sched/src/boot.rs", &src);
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ---------------------------------------------------------------- R8

#[test]
fn determinism_direct_true_positive() {
    let r = one(
        "crates/core/src/clock.rs",
        "use std::time::Instant;\nfn now_wall() { let t = Instant::now(); }\n",
    );
    assert!(failing_count(&r, rules::DETERMINISM_TAINT) >= 1);
}

#[test]
fn determinism_clean_and_exemptions() {
    // Virtual time in core is fine.
    let r = one(
        "crates/core/src/clock.rs",
        "use northup_sim::SimTime;\nfn now(t: SimTime) -> SimTime { t }\n",
    );
    assert_eq!(failing_count(&r, rules::DETERMINISM_TAINT), 0);
    // The two carve-outs: sim's own clock module and sched's real backend.
    for path in ["crates/sim/src/time.rs", "crates/sched/src/real.rs"] {
        let r = one(
            path,
            "use std::time::Instant;\nfn t() { Instant::now(); }\n",
        );
        assert_eq!(failing_count(&r, rules::DETERMINISM_TAINT), 0, "{path}");
    }
    // Outside the scoped crates the rule does not apply at all.
    let r = one(
        "crates/bench/src/wall.rs",
        "use std::time::Instant;\nfn t() { Instant::now(); }\n",
    );
    assert_eq!(failing_count(&r, rules::DETERMINISM_TAINT), 0);
}

#[test]
fn determinism_suppressed_with_justification() {
    let r = one(
        "crates/sim/src/warmup.rs",
        "// analyze:allow(determinism-taint): wall-clock used only for a log banner\n\
         fn t() { std::time::Instant::now(); }\n",
    );
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// The interprocedural (cross-crate) taint fixtures live in
// tests/interproc.rs.

// ---------------------------------------------------------------- R9

/// A fixture event store: packed calendar events in a ring + overflow.
const EVENT_DECL: &str = "\
pub struct CalendarQueue {
    /// Near-horizon buckets of packed events.
    ring: Vec<Vec<Packed>>,
    /// Far-future packed events, kept max-heap-ordered.
    overflow: Vec<Packed>,
}
";

#[test]
fn event_order_by_key_true_positive() {
    let src = format!(
        "{EVENT_DECL}fn bad(q: &mut CalendarQueue) {{\n\
         \x20   q.overflow.sort_by_key(|e| e.0);\n\
         }}\n"
    );
    let r = one("crates/sched/src/cal.rs", &src);
    assert_eq!(failing_lines(&r, rules::EVENT_ORDER), vec![8]);
    let f = r.failing().find(|f| f.rule == rules::EVENT_ORDER).unwrap();
    assert!(
        f.message.contains("(SimTime, kind, id, seq)"),
        "{}",
        f.message
    );
}

#[test]
fn event_order_projecting_comparator_true_positive() {
    let src = format!(
        "{EVENT_DECL}fn bad(q: &mut CalendarQueue) {{\n\
         \x20   q.overflow.sort_unstable_by(|a, b| a.0.cmp(&b.0));\n\
         }}\n"
    );
    let r = one("crates/sched/src/cal.rs", &src);
    assert_eq!(failing_lines(&r, rules::EVENT_ORDER), vec![8]);
}

#[test]
fn event_order_through_alias_and_iterator() {
    // An alias to the store and an iterator adapter both keep the
    // event-store identity.
    let src = format!(
        "{EVENT_DECL}impl CalendarQueue {{\n\
         \x20   fn bad(&mut self) {{\n\
         \x20       let ovf = &mut self.overflow;\n\
         \x20       ovf.sort_by_key(|e| e.1);\n\
         \x20   }}\n\
         \x20   fn peek(&self) -> Option<&Packed> {{\n\
         \x20       self.overflow.iter().min_by_key(|e| e.0)\n\
         \x20   }}\n\
         }}\n"
    );
    let r = one("crates/sched/src/cal.rs", &src);
    assert_eq!(failing_lines(&r, rules::EVENT_ORDER), vec![10, 13]);
}

#[test]
fn event_order_clean_cases() {
    // Whole-tuple comparators and full sorts honor the contract; other
    // containers are not event stores.
    let src = format!(
        "{EVENT_DECL}fn fine(q: &mut CalendarQueue, jobs: &mut Vec<u64>) {{\n\
         \x20   q.overflow.sort_unstable_by(|a, b| b.cmp(a));\n\
         \x20   q.overflow.sort_unstable();\n\
         \x20   jobs.sort_by_key(|j| *j);\n\
         }}\n"
    );
    let r = one("crates/sched/src/cal.rs", &src);
    assert_eq!(failing_count(&r, rules::EVENT_ORDER), 0);
    // fleet is out of R9 scope.
    let src = format!(
        "{EVENT_DECL}fn elsewhere(q: &mut CalendarQueue) {{\n\
         \x20   q.overflow.sort_by_key(|e| e.0);\n\
         }}\n"
    );
    let r = one("crates/fleet/src/cal.rs", &src);
    assert_eq!(failing_count(&r, rules::EVENT_ORDER), 0);
}

#[test]
fn event_order_suppressed_with_justification() {
    let src = format!(
        "{EVENT_DECL}fn scan(q: &mut CalendarQueue) {{\n\
         \x20   // analyze:allow(event-order): diagnostic histogram only; result never feeds scheduling\n\
         \x20   q.overflow.sort_by_key(|e| e.0);\n\
         }}\n"
    );
    let r = one("crates/sched/src/cal.rs", &src);
    assert_eq!(r.failing().count(), 0);
    assert_eq!(r.findings.iter().filter(|f| f.suppressed).count(), 1);
}

// ------------------------------------------------- suppression hygiene

#[test]
fn empty_justification_always_fails() {
    let r = one(
        "crates/core/src/cache.rs",
        "// analyze:allow(ordered-iteration):\nuse std::collections::HashMap;\n",
    );
    // The HashMap finding may be suppressed, but the empty justification
    // itself is a failing meta-finding — the tree cannot go green.
    assert!(failing_count(&r, rules::SUPPRESSION) >= 1);
    assert!(!r.is_clean());
}

#[test]
fn unknown_rule_in_allow_fails() {
    let r = one(
        "crates/core/src/cache.rs",
        "// analyze:allow(made-up-rule): sounds legit\nfn f() {}\n",
    );
    assert!(failing_count(&r, rules::SUPPRESSION) >= 1);
    // The retired R1 name now counts as unknown — stale directives must
    // be migrated to determinism-taint, not silently ignored.
    let r = one(
        "crates/core/src/cache.rs",
        "// analyze:allow(determinism-sources): pre-PR8 directive\nfn f() {}\n",
    );
    assert!(failing_count(&r, rules::SUPPRESSION) >= 1);
}

#[test]
fn unused_justified_allow_is_a_finding() {
    // Satellite: a justified allow that matches no finding is dead
    // weight that would mask a future regression — it fails.
    let r = one(
        "crates/core/src/fine.rs",
        "// analyze:allow(panic-paths): defensive allow on a line that is clean\nfn f() {}\n",
    );
    assert_eq!(failing_count(&r, rules::SUPPRESSION), 1);
    let f = r.failing().find(|f| f.rule == rules::SUPPRESSION).unwrap();
    assert!(f.message.contains("matches no finding"), "{}", f.message);
    // Severity tier: suppression hygiene is a warning, invariant rules
    // are errors — but both fail the run.
    assert_eq!(f.severity().as_str(), "warning");
    assert!(!r.is_clean());
}
