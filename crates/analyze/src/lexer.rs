//! A lightweight Rust lexer: just enough tokenization to audit source
//! text without parsing it.
//!
//! The analyzer's rules operate on identifier/punctuation streams with
//! comments and string/char literals isolated into their own tokens, so a
//! `HashMap` inside a doc comment or a `"panic!"` inside a string never
//! produces a finding, while `// analyze:allow(...)` suppressions remain
//! visible as [`TokKind::Comment`] tokens.

/// Token categories the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `HashMap`, `unwrap`, ...).
    Ident,
    /// A single punctuation character (`.`, `(`, `#`, ...).
    Punct,
    /// Numeric literal.
    Num,
    /// String literal (including raw and byte strings).
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Line or block comment, doc comments included.
    Comment,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    /// Category.
    pub kind: TokKind,
    /// Raw text (for `Punct` a single character; for comments the full
    /// comment including its delimiters).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Token {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lex `src` into a token stream. Unterminated literals or comments are
/// tolerated (the rest of the file becomes one token) — the analyzer must
/// never panic on weird input.
pub fn lex(src: &str) -> Vec<Token> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let count_lines = |chars: &[char]| chars.iter().filter(|&&c| c == '\n').count() as u32;

    while i < n {
        let c = b[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            let start = i;
            while i < n && b[i] != '\n' {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Comment,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Block comment (nested, like Rust's).
        if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            toks.push(Token {
                kind: TokKind::Comment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings r"..." / r#"..."# (and br variants), checked before
        // plain identifiers so the prefix is not lexed as an ident.
        if (c == 'r' || c == 'b') && is_raw_string_start(&b, i) {
            let start = i;
            let start_line = line;
            // Skip the b/r prefix.
            while i < n && (b[i] == 'b' || b[i] == 'r') {
                i += 1;
            }
            let mut hashes = 0;
            while i < n && b[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // opening quote
            loop {
                if i >= n {
                    break;
                }
                if b[i] == '"' {
                    let mut ok = true;
                    for k in 0..hashes {
                        if i + 1 + k >= n || b[i + 1 + k] != '#' {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        i += 1 + hashes;
                        break;
                    }
                }
                if b[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Str,
                text: b[start..i.min(n)].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Plain (or byte) string literal.
        if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            let start = i;
            let start_line = line;
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < n {
                if b[i] == '\\' {
                    i += 2;
                    continue;
                }
                if b[i] == '"' {
                    i += 1;
                    break;
                }
                i += 1;
            }
            let end = i.min(n);
            line = start_line + count_lines(&b[start..end]);
            toks.push(Token {
                kind: TokKind::Str,
                text: b[start..end].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Byte char literal `b'x'` (checked before identifiers so the
        // `b` prefix is not lexed as a stray ident).
        if c == 'b'
            && i + 1 < n
            && b[i + 1] == '\''
            && (i == 0 || !(b[i - 1].is_alphanumeric() || b[i - 1] == '_'))
        {
            let start = i;
            i += 2; // consume `b'`
            if i < n && b[i] == '\\' {
                i += 2;
            } else if i < n {
                i += 1;
            }
            if i < n && b[i] == '\'' {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Char,
                text: b[start..i.min(n)].iter().collect(),
                line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // Lifetime: 'ident not followed by a closing quote.
            if i + 1 < n && (b[i + 1].is_alphabetic() || b[i + 1] == '_') {
                let mut j = i + 1;
                while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                    j += 1;
                }
                if j < n && b[j] == '\'' {
                    // 'a' — a char literal after all.
                } else {
                    toks.push(Token {
                        kind: TokKind::Lifetime,
                        text: b[i..j].iter().collect(),
                        line,
                    });
                    i = j;
                    continue;
                }
            }
            let start = i;
            i += 1;
            if i < n && b[i] == '\\' {
                i += 2;
            } else if i < n {
                i += 1;
            }
            if i < n && b[i] == '\'' {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Char,
                text: b[start..i.min(n)].iter().collect(),
                line,
            });
            continue;
        }
        // Identifier / keyword.
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Numeric literal (digits plus the usual suffix/infix characters).
        if c.is_ascii_digit() {
            let start = i;
            while i < n
                && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.')
                && !(b[i] == '.' && i + 1 < n && b[i + 1] == '.')
            {
                // Stop a float at `1..` range syntax.
                i += 1;
            }
            toks.push(Token {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Anything else: single punctuation char.
        toks.push(Token {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    toks
}

/// Does `b[i..]` start a raw (possibly byte) string literal?
fn is_raw_string_start(b: &[char], i: usize) -> bool {
    let n = b.len();
    let mut j = i;
    // Accept r, br, rb prefixes (rb is invalid Rust but harmless here).
    let mut saw_r = false;
    while j < n && (b[j] == 'r' || b[j] == 'b') {
        saw_r |= b[j] == 'r';
        j += 1;
        if j - i > 2 {
            return false;
        }
    }
    if !saw_r {
        return false;
    }
    while j < n && b[j] == '#' {
        j += 1;
    }
    j < n && b[j] == '"' && {
        // Ensure the prefix is not part of a longer identifier (`error"`).
        i == 0 || !(b[i - 1].is_alphanumeric() || b[i - 1] == '_')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts() {
        let toks = lex("fn main() { x.lock(); }");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(idents, vec!["fn", "main", "x", "lock"]);
    }

    #[test]
    fn comments_and_strings_are_isolated() {
        let toks = lex("let s = \"HashMap\"; // HashMap here\n/* HashMap */ let h = 1;");
        assert!(!toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "HashMap"));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
            2
        );
    }

    #[test]
    fn raw_strings_and_escapes() {
        let toks = lex(r####"let a = r#"panic!("x")"#; let b = "\"panic!\"";"####);
        assert!(!toks.iter().any(|t| t.is_ident("panic")));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'c' }");
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'c'"));
    }

    #[test]
    fn lines_are_tracked() {
        let toks = lex("a\nb\n  c");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }

    #[test]
    fn unterminated_input_does_not_panic() {
        lex("let s = \"unterminated");
        lex("/* unterminated");
        lex("r#\"unterminated");
    }
}
