//! # northup-analyze — offline static analysis for the Northup workspace
//!
//! A dependency-free Rust-source analyzer (its own [`lexer`], no registry
//! crates, not even the workspace shims) that enforces the project's
//! determinism, unit, arena-index, lease, panic, and lock-order
//! invariants with `file:line` diagnostics, machine-readable JSON and
//! SARIF reports, a findings-baseline diff mode for CI, and
//! `// analyze:allow(rule): <justification>` suppressions that fail when
//! unjustified, unknown, or stale.
//!
//! Since PR 8 the engine is interprocedural: a workspace-wide
//! [`symbols::SymbolTable`] and [`callgraph::CallGraph`] are built once
//! from the lexed token streams, and a per-function dataflow pass
//! ([`dataflow`]) feeds the flow-sensitive rules.
//!
//! | Rule | Scope | Invariant |
//! |------|-------|-----------|
//! | `ordered-iteration` (R2) | `core`, `sim`, `sched`, `fleet` | no `HashMap`/`HashSet`; use `BTreeMap`/sorted vecs |
//! | `lease-discipline` (R3) | `core`, `sched`, `apps` | `alloc`/lease acquisition needs a reachable release or an escaping handle |
//! | `panic-paths` (R4) | `core`, `exec`, `sched`, `fleet` | no `unwrap()`/`expect(`/`panic!` in non-test runtime code |
//! | `lock-order` (R5) | `exec`, `sched` | the static lock-acquisition graph must be acyclic |
//! | `unit-consistency` (R6) | `core`, `sched`, `fleet` | no mixed-unit arithmetic/comparison (ns, bytes, byte·seconds, events) |
//! | `arena-index` (R7) | `core`, `sched`, `fleet` | dense arena indices stay in their domain and die on compaction |
//! | `determinism-taint` (R8) | `core`, `sim`, `sched`, `fleet` | no wall-clock/entropy reaching schedule-visible code, even through helpers in other crates |
//! | `event-order` (R9) | `core`, `sched` | packed events ordered only by the full `(SimTime, kind, id, seq)` tuple |
//! | `lock-set` (R10) | `exec`, `sched`, `fleet` | guarded fields touched only under their guard; no unguarded shared-field writes from thread-escaping closures |
//! | `atomic-order` (R11) | `exec`, `sched`, `fleet` | no `Relaxed` access on a release/acquire protocol edge (fence-carrying fns and CAS failure orderings exempt) |
//! | `blocking-extent` (R12) | `exec`, `sched`, `fleet` | no lock guard held across a transitively may-block call (condvar waits handed the guard exempt) |
//!
//! R8 supersedes the per-file `determinism-sources` rule from PR 3: the
//! same direct occurrences are still findings, but wrappers are now
//! chased through the call graph across crate boundaries. The
//! concurrency layer (R10–R12, PR 9) shares one [`shared::SharedRegistry`]
//! of cross-thread state and one [`locks::LockWorld`] of guard extents;
//! R5 rides the same call graph, and R12 subsumes PR 3's lexical
//! statement-extent heuristic. `--explain <rule>` prints each rule's
//! contract from the [`explain`] table.
//!
//! Run it as `cargo run -p northup-analyze -- --workspace
//! [--json out.json] [--sarif out.sarif] [--baseline analyze-baseline.json]
//! [--max-millis 10000]`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod callgraph;
pub mod dataflow;
pub mod diag;
pub mod explain;
pub mod json;
pub mod lexer;
pub mod lockgraph;
pub mod locks;
pub mod r10_lockset;
pub mod r11_atomics;
pub mod r12_blocking;
pub mod r6_units;
pub mod r7_arena;
pub mod r8_taint;
pub mod r9_events;
pub mod rules;
pub mod sarif;
pub mod shared;
pub mod source;
pub mod symbols;
pub mod units;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Instant;

pub use diag::{Finding, Report};
use source::SourceFile;

/// Analyze a set of `(logical_path, contents)` pairs. The logical path
/// determines rule scoping (`crates/<name>/src/...`), so tests can feed
/// synthetic fixtures under any crate's namespace.
pub fn analyze_sources(files: &[(String, String)]) -> Report {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: parsed.len(),
        timings_us: Vec::new(),
    };
    // Shared interprocedural infrastructure, built once.
    let t = Instant::now();
    let symbols = symbols::SymbolTable::build(&parsed);
    report.timings_us.push(("symbols", t.elapsed().as_micros()));
    let t = Instant::now();
    let cg = callgraph::CallGraph::build(&parsed, &symbols);
    report
        .timings_us
        .push(("callgraph", t.elapsed().as_micros()));
    let t = Instant::now();
    let registry = shared::SharedRegistry::build(&parsed, &symbols, &cg);
    report
        .timings_us
        .push(("shared-state registry", t.elapsed().as_micros()));
    let t = Instant::now();
    let lock_world = locks::LockWorld::build(&parsed, &symbols, &cg);
    report
        .timings_us
        .push(("lock world", t.elapsed().as_micros()));
    // Rule passes, individually timed. Suppressions apply uniformly
    // afterwards, file by file.
    let mut raw: Vec<Finding> = Vec::new();
    let t = Instant::now();
    for sf in &parsed {
        rules::check_file(sf, &mut raw);
    }
    report
        .timings_us
        .push(("per-file (R2-R4)", t.elapsed().as_micros()));
    let t = Instant::now();
    lockgraph::check_lock_order(&parsed, &symbols, &cg, &lock_world, &mut raw);
    report
        .timings_us
        .push(("lock-order (R5)", t.elapsed().as_micros()));
    let t = Instant::now();
    r6_units::check(&parsed, &symbols, &cg, &mut raw);
    report
        .timings_us
        .push(("unit-consistency (R6)", t.elapsed().as_micros()));
    let t = Instant::now();
    r7_arena::check(&parsed, &symbols, &mut raw);
    report
        .timings_us
        .push(("arena-index (R7)", t.elapsed().as_micros()));
    let t = Instant::now();
    r8_taint::check(&parsed, &symbols, &cg, &mut raw);
    report
        .timings_us
        .push(("determinism-taint (R8)", t.elapsed().as_micros()));
    let t = Instant::now();
    r9_events::check(&parsed, &symbols, &mut raw);
    report
        .timings_us
        .push(("event-order (R9)", t.elapsed().as_micros()));
    let t = Instant::now();
    r10_lockset::check(&parsed, &symbols, &registry, &lock_world, &mut raw);
    report
        .timings_us
        .push(("lock-set (R10)", t.elapsed().as_micros()));
    let t = Instant::now();
    r11_atomics::check(&parsed, &registry, &mut raw);
    report
        .timings_us
        .push(("atomic-order (R11)", t.elapsed().as_micros()));
    let t = Instant::now();
    r12_blocking::check(&parsed, &symbols, &cg, &lock_world, &mut raw);
    report
        .timings_us
        .push(("blocking-extent (R12)", t.elapsed().as_micros()));
    let t = Instant::now();
    for sf in &parsed {
        let mut mine: Vec<Finding> = Vec::new();
        let mut rest = Vec::new();
        for f in raw.drain(..) {
            if f.path == sf.path {
                mine.push(f);
            } else {
                rest.push(f);
            }
        }
        rules::apply_allows(sf, &mut mine, &mut report.findings);
        report.findings.extend(mine);
        raw = rest;
    }
    report.findings.extend(raw);
    report
        .timings_us
        .push(("suppressions", t.elapsed().as_micros()));
    report.finalize();
    report
}

/// Walk the workspace rooted at `root` and analyze every first-party
/// `.rs` file: `crates/*/src/**` (shims excluded — they emulate external
/// crates and are not on the audited paths) plus `crates/*/tests`,
/// `crates/*/benches`, and root `src/`, `examples/`, `tests/` (scanned
/// for completeness; no rule scopes over them).
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<(String, String)> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "shims"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["src", "tests", "benches"] {
            collect_rs(root, &dir.join(sub), &mut files)?;
        }
    }
    for top in ["src", "examples", "tests"] {
        collect_rs(root, &root.join(top), &mut files)?;
    }
    files.sort();
    Ok(analyze_sources(&files))
}

/// Recursively collect `.rs` files under `dir` as
/// (root-relative path, contents), skipping anything named `target`.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&p)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_file_lock_cycle_is_found_and_suppressable() {
        let a = (
            "crates/exec/src/a.rs".to_string(),
            "fn ab(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }".to_string(),
        );
        let b = (
            "crates/exec/src/b.rs".to_string(),
            "// analyze:allow(lock-order): fixture demonstrates suppression\n\
             fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }"
                .to_string(),
        );
        let r = analyze_sources(&[a.clone(), b]);
        // The a.rs edge still fails; the b.rs edge is suppressed. (The
        // same nested acquisitions also trip R12 blocking-extent, so
        // counts are per-rule.)
        assert_eq!(r.failing_for(diag::rules::LOCK_ORDER), 1);
        assert_eq!(
            r.findings
                .iter()
                .filter(|f| f.rule == diag::rules::LOCK_ORDER)
                .count(),
            2
        );

        let b_unsuppressed = (
            "crates/exec/src/b.rs".to_string(),
            "fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }".to_string(),
        );
        let r = analyze_sources(&[a, b_unsuppressed]);
        assert_eq!(r.failing_for(diag::rules::LOCK_ORDER), 2);
    }

    #[test]
    fn findings_are_sorted_and_counted() {
        let r = analyze_sources(&[
            (
                "crates/core/src/z.rs".to_string(),
                "use std::collections::HashMap;".to_string(),
            ),
            (
                "crates/core/src/a.rs".to_string(),
                "fn f() { x.unwrap(); }".to_string(),
            ),
        ]);
        assert_eq!(r.files_scanned, 2);
        assert_eq!(r.failing().count(), 2);
        assert_eq!(r.findings[0].path, "crates/core/src/a.rs");
        assert!(!r.is_clean());
    }

    #[test]
    fn every_pass_is_timed() {
        let r = analyze_sources(&[("crates/core/src/a.rs".to_string(), "fn f() {}".to_string())]);
        let names: Vec<&str> = r.timings_us.iter().map(|(n, _)| *n).collect();
        for expected in [
            "symbols",
            "callgraph",
            "shared-state registry",
            "lock world",
            "per-file (R2-R4)",
            "lock-order (R5)",
            "unit-consistency (R6)",
            "arena-index (R7)",
            "determinism-taint (R8)",
            "event-order (R9)",
            "lock-set (R10)",
            "atomic-order (R11)",
            "blocking-extent (R12)",
            "suppressions",
        ] {
            assert!(names.contains(&expected), "missing pass timing {expected}");
        }
        // total_us is the sum of all passes.
        assert_eq!(
            r.total_us(),
            r.timings_us.iter().map(|(_, us)| us).sum::<u128>()
        );
    }
}
