//! # northup-analyze — offline static analysis for the Northup workspace
//!
//! A dependency-free Rust-source analyzer (its own [`lexer`], no registry
//! crates, not even the workspace shims) that enforces the project's
//! determinism, lease, panic, and lock-order invariants with `file:line`
//! diagnostics, a machine-readable JSON report, and
//! `// analyze:allow(rule): <justification>` suppressions that fail when
//! the justification is empty.
//!
//! | Rule | Scope | Invariant |
//! |------|-------|-----------|
//! | `determinism-sources` (R1) | `core`, `sim` (except `sim/src/time.rs`), `sched` (except `sched/src/real.rs`) | no `Instant`/`SystemTime`/`thread_rng` on the modeled path |
//! | `ordered-iteration` (R2) | `core`, `sched`, `sim` | no `HashMap`/`HashSet`; use `BTreeMap`/sorted vecs |
//! | `lease-discipline` (R3) | `core`, `sched`, `apps` | `alloc`/lease acquisition needs a reachable release or an escaping handle |
//! | `panic-paths` (R4) | `core`, `exec`, `sched` | no `unwrap()`/`expect(`/`panic!` in non-test runtime code |
//! | `lock-order` (R5) | `exec`, `sched` | the static lock-acquisition graph must be acyclic |
//!
//! Run it as `cargo run -p northup-analyze -- --workspace [--json out.json]`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod diag;
pub mod json;
pub mod lexer;
pub mod lockgraph;
pub mod rules;
pub mod source;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use diag::{Finding, Report};
use source::SourceFile;

/// Analyze a set of `(logical_path, contents)` pairs. The logical path
/// determines rule scoping (`crates/<name>/src/...`), so tests can feed
/// synthetic fixtures under any crate's namespace.
pub fn analyze_sources(files: &[(String, String)]) -> Report {
    let parsed: Vec<SourceFile> = files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
    let mut report = Report {
        findings: Vec::new(),
        files_scanned: parsed.len(),
    };
    // Per-file rules first, then the cross-file lock graph; suppressions
    // apply uniformly afterwards, file by file.
    let mut raw: Vec<Finding> = Vec::new();
    for sf in &parsed {
        rules::check_file(sf, &mut raw);
    }
    lockgraph::check_lock_order(&parsed, &mut raw);
    for sf in &parsed {
        let mut mine: Vec<Finding> = Vec::new();
        let mut rest = Vec::new();
        for f in raw.drain(..) {
            if f.path == sf.path {
                mine.push(f);
            } else {
                rest.push(f);
            }
        }
        rules::apply_allows(sf, &mut mine, &mut report.findings);
        report.findings.extend(mine);
        raw = rest;
    }
    report.findings.extend(raw);
    report.finalize();
    report
}

/// Walk the workspace rooted at `root` and analyze every first-party
/// `.rs` file: `crates/*/src/**` (shims excluded — they emulate external
/// crates and are not on the audited paths) plus `crates/*/tests`,
/// `crates/*/benches`, and root `src/`, `examples/`, `tests/` (scanned
/// for completeness; no rule scopes over them).
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut files: Vec<(String, String)> = Vec::new();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "shims"))
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        for sub in ["src", "tests", "benches"] {
            collect_rs(root, &dir.join(sub), &mut files)?;
        }
    }
    for top in ["src", "examples", "tests"] {
        collect_rs(root, &root.join(top), &mut files)?;
    }
    files.sort();
    Ok(analyze_sources(&files))
}

/// Recursively collect `.rs` files under `dir` as
/// (root-relative path, contents), skipping anything named `target`.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, String)>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            if p.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(root, &p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            out.push((rel, fs::read_to_string(&p)?));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_file_lock_cycle_is_found_and_suppressable() {
        let a = (
            "crates/exec/src/a.rs".to_string(),
            "fn ab(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }".to_string(),
        );
        let b = (
            "crates/exec/src/b.rs".to_string(),
            "// analyze:allow(lock-order): fixture demonstrates suppression\n\
             fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }"
                .to_string(),
        );
        let r = analyze_sources(&[a.clone(), b]);
        // The a.rs edge still fails; the b.rs edge is suppressed.
        assert_eq!(r.failing().count(), 1);
        assert_eq!(r.findings.len(), 2);

        let b_unsuppressed = (
            "crates/exec/src/b.rs".to_string(),
            "fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }".to_string(),
        );
        let r = analyze_sources(&[a, b_unsuppressed]);
        assert_eq!(r.failing().count(), 2);
    }

    #[test]
    fn findings_are_sorted_and_counted() {
        let r = analyze_sources(&[
            (
                "crates/core/src/z.rs".to_string(),
                "use std::collections::HashMap;".to_string(),
            ),
            (
                "crates/core/src/a.rs".to_string(),
                "fn f() { x.unwrap(); }".to_string(),
            ),
        ]);
        assert_eq!(r.files_scanned, 2);
        assert_eq!(r.failing().count(), 2);
        assert_eq!(r.findings[0].path, "crates/core/src/a.rs");
        assert!(!r.is_clean());
    }
}
