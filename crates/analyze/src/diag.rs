//! Diagnostics: findings and the report they aggregate into.

/// Rule identifiers, used both in diagnostics and in
/// `// analyze:allow(<rule>)` suppressions.
pub mod rules {
    /// R1: nondeterministic time/rng sources in modeled-path crates.
    pub const DETERMINISM_SOURCES: &str = "determinism-sources";
    /// R2: unordered `HashMap`/`HashSet` in schedule-affecting crates.
    pub const ORDERED_ITERATION: &str = "ordered-iteration";
    /// R3: allocation/lease acquisition without a reachable release.
    pub const LEASE_DISCIPLINE: &str = "lease-discipline";
    /// R4: `unwrap()`/`expect(`/`panic!` in non-test runtime code.
    pub const PANIC_PATHS: &str = "panic-paths";
    /// R5: cycles in the static lock-acquisition graph.
    pub const LOCK_ORDER: &str = "lock-order";
    /// Meta-rule: a suppression comment with an empty justification.
    pub const SUPPRESSION: &str = "suppression";

    /// Every rule a suppression may name.
    pub const ALL: [&str; 5] = [
        DETERMINISM_SOURCES,
        ORDERED_ITERATION,
        LEASE_DISCIPLINE,
        PANIC_PATHS,
        LOCK_ORDER,
    ];
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (one of [`rules`]).
    pub rule: &'static str,
    /// Workspace-relative path (`crates/core/src/runtime.rs`).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation with the steer-to alternative.
    pub message: String,
    /// True when an `analyze:allow` with a non-empty justification covers
    /// this finding; suppressed findings are reported but do not fail.
    pub suppressed: bool,
    /// The justification text of the covering suppression, if any.
    pub justification: Option<String>,
}

impl Finding {
    /// `path:line: [rule] message` — the terminal rendering.
    pub fn render(&self) -> String {
        let tag = if self.suppressed { " (suppressed)" } else { "" };
        format!(
            "{}:{}: [{}]{} {}",
            self.path, self.line, self.rule, tag, self.message
        )
    }
}

/// The aggregate result of analyzing a set of sources.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, suppressed ones included, ordered by (path, line).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
}

impl Report {
    /// Findings that fail the run (everything not suppressed).
    pub fn failing(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// True when the tree is analyze-clean.
    pub fn is_clean(&self) -> bool {
        self.failing().next().is_none()
    }

    /// Count of failing findings for a given rule.
    pub fn failing_for(&self, rule: &str) -> usize {
        self.failing().filter(|f| f.rule == rule).count()
    }

    /// Sort findings into the stable (path, line, rule) order every
    /// consumer (terminal, JSON, tests) sees.
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
    }
}
