//! Diagnostics: findings, severity tiers, and the report they
//! aggregate into (including per-rule timings).

/// Rule identifiers, used both in diagnostics and in
/// `// analyze:allow(<rule>)` suppressions.
pub mod rules {
    /// R2: unordered `HashMap`/`HashSet` in schedule-affecting crates.
    pub const ORDERED_ITERATION: &str = "ordered-iteration";
    /// R3: allocation/lease acquisition without a reachable release.
    pub const LEASE_DISCIPLINE: &str = "lease-discipline";
    /// R4: `unwrap()`/`expect(`/`panic!` in non-test runtime code.
    pub const PANIC_PATHS: &str = "panic-paths";
    /// R5: cycles in the static lock-acquisition graph.
    pub const LOCK_ORDER: &str = "lock-order";
    /// R6: mixed-unit arithmetic/comparison (ns vs bytes vs byte·seconds
    /// vs events) in scoring and accounting code.
    pub const UNIT_CONSISTENCY: &str = "unit-consistency";
    /// R7: raw or cross-domain indexing into dense arenas, and indices
    /// held across arena-compacting calls.
    pub const ARENA_INDEX: &str = "arena-index";
    /// R8: wall-clock/OS-entropy taint reaching schedule-visible code
    /// through the call graph (supersedes the old per-file
    /// `determinism-sources` rule).
    pub const DETERMINISM_TAINT: &str = "determinism-taint";
    /// R9: ordering packed calendar events by anything other than the
    /// full `(SimTime, kind, id, seq)` tuple.
    pub const EVENT_ORDER: &str = "event-order";
    /// R10: accessing a mutex-guarded field without its guard live, or
    /// writing a shared field from thread-escaping code with no lock.
    pub const LOCK_SET: &str = "lock-set";
    /// R11: a `Relaxed` access on the publication/consumption edge of a
    /// release/acquire protocol atomic.
    pub const ATOMIC_ORDER: &str = "atomic-order";
    /// R12: holding a lock guard across a call that may block (sleep,
    /// channel ops, lock acquisition, file I/O — transitively).
    pub const BLOCKING_EXTENT: &str = "blocking-extent";
    /// Meta-rule: a suppression comment with an empty justification, an
    /// unknown rule name, or no finding to suppress.
    pub const SUPPRESSION: &str = "suppression";

    /// Every rule a suppression may name.
    pub const ALL: [&str; 11] = [
        ORDERED_ITERATION,
        LEASE_DISCIPLINE,
        PANIC_PATHS,
        LOCK_ORDER,
        UNIT_CONSISTENCY,
        ARENA_INDEX,
        DETERMINISM_TAINT,
        EVENT_ORDER,
        LOCK_SET,
        ATOMIC_ORDER,
        BLOCKING_EXTENT,
    ];
}

/// How bad a finding is. Every tier fails the run when unsuppressed;
/// the tier feeds the SARIF `level` and lets downstream dashboards
/// triage invariant breaks before hygiene issues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// A violated project invariant (determinism, units, indices,
    /// leases, locks, panics).
    Error,
    /// Suppression hygiene: stale, unjustified, or unknown allows.
    Warning,
}

impl Severity {
    /// SARIF-compatible level string.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// The severity tier of a rule.
pub fn severity_of(rule: &str) -> Severity {
    if rule == rules::SUPPRESSION {
        Severity::Warning
    } else {
        Severity::Error
    }
}

/// One diagnostic: a rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule identifier (one of [`rules`]).
    pub rule: &'static str,
    /// Workspace-relative path (`crates/core/src/runtime.rs`).
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable explanation with the steer-to alternative.
    pub message: String,
    /// True when an `analyze:allow` with a non-empty justification covers
    /// this finding; suppressed findings are reported but do not fail.
    pub suppressed: bool,
    /// The justification text of the covering suppression, if any.
    pub justification: Option<String>,
}

impl Finding {
    /// `path:line: [rule] message` — the terminal rendering.
    pub fn render(&self) -> String {
        let tag = if self.suppressed { " (suppressed)" } else { "" };
        format!(
            "{}:{}: {} [{}]{} {}",
            self.path,
            self.line,
            severity_of(self.rule).as_str(),
            self.rule,
            tag,
            self.message
        )
    }

    /// The severity tier of this finding's rule.
    pub fn severity(&self) -> Severity {
        severity_of(self.rule)
    }
}

/// The aggregate result of analyzing a set of sources.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, suppressed ones included, ordered by (path, line).
    pub findings: Vec<Finding>,
    /// Number of files analyzed.
    pub files_scanned: usize,
    /// Wall-clock micros per analysis pass, in execution order. The
    /// self-benchmark gate (`--max-millis`) sums these; they are *not*
    /// part of the baseline diff (timings jitter, findings must not).
    pub timings_us: Vec<(&'static str, u128)>,
}

impl Report {
    /// Findings that fail the run (everything not suppressed).
    pub fn failing(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| !f.suppressed)
    }

    /// True when the tree is analyze-clean.
    pub fn is_clean(&self) -> bool {
        self.failing().next().is_none()
    }

    /// Count of failing findings for a given rule.
    pub fn failing_for(&self, rule: &str) -> usize {
        self.failing().filter(|f| f.rule == rule).count()
    }

    /// Total analysis wall time in microseconds (sum of the pass
    /// timings; lexing/IO excluded).
    pub fn total_us(&self) -> u128 {
        self.timings_us.iter().map(|(_, us)| us).sum()
    }

    /// Sort findings into the stable (path, line, rule) order every
    /// consumer (terminal, JSON, SARIF, tests) sees, dropping exact
    /// duplicates (two passes may witness the same site).
    pub fn finalize(&mut self) {
        self.findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule, a.message.as_str()).cmp(&(
                b.path.as_str(),
                b.line,
                b.rule,
                b.message.as_str(),
            ))
        });
        self.findings.dedup_by(|a, b| {
            a.path == b.path && a.line == b.line && a.rule == b.rule && a.message == b.message
        });
    }
}
