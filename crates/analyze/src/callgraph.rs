//! Workspace call graph over the symbol table, with taint reachability.
//!
//! Call sites are collected lexically (an identifier immediately
//! followed by `(`), then keyed by callee *name* — the analyzer does not
//! resolve imports, so `helper()` links to every workspace function
//! named `helper`. That over-approximation is exactly what a taint
//! analysis wants: a wrapper around a nondeterminism source is caught at
//! every transitive call site even when the import path is aliased.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::symbols::{FnSig, SymbolTable};

/// Identifiers that look like calls lexically but never are.
const NON_CALL_KEYWORDS: &[&str] = &[
    "fn", "if", "while", "for", "match", "return", "loop", "in", "let", "as", "move", "else",
    "impl", "struct", "enum", "union", "trait", "where", "pub", "use", "mod", "unsafe", "ref",
    "mut", "dyn", "crate", "super",
];

/// One lexical call site.
#[derive(Debug, Clone)]
pub struct Call {
    /// Index of the containing file in the analyzed slice.
    pub file: usize,
    /// Code-token index of the callee identifier.
    pub ci: usize,
    /// 1-based source line.
    pub line: u32,
    /// Callee name (bare — methods and paths key by final segment).
    pub callee: String,
    /// Global fn index (into [`SymbolTable::fns`]) of the enclosing
    /// function, if the call occurs inside one.
    pub caller: Option<usize>,
    /// True when the call site is inside a test region.
    pub in_test: bool,
}

/// Taint reachability result: which functions can transitively reach a
/// source, with one witness edge each for diagnostics.
#[derive(Debug)]
pub struct Taint {
    /// Per-fn (global index) taint flag.
    pub tainted: Vec<bool>,
    /// For a fn tainted by propagation: the global index of the callee
    /// fn that tainted it (`None` for direct sources).
    pub parent: Vec<Option<usize>>,
    /// Every tainted fn name (what call sites check against).
    pub names: BTreeSet<String>,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Every call site, in file order.
    pub calls: Vec<Call>,
    /// Callee name → indices into [`Self::calls`].
    pub calls_by_callee: BTreeMap<String, Vec<usize>>,
}

impl CallGraph {
    /// Collect every call site in `files`, resolving enclosing
    /// functions through `symbols`.
    pub fn build(files: &[SourceFile], symbols: &SymbolTable) -> CallGraph {
        // (file, fn-item) → global fn index, for enclosing-fn lookup.
        let mut fn_index: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (gi, f) in symbols.fns.iter().enumerate() {
            fn_index.insert((f.file, f.item), gi);
        }
        let mut cg = CallGraph::default();
        for (fi, sf) in files.iter().enumerate() {
            for ci in 0..sf.code.len() {
                let t = &sf.toks[sf.code[ci]];
                if t.kind != TokKind::Ident
                    || NON_CALL_KEYWORDS.contains(&t.text.as_str())
                    || !sf.ct(ci + 1).is_some_and(|n| n.is_punct('('))
                {
                    continue;
                }
                // Skip definitions (`fn name(`) and macros (`name!(`
                // never reaches here since `!` intervenes).
                if ci > 0 && sf.ct(ci - 1).is_some_and(|p| p.is_ident("fn")) {
                    continue;
                }
                let caller = sf
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, f)| f.contains(ci))
                    .max_by_key(|(_, f)| f.body_start)
                    .and_then(|(item, _)| fn_index.get(&(fi, item)).copied());
                let idx = cg.calls.len();
                cg.calls.push(Call {
                    file: fi,
                    ci,
                    line: t.line,
                    callee: t.text.clone(),
                    caller,
                    in_test: sf.in_test[ci],
                });
                cg.calls_by_callee
                    .entry(t.text.clone())
                    .or_default()
                    .push(idx);
            }
        }
        cg
    }

    /// Propagate taint from `is_source` functions up through callers.
    /// `is_exempt` functions never become tainted (used for the audited
    /// carve-out files whose whole point is to wrap a real source).
    pub fn taint(
        &self,
        symbols: &SymbolTable,
        is_source: impl Fn(&FnSig) -> bool,
        is_exempt: impl Fn(&FnSig) -> bool,
    ) -> Taint {
        let n = symbols.fns.len();
        let mut tainted = vec![false; n];
        let mut parent: Vec<Option<usize>> = vec![None; n];
        let mut names: BTreeSet<String> = BTreeSet::new();
        let mut work: Vec<usize> = Vec::new();
        for (gi, f) in symbols.fns.iter().enumerate() {
            if is_source(f) && !is_exempt(f) {
                tainted[gi] = true;
                names.insert(f.name.clone());
                work.push(gi);
            }
        }
        while let Some(gi) = work.pop() {
            let name = symbols.fns[gi].name.clone();
            let Some(call_idxs) = self.calls_by_callee.get(&name) else {
                continue;
            };
            for &c in call_idxs {
                let Some(caller) = self.calls[c].caller else {
                    continue;
                };
                if tainted[caller] || is_exempt(&symbols.fns[caller]) {
                    continue;
                }
                tainted[caller] = true;
                parent[caller] = Some(gi);
                names.insert(symbols.fns[caller].name.clone());
                work.push(caller);
            }
        }
        Taint {
            tainted,
            parent,
            names,
        }
    }
}

impl Taint {
    /// The witness chain from fn `gi` down to a direct source, as fn
    /// names (`helper → wrap → now`). Cycles are cut by the visited set.
    pub fn chain(&self, symbols: &SymbolTable, gi: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut seen = BTreeSet::new();
        let mut cur = Some(gi);
        while let Some(g) = cur {
            if !seen.insert(g) {
                break;
            }
            out.push(symbols.fns[g].name.clone());
            cur = self.parent[g];
        }
        out
    }

    /// The tainted fn the name-keyed call to `callee` resolves to (any
    /// tainted definition of that name), for witness rendering.
    pub fn tainted_fn_named(&self, symbols: &SymbolTable, callee: &str) -> Option<usize> {
        symbols
            .fn_by_name
            .get(callee)?
            .iter()
            .copied()
            .find(|&gi| self.tainted[gi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable, CallGraph) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let symbols = SymbolTable::build(&files);
        let cg = CallGraph::build(&files, &symbols);
        (files, symbols, cg)
    }

    #[test]
    fn calls_link_to_enclosing_fns() {
        let (_f, sy, cg) = world(&[(
            "crates/core/src/a.rs",
            "fn leaf() {}\nfn mid() { leaf(); }\nfn top() { mid(); other.leaf(); }\n",
        )]);
        let leaf_calls = &cg.calls_by_callee["leaf"];
        assert_eq!(leaf_calls.len(), 2);
        let callers: Vec<&str> = leaf_calls
            .iter()
            .map(|&c| sy.fns[cg.calls[c].caller.unwrap()].name.as_str())
            .collect();
        assert_eq!(callers, vec!["mid", "top"]);
    }

    #[test]
    fn taint_crosses_files_and_records_witness() {
        let (_f, sy, cg) = world(&[
            (
                "crates/hw/src/a.rs",
                "fn stamp() { let t = Instant::now(); }\n",
            ),
            (
                "crates/sched/src/b.rs",
                "fn plan() { stamp(); }\nfn clean() { let x = 1; }\n",
            ),
        ]);
        let taint = cg.taint(&sy, |f| f.name == "stamp", |_| false);
        assert!(taint.names.contains("plan"));
        assert!(!taint.names.contains("clean"));
        let plan = sy.fn_by_name["plan"][0];
        assert_eq!(taint.chain(&sy, plan), vec!["plan", "stamp"]);
    }

    #[test]
    fn exempt_fns_do_not_propagate() {
        let (_f, sy, cg) = world(&[(
            "crates/sim/src/time.rs",
            "fn now_src() { x(); }\nfn wrap() { now_src(); }\nfn user() { wrap(); }\n",
        )]);
        // `wrap` is exempt: taint from now_src stops there, so `user`
        // stays clean.
        let taint = cg.taint(&sy, |f| f.name == "now_src", |f| f.name == "wrap");
        assert!(taint.names.contains("now_src"));
        assert!(!taint.names.contains("wrap"));
        assert!(!taint.names.contains("user"));
    }
}
