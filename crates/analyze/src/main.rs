//! CLI: `cargo run -p northup-analyze -- --workspace [--json out.json]
//! [--sarif out.sarif] [--baseline analyze-baseline.json]
//! [--max-millis N]`.
//!
//! Exit codes: 0 — analyze-clean (or no *new* findings in baseline
//! mode, and within the `--max-millis` budget when given); 1 — failing
//! findings / new findings / budget exceeded; 2 — usage or I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use northup_analyze::baseline::Baseline;
use northup_analyze::{analyze_sources, analyze_workspace, explain, json, sarif, Report};

const USAGE: &str = "\
northup-analyze — offline static analysis for the Northup workspace

USAGE:
    northup-analyze --workspace [--root DIR] [OPTIONS]
    northup-analyze [OPTIONS] FILE.rs...

OPTIONS:
    --workspace       analyze every first-party crate under --root (default: cwd)
    --root DIR        workspace root for --workspace and for relativizing paths
    --json FILE       also write the machine-readable report to FILE
    --sarif FILE      also write a SARIF 2.1.0 report to FILE
    --baseline FILE   diff mode: fail (and print) only findings NOT in the
                      committed baseline (a previous --json report); line
                      shifts don't trip the gate, new violations do
    --max-millis N    self-benchmark gate: fail if total analysis time
                      (sum of the per-pass timings) exceeds N milliseconds
    --timings         print the per-pass timing table
    --quiet           print only the summary line, not per-finding lines
    --explain RULE    print RULE's contract, example, and allow syntax
                      (with no/unknown RULE: the one-line rule index)
    -h, --help        show this help

Suppress a finding with a justified directive on the same or previous line:
    // analyze:allow(<rule>): <why this is sound>
A justified suppression that matches no finding is itself a finding.
Rules: ordered-iteration, lease-discipline, panic-paths, lock-order,
       unit-consistency, arena-index, determinism-taint, event-order,
       lock-set, atomic-order, blocking-extent.";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("northup-analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut workspace = false;
    let mut quiet = false;
    let mut timings = false;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline_in: Option<PathBuf> = None;
    let mut max_millis: Option<u128> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--quiet" => quiet = true,
            "--timings" => timings = true,
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--json" => json_out = Some(PathBuf::from(args.next().ok_or("--json needs a value")?)),
            "--sarif" => {
                sarif_out = Some(PathBuf::from(args.next().ok_or("--sarif needs a value")?))
            }
            "--baseline" => {
                baseline_in = Some(PathBuf::from(
                    args.next().ok_or("--baseline needs a value")?,
                ))
            }
            "--max-millis" => {
                let v = args.next().ok_or("--max-millis needs a value")?;
                max_millis = Some(
                    v.parse::<u128>()
                        .map_err(|_| format!("--max-millis: `{v}` is not a number"))?,
                );
            }
            "--explain" => {
                match args.next().as_deref().and_then(explain::explain) {
                    Some(doc) => println!("{doc}"),
                    None => println!("{}", explain::index()),
                }
                return Ok(ExitCode::SUCCESS);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            p if !p.starts_with('-') => paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if !workspace && paths.is_empty() {
        return Err(format!("nothing to analyze\n\n{USAGE}"));
    }

    let report: Report = if workspace {
        analyze_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?
    } else {
        let mut files = Vec::new();
        for p in &paths {
            let text =
                fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(&root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, text));
        }
        analyze_sources(&files)
    };

    if let Some(out) = json_out {
        fs::write(&out, json::report_to_json(&report))
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
    }
    if let Some(out) = sarif_out {
        fs::write(&out, sarif::report_to_sarif(&report))
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
    }

    if timings || max_millis.is_some() {
        for (pass, us) in &report.timings_us {
            println!(
                "northup-analyze: timing {pass:>24}: {:>8.2} ms",
                *us as f64 / 1000.0
            );
        }
        println!(
            "northup-analyze: timing {:>24}: {:>8.2} ms",
            "total",
            report.total_us() as f64 / 1000.0
        );
    }

    let mut failed = false;
    if let Some(bl_path) = baseline_in {
        let text = fs::read_to_string(&bl_path)
            .map_err(|e| format!("reading {}: {e}", bl_path.display()))?;
        let bl = Baseline::from_json(&text)
            .map_err(|e| format!("parsing {}: {e}", bl_path.display()))?;
        let new = bl.new_findings(&report);
        if !quiet {
            for f in &new {
                println!("{} [NEW]", f.render());
            }
        }
        println!(
            "northup-analyze: {} file(s), {} finding(s) total, {} NEW vs baseline {}",
            report.files_scanned,
            report.findings.len(),
            new.len(),
            bl_path.display()
        );
        failed |= !new.is_empty();
    } else {
        if !quiet {
            for f in &report.findings {
                println!("{}", f.render());
            }
        }
        let failing = report.failing().count();
        let suppressed = report.findings.len() - failing;
        println!(
            "northup-analyze: {} file(s), {} failing finding(s), {} suppressed",
            report.files_scanned, failing, suppressed
        );
        failed |= failing > 0;
    }

    if let Some(budget) = max_millis {
        let total_ms = report.total_us() / 1000;
        if total_ms > budget {
            println!("northup-analyze: self-benchmark FAILED: {total_ms} ms > budget {budget} ms");
            failed = true;
        } else {
            println!("northup-analyze: self-benchmark ok: {total_ms} ms <= {budget} ms");
        }
    }

    Ok(if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}
