//! CLI: `cargo run -p northup-analyze -- --workspace [--json out.json]`.
//!
//! Exit codes: 0 — analyze-clean; 1 — failing findings; 2 — usage or
//! I/O error.

use std::env;
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

use northup_analyze::{analyze_sources, analyze_workspace, json, Report};

const USAGE: &str = "\
northup-analyze — offline static analysis for the Northup workspace

USAGE:
    northup-analyze --workspace [--root DIR] [--json FILE] [--quiet]
    northup-analyze [--json FILE] FILE.rs...

OPTIONS:
    --workspace     analyze every first-party crate under --root (default: cwd)
    --root DIR      workspace root for --workspace and for relativizing paths
    --json FILE     also write the machine-readable report to FILE
    --quiet         print only the summary line, not per-finding lines
    -h, --help      show this help

Suppress a finding with a justified directive on the same or previous line:
    // analyze:allow(<rule>): <why this is sound>
Rules: determinism-sources, ordered-iteration, lease-discipline,
       panic-paths, lock-order.";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("northup-analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut workspace = false;
    let mut quiet = false;
    let mut root = PathBuf::from(".");
    let mut json_out: Option<PathBuf> = None;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--quiet" => quiet = true,
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a value")?),
            "--json" => json_out = Some(PathBuf::from(args.next().ok_or("--json needs a value")?)),
            "-h" | "--help" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            p if !p.starts_with('-') => paths.push(PathBuf::from(p)),
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    if !workspace && paths.is_empty() {
        return Err(format!("nothing to analyze\n\n{USAGE}"));
    }

    let report: Report = if workspace {
        analyze_workspace(&root).map_err(|e| format!("walking {}: {e}", root.display()))?
    } else {
        let mut files = Vec::new();
        for p in &paths {
            let text =
                fs::read_to_string(p).map_err(|e| format!("reading {}: {e}", p.display()))?;
            let rel = p
                .strip_prefix(&root)
                .unwrap_or(p)
                .to_string_lossy()
                .replace('\\', "/");
            files.push((rel, text));
        }
        analyze_sources(&files)
    };

    if let Some(out) = json_out {
        fs::write(&out, json::report_to_json(&report))
            .map_err(|e| format!("writing {}: {e}", out.display()))?;
    }

    if !quiet {
        for f in &report.findings {
            println!("{}", f.render());
        }
    }
    let failing = report.failing().count();
    let suppressed = report.findings.len() - failing;
    println!(
        "northup-analyze: {} file(s), {} failing finding(s), {} suppressed",
        report.files_scanned, failing, suppressed
    );
    Ok(if failing == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}
