//! Source model: a lexed file plus the structure the rules need —
//! suppression directives, test-region marking, and function items.

use crate::lexer::{lex, TokKind, Token};

/// A parsed `// analyze:allow(rule): justification` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule name inside the parentheses (not validated here).
    pub rule: String,
    /// Line the comment starts on; it covers findings on this line and
    /// the next, so it works both trailing and as a preceding line.
    pub line: u32,
    /// Text after the closing `):` — empty means the suppression itself
    /// is a finding.
    pub justification: String,
}

/// One `fn` item (free function, method, or nested fn).
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Code-token index of the `fn` keyword (into [`SourceFile::code`]).
    pub sig_start: usize,
    /// Code-token index of the opening `{`.
    pub body_start: usize,
    /// Code-token index of the matching `}`.
    pub body_end: usize,
    /// Return-type text (tokens between `->` and the body), `""` if none.
    pub ret: String,
    /// True when the function lives in a test region.
    pub is_test: bool,
}

impl FnItem {
    /// Does `ci` (a code-token index) fall inside this fn's body?
    pub fn contains(&self, ci: usize) -> bool {
        ci > self.body_start && ci < self.body_end
    }
}

/// A lexed source file with the derived structure rules operate on.
pub struct SourceFile {
    /// Workspace-relative logical path (`crates/core/src/runtime.rs`).
    pub path: String,
    /// Full token stream, comments included.
    pub toks: Vec<Token>,
    /// Indices into `toks` of non-comment tokens, in order. Rules match
    /// adjacency over this view so comments never split a pattern.
    pub code: Vec<usize>,
    /// Per-*code-token* flag: true when the token is inside a test
    /// region (`#[cfg(test)]` item, `#[test]` fn, or a test/bench file).
    pub in_test: Vec<bool>,
    /// Suppression directives found in comments.
    pub allows: Vec<Allow>,
    /// All fn items, outer before nested (by start index).
    pub fns: Vec<FnItem>,
}

impl SourceFile {
    /// Lex and structure one file. `path` is the logical
    /// workspace-relative path used for rule scoping and diagnostics.
    pub fn parse(path: &str, src: &str) -> SourceFile {
        let toks = lex(src);
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        let allows = parse_allows(&toks);
        let mut sf = SourceFile {
            path: path.to_string(),
            toks,
            code,
            in_test: Vec::new(),
            allows,
            fns: Vec::new(),
        };
        sf.in_test = mark_test_regions(&sf);
        sf.fns = extract_fns(&sf);
        sf
    }

    /// The token behind code index `ci`, if in range.
    pub fn ct(&self, ci: usize) -> Option<&Token> {
        self.code.get(ci).map(|&i| &self.toks[i])
    }

    /// Find the code index of the `}` matching the `{` at code index
    /// `open`. Returns the last code index if unbalanced.
    pub fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for ci in open..self.code.len() {
            let t = &self.toks[self.code[ci]];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    return ci;
                }
            }
        }
        self.code.len().saturating_sub(1)
    }

    /// Code index of the `}` closing the innermost block containing
    /// `ci`, searching no further than `hi`. Falls back to `hi`.
    pub fn enclosing_block_end(&self, ci: usize, hi: usize) -> usize {
        // Track depth from `ci` forward; the first `}` seen at depth 0
        // closes the innermost enclosing block.
        let mut depth = 0i32;
        for j in ci..=hi.min(self.code.len().saturating_sub(1)) {
            let t = &self.toks[self.code[j]];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
        }
        hi
    }

    /// The innermost fn item containing code index `ci`, if any.
    pub fn fn_at(&self, ci: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.contains(ci))
            .max_by_key(|f| f.body_start)
    }
}

/// Pull `analyze:allow(rule): justification` out of comment tokens.
///
/// The directive must be the first thing in the comment (after the
/// delimiter), so prose that merely *mentions* the syntax — like this
/// doc comment — is never treated as a suppression.
fn parse_allows(toks: &[Token]) -> Vec<Allow> {
    let mut out = Vec::new();
    for t in toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        let body = t
            .text
            .trim_start_matches('/')
            .trim_start_matches('*')
            .trim_start_matches('!')
            .trim_start();
        let Some(rest) = body.strip_prefix("analyze:allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let after = rest[close + 1..].trim_start();
        let justification = after
            .strip_prefix(':')
            .map(|j| j.trim().trim_end_matches("*/").trim().to_string())
            .unwrap_or_default();
        out.push(Allow {
            rule,
            line: t.line,
            justification,
        });
    }
    out
}

/// Compute the per-code-token test flag.
fn mark_test_regions(sf: &SourceFile) -> Vec<bool> {
    let n = sf.code.len();
    let mut flag = vec![false; n];
    let p = sf.path.as_str();
    if p.contains("/tests/")
        || p.contains("/benches/")
        || p.starts_with("tests/")
        || p.starts_with("benches/")
        || p.starts_with("examples/")
    {
        return vec![true; n];
    }
    let mut ci = 0usize;
    while ci < n {
        if let Some(end) = test_attr_item_end(sf, ci) {
            for f in flag.iter_mut().take(end + 1).skip(ci) {
                *f = true;
            }
            ci = end + 1;
        } else {
            ci += 1;
        }
    }
    flag
}

/// If the code tokens at `ci` start a `#[cfg(test)]` or `#[test]`
/// attribute, return the code index where the attributed item ends.
fn test_attr_item_end(sf: &SourceFile, ci: usize) -> Option<usize> {
    let t = |k: usize| sf.ct(ci + k);
    if !(t(0)?.is_punct('#') && t(1)?.is_punct('[')) {
        return None;
    }
    // `#[test]` or `#[cfg(test)]` (also matches `#[cfg(all(test,..))]`
    // loosely: any cfg attr whose first argument tokens include `test`).
    let mut k = 2usize;
    let is_test_attr = if t(2)?.is_ident("test") && t(3)?.is_punct(']') {
        k = 4;
        true
    } else if t(2)?.is_ident("cfg") {
        // Scan the attribute to its closing `]`, looking for `test`.
        let mut depth = 0i32;
        let mut saw_test = false;
        let mut j = ci + 2;
        loop {
            let tok = sf.ct(j)?;
            if tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(']') {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            } else if tok.is_ident("test") {
                saw_test = true;
            }
            j += 1;
        }
        k = j - ci + 1;
        saw_test
    } else {
        false
    };
    if !is_test_attr {
        return None;
    }
    // Skip any further attributes between this one and the item.
    let mut j = ci + k;
    while sf.ct(j)?.is_punct('#') && sf.ct(j + 1)?.is_punct('[') {
        let mut depth = 0i32;
        let mut m = j + 1;
        loop {
            let tok = sf.ct(m)?;
            if tok.is_punct('[') {
                depth += 1;
            } else if tok.is_punct(']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            m += 1;
        }
        j = m + 1;
    }
    // The item runs to the first `;` (e.g. `use`) or the brace-matched
    // `{ .. }` body, whichever comes first.
    let mut m = j;
    loop {
        let tok = sf.ct(m)?;
        if tok.is_punct(';') {
            return Some(m);
        }
        if tok.is_punct('{') {
            return Some(sf.match_brace(m));
        }
        m += 1;
    }
}

/// Extract every fn item (with a body) from the code-token stream.
fn extract_fns(sf: &SourceFile) -> Vec<FnItem> {
    let mut fns = Vec::new();
    let n = sf.code.len();
    for ci in 0..n {
        let t = &sf.toks[sf.code[ci]];
        if !(t.kind == TokKind::Ident && t.text == "fn") {
            continue;
        }
        // `fn` in `Fn()` bounds is `Fn`, capital — fine. But skip
        // `fn` appearing as a type in `fn(..)` pointer types: those
        // have `(` immediately after, not a name.
        let Some(name_tok) = sf.ct(ci + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let name = name_tok.text.clone();
        // Scan to the body `{` or a `;` (trait method declaration),
        // capturing the return type after the first top-level `->`.
        let mut j = ci + 2;
        let mut paren = 0i32;
        let mut ret = String::new();
        let mut in_ret = false;
        let mut body_start = None;
        while j < n {
            let tok = &sf.toks[sf.code[j]];
            if tok.is_punct('(') || tok.is_punct('[') {
                paren += 1;
            } else if tok.is_punct(')') || tok.is_punct(']') {
                paren -= 1;
            } else if paren == 0 {
                if tok.is_punct('{') {
                    body_start = Some(j);
                    break;
                }
                if tok.is_punct(';') {
                    break;
                }
                if tok.is_ident("where") {
                    in_ret = false;
                }
                if in_ret {
                    if !ret.is_empty() {
                        ret.push(' ');
                    }
                    ret.push_str(&tok.text);
                }
                if tok.is_punct('-')
                    && sf.ct(j + 1).is_some_and(|t2| t2.is_punct('>'))
                    && ret.is_empty()
                {
                    in_ret = true;
                    j += 2;
                    continue;
                }
            }
            j += 1;
        }
        let Some(body_start) = body_start else {
            continue;
        };
        let body_end = sf.match_brace(body_start);
        fns.push(FnItem {
            name,
            line: t.line,
            sig_start: ci,
            body_start,
            body_end,
            ret,
            is_test: sf.in_test[ci],
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_are_parsed() {
        let sf = SourceFile::parse(
            "crates/core/src/x.rs",
            "// analyze:allow(panic-paths): startup can only fail fatally\n\
             let x = 1; // analyze:allow(ordered-iteration)\n",
        );
        assert_eq!(sf.allows.len(), 2);
        assert_eq!(sf.allows[0].rule, "panic-paths");
        assert_eq!(sf.allows[0].justification, "startup can only fail fatally");
        assert_eq!(sf.allows[0].line, 1);
        assert_eq!(sf.allows[1].rule, "ordered-iteration");
        assert!(sf.allows[1].justification.is_empty());
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn runtime() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn helper() { y.unwrap(); }\n}\n\
                   #[test]\nfn t() { z.unwrap(); }\n";
        let sf = SourceFile::parse("crates/core/src/x.rs", src);
        let unwraps: Vec<bool> = (0..sf.code.len())
            .filter(|&ci| sf.ct(ci).unwrap().is_ident("unwrap"))
            .map(|ci| sf.in_test[ci])
            .collect();
        assert_eq!(unwraps, vec![false, true, true]);
    }

    #[test]
    fn test_files_are_all_test() {
        let sf = SourceFile::parse("crates/core/tests/integ.rs", "fn f() { x.unwrap(); }");
        assert!(sf.in_test.iter().all(|&b| b));
    }

    #[test]
    fn fns_are_extracted_with_ret_types() {
        let src = "fn a() -> Result<BufferHandle> { inner() }\n\
                   impl T { fn b(&self) { let c = || {}; c(); } }\n\
                   fn outer() { fn inner2() {} }\n";
        let sf = SourceFile::parse("crates/core/src/x.rs", src);
        let names: Vec<&str> = sf.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "outer", "inner2"]);
        assert_eq!(sf.fns[0].ret, "Result < BufferHandle >");
        assert!(sf.fns[1].ret.is_empty());
        // inner2 nests inside outer.
        let outer = &sf.fns[2];
        let inner2 = &sf.fns[3];
        assert!(outer.contains(inner2.sig_start));
    }

    #[test]
    fn where_clause_does_not_pollute_ret() {
        let src = "fn f<F>(g: F) -> usize where F: Fn() -> u8 { 0 }";
        let sf = SourceFile::parse("crates/core/src/x.rs", src);
        assert_eq!(sf.fns[0].ret, "usize");
    }
}
