//! Shared lock machinery for the concurrency rules (R5 / R10 / R12).
//!
//! PR 3's lockgraph carried a private per-rule scan and its own
//! name-keyed transitive propagation; since PR 9 the lock world is built
//! once over the shared [`CallGraph`] and
//! reused by every rule that reasons about guards:
//!
//! * **acquisitions** — each `.lock()` site in a non-test function of a
//!   lock-scoped crate, with its guard extent (let-bound guards live to
//!   `drop(g)` or the end of the innermost block; statement temporaries
//!   to the end of their statement) and the guard variable name when
//!   let-bound;
//! * **transitive lock sets** — for every function, the locks it or any
//!   (name-keyed) callee may acquire, computed by fixpoint over the
//!   shared call graph;
//! * **entry-held sets** — the locks *guaranteed* held on entry: the
//!   greatest fixpoint of the intersection over all call sites, so a
//!   helper only ever invoked under `state` is analyzed as holding
//!   `state` (and a helper that is also called bare is not).
//!
//! Lock identity is the field/variable name the `.lock()` is called on
//! (`self.injector.lock()` → `injector`) — in this workspace those are
//! distinct mutex fields, so the name is the lock.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::source::{FnItem, SourceFile};
use crate::symbols::SymbolTable;

/// Crates whose functions participate in the lock world.
pub const LOCK_SCOPE: &[&str] = &["exec", "sched", "fleet"];

/// One `.lock()` site inside a function.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Lock name (the receiver ident of the `.lock()`).
    pub lock: String,
    /// Guard variable when let-bound (`let g = x.lock();` → `g`).
    pub guard_var: Option<String>,
    /// Code index of the `lock` ident.
    pub site: usize,
    /// 1-based source line of the acquisition.
    pub line: u32,
    /// Code index past which the guard is no longer held.
    pub held_until: usize,
}

/// The workspace lock world: per-function acquisitions plus the two
/// call-graph fixpoints every guard-aware rule consumes.
#[derive(Debug, Default)]
pub struct LockWorld {
    /// Global fn index → acquisitions, for non-test fns in
    /// [`LOCK_SCOPE`] crates.
    pub acqs: BTreeMap<usize, Vec<Acq>>,
    /// Global fn index → every lock the fn may (transitively) acquire.
    pub acquired: Vec<BTreeSet<String>>,
    /// Global fn index → locks held at *every* call site (greatest
    /// fixpoint; empty for fns with unknown or test callers).
    pub entry_held: Vec<BTreeSet<String>>,
    /// Call indices (into `cg.calls`) grouped by caller global fn index.
    pub calls_by_caller: BTreeMap<usize, Vec<usize>>,
}

impl LockWorld {
    /// Build the lock world over the parsed files and shared call graph.
    pub fn build(files: &[SourceFile], symbols: &SymbolTable, cg: &CallGraph) -> LockWorld {
        let mut w = LockWorld {
            acquired: vec![BTreeSet::new(); symbols.fns.len()],
            entry_held: vec![BTreeSet::new(); symbols.fns.len()],
            ..LockWorld::default()
        };
        for (gi, f) in symbols.fns.iter().enumerate() {
            if f.is_test || !f.krate.as_deref().is_some_and(|k| LOCK_SCOPE.contains(&k)) {
                continue;
            }
            let sf = &files[f.file];
            let acqs = scan_acqs(sf, &sf.fns[f.item]);
            for a in &acqs {
                w.acquired[gi].insert(a.lock.clone());
            }
            w.acqs.insert(gi, acqs);
        }
        for (c, call) in cg.calls.iter().enumerate() {
            if let Some(g) = call.caller {
                w.calls_by_caller.entry(g).or_default().push(c);
            }
        }
        w.propagate_acquired(symbols, cg);
        w.propagate_entry_held(symbols, cg);
        w
    }

    /// Locks whose guard extent covers code index `ci` inside fn `gi`
    /// (local acquisitions only; union with [`Self::entry_held`] for the
    /// interprocedural view).
    pub fn held_at(&self, gi: usize, ci: usize) -> BTreeSet<&str> {
        self.covering(gi, ci).map(|a| a.lock.as_str()).collect()
    }

    /// The acquisitions in fn `gi` whose guard is live at `ci`.
    pub fn covering(&self, gi: usize, ci: usize) -> impl Iterator<Item = &Acq> {
        self.acqs
            .get(&gi)
            .into_iter()
            .flatten()
            .filter(move |a| ci > a.site && ci <= a.held_until)
    }

    /// `held_at` ∪ `entry_held`: every lock the analysis can prove held
    /// at `ci` in fn `gi`.
    pub fn held_with_entry(&self, gi: usize, ci: usize) -> BTreeSet<&str> {
        let mut h = self.held_at(gi, ci);
        h.extend(self.entry_held[gi].iter().map(|s| s.as_str()));
        h
    }

    /// Fixpoint: `acquired[g] ∪= acquired[callee]` for every in-world
    /// callee, until stable. Name-keyed: a call resolves to every
    /// in-world fn sharing the callee name (collisions merge
    /// conservatively toward *more* locks).
    fn propagate_acquired(&mut self, symbols: &SymbolTable, cg: &CallGraph) {
        let members: Vec<usize> = self.acqs.keys().copied().collect();
        loop {
            let mut changed = false;
            for &g in &members {
                let mut add: BTreeSet<String> = BTreeSet::new();
                for &c in self.calls_by_caller.get(&g).into_iter().flatten() {
                    let callee = cg.calls[c].callee.as_str();
                    if callee == "drop" {
                        continue; // `drop(x)` — destructor identity unknowable
                    }
                    for &g2 in symbols.fn_by_name.get(callee).into_iter().flatten() {
                        if self.acqs.contains_key(&g2) {
                            add.extend(self.acquired[g2].iter().cloned());
                        }
                    }
                }
                for l in add {
                    if !self.acquired[g].contains(&l) {
                        self.acquired[g].insert(l);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Greatest fixpoint of the entry-held sets: start every in-world
    /// callee at ⊤ (all lock names) and intersect over its call sites
    /// with `held_at(caller) ∪ entry_held(caller)`. A call site in test
    /// code, outside the world, or with no resolvable caller contributes
    /// ⊥ (no locks), so public entry points correctly start bare.
    fn propagate_entry_held(&mut self, symbols: &SymbolTable, cg: &CallGraph) {
        let all_locks: BTreeSet<String> = self
            .acqs
            .values()
            .flatten()
            .map(|a| a.lock.clone())
            .collect();
        if all_locks.is_empty() {
            return;
        }
        let members: Vec<usize> = self.acqs.keys().copied().collect();
        for &g in &members {
            let name = &symbols.fns[g].name;
            let has_sites = cg
                .calls_by_callee
                .get(name)
                .is_some_and(|cs| !cs.is_empty());
            if has_sites {
                self.entry_held[g] = all_locks.clone();
            }
        }
        loop {
            let mut changed = false;
            for &g in &members {
                if self.entry_held[g].is_empty() {
                    continue;
                }
                let name = symbols.fns[g].name.clone();
                let mut meet: Option<BTreeSet<String>> = None;
                for &c in cg.calls_by_callee.get(&name).into_iter().flatten() {
                    let call = &cg.calls[c];
                    let at_site: BTreeSet<String> = match call.caller {
                        Some(h) if !call.in_test && self.acqs.contains_key(&h) => self
                            .held_at(h, call.ci)
                            .into_iter()
                            .map(str::to_string)
                            .chain(self.entry_held[h].iter().cloned())
                            .collect(),
                        _ => BTreeSet::new(),
                    };
                    meet = Some(match meet {
                        None => at_site,
                        Some(m) => m.intersection(&at_site).cloned().collect(),
                    });
                    if meet.as_ref().is_some_and(|m| m.is_empty()) {
                        break;
                    }
                }
                let next = meet.unwrap_or_default();
                if next != self.entry_held[g] {
                    self.entry_held[g] = next;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// Collect every `.lock()` acquisition inside one fn body (nested fn
/// items excluded — they are scanned as their own items).
pub fn scan_acqs(sf: &SourceFile, f: &FnItem) -> Vec<Acq> {
    let mut acqs = Vec::new();
    for ci in (f.body_start + 1)..f.body_end {
        if sf
            .fns
            .iter()
            .any(|g| g.sig_start > f.sig_start && g.contains(ci))
        {
            continue;
        }
        let t = &sf.toks[sf.code[ci]];
        if t.is_ident("lock")
            && ci > 0
            && sf.ct(ci - 1).is_some_and(|p| p.is_punct('.'))
            && sf.ct(ci + 1).is_some_and(|n| n.is_punct('('))
            && sf.ct(ci + 2).is_some_and(|n| n.is_punct(')'))
        {
            let lock = sf
                .ct(ci.wrapping_sub(2))
                .filter(|p| p.kind == TokKind::Ident)
                .map(|p| p.text.clone())
                .unwrap_or_else(|| "<expr>".to_string());
            let (held_until, guard_var) = guard_extent(sf, f, ci);
            acqs.push(Acq {
                lock,
                guard_var,
                site: ci,
                line: t.line,
                held_until,
            });
        }
    }
    acqs
}

/// How long the guard from the `.lock()` at code index `ci` is held, and
/// the guard variable's name when let-bound.
fn guard_extent(sf: &SourceFile, f: &FnItem, ci: usize) -> (usize, Option<String>) {
    // Statement start: the token after the nearest `;`/`{`/`}` behind.
    let mut s = ci;
    while s > f.body_start + 1 {
        let t = &sf.toks[sf.code[s - 1]];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let let_bound = sf.ct(s).is_some_and(|t| t.is_ident("let"));
    if let_bound {
        // Guard name: `let [mut] g = ...`.
        let mut gi = s + 1;
        if sf.ct(gi).is_some_and(|t| t.is_ident("mut")) {
            gi += 1;
        }
        let guard = sf
            .ct(gi)
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone());
        if let Some(g) = &guard {
            // Explicit `drop(g)` ends the hold early.
            for j in ci..f.body_end {
                if sf.ct(j).is_some_and(|t| t.is_ident("drop"))
                    && sf.ct(j + 1).is_some_and(|t| t.is_punct('('))
                    && sf.ct(j + 2).is_some_and(|t| t.is_ident(g))
                    && sf.ct(j + 3).is_some_and(|t| t.is_punct(')'))
                {
                    return (j, guard);
                }
            }
        }
        return (sf.enclosing_block_end(ci, f.body_end), guard);
    }
    // Statement temporary: held to the end of its statement — the next
    // `;` at this nesting depth (blocks inside the statement, e.g. a
    // `match` scrutinee or `if let` body, stay inside the hold).
    let mut depth = 0i32;
    let mut entered_block = false;
    for j in ci..f.body_end {
        let t = &sf.toks[sf.code[j]];
        if t.is_punct('{') {
            depth += 1;
            entered_block = true;
        } else if t.is_punct('}') {
            if depth == 0 {
                return (j, None);
            }
            depth -= 1;
            // `if let Some(x) = m.lock() { .. }` — an attached block
            // closing back at depth 0 ends the statement.
            if depth == 0 && entered_block {
                return (j, None);
            }
        } else if t.is_punct(';') && depth == 0 {
            return (j, None);
        }
    }
    (f.body_end, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable, CallGraph, LockWorld) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let symbols = SymbolTable::build(&files);
        let cg = CallGraph::build(&files, &symbols);
        let lw = LockWorld::build(&files, &symbols, &cg);
        (files, symbols, cg, lw)
    }

    #[test]
    fn transitive_acquired_crosses_files() {
        let (_f, sy, _cg, lw) = world(&[
            (
                "crates/exec/src/a.rs",
                "fn outer(s: &S) { helper(s); }\nfn helper(s: &S) { let _b = s.b.lock(); }\n",
            ),
            (
                "crates/sched/src/b.rs",
                "fn top(s: &S) { outer(s); }\nfn clean() {}\n",
            ),
        ]);
        let top = sy.fn_by_name["top"][0];
        assert!(lw.acquired[top].contains("b"));
        let clean = sy.fn_by_name["clean"][0];
        assert!(lw.acquired[clean].is_empty());
    }

    #[test]
    fn entry_held_is_the_meet_over_call_sites() {
        let (_f, sy, _cg, lw) = world(&[(
            "crates/exec/src/a.rs",
            "fn always(s: &S) { let _g = s.state.lock(); helper(s); }\n\
             fn also(s: &S) { let _g = s.state.lock(); helper(s); }\n\
             fn helper(s: &S) { s.touch(); }\n\
             fn sometimes(s: &S) { let _g = s.state.lock(); bare(s); }\n\
             fn elsewhere(s: &S) { bare(s); }\n\
             fn bare(s: &S) { s.touch(); }\n",
        )]);
        let helper = sy.fn_by_name["helper"][0];
        assert!(lw.entry_held[helper].contains("state"), "{lw:?}");
        let bare = sy.fn_by_name["bare"][0];
        assert!(lw.entry_held[bare].is_empty());
    }

    #[test]
    fn entry_held_chains_through_callers() {
        let (_f, sy, _cg, lw) = world(&[(
            "crates/exec/src/a.rs",
            "fn top(s: &S) { let _g = s.state.lock(); mid(s); }\n\
             fn mid(s: &S) { leaf(s); }\n\
             fn leaf(s: &S) { s.touch(); }\n",
        )]);
        let leaf = sy.fn_by_name["leaf"][0];
        assert!(lw.entry_held[leaf].contains("state"));
    }

    #[test]
    fn guard_vars_are_captured() {
        let (f, sy, _cg, lw) = world(&[(
            "crates/exec/src/a.rs",
            "fn f(s: &S) { let mut g = s.lock.lock(); s.injector.lock().pop(); }\n",
        )]);
        let _ = f;
        let gi = sy.fn_by_name["f"][0];
        let acqs = &lw.acqs[&gi];
        assert_eq!(acqs.len(), 2);
        assert_eq!(acqs[0].guard_var.as_deref(), Some("g"));
        assert_eq!(acqs[1].guard_var, None);
    }
}
