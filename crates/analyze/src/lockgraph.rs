//! R5: static lock-order analysis over `exec`/`sched`.
//!
//! Since PR 9 this rule consumes the shared [`LockWorld`] — acquisition
//! sites, guard extents, and the call-graph fixpoint of transitive lock
//! sets are built once (over [`crate::callgraph::CallGraph`]) and shared
//! with R10/R12 — instead of the private name-keyed propagation the rule
//! carried since PR 3. The reported edges and cycle shapes are
//! unchanged.
//!
//! While a guard is held, a nested `.lock()` adds the edge
//! `held → nested`, and a call to another analyzed function adds edges
//! to every lock that callee (transitively) acquires. Any cycle in the
//! resulting graph (self-loops included) is a potential deadlock.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::diag::{rules, Finding};
use crate::locks::LockWorld;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

/// Run R5 over the whole file set, appending findings.
pub fn check_lock_order(
    files: &[SourceFile],
    symbols: &SymbolTable,
    cg: &CallGraph,
    world: &LockWorld,
    out: &mut Vec<Finding>,
) {
    // Edges: held lock → lock acquired (directly or via a call) while
    // held. Deterministic order via BTreeMap; first site per edge wins.
    // R5 keeps its historical exec/sched scope (fleet holds no locks,
    // but scoping is explicit, not incidental).
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (&g, acqs) in &world.acqs {
        let f = &symbols.fns[g];
        if !matches!(f.krate.as_deref(), Some("exec" | "sched")) {
            continue;
        }
        let path = &files[f.file].path;
        for a in acqs {
            for b in acqs {
                if b.site > a.site && b.site <= a.held_until {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert((path.clone(), b.line));
                }
            }
            for &c in world.calls_by_caller.get(&g).into_iter().flatten() {
                let call = &cg.calls[c];
                if call.ci <= a.site || call.ci > a.held_until {
                    continue;
                }
                // `.lock()` sites are the acquisitions above; `drop(x)`
                // runs a destructor whose identity the analysis cannot
                // name.
                if call.callee == "lock" || call.callee == "drop" {
                    continue;
                }
                let mut locks: BTreeSet<&str> = BTreeSet::new();
                for &g2 in symbols.fn_by_name.get(&call.callee).into_iter().flatten() {
                    if world.acqs.contains_key(&g2) {
                        locks.extend(world.acquired[g2].iter().map(|s| s.as_str()));
                    }
                }
                for l in locks {
                    edges
                        .entry((a.lock.clone(), l.to_string()))
                        .or_insert((path.clone(), call.line));
                }
            }
        }
    }

    // A cycle exists through edge (a → b) iff a is reachable from b.
    let graph: BTreeMap<&str, BTreeSet<&str>> = {
        let mut g: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            g.entry(a.as_str()).or_default().insert(b.as_str());
        }
        g
    };
    for ((a, b), (path, line)) in &edges {
        if a == b || reaches(&graph, b, a) {
            let shape = if a == b {
                format!("`{a}` is re-acquired while already held")
            } else {
                format!(
                    "`{b}` is acquired while `{a}` is held, and elsewhere `{a}` is \
                     acquired while `{b}` is held (directly or transitively)"
                )
            };
            out.push(Finding {
                rule: rules::LOCK_ORDER,
                path: path.clone(),
                line: *line,
                message: format!(
                    "lock-order cycle: {shape}; a consistent global order is required"
                ),
                suppressed: false,
                justification: None,
            });
        }
    }
}

/// DFS reachability over the lock graph.
fn reaches(graph: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = graph.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("crates/exec/src/fixture.rs", src);
        let files = vec![sf];
        let symbols = SymbolTable::build(&files);
        let cg = CallGraph::build(&files, &symbols);
        let world = LockWorld::build(&files, &symbols, &cg);
        let mut out = Vec::new();
        check_lock_order(&files, &symbols, &cg, &world, &mut out);
        out
    }

    #[test]
    fn nested_opposite_orders_cycle() {
        let src = "
            fn ab(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }
            fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == rules::LOCK_ORDER));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            fn ab(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }
            fn ab2(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn statement_temporary_releases_before_next_lock() {
        // `inject` pattern: transient injector guard, then wake takes
        // the condvar mutex — no edge, so no cycle with the reverse.
        let src = "
            fn inject(s: &S) { s.injector.lock().push_back(1); s.wake(); }
            fn drain(s: &S) { let _g = s.lock.lock(); s.injector.lock().len(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn call_graph_propagates_locks() {
        let src = "
            fn outer(s: &S) { let _a = s.a.lock(); helper(s); }
            fn helper(s: &S) { let _b = s.b.lock(); }
            fn reverse(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        let f = run(src);
        assert!(!f.is_empty());
    }

    #[test]
    fn drop_ends_the_hold() {
        let src = "
            fn ab(s: &S) { let g = s.a.lock(); drop(g); let _b = s.b.lock(); }
            fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_scoped_guard_releases_at_block_end() {
        let src = "
            fn ab(s: &S) { let x = { let g = s.a.lock(); g.pop() }; s.b.lock().push(x); }
            fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn self_reacquisition_is_reported() {
        let src = "fn f(s: &S) { let _g = s.a.lock(); s.a.lock().touch(); }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("re-acquired"));
    }

    #[test]
    fn cross_crate_propagation_uses_the_shared_call_graph() {
        // The callee lives in sched; the caller in exec holds `a` across
        // the call. The shared call graph links them, so the reverse
        // order elsewhere completes a cycle.
        let files = vec![
            SourceFile::parse(
                "crates/exec/src/a.rs",
                "fn outer(s: &S) { let _a = s.a.lock(); helper(s); }\n\
                 fn reverse(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }\n",
            ),
            SourceFile::parse(
                "crates/sched/src/b.rs",
                "fn helper(s: &S) { let _b = s.b.lock(); }\n",
            ),
        ];
        let symbols = SymbolTable::build(&files);
        let cg = CallGraph::build(&files, &symbols);
        let world = LockWorld::build(&files, &symbols, &cg);
        let mut out = Vec::new();
        check_lock_order(&files, &symbols, &cg, &world, &mut out);
        assert!(!out.is_empty(), "{out:?}");
    }
}
