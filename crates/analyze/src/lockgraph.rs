//! R5: static lock-order analysis over `exec`/`sched`.
//!
//! Lock identity is the field/variable name the `.lock()` is called on
//! (`self.injector.lock()` → `injector`) — in this workspace those are
//! distinct mutex fields, so the name is the lock. For each non-test
//! function we record which locks it acquires and how long each guard is
//! held:
//!
//! * `let g = x.lock();` — held until `drop(g)` or the end of the
//!   innermost enclosing block;
//! * a statement temporary (`x.lock().push(..);`) — held to the end of
//!   its statement (conservatively: through an attached block for
//!   `if let` conditions, matching pre-2024 temporary lifetimes).
//!
//! While a guard is held, a nested `.lock()` adds the edge
//! `held → nested`, and a call to another analyzed function adds edges
//! to every lock that callee (transitively) acquires — a function-level
//! call-graph approximation keyed by name. Any cycle in the resulting
//! graph (self-loops included) is a potential deadlock.

use std::collections::{BTreeMap, BTreeSet};

use crate::diag::{rules, Finding};
use crate::rules::crate_of;
use crate::source::SourceFile;

/// One `.lock()` site inside a function.
#[derive(Debug)]
struct Acq {
    lock: String,
    /// Code index of the `lock` ident.
    site: usize,
    line: u32,
    /// Code index past which the guard is no longer held.
    held_until: usize,
}

/// One call to a possibly-analyzed function.
#[derive(Debug)]
struct Call {
    callee: String,
    site: usize,
    line: u32,
}

struct FnLocks {
    path: String,
    acqs: Vec<Acq>,
    calls: Vec<Call>,
}

/// Run R5 over the whole file set, appending findings.
pub fn check_lock_order(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut fns: Vec<(String, FnLocks)> = Vec::new();
    for sf in files {
        if !matches!(crate_of(&sf.path), Some("exec") | Some("sched")) {
            continue;
        }
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            fns.push((f.name.clone(), scan_fn(sf, f)));
        }
    }
    let names: BTreeSet<&str> = fns.iter().map(|(n, _)| n.as_str()).collect();

    // Transitive lock set per function name (fixpoint over the
    // name-keyed call graph; name collisions merge conservatively).
    let mut acquired: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for (name, fl) in &fns {
        let entry = acquired.entry(name.clone()).or_default();
        for a in &fl.acqs {
            entry.insert(a.lock.clone());
        }
    }
    loop {
        let mut changed = false;
        for (name, fl) in &fns {
            let mut add = BTreeSet::new();
            for c in &fl.calls {
                if let Some(s) = acquired.get(&c.callee) {
                    add.extend(s.iter().cloned());
                }
            }
            let entry = acquired.entry(name.clone()).or_default();
            for l in add {
                changed |= entry.insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Edges: held lock → lock acquired (directly or via a call) while
    // held. Deterministic order via BTreeMap; first site per edge wins.
    let mut edges: BTreeMap<(String, String), (String, u32)> = BTreeMap::new();
    for (_, fl) in &fns {
        for a in &fl.acqs {
            for b in &fl.acqs {
                if b.site > a.site && b.site <= a.held_until {
                    edges
                        .entry((a.lock.clone(), b.lock.clone()))
                        .or_insert((fl.path.clone(), b.line));
                }
            }
            for c in &fl.calls {
                if c.site > a.site && c.site <= a.held_until && names.contains(c.callee.as_str()) {
                    if let Some(locks) = acquired.get(&c.callee) {
                        for l in locks {
                            edges
                                .entry((a.lock.clone(), l.clone()))
                                .or_insert((fl.path.clone(), c.line));
                        }
                    }
                }
            }
        }
    }

    // A cycle exists through edge (a → b) iff a is reachable from b.
    let graph: BTreeMap<&str, BTreeSet<&str>> = {
        let mut g: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        for (a, b) in edges.keys() {
            g.entry(a.as_str()).or_default().insert(b.as_str());
        }
        g
    };
    for ((a, b), (path, line)) in &edges {
        if a == b || reaches(&graph, b, a) {
            let shape = if a == b {
                format!("`{a}` is re-acquired while already held")
            } else {
                format!(
                    "`{b}` is acquired while `{a}` is held, and elsewhere `{a}` is \
                     acquired while `{b}` is held (directly or transitively)"
                )
            };
            out.push(Finding {
                rule: rules::LOCK_ORDER,
                path: path.clone(),
                line: *line,
                message: format!(
                    "lock-order cycle: {shape}; a consistent global order is required"
                ),
                suppressed: false,
                justification: None,
            });
        }
    }
}

/// DFS reachability over the lock graph.
fn reaches(graph: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut seen = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = graph.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Collect acquisitions and calls inside one fn body.
fn scan_fn(sf: &SourceFile, f: &crate::source::FnItem) -> FnLocks {
    let mut acqs = Vec::new();
    let mut calls = Vec::new();
    for ci in (f.body_start + 1)..f.body_end {
        // Skip nested fn items.
        if sf
            .fns
            .iter()
            .any(|g| g.sig_start > f.sig_start && g.contains(ci))
        {
            continue;
        }
        let t = &sf.toks[sf.code[ci]];
        let next_is = |k: usize, c: char| sf.ct(ci + k).is_some_and(|t| t.is_punct(c));
        // `.lock()`
        if t.is_ident("lock")
            && ci > 0
            && sf.ct(ci - 1).is_some_and(|p| p.is_punct('.'))
            && next_is(1, '(')
            && next_is(2, ')')
        {
            let lock = sf
                .ct(ci.wrapping_sub(2))
                .filter(|p| p.kind == crate::lexer::TokKind::Ident)
                .map(|p| p.text.clone())
                .unwrap_or_else(|| "<expr>".to_string());
            let held_until = guard_extent(sf, f, ci);
            acqs.push(Acq {
                lock,
                site: ci,
                line: t.line,
                held_until,
            });
            continue;
        }
        // Call: `name(` not preceded by `fn` (a nested definition) and
        // not one of the acquisition idents just handled.
        if t.kind == crate::lexer::TokKind::Ident
            && next_is(1, '(')
            && !sf.ct(ci.wrapping_sub(1)).is_some_and(|p| p.is_ident("fn"))
            && !t.is_ident("lock")
            && !t.is_ident("drop")
        {
            calls.push(Call {
                callee: t.text.clone(),
                site: ci,
                line: t.line,
            });
        }
    }
    FnLocks {
        path: sf.path.clone(),
        acqs,
        calls,
    }
}

/// How long the guard from the `.lock()` at code index `ci` is held.
fn guard_extent(sf: &SourceFile, f: &crate::source::FnItem, ci: usize) -> usize {
    // Statement start: the token after the nearest `;`/`{`/`}` behind.
    let mut s = ci;
    while s > f.body_start + 1 {
        let t = &sf.toks[sf.code[s - 1]];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let let_bound = sf.ct(s).is_some_and(|t| t.is_ident("let"));
    if let_bound {
        // Guard name: `let [mut] g = ...`.
        let mut gi = s + 1;
        if sf.ct(gi).is_some_and(|t| t.is_ident("mut")) {
            gi += 1;
        }
        let guard = sf
            .ct(gi)
            .filter(|t| t.kind == crate::lexer::TokKind::Ident)
            .map(|t| t.text.clone());
        if let Some(g) = guard {
            // Explicit `drop(g)` ends the hold early.
            for j in ci..f.body_end {
                if sf.ct(j).is_some_and(|t| t.is_ident("drop"))
                    && sf.ct(j + 1).is_some_and(|t| t.is_punct('('))
                    && sf.ct(j + 2).is_some_and(|t| t.is_ident(&g))
                    && sf.ct(j + 3).is_some_and(|t| t.is_punct(')'))
                {
                    return j;
                }
            }
        }
        return sf.enclosing_block_end(ci, f.body_end);
    }
    // Statement temporary: held to the end of its statement — the next
    // `;` at this nesting depth (blocks inside the statement, e.g. a
    // `match` scrutinee or `if let` body, stay inside the hold).
    let mut depth = 0i32;
    let mut entered_block = false;
    for j in ci..f.body_end {
        let t = &sf.toks[sf.code[j]];
        if t.is_punct('{') {
            depth += 1;
            entered_block = true;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
            // `if let Some(x) = m.lock() { .. }` — an attached block
            // closing back at depth 0 ends the statement.
            if depth == 0 && entered_block {
                return j;
            }
        } else if t.is_punct(';') && depth == 0 {
            return j;
        }
    }
    f.body_end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse("crates/exec/src/fixture.rs", src);
        let mut out = Vec::new();
        check_lock_order(&[sf], &mut out);
        out
    }

    #[test]
    fn nested_opposite_orders_cycle() {
        let src = "
            fn ab(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }
            fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        let f = run(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == rules::LOCK_ORDER));
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
            fn ab(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }
            fn ab2(s: &S) { let _a = s.a.lock(); let _b = s.b.lock(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn statement_temporary_releases_before_next_lock() {
        // `inject` pattern: transient injector guard, then wake takes
        // the condvar mutex — no edge, so no cycle with the reverse.
        let src = "
            fn inject(s: &S) { s.injector.lock().push_back(1); s.wake(); }
            fn drain(s: &S) { let _g = s.lock.lock(); s.injector.lock().len(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn call_graph_propagates_locks() {
        let src = "
            fn outer(s: &S) { let _a = s.a.lock(); helper(s); }
            fn helper(s: &S) { let _b = s.b.lock(); }
            fn reverse(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        let f = run(src);
        assert!(!f.is_empty());
    }

    #[test]
    fn drop_ends_the_hold() {
        let src = "
            fn ab(s: &S) { let g = s.a.lock(); drop(g); let _b = s.b.lock(); }
            fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn block_scoped_guard_releases_at_block_end() {
        let src = "
            fn ab(s: &S) { let x = { let g = s.a.lock(); g.pop() }; s.b.lock().push(x); }
            fn ba(s: &S) { let _b = s.b.lock(); let _a = s.a.lock(); }
        ";
        assert!(run(src).is_empty());
    }

    #[test]
    fn self_reacquisition_is_reported() {
        let src = "fn f(s: &S) { let _g = s.a.lock(); s.a.lock().touch(); }";
        let f = run(src);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("re-acquired"));
    }
}
