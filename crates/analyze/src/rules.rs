//! Rules R2–R4: per-file token-pattern rules, plus suppression
//! application (with liveness tracking) shared by every rule.
//!
//! R5 (lock-order) lives in [`crate::lockgraph`]; the interprocedural
//! rules R6–R9 live in [`crate::r6_units`], [`crate::r7_arena`],
//! [`crate::r8_taint`] (which superseded the old per-file
//! `determinism-sources` rule), and [`crate::r9_events`].

use crate::diag::{rules, Finding};
use crate::source::SourceFile;

/// The workspace crate a logical path belongs to
/// (`crates/core/src/runtime.rs` → `core`). `None` for anything outside
/// `crates/` (root `src/`, `examples/`, ...), which no rule scopes over.
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    let (name, _) = rest.split_once('/')?;
    Some(name)
}

/// Run R2–R4 over one file, appending raw (unsuppressed) findings.
pub fn check_file(sf: &SourceFile, out: &mut Vec<Finding>) {
    let Some(krate) = crate_of(&sf.path) else {
        return;
    };
    r2_ordered_iteration(sf, krate, out);
    r3_lease_discipline(sf, krate, out);
    r4_panic_paths(sf, krate, out);
}

/// R2: `HashMap`/`HashSet` iteration order varies run-to-run (and with
/// the hasher); in schedule-affecting crates that order leaks into
/// schedules, so ordered containers are required.
fn r2_ordered_iteration(sf: &SourceFile, krate: &str, out: &mut Vec<Finding>) {
    if !matches!(krate, "core" | "sched" | "sim" | "fleet") {
        return;
    }
    for ci in 0..sf.code.len() {
        if sf.in_test[ci] {
            continue;
        }
        let t = &sf.toks[sf.code[ci]];
        let bad = ["HashMap", "HashSet"].iter().find(|s| t.is_ident(s));
        if let Some(name) = bad {
            out.push(Finding {
                rule: rules::ORDERED_ITERATION,
                path: sf.path.clone(),
                line: t.line,
                message: format!(
                    "`{name}` in schedule-affecting crate `{krate}`: iteration order is \
                     unordered and leaks into schedules; use BTreeMap/BTreeSet or sort \
                     before iterating"
                ),
                suppressed: false,
                justification: None,
            });
        }
    }
}

/// R3: a function that acquires a buffer/lease (`alloc`/`alloc_on_child`
/// call) must either release it in the same item (`release`/`free`/
/// `drop` reachable in the body) or visibly transfer ownership out
/// (return type mentioning a handle, or a constructor returning `Self`).
fn r3_lease_discipline(sf: &SourceFile, krate: &str, out: &mut Vec<Finding>) {
    if !matches!(krate, "core" | "sched" | "apps") {
        return;
    }
    for f in &sf.fns {
        if f.is_test {
            continue;
        }
        // Ownership visibly escapes through the signature.
        if ["BufferHandle", "Handle", "Self"]
            .iter()
            .any(|s| f.ret.contains(s))
        {
            continue;
        }
        let mut acquire: Option<(u32, String)> = None;
        let mut releases = false;
        for ci in (f.body_start + 1)..f.body_end {
            // Skip nested fn bodies: they are separate items.
            if sf
                .fns
                .iter()
                .any(|g| g.sig_start > f.sig_start && g.contains(ci) && g.body_start < ci)
            {
                continue;
            }
            let t = &sf.toks[sf.code[ci]];
            if sf.ct(ci + 1).is_some_and(|n| n.is_punct('(')) {
                if t.is_ident("alloc") || t.is_ident("alloc_on_child") {
                    acquire.get_or_insert((t.line, t.text.clone()));
                }
                if t.is_ident("release") || t.is_ident("free") || t.is_ident("drop") {
                    releases = true;
                }
            }
        }
        if let Some((line, what)) = acquire {
            if !releases {
                out.push(Finding {
                    rule: rules::LEASE_DISCIPLINE,
                    path: sf.path.clone(),
                    line,
                    message: format!(
                        "fn `{}` calls `{what}(..)` but no release/free/drop is reachable \
                         in the same item and the handle does not escape via the return \
                         type; leaked leases exhaust capacity budgets",
                        f.name
                    ),
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
}

/// R4: `unwrap()` / `expect(..)` / `panic!` in non-test runtime code of
/// the execution crates turn recoverable conditions into aborts that
/// take down co-scheduled tenants.
fn r4_panic_paths(sf: &SourceFile, krate: &str, out: &mut Vec<Finding>) {
    if !matches!(krate, "core" | "exec" | "sched" | "fleet") {
        return;
    }
    for ci in 0..sf.code.len() {
        if sf.in_test[ci] {
            continue;
        }
        let t = &sf.toks[sf.code[ci]];
        // `.unwrap(` / `.expect(`
        let method_call = ci > 0
            && sf.ct(ci - 1).is_some_and(|p| p.is_punct('.'))
            && sf.ct(ci + 1).is_some_and(|n| n.is_punct('('));
        let found = if method_call && t.is_ident("unwrap") {
            Some("unwrap()")
        } else if method_call && t.is_ident("expect") {
            Some("expect(..)")
        } else if t.is_ident("panic") && sf.ct(ci + 1).is_some_and(|n| n.is_punct('!')) {
            Some("panic!")
        } else {
            None
        };
        if let Some(what) = found {
            out.push(Finding {
                rule: rules::PANIC_PATHS,
                path: sf.path.clone(),
                line: t.line,
                message: format!(
                    "`{what}` in non-test runtime code of crate `{krate}`; return a typed \
                     error (NorthupError/SchedError/FabricError) instead"
                ),
                suppressed: false,
                justification: None,
            });
        }
    }
}

/// Apply this file's `analyze:allow` directives to `findings` (which
/// must all belong to `sf`), marking covered ones suppressed, and emit
/// meta-findings for suppression-hygiene violations: an empty
/// justification, an unknown rule name, or — the liveness check — a
/// well-formed suppression that matched no finding and is therefore
/// dead weight that would silently swallow a future regression.
pub fn apply_allows(sf: &SourceFile, findings: &mut [Finding], out_meta: &mut Vec<Finding>) {
    let mut used = vec![false; sf.allows.len()];
    for (ai, a) in sf.allows.iter().enumerate() {
        if a.justification.is_empty() {
            out_meta.push(Finding {
                rule: rules::SUPPRESSION,
                path: sf.path.clone(),
                line: a.line,
                message: format!(
                    "analyze:allow({}) has an empty justification; write why the \
                     violation is sound, e.g. `// analyze:allow({}): <reason>`",
                    a.rule, a.rule
                ),
                suppressed: false,
                justification: None,
            });
            continue;
        }
        if !rules::ALL.contains(&a.rule.as_str()) {
            out_meta.push(Finding {
                rule: rules::SUPPRESSION,
                path: sf.path.clone(),
                line: a.line,
                message: format!(
                    "analyze:allow names unknown rule `{}` (known: {})",
                    a.rule,
                    rules::ALL.join(", ")
                ),
                suppressed: false,
                justification: None,
            });
            continue;
        }
        for f in findings.iter_mut() {
            if f.rule == a.rule && (f.line == a.line || f.line == a.line + 1) {
                f.suppressed = true;
                f.justification = Some(a.justification.clone());
                used[ai] = true;
            }
        }
    }
    for (ai, a) in sf.allows.iter().enumerate() {
        if used[ai] || a.justification.is_empty() || !rules::ALL.contains(&a.rule.as_str()) {
            continue;
        }
        out_meta.push(Finding {
            rule: rules::SUPPRESSION,
            path: sf.path.clone(),
            line: a.line,
            message: format!(
                "analyze:allow({}) matches no finding on line {} or {}; the rule no \
                 longer fires here — delete the stale suppression",
                a.rule,
                a.line,
                a.line + 1
            ),
            suppressed: false,
            justification: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str) -> Vec<Finding> {
        let sf = SourceFile::parse(path, src);
        let mut out = Vec::new();
        check_file(&sf, &mut out);
        let mut meta = Vec::new();
        apply_allows(&sf, &mut out, &mut meta);
        out.extend(meta);
        out
    }

    #[test]
    fn scoping_by_crate() {
        // `HashMap` in apps is out of R2 scope.
        assert!(run("crates/apps/src/x.rs", "use std::collections::HashMap;").is_empty());
        let f = run("crates/core/src/x.rs", "use std::collections::HashMap;");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rules::ORDERED_ITERATION);
    }

    #[test]
    fn engine_modules_are_in_scope() {
        // The event-engine rewrite (calendar queue + digest pinning) must
        // stay under R2: an unordered map in either module would silently
        // break bit-identical replay. Pin the scope so a future exception
        // list can't quietly carve them out. (The determinism leg of this
        // guarantee moved to R8 and is pinned in tests/fixtures.rs.)
        for path in [
            "crates/sched/src/calendar.rs",
            "crates/sched/src/digest.rs",
            "crates/sched/src/scheduler.rs",
        ] {
            let f = run(path, "use std::collections::HashMap;");
            assert_eq!(f.len(), 1, "{path} escaped R2");
            assert_eq!(f[0].rule, rules::ORDERED_ITERATION);
        }
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        assert!(run("crates/core/src/x.rs", "fn f() { x.unwrap_or(0); }").is_empty());
        assert_eq!(
            run("crates/core/src/x.rs", "fn f() { x.unwrap(); }").len(),
            1
        );
    }

    #[test]
    fn suppression_covers_same_and_next_line() {
        let same = "fn f() { x.unwrap(); } // analyze:allow(panic-paths): init-only path";
        let f = run("crates/core/src/x.rs", same);
        assert!(f[0].suppressed);
        let prev = "// analyze:allow(panic-paths): init-only path\nfn f() { x.unwrap(); }";
        let f = run("crates/core/src/x.rs", prev);
        assert!(f[0].suppressed);
    }

    #[test]
    fn empty_justification_is_a_finding() {
        let f = run(
            "crates/core/src/x.rs",
            "// analyze:allow(panic-paths)\nfn f() { x.unwrap(); }",
        );
        assert!(f.iter().any(|x| x.rule == rules::SUPPRESSION));
    }

    #[test]
    fn unused_suppression_is_a_finding() {
        // A justified allow that matches nothing is dead weight.
        let f = run(
            "crates/core/src/x.rs",
            "// analyze:allow(panic-paths): nothing panics here anymore\nfn f() { ok(); }",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rules::SUPPRESSION);
        assert!(f[0].message.contains("matches no finding"));
        // The same allow, matching: no meta-finding.
        let f = run(
            "crates/core/src/x.rs",
            "// analyze:allow(panic-paths): init-only path\nfn f() { x.unwrap(); }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].suppressed);
    }

    #[test]
    fn r3_escape_hatches() {
        // Release in the same fn: clean.
        let clean = "fn f(ctx: &Ctx) { let h = ctx.alloc(n, 8).ok(); ctx.release(h); }";
        assert!(run("crates/core/src/x.rs", clean).is_empty());
        // Handle escapes via return type: clean.
        let escape = "fn f(ctx: &Ctx) -> Result<BufferHandle> { ctx.alloc(n, 8) }";
        assert!(run("crates/core/src/x.rs", escape).is_empty());
        // Neither: finding.
        let leak = "fn f(ctx: &Ctx) { let _h = ctx.alloc(n, 8); }";
        let f = run("crates/core/src/x.rs", leak);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, rules::LEASE_DISCIPLINE);
    }
}
