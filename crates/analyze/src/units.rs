//! The unit lattice for R6 (unit-consistency).
//!
//! The workspace denominates scheduler and router arithmetic in a small
//! set of physical units: virtual **nanoseconds** (deadlines, transfer
//! times, router scores), **bytes** (capacity budgets, staging traffic),
//! **byte·seconds** (tenant quota charges), and **events** (engine
//! throughput numerators). Everything else is dimensionless.
//!
//! Units are inferred, never declared: an identifier suffix (`_ns`,
//! `_bytes`, `byte_secs`, `_events`), a declared field or parameter type
//! (`SimTime`/`SimDur` are ns-denominated), or a function's return type
//! each pin a unit. Expressions combine units conservatively — `*` and
//! `/` legitimately change units so they *erase* knowledge, while `+`,
//! `-`, and comparisons require both sides to agree. Only two *known,
//! different* units ever produce a finding; unknown operands never do.

use std::fmt;

/// One point of the unit lattice (`None` = dimensionless/unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Virtual nanoseconds (`SimTime`/`SimDur`, `*_ns`).
    Ns,
    /// Bytes (`*_bytes`, capacity budgets).
    Bytes,
    /// Byte·seconds (`byte_secs`, quota charges).
    ByteSecs,
    /// Engine events (`*_events`, throughput numerators).
    Events,
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Unit::Ns => "ns",
            Unit::Bytes => "bytes",
            Unit::ByteSecs => "byte·seconds",
            Unit::Events => "events",
        })
    }
}

/// Infer a unit from an identifier (variable, field, const, or function
/// name). Case-insensitive so `PRESSURE_NS` and `load_ns` agree.
pub fn of_ident(name: &str) -> Option<Unit> {
    let n = name.to_ascii_lowercase();
    // Longest suffixes first: `byte_secs` must not read as seconds, and
    // `_bytes` must win over a hypothetical `_s`.
    if n.ends_with("byte_secs") || n.ends_with("byte_seconds") {
        Some(Unit::ByteSecs)
    } else if n.ends_with("_ns") || n == "ns" {
        Some(Unit::Ns)
    } else if n.ends_with("_bytes") || n == "bytes" {
        Some(Unit::Bytes)
    } else if n.ends_with("_events") || n == "events" {
        Some(Unit::Events)
    } else {
        None
    }
}

/// Infer a unit from a declared type's text (`SimTime`, `SimDur`, and
/// references/paths to them are ns-denominated).
pub fn of_type(ty: &str) -> Option<Unit> {
    if contains_word(ty, "SimTime") || contains_word(ty, "SimDur") {
        Some(Unit::Ns)
    } else {
        None
    }
}

/// The unit of a declaration: name suffix first (most specific), then
/// the declared type.
pub fn of_decl(name: &str, ty: &str) -> Option<Unit> {
    of_ident(name).or_else(|| of_type(ty))
}

/// Methods of the std numeric types that workspace types also define
/// (`SimTime::min`, `SimDur::saturating_sub`, ...). Name-keyed symbol
/// lookups must never resolve these: a `u64::min(bytes, bytes)` call
/// site would otherwise inherit the sim-time signature and flag a
/// perfectly unitful byte comparison. R6 instead treats them as
/// receiver-unit-preserving.
pub fn std_shadowed_method(name: &str) -> bool {
    matches!(name, "min" | "max" | "clamp" | "abs")
        || name.starts_with("saturating_")
        || name.starts_with("wrapping_")
        || name.starts_with("checked_")
}

/// Whole-word containment (`Vec < SimDur >` contains `SimDur`;
/// `SimDurable` does not).
pub fn contains_word(hay: &str, word: &str) -> bool {
    let mut rest = hay;
    while let Some(pos) = rest.find(word) {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + word.len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        rest = &rest[pos + word.len()..];
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_inference() {
        assert_eq!(of_ident("deadline_ns"), Some(Unit::Ns));
        assert_eq!(of_ident("PRESSURE_NS"), Some(Unit::Ns));
        assert_eq!(of_ident("read_bytes"), Some(Unit::Bytes));
        assert_eq!(of_ident("byte_secs"), Some(Unit::ByteSecs));
        assert_eq!(of_ident("byte_seconds"), Some(Unit::ByteSecs));
        assert_eq!(of_ident("events"), Some(Unit::Events));
        assert_eq!(of_ident("chunks"), None);
        // `byte_secs` must not be read as a bytes-suffixed name.
        assert_ne!(of_ident("byte_secs"), Some(Unit::Bytes));
    }

    #[test]
    fn type_inference() {
        assert_eq!(of_type("SimDur"), Some(Unit::Ns));
        assert_eq!(of_type("Option < SimTime >"), Some(Unit::Ns));
        assert_eq!(of_type("SimDurable"), None);
        assert_eq!(of_type("u64"), None);
    }

    #[test]
    fn decl_prefers_name_over_type() {
        assert_eq!(of_decl("xfer_bytes", "u64"), Some(Unit::Bytes));
        assert_eq!(of_decl("latency", "SimDur"), Some(Unit::Ns));
        assert_eq!(of_decl("count", "u64"), None);
    }
}
