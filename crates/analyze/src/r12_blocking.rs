//! R12 blocking-extent: no guard held across a may-block call.
//!
//! A "may-block" predicate seeds on the operations that can park a pool
//! thread — sleeping, channel `recv`/`send`, thread `join`/`park`,
//! condvar waits, file I/O flushes, and lock acquisition itself — and
//! propagates transitively up the shared call graph (the same
//! machinery as R8's determinism taint). Holding any lock guard across
//! a may-block call is flagged: on the real-mode thread path a parked
//! worker that still owns `injector` or the sleep mutex stalls every
//! sibling, which is exactly the convoy the PR 3 statement-extent
//! heuristic tried to approximate (this rule subsumes it — guard
//! extents now come from [`crate::locks`], and the callee's blocking
//! behavior is resolved interprocedurally instead of lexically).
//!
//! Carve-outs:
//!
//! * **condvar waits** — `wait`/`wait_for`/`wait_while`/`wait_until`
//!   *release* the guard they are handed; a wait whose arguments name a
//!   held guard is the sleep protocol working as designed, not a
//!   convoy;
//! * `drop(x)` (destructor identity unknowable) and `.lock()` call
//!   sites (reported once as nested acquisitions, not again as calls);
//! * test code.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::diag::{rules, Finding};
use crate::locks::LockWorld;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

/// Callee names that block directly (std/parking_lot API surface; no
/// workspace definition required).
const DIRECT_BLOCKERS: &[&str] = &[
    "sleep",
    "sleep_ms",
    "recv",
    "recv_timeout",
    "send",
    "park",
    "park_timeout",
    "join",
    "wait",
    "wait_for",
    "wait_while",
    "wait_until",
    "read_to_string",
    "write_all",
    "sync_all",
    "flush",
];

/// Condvar wait family: exempt when handed a held guard.
const CONDVAR_WAITS: &[&str] = &["wait", "wait_for", "wait_while", "wait_until"];

/// Names that are (in the lock-scoped crates) always the atomic or
/// container method surface, never a blocking workspace fn — a
/// same-named fn elsewhere (e.g. a file-reading `load` in apps) must
/// not taint every `.load()` call site through name-keyed resolution.
const NEVER_BLOCK: &[&str] = &[
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "len",
    "is_empty",
    "notify_one",
    "notify_all",
];

/// Run R12 over the lock world.
pub fn check(
    files: &[SourceFile],
    symbols: &SymbolTable,
    cg: &CallGraph,
    world: &LockWorld,
    out: &mut Vec<Finding>,
) {
    // Seed the may-block set: fns that call a direct blocker, plus fns
    // that acquire any lock (acquisition itself may block on a
    // contended mutex).
    let mut seeds: BTreeSet<(usize, usize)> = BTreeSet::new();
    for call in &cg.calls {
        if call.in_test || !DIRECT_BLOCKERS.contains(&call.callee.as_str()) {
            continue;
        }
        if let Some(g) = call.caller {
            let f = &symbols.fns[g];
            seeds.insert((f.file, f.item));
        }
    }
    for (&g, acqs) in &world.acqs {
        if !acqs.is_empty() {
            let f = &symbols.fns[g];
            seeds.insert((f.file, f.item));
        }
    }
    let taint = cg.taint(
        symbols,
        |f| seeds.contains(&(f.file, f.item)) && !NEVER_BLOCK.contains(&f.name.as_str()),
        |f| f.is_test || NEVER_BLOCK.contains(&f.name.as_str()),
    );

    for (&g, acqs) in &world.acqs {
        let f = &symbols.fns[g];
        let path = &files[f.file].path;
        for a in acqs {
            // Nested acquisition while `a` is held: blocking by
            // definition (and the lock-order rule's raw material).
            for b in acqs {
                if b.site > a.site && b.site <= a.held_until {
                    out.push(Finding {
                        rule: rules::BLOCKING_EXTENT,
                        path: path.clone(),
                        line: b.line,
                        message: format!(
                            "acquiring `{}` while guard `{}` (taken at line {}) is \
                             held may block the holder; release `{}` first or keep \
                             the critical section leaf-only",
                            b.lock, a.lock, a.line, a.lock
                        ),
                        suppressed: false,
                        justification: None,
                    });
                }
            }
            for &c in world.calls_by_caller.get(&g).into_iter().flatten() {
                let call = &cg.calls[c];
                if call.ci <= a.site || call.ci > a.held_until {
                    continue;
                }
                let callee = call.callee.as_str();
                if callee == "lock" || callee == "drop" || NEVER_BLOCK.contains(&callee) {
                    continue;
                }
                // Condvar carve-out: the wait releases the guard it is
                // handed.
                if CONDVAR_WAITS.contains(&callee)
                    && wait_releases_held_guard(
                        &files[call.file],
                        call.ci,
                        acqs.iter()
                            .filter(|h| call.ci > h.site && call.ci <= h.held_until)
                            .filter_map(|h| h.guard_var.as_deref()),
                    )
                {
                    continue;
                }
                let (blocks, why) = if DIRECT_BLOCKERS.contains(&callee) {
                    (true, format!("`{callee}` blocks"))
                } else if taint.names.contains(callee) {
                    let chain = taint
                        .tainted_fn_named(symbols, callee)
                        .map(|gi| taint.chain(symbols, gi).join(" → "))
                        .unwrap_or_else(|| callee.to_string());
                    (true, format!("`{callee}` may block via `{chain}`"))
                } else {
                    (false, String::new())
                };
                if blocks {
                    out.push(Finding {
                        rule: rules::BLOCKING_EXTENT,
                        path: path.clone(),
                        line: call.line,
                        message: format!(
                            "call to `{callee}` while guard `{}` (taken at line {}) \
                             is held: {why}; shrink the critical section so the \
                             guard drops before blocking",
                            a.lock, a.line
                        ),
                        suppressed: false,
                        justification: None,
                    });
                }
            }
        }
    }
}

/// Does the wait call at code index `ci` pass one of the held guard
/// variables (`cond.wait_for(&mut g, ..)`)?
fn wait_releases_held_guard<'a>(
    sf: &SourceFile,
    ci: usize,
    mut guards: impl Iterator<Item = &'a str>,
) -> bool {
    let Some(open) = (ci + 1 < sf.code.len()).then_some(ci + 1) else {
        return false;
    };
    if !sf.ct(open).is_some_and(|t| t.is_punct('(')) {
        return false;
    }
    let mut args: BTreeSet<&str> = BTreeSet::new();
    let mut depth = 0i32;
    for k in open..sf.code.len() {
        let t = &sf.toks[sf.code[k]];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == crate::lexer::TokKind::Ident {
            args.insert(t.text.as_str());
        }
    }
    guards.any(|g| args.contains(g))
}
