//! SARIF 2.1.0 output (`--sarif FILE`) — the minimal subset GitHub code
//! scanning and other SARIF consumers ingest: one run, the rule
//! catalog, and per-finding results with level, message, and a
//! `startLine` region. Suppressed findings are emitted with an
//! `inSource` suppression carrying the in-tree justification.

use crate::diag::{rules, severity_of, Report};
use crate::json::escape;

/// One-line rule descriptions for the SARIF rule catalog.
pub fn describe(rule: &str) -> &'static str {
    match rule {
        rules::ORDERED_ITERATION => {
            "unordered HashMap/HashSet iteration leaks into schedules; use ordered containers"
        }
        rules::LEASE_DISCIPLINE => {
            "acquired buffers/leases need a reachable release or an escaping handle"
        }
        rules::PANIC_PATHS => "no unwrap()/expect(..)/panic! in non-test runtime code",
        rules::LOCK_ORDER => "the static lock-acquisition graph must be acyclic",
        rules::UNIT_CONSISTENCY => {
            "no mixed-unit arithmetic/comparison across ns, bytes, byte·seconds, events"
        }
        rules::ARENA_INDEX => {
            "dense arena indices stay in their declared domain and die on compaction"
        }
        rules::DETERMINISM_TAINT => {
            "wall-clock/entropy sources must not reach schedule-visible code, even transitively"
        }
        rules::EVENT_ORDER => {
            "packed calendar events are ordered by the full (SimTime, kind, id, seq) tuple"
        }
        rules::LOCK_SET => {
            "guarded fields need a live guard; shared plain fields must not be written from thread-escaping code"
        }
        rules::ATOMIC_ORDER => {
            "Relaxed accesses on a release/acquire publication or consumption edge need a fence or a justified allow"
        }
        rules::BLOCKING_EXTENT => {
            "no lock guard may be held across a may-block call (sleep, channel ops, nested locks, file I/O)"
        }
        rules::SUPPRESSION => "analyze:allow directives must be justified, known, and live",
        _ => "unknown rule",
    }
}

/// Render the report as a SARIF 2.1.0 document.
pub fn report_to_sarif(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    s.push_str("  \"version\": \"2.1.0\",\n");
    s.push_str("  \"runs\": [\n    {\n");
    s.push_str("      \"tool\": {\n        \"driver\": {\n");
    s.push_str("          \"name\": \"northup-analyze\",\n");
    s.push_str("          \"rules\": [");
    let mut first = true;
    for rule in rules::ALL.iter().chain([rules::SUPPRESSION].iter()) {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"defaultConfiguration\": {{\"level\": \"{}\"}}}}",
            rule,
            escape(describe(rule)),
            severity_of(rule).as_str()
        ));
    }
    s.push_str("\n          ]\n        }\n      },\n");
    s.push_str("      \"results\": [");
    let mut first = true;
    for f in &r.findings {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"{}\", \
             \"message\": {{\"text\": \"{}\"}}, \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]",
            f.rule,
            f.severity().as_str(),
            escape(&f.message),
            escape(&f.path),
            f.line.max(1)
        ));
        if f.suppressed {
            let just = f.justification.as_deref().unwrap_or("");
            s.push_str(&format!(
                ", \"suppressions\": [{{\"kind\": \"inSource\", \"justification\": \"{}\"}}]",
                escape(just)
            ));
        }
        s.push('}');
    }
    s.push_str("\n      ]\n    }\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline;
    use crate::diag::Finding;

    #[test]
    fn sarif_is_valid_json_with_expected_shape() {
        let mut r = Report::default();
        r.findings.push(Finding {
            rule: rules::UNIT_CONSISTENCY,
            path: "crates/fleet/src/router.rs".into(),
            line: 7,
            message: "mixed units \"x\"".into(),
            suppressed: false,
            justification: None,
        });
        r.findings.push(Finding {
            rule: rules::PANIC_PATHS,
            path: "crates/core/src/x.rs".into(),
            line: 3,
            message: "m".into(),
            suppressed: true,
            justification: Some("why".into()),
        });
        let s = report_to_sarif(&r);
        let doc = baseline::parse(&s).expect("SARIF must parse as JSON");
        assert_eq!(
            doc.get("version").and_then(baseline::Val::as_str),
            Some("2.1.0")
        );
        let runs = doc.get("runs").and_then(baseline::Val::as_arr).unwrap();
        let results = runs[0]
            .get("results")
            .and_then(baseline::Val::as_arr)
            .unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(
            results[0].get("level").and_then(baseline::Val::as_str),
            Some("error")
        );
        assert!(results[1].get("suppressions").is_some());
        let rules_arr = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(baseline::Val::as_arr)
            .unwrap();
        // Every rule plus the suppression meta-rule.
        assert_eq!(rules_arr.len(), rules::ALL.len() + 1);
    }
}
