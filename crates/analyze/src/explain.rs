//! The single rules table behind `northup-analyze --explain <rule>`:
//! every rule's contract, an example, and the allow syntax, so a
//! suppression justification can reference the exact contract it
//! waives.

use crate::diag::{rules, severity_of};

/// One rule's documentation.
#[derive(Debug, Clone, Copy)]
pub struct RuleDoc {
    /// Rule identifier (`lock-set`, ...).
    pub id: &'static str,
    /// The crates the rule scopes over.
    pub scope: &'static str,
    /// The invariant the rule enforces.
    pub contract: &'static str,
    /// A minimal violating example.
    pub example: &'static str,
}

/// Every rule, suppression meta-rule included, in rule-number order.
pub const RULE_DOCS: &[RuleDoc] = &[
    RuleDoc {
        id: rules::ORDERED_ITERATION,
        scope: "core, sim, sched, fleet",
        contract: "No HashMap/HashSet in schedule-affecting code: iteration order \
                   feeds event order, and unordered maps make replay diverge. Use \
                   BTreeMap/BTreeSet or sorted vecs.",
        example: "use std::collections::HashMap;  // in crates/sched",
    },
    RuleDoc {
        id: rules::LEASE_DISCIPLINE,
        scope: "core, sched, apps",
        contract: "Every alloc/lease acquisition needs a reachable release on the \
                   same path, or the handle must escape to a caller that releases \
                   it; leaked leases starve admission.",
        example: "let h = ctx.alloc(node, bytes)?;  // no release, h dropped",
    },
    RuleDoc {
        id: rules::PANIC_PATHS,
        scope: "core, exec, sched, fleet",
        contract: "No unwrap()/expect()/panic! in non-test runtime code; a panic on \
                   a pool thread poisons the run. Return the typed error instead.",
        example: "let v = map.get(&k).unwrap();  // runtime path",
    },
    RuleDoc {
        id: rules::LOCK_ORDER,
        scope: "exec, sched",
        contract: "The static lock-acquisition graph (guard extents plus locks \
                   acquired transitively through calls, over the shared call \
                   graph) must be acyclic; a cycle is a potential deadlock.",
        example: "fn a() { _1 = x.lock(); y.lock(); }  fn b() { _2 = y.lock(); x.lock(); }",
    },
    RuleDoc {
        id: rules::UNIT_CONSISTENCY,
        scope: "core, sched, fleet",
        contract: "No arithmetic/comparison mixing ns, bytes, byte-seconds, and \
                   event counts; unit identity comes from ident suffixes, field \
                   types, and fn signatures, and poisons through mul/div.",
        example: "let cost = transfer_ns + payload_bytes;",
    },
    RuleDoc {
        id: rules::ARENA_INDEX,
        scope: "core, sched, fleet",
        contract: "Dense arena indices (HotJob, ChunkChain, ...) stay in their \
                   declared domain: no raw/literal/cross-domain usize indexing, \
                   and no index held across a compacting call (swap_remove, \
                   retain, sort, ...).",
        example: "let j = hot[other_domain_id.0 as usize];",
    },
    RuleDoc {
        id: rules::DETERMINISM_TAINT,
        scope: "core, sim, sched, fleet",
        contract: "No wall-clock or OS entropy (Instant/SystemTime/thread_rng) \
                   reaching schedule-visible code, even through helper fns in \
                   other crates; the call graph is chased with a witness chain. \
                   Carve-outs: sim/src/time.rs, sched/src/real.rs.",
        example: "fn stamp() -> u128 { Instant::now().elapsed().as_nanos() }",
    },
    RuleDoc {
        id: rules::EVENT_ORDER,
        scope: "core, sched",
        contract: "Packed calendar events are ordered only by the full (SimTime, \
                   kind, id, seq) tuple; sorting or selecting by a projected key \
                   drops the tie-break and lets insertion order leak into \
                   schedules.",
        example: "events.sort_by_key(|e| e.0);",
    },
    RuleDoc {
        id: rules::LOCK_SET,
        scope: "exec, sched, fleet",
        contract: "A field declared `guarded by \\`lock\\`` in its doc comment is \
                   only touched while that guard is live (locally or via the \
                   entry-held set every caller provides), and a plain field of a \
                   shared struct is never written from thread-escaping code \
                   (spawn/run_chain*/scope/par_for closures and their callees) \
                   without a lock; findings carry the witness chain to the spawn.",
        example: "pool.spawn(move || { shared.epoch += 1; });  // no guard",
    },
    RuleDoc {
        id: rules::ATOMIC_ORDER,
        scope: "exec, sched, fleet",
        contract: "An atomic with a release/acquire protocol (a Release+ store or \
                   Acquire+ load anywhere) admits no Relaxed access on the \
                   opposite edge. CAS failure orderings are exempt, as is any fn \
                   that issues fence(SeqCst) (the Chase-Lev idiom); counters only \
                   ever accessed Relaxed have no protocol to violate.",
        example: "flag.store(true, Ordering::Release);  ...  flag.load(Ordering::Relaxed)",
    },
    RuleDoc {
        id: rules::BLOCKING_EXTENT,
        scope: "exec, sched, fleet",
        contract: "No lock guard held across a may-block operation: sleeping, \
                   channel recv/send, join/park, file I/O, and lock acquisition \
                   itself, propagated transitively through the call graph. \
                   Condvar waits handed a held guard are the sleep protocol and \
                   are exempt.",
        example: "let g = state.lock(); rx.recv();  // convoy",
    },
    RuleDoc {
        id: rules::SUPPRESSION,
        scope: "all analyzed files",
        contract: "Suppression hygiene: an analyze:allow with an empty \
                   justification, an unknown or retired rule name, or no finding \
                   left to suppress is itself a (warning-tier) finding.",
        example: "// analyze:allow(lock-order)  <- no justification",
    },
];

/// Render the doc for one rule (or `None` if the rule is unknown).
pub fn explain(rule: &str) -> Option<String> {
    let d = RULE_DOCS.iter().find(|d| d.id == rule)?;
    Some(format!(
        "{id} ({sev})\n  scope:    {scope}\n  contract: {contract}\n  \
         example:  {example}\n  allow:    // analyze:allow({id}): <why this \
         instance upholds the contract anyway>",
        id = d.id,
        sev = severity_of(d.id).as_str(),
        scope = d.scope,
        contract = d.contract,
        example = d.example,
    ))
}

/// Render the one-line index of every rule (for `--explain` with no or
/// an unknown argument).
pub fn index() -> String {
    let mut out = String::from("rules (use --explain <rule> for the contract):\n");
    for d in RULE_DOCS {
        // First sentence: split at ". " so an ellipsis ("HotJob, ...")
        // inside a sentence does not truncate it.
        let first = d.contract.split(". ").next().unwrap_or(d.contract);
        out.push_str(&format!(
            "  {:<18} {}.\n",
            d.id,
            first.trim().trim_end_matches('.')
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::rules;

    #[test]
    fn every_rule_has_a_doc_and_vice_versa() {
        for r in rules::ALL.iter().chain([&rules::SUPPRESSION]) {
            assert!(
                RULE_DOCS.iter().any(|d| d.id == *r),
                "rule {r} missing from RULE_DOCS"
            );
        }
        for d in RULE_DOCS {
            assert!(
                rules::ALL.contains(&d.id) || d.id == rules::SUPPRESSION,
                "RULE_DOCS has unknown rule {}",
                d.id
            );
        }
    }

    #[test]
    fn explain_renders_contract_and_allow_syntax() {
        let txt = explain("atomic-order").unwrap();
        assert!(txt.contains("fence(SeqCst)"));
        assert!(txt.contains("analyze:allow(atomic-order)"));
        assert!(explain("no-such-rule").is_none());
        assert!(index().contains("blocking-extent"));
    }
}
