//! Minimal hand-rolled JSON emitter — the crate is dependency-free, so
//! no serde (not even the workspace shim, which the analyzer audits).

use crate::diag::{rules, Report};

/// Escape a string for a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render the full report as a JSON document.
pub fn report_to_json(r: &Report) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"files_scanned\": ");
    s.push_str(&r.files_scanned.to_string());
    s.push_str(",\n  \"failing\": ");
    s.push_str(&r.failing().count().to_string());
    s.push_str(",\n  \"by_rule\": {");
    let mut first = true;
    for rule in rules::ALL.iter().chain([rules::SUPPRESSION].iter()) {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\n    \"{}\": {}", rule, r.failing_for(rule)));
    }
    s.push_str("\n  },\n  \"timings_us\": {");
    let mut first = true;
    for (pass, us) in &r.timings_us {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!("\n    \"{}\": {}", escape(pass), us));
    }
    s.push_str(&format!("\n  }},\n  \"total_us\": {},", r.total_us()));
    s.push_str("\n  \"findings\": [");
    let mut first = true;
    for f in &r.findings {
        if !first {
            s.push(',');
        }
        first = false;
        s.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"severity\": \"{}\", \"path\": \"{}\", \
             \"line\": {}, \"suppressed\": {}, \"message\": \"{}\"",
            f.rule,
            f.severity().as_str(),
            escape(&f.path),
            f.line,
            f.suppressed,
            escape(&f.message)
        ));
        if let Some(j) = &f.justification {
            s.push_str(&format!(", \"justification\": \"{}\"", escape(j)));
        }
        s.push('}');
    }
    s.push_str("\n  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Finding;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn report_shape() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.findings.push(Finding {
            rule: rules::PANIC_PATHS,
            path: "crates/core/src/x.rs".into(),
            line: 3,
            message: "msg".into(),
            suppressed: false,
            justification: None,
        });
        let j = report_to_json(&r);
        assert!(j.contains("\"files_scanned\": 2"));
        assert!(j.contains("\"failing\": 1"));
        assert!(j.contains("\"panic-paths\": 1"));
        assert!(j.contains("\"line\": 3"));
    }
}
