//! R9 event-order contract.
//!
//! Calendar events are packed `(SimTime, kind, id, seq)` tuples whose
//! *full* lexicographic order is the engine's tie-break contract —
//! bit-identical replay depends on every comparison seeing all four
//! components. Sorting or selecting over an event store by a projected
//! key (`sort_by_key(|e| e.0)`) silently drops the tie-break and lets
//! insertion order leak into schedules.
//!
//! Event stores are found declaratively: struct fields whose type
//! mentions `Packed` or `Event`, plus locals bound by reference to such
//! a field (tracked by the dataflow pass). On those receivers:
//!
//! - the `*_by_key` family is always flagged (a key projection cannot
//!   express the full-tuple order);
//! - the `*_by` family is flagged only when the comparator projects a
//!   tuple field (`.0`, `.1`, ...); a whole-value comparator like
//!   `|a, b| b.cmp(a)` honors the contract and stays clean.

use std::collections::BTreeSet;

use crate::dataflow::{self, FnFacts};
use crate::diag::{rules, Finding};
use crate::lexer::TokKind;
use crate::rules::crate_of;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;
use crate::units;

/// Methods that order by a projected key — never full-tuple.
const BY_KEY: &[&str] = &[
    "sort_by_key",
    "sort_unstable_by_key",
    "min_by_key",
    "max_by_key",
    "binary_search_by_key",
];

/// Methods whose closure decides the order — flagged when it projects.
const BY_CMP: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "min_by",
    "max_by",
    "binary_search_by",
];

/// Struct fields that hold packed events: type mentions `Packed` or
/// `Event` as a whole word.
pub fn event_fields(symbols: &SymbolTable) -> BTreeSet<String> {
    symbols
        .fields
        .iter()
        .filter(|f| type_mentions_event(&f.ty))
        .map(|f| f.name.clone())
        .collect()
}

fn type_mentions_event(ty: &str) -> bool {
    units::contains_word(ty, "Packed") || units::contains_word(ty, "Event")
}

/// Run R9 over every file.
pub fn check(files: &[SourceFile], symbols: &SymbolTable, out: &mut Vec<Finding>) {
    let fields = event_fields(symbols);
    if fields.is_empty() {
        return;
    }
    for sf in files {
        if !matches!(crate_of(&sf.path), Some("core" | "sched")) {
            continue;
        }
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            let facts = FnFacts::collect(sf, f, symbols, &fields);
            for ci in (f.body_start + 1)..f.body_end {
                let t = &sf.toks[sf.code[ci]];
                if t.kind != TokKind::Ident
                    || !sf.ct(ci + 1).is_some_and(|n| n.is_punct('('))
                    || ci == 0
                    || !sf.ct(ci - 1).is_some_and(|p| p.is_punct('.'))
                {
                    continue;
                }
                let by_key = BY_KEY.contains(&t.text.as_str());
                let by_cmp = BY_CMP.contains(&t.text.as_str());
                if !by_key && !by_cmp {
                    continue;
                }
                // Receiver must be (or alias) an event store. Walk back
                // through no-arg adapter calls (`.iter()`) so the
                // store's field name stays in the path, then match any
                // segment: `self.overflow.iter().min_by_key` hits
                // `overflow`.
                let mut e = ci - 2;
                while e >= 3
                    && sf.ct(e).is_some_and(|t| t.is_punct(')'))
                    && sf.ct(e - 1).is_some_and(|t| t.is_punct('('))
                    && sf.ct(e - 2).is_some_and(|t| t.kind == TokKind::Ident)
                {
                    e -= 2;
                }
                let path = dataflow::path_ending_at(sf, e);
                let is_event = path
                    .split('.')
                    .any(|seg| fields.contains(seg) || facts.event_locals.contains(seg));
                if !is_event {
                    continue;
                }
                if by_cmp && !closure_projects(sf, ci + 1, f.body_end) {
                    continue;
                }
                out.push(Finding {
                    rule: rules::EVENT_ORDER,
                    path: sf.path.clone(),
                    line: t.line,
                    message: format!(
                        "`{}` on event store `{path}` orders by a projected key and \
                         drops the `(SimTime, kind, id, seq)` tie-break; compare whole \
                         packed tuples (e.g. `sort_unstable()` or `cmp` on the full \
                         value)",
                        t.text
                    ),
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
}

/// Does the closure argument starting at `(` (code index `open`)
/// contain a tuple projection (`. NUM`)?
fn closure_projects(sf: &SourceFile, open: usize, hi: usize) -> bool {
    let mut depth = 0i32;
    for k in open..hi {
        let t = &sf.toks[sf.code[k]];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return false;
            }
        } else if t.is_punct('.') && sf.ct(k + 1).is_some_and(|n| n.kind == TokKind::Num) {
            return true;
        }
    }
    false
}
