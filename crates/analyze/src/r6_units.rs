//! R6 unit-consistency: flags arithmetic and comparisons that mix the
//! workspace's physical units (ns, bytes, byte·seconds, events), plus
//! call sites that pass a value of one unit to a parameter declared in
//! another.
//!
//! The rule is deliberately one-sided: a finding requires **both**
//! operands to resolve to *known, different* units. Multiplication and
//! division legitimately change units, so `*`, `/`, and `%` erase
//! knowledge — an operand adjacent to one never resolves. Unknown never
//! flags; the cost is recall, never false alarms in scoring code.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::dataflow::FnFacts;
use crate::diag::{rules, Finding};
use crate::lexer::TokKind;
use crate::rules::crate_of;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;
use crate::units::{self, Unit};

/// Crates whose arithmetic is unit-audited.
fn in_scope(path: &str) -> bool {
    matches!(crate_of(path), Some("core" | "sched" | "fleet"))
}

/// A resolved operand: its unit, a display name, and the code-index
/// span `[start, end]` of the atom.
struct Atom {
    unit: Unit,
    name: String,
    start: usize,
    end: usize,
}

/// Run R6 over every file: intraprocedural operator checks, then the
/// interprocedural call-argument check.
pub fn check(files: &[SourceFile], symbols: &SymbolTable, cg: &CallGraph, out: &mut Vec<Finding>) {
    let empty = BTreeSet::new();
    for sf in files {
        if !in_scope(&sf.path) {
            continue;
        }
        let mut cache: FactsCache = BTreeMap::new();
        let n = sf.code.len();
        let mut ci = 0usize;
        while ci < n {
            if sf.in_test[ci] {
                ci += 1;
                continue;
            }
            let Some((op, lhs_end, rhs_start, width)) = binary_op_at(sf, ci) else {
                ci += 1;
                continue;
            };
            let facts = facts_at(sf, symbols, &empty, lhs_end, &mut cache);
            let lhs = unit_ending_at(sf, facts, symbols, lhs_end);
            let rhs = unit_starting_at(sf, facts, symbols, rhs_start);
            if let (Some(l), Some(r)) = (lhs, rhs) {
                if l.unit != r.unit {
                    let kind = if matches!(op, "+" | "-" | "+=" | "-=") {
                        "arithmetic"
                    } else {
                        "comparison"
                    };
                    let t = &sf.toks[sf.code[ci]];
                    out.push(Finding {
                        rule: rules::UNIT_CONSISTENCY,
                        path: sf.path.clone(),
                        line: t.line,
                        message: format!(
                            "mixed-unit {kind}: `{}` ({}) {op} `{}` ({}); convert \
                             explicitly before combining",
                            l.name, l.unit, r.name, r.unit
                        ),
                        suppressed: false,
                        justification: None,
                    });
                }
            }
            ci += width;
        }
    }
    check_call_args(files, symbols, cg, out);
}

type FactsCache = BTreeMap<usize, FnFacts>;

/// Facts for the fn enclosing `ci` (empty facts outside any fn).
fn facts_at<'a>(
    sf: &SourceFile,
    symbols: &SymbolTable,
    empty_events: &BTreeSet<String>,
    ci: usize,
    cache: &'a mut FactsCache,
) -> &'a FnFacts {
    let key = sf.fn_at(ci).map(|f| f.body_start).unwrap_or(usize::MAX);
    cache.entry(key).or_insert_with(|| {
        sf.fns
            .iter()
            .find(|f| f.body_start == key)
            .map(|f| FnFacts::collect(sf, f, symbols, empty_events))
            .unwrap_or_default()
    })
}

/// If the code token at `ci` is a binary operator R6 audits, return
/// `(op text, lhs end index, rhs start index, tokens to skip)`.
/// Non-operator look-alikes (`->`, `=>`, `<<`, `>>`, generics-adjacent
/// unary forms) return `None`.
fn binary_op_at(sf: &SourceFile, ci: usize) -> Option<(&'static str, usize, usize, usize)> {
    let t = sf.ct(ci)?;
    if t.kind != TokKind::Punct {
        return None;
    }
    let next = |k: usize| sf.ct(ci + k).map(|t| t.text.clone()).unwrap_or_default();
    let prev_is_expr_end = ci > 0
        && sf.ct(ci - 1).is_some_and(|p| {
            matches!(p.kind, TokKind::Ident | TokKind::Num) || p.is_punct(')') || p.is_punct(']')
        });
    match t.text.as_str() {
        "+" => {
            if next(1) == "=" {
                Some(("+=", ci.checked_sub(1)?, ci + 2, 2))
            } else if prev_is_expr_end {
                Some(("+", ci - 1, ci + 1, 1))
            } else {
                None
            }
        }
        "-" => {
            if next(1) == ">" {
                None
            } else if next(1) == "=" {
                Some(("-=", ci.checked_sub(1)?, ci + 2, 2))
            } else if prev_is_expr_end {
                Some(("-", ci - 1, ci + 1, 1))
            } else {
                None
            }
        }
        "<" => {
            if next(1) == "<" {
                None
            } else if next(1) == "=" {
                Some(("<=", ci.checked_sub(1)?, ci + 2, 2))
            } else if prev_is_expr_end {
                Some(("<", ci.checked_sub(1)?, ci + 1, 1))
            } else {
                None
            }
        }
        ">" => {
            // `->` and `=>` are consumed at their first char; `>>` is a
            // shift, not a comparison.
            if (ci > 0
                && sf
                    .ct(ci - 1)
                    .is_some_and(|p| p.is_punct('-') || p.is_punct('=')))
                || next(1) == ">"
            {
                None
            } else if next(1) == "=" {
                Some((">=", ci.checked_sub(1)?, ci + 2, 2))
            } else if prev_is_expr_end {
                Some((">", ci.checked_sub(1)?, ci + 1, 1))
            } else {
                None
            }
        }
        "=" => {
            if next(1) == "=" {
                Some(("==", ci.checked_sub(1)?, ci + 2, 2))
            } else {
                None // plain assignment or `=>` — not audited
            }
        }
        "!" => {
            if next(1) == "=" {
                Some(("!=", ci.checked_sub(1)?, ci + 2, 2))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// True when the punct at `ci` erases unit knowledge (`*`, `/`, `%`).
fn is_mul_div(sf: &SourceFile, ci: usize) -> bool {
    sf.ct(ci)
        .is_some_and(|t| t.is_punct('*') || t.is_punct('/') || t.is_punct('%'))
}

/// Resolve the operand atom *ending* at code index `e` (inclusive).
fn unit_ending_at(
    sf: &SourceFile,
    facts: &FnFacts,
    symbols: &SymbolTable,
    e: usize,
) -> Option<Atom> {
    let t = sf.ct(e)?;
    match t.kind {
        // Tuple projection `x.0` keeps the receiver's unit; a bare
        // numeric literal is dimensionless.
        TokKind::Num => {
            if e >= 2 && sf.ct(e - 1).is_some_and(|p| p.is_punct('.')) {
                let inner = unit_ending_at(sf, facts, symbols, e - 2)?;
                Some(Atom { end: e, ..inner })
            } else {
                None
            }
        }
        TokKind::Ident => {
            // `x as u64` — the cast target carries no unit; look through.
            if e >= 2 && sf.ct(e - 1).is_some_and(|p| p.is_ident("as")) {
                let inner = unit_ending_at(sf, facts, symbols, e - 2)?;
                return Some(Atom { end: e, ..inner });
            }
            let (start, segs) = path_back(sf, e);
            if is_mul_div(sf, start.wrapping_sub(1)) {
                return None;
            }
            let last = segs.last()?;
            let unit = path_unit(facts, symbols, &segs)?;
            Some(Atom {
                unit,
                name: last.clone(),
                start,
                end: e,
            })
        }
        TokKind::Punct if t.is_punct(')') => {
            // A call result: find the opening paren and the callee.
            let open = open_paren_back(sf, e)?;
            let callee_i = open.checked_sub(1)?;
            let callee_t = sf.ct(callee_i)?;
            if callee_t.kind != TokKind::Ident {
                return None; // parenthesized expression — unknown
            }
            let callee = callee_t.text.clone();
            if unit_preserving_method(&callee)
                && callee_i >= 2
                && sf.ct(callee_i - 1).is_some_and(|p| p.is_punct('.'))
            {
                // `x.min(y)`, `x.saturating_add(y)` keep the receiver's
                // unit.
                let inner = unit_ending_at(sf, facts, symbols, callee_i - 2)?;
                return Some(Atom { end: e, ..inner });
            }
            if callee == "from"
                && callee_i >= 3
                && sf.ct(callee_i - 1).is_some_and(|p| p.is_punct(':'))
                && sf.ct(callee_i - 2).is_some_and(|p| p.is_punct(':'))
            {
                // `u128::from(x)` passes the inner unit through, when the
                // argument is a single atom filling the parens.
                let inner = unit_ending_at(sf, facts, symbols, e - 1)?;
                if inner.start == open + 1 {
                    return Some(Atom { end: e, ..inner });
                }
                return None;
            }
            let (start, _) = path_back(sf, callee_i);
            if is_mul_div(sf, start.wrapping_sub(1)) {
                return None;
            }
            let unit = symbols
                .fn_ret_unit(&callee)
                .or_else(|| units::of_ident(&callee))?;
            Some(Atom {
                unit,
                name: format!("{callee}()"),
                start,
                end: e,
            })
        }
        _ => None,
    }
}

/// Resolve the operand atom *starting* at code index `s`.
fn unit_starting_at(
    sf: &SourceFile,
    facts: &FnFacts,
    symbols: &SymbolTable,
    s: usize,
) -> Option<Atom> {
    // Skip leading borrows.
    let mut s = s;
    while sf
        .ct(s)
        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
    {
        s += 1;
    }
    let t = sf.ct(s)?;
    if t.kind != TokKind::Ident {
        return None;
    }
    // `u128::from(x)` forward form.
    if sf.ct(s + 1).is_some_and(|p| p.is_punct(':'))
        && sf.ct(s + 2).is_some_and(|p| p.is_punct(':'))
        && sf.ct(s + 3).is_some_and(|p| p.is_ident("from"))
        && sf.ct(s + 4).is_some_and(|p| p.is_punct('('))
    {
        let close = close_paren_fwd(sf, s + 4)?;
        let inner = unit_starting_at(sf, facts, symbols, s + 5)?;
        if inner.end == close - 1 && !is_mul_div(sf, close + 1) {
            return Some(Atom {
                start: s,
                end: close,
                ..inner
            });
        }
        return None;
    }
    // Walk the path: `ident (.ident | .NUM | ::ident)*`, stopping at a
    // call.
    let mut segs: Vec<String> = vec![t.text.clone()];
    let mut k = s;
    loop {
        let dot = sf.ct(k + 1);
        if dot.is_some_and(|p| p.is_punct('.')) {
            let nx = sf.ct(k + 2)?;
            match nx.kind {
                TokKind::Ident => {
                    // Method call?
                    if sf.ct(k + 3).is_some_and(|p| p.is_punct('(')) {
                        let callee = nx.text.clone();
                        let close = close_paren_fwd(sf, k + 3)?;
                        if sf.ct(close + 1).is_some_and(|p| p.is_punct('.')) {
                            return None; // longer method chain — unknown
                        }
                        if is_mul_div(sf, close + 1) {
                            return None;
                        }
                        let unit = if unit_preserving_method(&callee) {
                            path_unit(facts, symbols, &segs)?
                        } else {
                            symbols
                                .fn_ret_unit(&callee)
                                .or_else(|| units::of_ident(&callee))?
                        };
                        return Some(Atom {
                            unit,
                            name: format!("{callee}()"),
                            start: s,
                            end: close,
                        });
                    }
                    segs.push(nx.text.clone());
                    k += 2;
                }
                TokKind::Num => {
                    // Tuple projection: receiver unit, keep walking.
                    k += 2;
                }
                _ => break,
            }
        } else if dot.is_some_and(|p| p.is_punct(':'))
            && sf.ct(k + 2).is_some_and(|p| p.is_punct(':'))
        {
            let nx = sf.ct(k + 3)?;
            if nx.kind != TokKind::Ident {
                break;
            }
            segs.push(nx.text.clone());
            k += 3;
        } else {
            break;
        }
    }
    // Free-function call `callee(args)`.
    if sf.ct(k + 1).is_some_and(|p| p.is_punct('(')) {
        let callee = segs.last()?.clone();
        let close = close_paren_fwd(sf, k + 1)?;
        if sf.ct(close + 1).is_some_and(|p| p.is_punct('.')) || is_mul_div(sf, close + 1) {
            return None;
        }
        let unit = symbols
            .fn_ret_unit(&callee)
            .or_else(|| units::of_ident(&callee))?;
        return Some(Atom {
            unit,
            name: format!("{callee}()"),
            start: s,
            end: close,
        });
    }
    if is_mul_div(sf, k + 1) {
        return None;
    }
    let last = segs.last()?.clone();
    let unit = path_unit(facts, symbols, &segs)?;
    Some(Atom {
        unit,
        name: last,
        start: s,
        end: k,
    })
}

/// The unit of a resolved path: its final segment's identifier suffix,
/// a local/param fact for bare names, or the workspace-agreed field
/// unit for multi-segment paths.
fn path_unit(facts: &FnFacts, symbols: &SymbolTable, segs: &[String]) -> Option<Unit> {
    let last = segs.last()?;
    units::of_ident(last).or_else(|| {
        if segs.len() == 1 {
            facts.unit_of.get(last).copied()
        } else {
            symbols.field_unit(last)
        }
    })
}

/// Methods that return something in the receiver's unit — the same set
/// that name-keyed symbol lookups refuse to resolve.
fn unit_preserving_method(name: &str) -> bool {
    units::std_shadowed_method(name)
}

/// Walk a dotted/`::` path backwards from its final ident at `e`,
/// returning (start index, segments in order).
fn path_back(sf: &SourceFile, e: usize) -> (usize, Vec<String>) {
    let mut segs = vec![sf.ct(e).map(|t| t.text.clone()).unwrap_or_default()];
    let mut k = e;
    loop {
        if k >= 2
            && sf.ct(k - 1).is_some_and(|p| p.is_punct('.'))
            && sf
                .ct(k - 2)
                .is_some_and(|p| p.kind == TokKind::Ident || p.kind == TokKind::Num)
        {
            segs.push(sf.ct(k - 2).map(|t| t.text.clone()).unwrap_or_default());
            k -= 2;
        } else if k >= 3
            && sf.ct(k - 1).is_some_and(|p| p.is_punct(':'))
            && sf.ct(k - 2).is_some_and(|p| p.is_punct(':'))
            && sf.ct(k - 3).is_some_and(|p| p.kind == TokKind::Ident)
        {
            segs.push(sf.ct(k - 3).map(|t| t.text.clone()).unwrap_or_default());
            k -= 3;
        } else {
            break;
        }
    }
    segs.reverse();
    (k, segs)
}

/// Code index of the `(` matching the `)` at `close`, scanning back.
fn open_paren_back(sf: &SourceFile, close: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = close as i64;
    while k >= 0 {
        let t = sf.ct(k as usize)?;
        if t.is_punct(')') {
            depth += 1;
        } else if t.is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(k as usize);
            }
        }
        k -= 1;
    }
    None
}

/// Code index of the `)` matching the `(` at `open`, scanning forward.
fn close_paren_fwd(sf: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut k = open;
    while let Some(t) = sf.ct(k) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k += 1;
    }
    None
}

/// Interprocedural leg: at every call site whose callee has a single
/// agreed parameter profile, check each single-atom argument's unit
/// against the declared parameter unit.
fn check_call_args(
    files: &[SourceFile],
    symbols: &SymbolTable,
    cg: &CallGraph,
    out: &mut Vec<Finding>,
) {
    let empty = BTreeSet::new();
    let mut caches: BTreeMap<usize, FactsCache> = BTreeMap::new();
    for call in &cg.calls {
        let sf = &files[call.file];
        if call.in_test || !in_scope(&sf.path) {
            continue;
        }
        let Some(params) = symbols.unified_params(&call.callee) else {
            continue;
        };
        if params.is_empty() {
            continue;
        }
        let Some(args) = split_args(sf, call.ci + 1) else {
            continue;
        };
        if args.len() != params.len() {
            continue;
        }
        let cache = caches.entry(call.file).or_default();
        let facts = facts_at(sf, symbols, &empty, call.ci, cache);
        for ((a_start, a_end), p) in args.iter().zip(params) {
            let Some(pu) = units::of_decl(&p.name, &p.ty) else {
                continue;
            };
            let Some(atom) = unit_starting_at(sf, facts, symbols, *a_start) else {
                continue;
            };
            if atom.end != *a_end {
                continue; // argument is a larger expression — unknown
            }
            if atom.unit != pu {
                let t = &sf.toks[sf.code[*a_start]];
                out.push(Finding {
                    rule: rules::UNIT_CONSISTENCY,
                    path: sf.path.clone(),
                    line: t.line,
                    message: format!(
                        "call to `{}` passes `{}` ({}) for parameter `{}` ({}); convert \
                         explicitly at the call site",
                        call.callee, atom.name, atom.unit, p.name, pu
                    ),
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
}

/// Split the argument list opening at `(` (code index `open`) into
/// `[start, end]` spans at top-level commas. `None` for empty lists or
/// lists containing closures (whose commas are not argument breaks).
fn split_args(sf: &SourceFile, open: usize) -> Option<Vec<(usize, usize)>> {
    if !sf.ct(open)?.is_punct('(') {
        return None;
    }
    let close = close_paren_fwd(sf, open)?;
    if close == open + 1 {
        return None;
    }
    let mut spans = Vec::new();
    let mut depth = 0i32;
    let mut start = open + 1;
    for k in (open + 1)..close {
        let t = sf.ct(k)?;
        if t.is_punct('|') {
            return None;
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            if k == start {
                return None;
            }
            spans.push((start, k - 1));
            start = k + 1;
        }
    }
    if start >= close {
        return None;
    }
    spans.push((start, close - 1));
    Some(spans)
}
