//! Per-function dataflow facts: a single forward pass over a function
//! body that records what the flow-sensitive rules (R6, R7, R9) need —
//! the unit of each local binding, which loop variables legitimately
//! index which container, and which locals alias an event store.
//!
//! The pass is deliberately shallow: facts come from `let` bindings,
//! parameters, and `for` headers only. Rebinding overwrites; anything
//! the pass cannot prove stays unknown, and unknown never produces a
//! finding.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::TokKind;
use crate::source::{FnItem, SourceFile};
use crate::symbols::SymbolTable;
use crate::units::{self, Unit};

/// Facts about one function body.
#[derive(Debug, Default)]
pub struct FnFacts {
    /// Known unit per local/parameter name.
    pub unit_of: BTreeMap<String, Unit>,
    /// Declared type text per parameter name.
    pub ty_of: BTreeMap<String, String>,
    /// Loop variable → canonical container path it may index
    /// (`for i in 0..st.hot.len()` sanctions `i` for `st.hot`).
    pub sanctioned_idx: BTreeMap<String, String>,
    /// Locals bound by reference to an event store.
    pub event_locals: BTreeSet<String>,
}

impl FnFacts {
    /// Collect facts for `f` in `sf`. `event_fields` names the struct
    /// fields known to hold packed events (for alias tracking).
    pub fn collect(
        sf: &SourceFile,
        f: &FnItem,
        symbols: &SymbolTable,
        event_fields: &BTreeSet<String>,
    ) -> FnFacts {
        let mut facts = FnFacts::default();
        // Parameters: find this fn in the symbol table by location.
        for sig in &symbols.fns {
            if sig.path == sf.path && sig.line == f.line && sig.name == f.name {
                for p in &sig.params {
                    if p.name.is_empty() {
                        continue;
                    }
                    facts.ty_of.insert(p.name.clone(), p.ty.clone());
                    if let Some(u) = units::of_decl(&p.name, &p.ty) {
                        facts.unit_of.insert(p.name.clone(), u);
                    }
                }
                break;
            }
        }
        let mut ci = f.body_start + 1;
        while ci < f.body_end {
            if let Some(next) = let_binding(sf, ci, symbols, event_fields, &mut facts) {
                ci = next;
                continue;
            }
            if let Some(next) = for_header(sf, ci, &mut facts) {
                ci = next;
                continue;
            }
            ci += 1;
        }
        facts
    }
}

/// `let [mut] NAME [: TY] = RHS ;` — record the binding's unit (from
/// the name, the declared type, or a simple RHS) and event aliasing.
/// Returns the code index just past `let NAME` on a match.
fn let_binding(
    sf: &SourceFile,
    ci: usize,
    symbols: &SymbolTable,
    event_fields: &BTreeSet<String>,
    facts: &mut FnFacts,
) -> Option<usize> {
    if !sf.ct(ci)?.is_ident("let") {
        return None;
    }
    let mut j = ci + 1;
    if sf.ct(j)?.is_ident("mut") {
        j += 1;
    }
    let name_tok = sf.ct(j)?;
    if name_tok.kind != TokKind::Ident {
        // Destructuring patterns: skip, no facts.
        return Some(ci + 1);
    }
    let name = name_tok.text.clone();
    j += 1;
    // Optional `: TY` — capture up to `=` or `;` at depth 0.
    let mut ty = String::new();
    if sf.ct(j).is_some_and(|t| t.is_punct(':')) {
        j += 1;
        let mut angle = 0i32;
        while let Some(t) = sf.ct(j) {
            if t.is_punct('<') {
                angle += 1;
            } else if t.is_punct('>') {
                angle -= 1;
            } else if (t.is_punct('=') || t.is_punct(';')) && angle <= 0 {
                break;
            }
            if !ty.is_empty() {
                ty.push(' ');
            }
            ty.push_str(&t.text);
            j += 1;
        }
    }
    let mut unit = units::of_decl(&name, &ty);
    // RHS inspection (only when `=` follows).
    if sf.ct(j).is_some_and(|t| t.is_punct('=')) {
        let mut r = j + 1;
        // Strip leading `&` / `&mut`.
        let mut by_ref = false;
        while let Some(t) = sf.ct(r) {
            if t.is_punct('&') {
                by_ref = true;
                r += 1;
            } else if t.is_ident("mut") {
                r += 1;
            } else {
                break;
            }
        }
        // Simple path RHS: `a.b.c` (terminated by `;`). Its unit is the
        // last segment's; event aliasing comes from any segment.
        let mut segs: Vec<String> = Vec::new();
        let mut k = r;
        while let Some(t) = sf.ct(k) {
            if t.kind == TokKind::Ident {
                segs.push(t.text.clone());
            } else if !(t.is_punct('.') || t.is_punct(':')) {
                break;
            }
            k += 1;
        }
        let simple_path = sf.ct(k).is_some_and(|t| t.is_punct(';'));
        if simple_path && !segs.is_empty() {
            if unit.is_none() {
                let last = segs.last().expect("non-empty");
                unit = units::of_ident(last).or_else(|| symbols.field_unit(last));
            }
            if by_ref && segs.iter().any(|s| event_fields.contains(s)) {
                facts.event_locals.insert(name.clone());
            }
        } else if unit.is_none() {
            // Call RHS: `f(...)` or `x.f(...)` — the callee's agreed
            // return unit, when the whole RHS is that one call.
            if let Some(callee) = rhs_single_call(sf, r) {
                unit = symbols.fn_ret_unit(&callee);
            }
        }
    }
    if let Some(u) = unit {
        facts.unit_of.insert(name, u);
    } else {
        // A rebinding kills any stale fact.
        facts.unit_of.remove(&name);
    }
    Some(ci + 1)
}

/// If the RHS starting at `r` is exactly one call expression
/// (`path . f ( args ) ;`), return the callee name.
fn rhs_single_call(sf: &SourceFile, r: usize) -> Option<String> {
    let mut k = r;
    let mut callee: Option<String> = None;
    // Leading path segments.
    while let Some(t) = sf.ct(k) {
        if t.kind == TokKind::Ident {
            callee = Some(t.text.clone());
            k += 1;
        } else if t.is_punct('.') || t.is_punct(':') {
            k += 1;
        } else {
            break;
        }
    }
    if !sf.ct(k)?.is_punct('(') {
        return None;
    }
    // Skip the balanced argument list.
    let mut depth = 0i32;
    while let Some(t) = sf.ct(k) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        k += 1;
    }
    // `;` (or `as`/`.` unit-preserving tails would be nice, but keep it
    // strict: unknown never flags).
    if sf.ct(k + 1).is_some_and(|t| t.is_punct(';')) {
        callee
    } else {
        None
    }
}

/// `for VAR in 0 .. PATH . len ( )` sanctions `VAR` as an index into
/// `PATH`. Returns the index past the header on a match.
fn for_header(sf: &SourceFile, ci: usize, facts: &mut FnFacts) -> Option<usize> {
    if !sf.ct(ci)?.is_ident("for") {
        return None;
    }
    let var = sf.ct(ci + 1)?;
    if var.kind != TokKind::Ident || !sf.ct(ci + 2)?.is_ident("in") {
        return Some(ci + 1);
    }
    let mut k = ci + 3;
    // `0 ..` (or `0 ..=`)
    if !(sf
        .ct(k)
        .is_some_and(|t| t.kind == TokKind::Num && t.text == "0")
        && sf.ct(k + 1).is_some_and(|t| t.is_punct('.'))
        && sf.ct(k + 2).is_some_and(|t| t.is_punct('.')))
    {
        return Some(ci + 1);
    }
    k += 3;
    if sf.ct(k).is_some_and(|t| t.is_punct('=')) {
        k += 1;
    }
    // `PATH . len ( )` — collect path idents up to `.len()`.
    let mut segs: Vec<String> = Vec::new();
    while let Some(t) = sf.ct(k) {
        if t.kind == TokKind::Ident {
            if t.text == "len"
                && sf.ct(k + 1).is_some_and(|t| t.is_punct('('))
                && sf.ct(k + 2).is_some_and(|t| t.is_punct(')'))
            {
                if !segs.is_empty() {
                    facts
                        .sanctioned_idx
                        .insert(var.text.clone(), segs.join("."));
                }
                return Some(k + 3);
            }
            segs.push(t.text.clone());
        } else if !t.is_punct('.') {
            break;
        }
        k += 1;
    }
    Some(ci + 1)
}

/// Canonical dotted path of the identifier run ending at code index
/// `last` (inclusive): `st . hot` → `"st.hot"`. Walks backwards over
/// `ident (. ident)*`.
pub fn path_ending_at(sf: &SourceFile, last: usize) -> String {
    let mut segs: Vec<String> = Vec::new();
    let mut k = last as i64;
    loop {
        if k < 0 {
            break;
        }
        let Some(t) = sf.ct(k as usize) else { break };
        if t.kind != TokKind::Ident {
            break;
        }
        segs.push(t.text.clone());
        if k >= 2 && sf.ct(k as usize - 1).is_some_and(|t| t.is_punct('.')) {
            k -= 2;
        } else {
            break;
        }
    }
    segs.reverse();
    segs.join(".")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    fn facts(src: &str) -> FnFacts {
        let sf = SourceFile::parse("crates/sched/src/x.rs", src);
        let symbols = SymbolTable::build(std::slice::from_ref(&sf));
        let mut events = BTreeSet::new();
        events.insert("overflow".to_string());
        let f = sf.fns[0].clone();
        FnFacts::collect(&sf, &f, &symbols, &events)
    }

    #[test]
    fn params_and_lets_gain_units() {
        let f = facts(
            "fn f(deadline_ns: u64, window: SimDur) {\n\
             \x20   let budget_bytes = 10;\n\
             \x20   let d = self.latency_ns;\n\
             \x20   let plain = 3;\n\
             }\n",
        );
        assert_eq!(f.unit_of["deadline_ns"], Unit::Ns);
        assert_eq!(f.unit_of["window"], Unit::Ns);
        assert_eq!(f.unit_of["budget_bytes"], Unit::Bytes);
        assert_eq!(f.unit_of["d"], Unit::Ns);
        assert!(!f.unit_of.contains_key("plain"));
    }

    #[test]
    fn call_rhs_takes_return_unit() {
        let f = facts(
            "fn transfer(&self) -> SimDur { x }\n\
             fn g(&self) { let cost = self.link.transfer(); }\n",
        );
        // facts() collects fns[0]; redo for the second fn.
        let sf = SourceFile::parse(
            "crates/sched/src/x.rs",
            "fn transfer(&self) -> SimDur { x }\n\
             fn g(&self) { let cost = self.link.transfer(); }\n",
        );
        let symbols = SymbolTable::build(std::slice::from_ref(&sf));
        let g = sf.fns[1].clone();
        let fg = FnFacts::collect(&sf, &g, &symbols, &BTreeSet::new());
        assert_eq!(fg.unit_of["cost"], Unit::Ns);
        drop(f);
    }

    #[test]
    fn for_header_sanctions_loop_var() {
        let f = facts("fn f(&self) { for i in 0..st.hot.len() { use_(i); } }");
        assert_eq!(f.sanctioned_idx["i"], "st.hot");
    }

    #[test]
    fn event_alias_is_tracked() {
        let f = facts("fn f(&mut self) { let ovf = &mut self.overflow; }");
        assert!(f.event_locals.contains("ovf"));
    }

    #[test]
    fn path_helper_walks_back() {
        let sf = SourceFile::parse("crates/sched/src/x.rs", "a.b.c[i]");
        // code idx of `c` is 4 (a . b . c).
        assert_eq!(path_ending_at(&sf, 4), "a.b.c");
    }
}
