//! R8 determinism-taint: call-graph taint propagation from wall-clock
//! and OS-entropy sources into schedule-visible code.
//!
//! Supersedes the old per-file `determinism-sources` rule. A *source*
//! is any non-test function, anywhere in the workspace, whose body
//! mentions `Instant`, `SystemTime`, or `thread_rng`. Taint propagates
//! name-keyed up the call graph, so a helper that wraps `Instant::now`
//! two crates away is caught at every transitive call site inside the
//! modeled-path crates (`core`, `sim`, `sched`, `fleet`).
//!
//! The sanctioned carve-outs — `sim/src/time.rs` (the virtual clock)
//! and `sched/src/real.rs` (the real-time backend) — are exempt both as
//! sources and as propagation hops: wrapping real time is their job,
//! and their public APIs are the audited boundary.

use crate::callgraph::CallGraph;
use crate::diag::{rules, Finding};
use crate::rules::crate_of;
use crate::source::SourceFile;
use crate::symbols::{FnSig, SymbolTable};

/// Identifiers that are nondeterminism sources.
const SOURCES: &[&str] = &["Instant", "SystemTime", "thread_rng"];

/// Files allowed to touch real time / entropy.
const CARVE_OUTS: &[&str] = &["crates/sim/src/time.rs", "crates/sched/src/real.rs"];

/// Is this file's non-test code schedule-visible (in rule scope)?
fn in_scope(path: &str) -> bool {
    matches!(crate_of(path), Some("core" | "sim" | "sched" | "fleet"))
        && !CARVE_OUTS.contains(&path)
}

/// Run R8: direct occurrences plus tainted transitive call sites.
pub fn check(files: &[SourceFile], symbols: &SymbolTable, cg: &CallGraph, out: &mut Vec<Finding>) {
    // Direct occurrences (the old R1, under the new rule id).
    for sf in files {
        if !in_scope(&sf.path) {
            continue;
        }
        let krate = crate_of(&sf.path).unwrap_or("");
        for ci in 0..sf.code.len() {
            if sf.in_test[ci] {
                continue;
            }
            let t = &sf.toks[sf.code[ci]];
            if let Some(name) = SOURCES.iter().find(|s| t.is_ident(s)) {
                out.push(Finding {
                    rule: rules::DETERMINISM_TAINT,
                    path: sf.path.clone(),
                    line: t.line,
                    message: format!(
                        "nondeterministic source `{name}` in modeled-path crate `{krate}`; \
                         use SimTime/SimDur (virtual clock) or a seeded StdRng"
                    ),
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
    // Taint: which fns transitively reach a source.
    let is_source = |f: &FnSig| -> bool {
        if f.is_test {
            return false;
        }
        let sf = &files[f.file];
        let item = &sf.fns[f.item];
        ((item.body_start + 1)..item.body_end)
            .any(|ci| !sf.in_test[ci] && SOURCES.iter().any(|s| sf.toks[sf.code[ci]].is_ident(s)))
    };
    // Exempt from sourcing *and* propagation: the carve-out files
    // (wrapping real time is their job), test/bench/example fns (their
    // names must not poison same-named runtime fns — propagation is
    // name-keyed), and the analyzer itself (its per-rule timings use
    // `Instant` legitimately and are not schedule-visible).
    let is_exempt = |f: &FnSig| {
        f.is_test || CARVE_OUTS.contains(&f.path.as_str()) || f.krate.as_deref() == Some("analyze")
    };
    let taint = cg.taint(symbols, is_source, is_exempt);
    // Findings at call sites of tainted fns inside scoped code.
    for call in &cg.calls {
        let sf = &files[call.file];
        if call.in_test || !in_scope(&sf.path) || !taint.names.contains(&call.callee) {
            continue;
        }
        // Skip calls inside fns that are themselves direct sources in
        // this file — the direct-occurrence finding already covers them
        // when the source ident is here; but a call to a remote tainted
        // helper still needs its own finding, so only skip when the
        // callee resolves to the enclosing fn itself (recursion).
        if let Some(caller) = call.caller {
            if symbols.fns[caller].name == call.callee {
                continue;
            }
        }
        let witness = taint
            .tainted_fn_named(symbols, &call.callee)
            .map(|gi| {
                let chain = taint.chain(symbols, gi);
                let def = &symbols.fns[gi];
                format!(
                    " (defined at {}:{}; reaches a source via `{}`)",
                    def.path,
                    def.line,
                    chain.join(" → ")
                )
            })
            .unwrap_or_default();
        out.push(Finding {
            rule: rules::DETERMINISM_TAINT,
            path: sf.path.clone(),
            line: call.line,
            message: format!(
                "call to `{}` taints schedule-visible code with wall-clock/entropy{}; \
                 thread the virtual clock or a seeded StdRng through instead",
                call.callee, witness
            ),
            suppressed: false,
            justification: None,
        });
    }
}
