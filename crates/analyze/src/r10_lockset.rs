//! R10 lock-set race detection.
//!
//! Two obligations over the shared-state registry:
//!
//! 1. **Guarded fields.** A field declared ``guarded by `lock` `` in its
//!    doc comment may only be touched while that lock's guard is live —
//!    either a local acquisition whose extent covers the access
//!    (let-bound vs statement-temporary extents from [`crate::locks`]),
//!    or a guard every caller provably holds (the entry-held fixpoint
//!    propagated through the call graph, so a helper only ever invoked
//!    under the lock stays clean).
//! 2. **Escaping writes.** A plain (non-atomic, unguarded) field of a
//!    shared struct that is *written* from thread-escaping code — a
//!    closure passed to `spawn`/`run_chain*`/`scope`/`par_for`, or any
//!    function reachable from one — without any lock held is a data
//!    race candidate; the finding carries the witness chain back to the
//!    spawn site.
//!
//! Reads of plain fields are not flagged (too noisy without alias
//! analysis); the write side is where lost updates live.

use crate::diag::{rules, Finding};
use crate::lexer::TokKind;
use crate::locks::LockWorld;
use crate::rules::crate_of;
use crate::shared::{SharedRegistry, CONCURRENCY_SCOPE};
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

/// Run R10 over every file.
pub fn check(
    files: &[SourceFile],
    symbols: &SymbolTable,
    reg: &SharedRegistry,
    world: &LockWorld,
    out: &mut Vec<Finding>,
) {
    // (file, item) → global fn index, for guard lookups.
    let mut gfn = std::collections::BTreeMap::new();
    for (gi, f) in symbols.fns.iter().enumerate() {
        gfn.insert((f.file, f.item), gi);
    }
    for (fi, sf) in files.iter().enumerate() {
        if !crate_of(&sf.path).is_some_and(|c| CONCURRENCY_SCOPE.contains(&c)) {
            continue;
        }
        for ci in 0..sf.code.len() {
            if sf.in_test[ci] {
                continue;
            }
            let t = &sf.toks[sf.code[ci]];
            if t.kind != TokKind::Ident
                || ci == 0
                || !sf.ct(ci - 1).is_some_and(|p| p.is_punct('.'))
            {
                continue;
            }
            let field = t.text.as_str();
            let enclosing = sf
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.contains(ci))
                .max_by_key(|(_, f)| f.body_start);
            let g = enclosing.and_then(|(item, _)| gfn.get(&(fi, item)).copied());

            if let Some(gf) = reg.guarded.get(field) {
                // Field initializers in struct literals (`epoch: 0`) are
                // not accesses; `.field` is, read or write.
                let held = g.map(|g| world.held_with_entry(g, ci)).unwrap_or_default();
                if !held.contains(gf.guard.as_str()) {
                    out.push(Finding {
                        rule: rules::LOCK_SET,
                        path: sf.path.clone(),
                        line: t.line,
                        message: format!(
                            "access of `{field}` (guarded by `{guard}`, declared at \
                             {dp}:{dl}) without the `{guard}` guard live; acquire \
                             `{guard}` across the access or move it behind a method \
                             that does",
                            guard = gf.guard,
                            dp = gf.decl.path,
                            dl = gf.decl.line,
                        ),
                        suppressed: false,
                        justification: None,
                    });
                }
                continue;
            }

            // Escaping unguarded write to a plain shared field.
            if !reg.plain_fields.contains(field) || !is_write(sf, ci) {
                continue;
            }
            let (escaped, chain) = escape_context(fi, ci, g, reg, symbols);
            if !escaped {
                continue;
            }
            let held = g.map(|g| world.held_with_entry(g, ci)).unwrap_or_default();
            if held.is_empty() {
                out.push(Finding {
                    rule: rules::LOCK_SET,
                    path: sf.path.clone(),
                    line: t.line,
                    message: format!(
                        "write to shared field `{field}` from thread-escaping code \
                         ({chain}) with no lock held and no atomic type; guard the \
                         write or make the field atomic"
                    ),
                    suppressed: false,
                    justification: None,
                });
            }
        }
    }
}

/// Is the `.field` access at `ci` a write (`= v`, `+= v`, ...)?
fn is_write(sf: &SourceFile, ci: usize) -> bool {
    let Some(n) = sf.ct(ci + 1) else { return false };
    if n.is_punct('=') {
        // `=` but not `==`.
        return !sf.ct(ci + 2).is_some_and(|m| m.is_punct('='));
    }
    // Compound assignment: `+= -= *= /= %= &= |= ^=` (shifts are spelled
    // with two puncts and never hit shared counters here).
    if "+-*/%&|^".chars().any(|c| n.is_punct(c)) {
        return sf.ct(ci + 2).is_some_and(|m| m.is_punct('='));
    }
    false
}

/// Is `ci` inside thread-escaping code, and how (for the witness)?
fn escape_context(
    fi: usize,
    ci: usize,
    g: Option<usize>,
    reg: &SharedRegistry,
    symbols: &SymbolTable,
) -> (bool, String) {
    if let Some(ri) = reg.region_at(fi, ci) {
        let r = &reg.regions[ri];
        return (
            true,
            format!("closure passed to `{}` at {}:{}", r.entry, r.path, r.line),
        );
    }
    if let Some(g) = g {
        if reg.escaping[g] {
            // `escape_chain` walks leaf-to-root; render root-to-leaf.
            let (names, root) = reg.escape_chain(symbols, g);
            let chain: Vec<String> = names.into_iter().rev().collect();
            let prefix = root
                .map(|ri| {
                    let r = &reg.regions[ri];
                    format!(
                        "closure passed to `{}` at {}:{} → ",
                        r.entry, r.path, r.line
                    )
                })
                .unwrap_or_default();
            return (true, format!("{prefix}{}", chain.join(" → ")));
        }
    }
    (false, String::new())
}
