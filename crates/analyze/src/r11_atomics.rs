//! R11 atomic-ordering discipline.
//!
//! Every access to a registered atomic (struct field or `static`) is
//! collected workspace-wide and classified by role in a release/acquire
//! protocol:
//!
//! * **publication edge** — a `store`/RMW/`compare_exchange` success
//!   with `Release`, `AcqRel`, or `SeqCst`: the atomic hands data
//!   written before it to another thread;
//! * **consumption edge** — a `load` (or RMW/CAS) with `Acquire`,
//!   `AcqRel`, or `SeqCst`: the atomic pulls that data in.
//!
//! Once an atomic participates in such a protocol, a `Relaxed` access on
//! the *opposite* edge is an error: a Relaxed load can observe the flag
//! without the data it publishes (and a Relaxed store can publish the
//! flag without the data). Exceptions the rule understands:
//!
//! * the **`fence(SeqCst)` idiom** — Chase–Lev `pop`/`steal` issue a
//!   SeqCst fence and then legitimately use Relaxed accesses; any
//!   function whose body contains `fence(Ordering::SeqCst)` is exempt;
//! * **CAS failure orderings** — the failure ordering of a
//!   `compare_exchange` never publishes; `Relaxed` there is canonical;
//! * **non-protocol atomics** — counters only ever accessed Relaxed
//!   (e.g. an ID allocator) have no edges to violate;
//! * test code neither defines a protocol nor is checked against one.
//!
//! Anything else needs a justified `// analyze:allow(atomic-order)`
//! carrying the invariant argument (e.g. "owner is the only writer").

use std::collections::BTreeMap;

use crate::diag::{rules, Finding};
use crate::lexer::TokKind;
use crate::rules::crate_of;
use crate::shared::{SharedRegistry, CONCURRENCY_SCOPE};
use crate::source::SourceFile;

/// The atomic access methods the rule classifies.
const LOADS: &[&str] = &["load"];
const STORES: &[&str] = &["store"];
const RMWS: &[&str] = &[
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
];
const CASES: &[&str] = &["compare_exchange", "compare_exchange_weak"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Load,
    Store,
    Rmw,
    Cas,
}

#[derive(Debug, Clone)]
struct Access {
    name: String,
    kind: Kind,
    /// The effective ordering (CAS: the success ordering).
    ord: String,
    method: String,
    path: String,
    line: u32,
    /// Enclosing fn contains `fence(Ordering::SeqCst)`.
    fenced: bool,
    in_scope: bool,
}

/// Run R11 over every file.
pub fn check(files: &[SourceFile], reg: &SharedRegistry, out: &mut Vec<Finding>) {
    if reg.atomics.is_empty() {
        return;
    }
    let mut accesses: Vec<Access> = Vec::new();
    for sf in files {
        let in_scope = crate_of(&sf.path).is_some_and(|c| CONCURRENCY_SCOPE.contains(&c));
        collect(sf, reg, in_scope, &mut accesses);
    }
    // Protocol edges per atomic name.
    let mut publisher: BTreeMap<&str, &Access> = BTreeMap::new();
    let mut consumer: BTreeMap<&str, &Access> = BTreeMap::new();
    for a in &accesses {
        let strong = |o: &str| matches!(o, "AcqRel" | "SeqCst");
        let publishes = match a.kind {
            Kind::Store | Kind::Rmw | Kind::Cas => a.ord == "Release" || strong(&a.ord),
            Kind::Load => false,
        };
        let consumes = match a.kind {
            Kind::Load | Kind::Rmw | Kind::Cas => a.ord == "Acquire" || strong(&a.ord),
            Kind::Store => false,
        };
        if publishes {
            publisher.entry(&a.name).or_insert(a);
        }
        if consumes {
            consumer.entry(&a.name).or_insert(a);
        }
    }
    for a in &accesses {
        if a.ord != "Relaxed" || a.fenced || !a.in_scope {
            continue;
        }
        let (edge, witness) = match a.kind {
            // A Relaxed load consumes a published value without the
            // acquire edge — flag when anyone publishes this atomic.
            Kind::Load => ("consumption", publisher.get(a.name.as_str())),
            // A Relaxed store/CAS-success publishes without the release
            // edge — flag when anyone consumes with Acquire.
            Kind::Store | Kind::Cas => ("publication", consumer.get(a.name.as_str())),
            // A Relaxed RMW breaks whichever side the protocol uses.
            Kind::Rmw => {
                let w = publisher
                    .get(a.name.as_str())
                    .or_else(|| consumer.get(a.name.as_str()));
                ("read-modify-write", w)
            }
        };
        let Some(w) = witness else { continue };
        let decl = &reg.atomics[&a.name];
        out.push(Finding {
            rule: rules::ATOMIC_ORDER,
            path: a.path.clone(),
            line: a.line,
            message: format!(
                "Relaxed `{m}` of protocol atomic `{n}` (declared at {dp}:{dl}) on its \
                 {edge} edge; the protocol peer is a {wo} `{wm}` at {wp}:{wl} — \
                 strengthen the ordering or justify with \
                 `// analyze:allow(atomic-order): <invariant>`",
                m = a.method,
                n = a.name,
                dp = decl.path,
                dl = decl.line,
                wo = w.ord,
                wm = w.method,
                wp = w.path,
                wl = w.line,
            ),
            suppressed: false,
            justification: None,
        });
    }
}

/// Collect the atomic accesses in one file (protocol classification uses
/// every crate; findings only fire for in-scope, non-test code).
fn collect(sf: &SourceFile, reg: &SharedRegistry, in_scope: bool, out: &mut Vec<Access>) {
    // Fns whose body issues `fence(Ordering::SeqCst)`.
    let fenced: Vec<bool> = sf
        .fns
        .iter()
        .map(|f| {
            ((f.body_start + 1)..f.body_end).any(|ci| {
                sf.ct(ci).is_some_and(|t| t.is_ident("fence"))
                    && sf.ct(ci + 1).is_some_and(|t| t.is_punct('('))
                    && orderings(sf, ci + 1).iter().any(|o| o == "SeqCst")
            })
        })
        .collect();
    for ci in 0..sf.code.len() {
        if sf.in_test[ci] {
            continue;
        }
        let t = &sf.toks[sf.code[ci]];
        if t.kind != TokKind::Ident || !reg.atomics.contains_key(&t.text) {
            continue;
        }
        // `recv.NAME.method(...)` or `STATIC.method(...)`.
        let Some(m) = sf.ct(ci + 1).filter(|n| n.is_punct('.')).and(sf.ct(ci + 2)) else {
            continue;
        };
        if !sf.ct(ci + 3).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let method = m.text.as_str();
        let kind = if LOADS.contains(&method) {
            Kind::Load
        } else if STORES.contains(&method) {
            Kind::Store
        } else if RMWS.contains(&method) {
            Kind::Rmw
        } else if CASES.contains(&method) {
            Kind::Cas
        } else {
            continue;
        };
        let ords = orderings(sf, ci + 3);
        // CAS carries (success, failure); the failure ordering never
        // publishes and is canonically Relaxed — only the success
        // ordering is classified.
        let ord = match (kind, ords.as_slice()) {
            (Kind::Cas, [.., s, _f]) => s.clone(),
            (_, [o, ..]) => o.clone(),
            _ => continue,
        };
        let in_fence_fn = sf
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.contains(ci))
            .max_by_key(|(_, f)| f.body_start)
            .is_some_and(|(i, _)| fenced[i]);
        out.push(Access {
            name: t.text.clone(),
            kind,
            ord,
            method: method.to_string(),
            path: sf.path.clone(),
            line: t.line,
            fenced: in_fence_fn,
            in_scope,
        });
    }
}

/// The memory-ordering idents inside the balanced parens opening at
/// code index `open`, in argument order.
fn orderings(sf: &SourceFile, open: usize) -> Vec<String> {
    const ORDS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
    let mut depth = 0i32;
    let mut out = Vec::new();
    for k in open..sf.code.len() {
        let t = &sf.toks[sf.code[k]];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.kind == TokKind::Ident && ORDS.contains(&t.text.as_str()) {
            out.push(t.text.clone());
        }
    }
    out
}
