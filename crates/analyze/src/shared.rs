//! Shared-state registry: what the concurrency rules (R10–R12) know
//! about the workspace's cross-thread state.
//!
//! Built once from the symbol table and call graph, the registry
//! discovers:
//!
//! * **atomic state** — struct fields and `static` items whose type is
//!   one of the `Atomic*` primitives (the R11 protocol candidates);
//! * **locks** — `Mutex`/`RwLock` fields (lock identity is the field
//!   name, matching [`crate::locks`]);
//! * **guarded fields** — plain fields whose doc comment carries a
//!   ``guarded by `lockname` `` marker, declaring which guard must be
//!   live across every access (the R10 contract);
//! * **shared structs** — structs that hold a lock or atomic field, or
//!   that appear under `Arc<...>` anywhere in the workspace, plus their
//!   remaining *plain* fields (unguarded writes to those from a
//!   thread-escaping context are the R10 race findings);
//! * **thread-escaping code** — the argument spans of
//!   `ThreadPool::spawn` / `run_chain*` / `scope` / `par_for` call
//!   sites (the closures escape onto pool threads) and, downward
//!   through the call graph, every function reachable from such a
//!   closure body, with parent links for witness chains.

use std::collections::{BTreeMap, BTreeSet};

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

/// Crates the concurrency rules scope over: the real-mode thread path.
pub const CONCURRENCY_SCOPE: &[&str] = &["exec", "sched", "fleet"];

/// Call targets whose closure arguments escape onto pool threads.
const ESCAPE_ENTRIES: &[&str] = &[
    "spawn",
    "run_chain",
    "run_chain_with_retry",
    "scope",
    "par_for",
];

/// Where a declaration lives, for diagnostics.
#[derive(Debug, Clone)]
pub struct DeclSite {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
}

/// A plain field declared ``guarded by `lock` `` in its doc comment.
#[derive(Debug, Clone)]
pub struct GuardedField {
    /// The lock whose guard must be live across every access.
    pub guard: String,
    /// Declaration site.
    pub decl: DeclSite,
}

/// One thread-escape root: the argument span of a spawn-like call.
#[derive(Debug, Clone)]
pub struct EscapeRegion {
    /// Index of the containing file.
    pub file: usize,
    /// Code index of the opening `(` of the argument list.
    pub lo: usize,
    /// Code index of the matching `)`.
    pub hi: usize,
    /// 1-based line of the spawn-like callee.
    pub line: u32,
    /// The entry name (`spawn`, `run_chain`, ...).
    pub entry: String,
    /// Path of the containing file.
    pub path: String,
}

/// How a function became thread-escaping, for witness chains.
#[derive(Debug, Clone, Copy)]
pub enum EscapeVia {
    /// Called directly from the closure body of region `.0`.
    Region(usize),
    /// Called (name-keyed) from the already-escaping fn `.0`.
    Caller(usize),
}

/// The registry every concurrency rule consumes.
#[derive(Debug, Default)]
pub struct SharedRegistry {
    /// Atomic field/static name → first declaration site.
    pub atomics: BTreeMap<String, DeclSite>,
    /// Lock (`Mutex`/`RwLock`) field names.
    pub locks: BTreeSet<String>,
    /// Guarded plain fields (only names whose every declaration agrees
    /// on the guard; ambiguous names are dropped conservatively).
    pub guarded: BTreeMap<String, GuardedField>,
    /// Structs holding cross-thread state.
    pub shared_structs: BTreeSet<String>,
    /// Plain fields of shared structs — not atomic, not a lock, not
    /// guarded — whose every declaring struct is shared.
    pub plain_fields: BTreeSet<String>,
    /// Thread-escape roots.
    pub regions: Vec<EscapeRegion>,
    /// Per-global-fn: reachable from an escape region.
    pub escaping: Vec<bool>,
    /// Parent link for escaping fns (witness chains).
    pub via: Vec<Option<EscapeVia>>,
}

impl SharedRegistry {
    /// Build the registry over the parsed files, symbol table, and call
    /// graph.
    pub fn build(files: &[SourceFile], symbols: &SymbolTable, cg: &CallGraph) -> SharedRegistry {
        let mut reg = SharedRegistry {
            escaping: vec![false; symbols.fns.len()],
            via: vec![None; symbols.fns.len()],
            ..SharedRegistry::default()
        };
        reg.collect_fields(symbols);
        for sf in files {
            collect_atomic_statics(sf, &mut reg);
        }
        reg.collect_shared_structs(files, symbols);
        reg.collect_escapes(files, symbols, cg);
        reg
    }

    /// Is code index `ci` of file `fi` inside an escape region?
    pub fn region_at(&self, fi: usize, ci: usize) -> Option<usize> {
        self.regions
            .iter()
            .position(|r| r.file == fi && ci > r.lo && ci < r.hi)
    }

    /// Witness chain for an escaping fn: the fn names from `gi` up to
    /// the rooting spawn-like call, plus that root region.
    pub fn escape_chain(&self, symbols: &SymbolTable, gi: usize) -> (Vec<String>, Option<usize>) {
        let mut names = Vec::new();
        let mut seen = BTreeSet::new();
        let mut cur = gi;
        loop {
            if !seen.insert(cur) {
                return (names, None);
            }
            names.push(symbols.fns[cur].name.clone());
            match self.via[cur] {
                Some(EscapeVia::Region(r)) => return (names, Some(r)),
                Some(EscapeVia::Caller(p)) => cur = p,
                None => return (names, None),
            }
        }
    }

    fn collect_fields(&mut self, symbols: &SymbolTable) {
        // Guard agreement per field name; `None` marks a conflict.
        let mut guards: BTreeMap<String, Option<GuardedField>> = BTreeMap::new();
        for f in &symbols.fields {
            if f.ty.split(' ').any(|w| w.starts_with("Atomic")) {
                self.atomics.entry(f.name.clone()).or_insert(DeclSite {
                    path: f.path.clone(),
                    line: f.line,
                });
            } else if f.ty.split(' ').any(|w| w == "Mutex" || w == "RwLock") {
                self.locks.insert(f.name.clone());
            } else if let Some(guard) = guard_marker(&f.doc) {
                let gf = GuardedField {
                    guard,
                    decl: DeclSite {
                        path: f.path.clone(),
                        line: f.line,
                    },
                };
                match guards.get(&f.name) {
                    None => {
                        guards.insert(f.name.clone(), Some(gf));
                    }
                    Some(Some(prev)) if prev.guard == gf.guard => {}
                    Some(_) => {
                        guards.insert(f.name.clone(), None);
                    }
                }
            }
        }
        for (name, gf) in guards {
            if let Some(gf) = gf {
                self.guarded.insert(name, gf);
            }
        }
    }

    fn collect_shared_structs(&mut self, files: &[SourceFile], symbols: &SymbolTable) {
        // A struct is shared when it owns lock/atomic state...
        for f in &symbols.fields {
            if self.atomics.contains_key(&f.name)
                || self.locks.contains(&f.name)
                || self.guarded.contains_key(&f.name)
            {
                self.shared_structs.insert(f.strukt.clone());
            }
        }
        // ...or is handed around behind `Arc<...>`.
        for sf in files {
            for ci in 0..sf.code.len() {
                let t = &sf.toks[sf.code[ci]];
                if t.is_ident("Arc") && sf.ct(ci + 1).is_some_and(|n| n.is_punct('<')) {
                    if let Some(n) = sf.ct(ci + 2) {
                        if n.kind == TokKind::Ident && n.text != "dyn" && n.text != "Self" {
                            self.shared_structs.insert(n.text.clone());
                        }
                    }
                }
            }
        }
        self.shared_structs
            .retain(|s| symbols.fields.iter().any(|f| &f.strukt == s));
        // Plain fields: every declaring struct must be shared, or the
        // name is dropped (name-keyed matching must not flag a same-named
        // field of an unshared struct).
        let mut by_name: BTreeMap<&str, (bool, bool)> = BTreeMap::new(); // (all_shared, any)
        for f in &symbols.fields {
            if self.atomics.contains_key(&f.name)
                || self.locks.contains(&f.name)
                || self.guarded.contains_key(&f.name)
            {
                continue;
            }
            let e = by_name.entry(&f.name).or_insert((true, false));
            e.0 &= self.shared_structs.contains(&f.strukt);
            e.1 = true;
        }
        for (name, (all_shared, any)) in by_name {
            if all_shared && any {
                self.plain_fields.insert(name.to_string());
            }
        }
    }

    fn collect_escapes(&mut self, files: &[SourceFile], symbols: &SymbolTable, cg: &CallGraph) {
        // Roots: argument spans of spawn-like calls that contain a
        // closure (`|`), outside test code.
        for call in &cg.calls {
            if call.in_test || !ESCAPE_ENTRIES.contains(&call.callee.as_str()) {
                continue;
            }
            let sf = &files[call.file];
            let lo = call.ci + 1;
            if !sf.ct(lo).is_some_and(|t| t.is_punct('(')) {
                continue;
            }
            let hi = match_paren(sf, lo);
            let has_closure = (lo + 1..hi).any(|k| sf.ct(k).is_some_and(|t| t.is_punct('|')));
            if !has_closure {
                continue;
            }
            self.regions.push(EscapeRegion {
                file: call.file,
                lo,
                hi,
                line: call.line,
                entry: call.callee.clone(),
                path: sf.path.clone(),
            });
        }
        // Seed: fns called from a region's closure body.
        let mut work: Vec<usize> = Vec::new();
        for (ri, r) in self.regions.iter().enumerate() {
            for call in &cg.calls {
                if call.file != r.file || call.ci <= r.lo || call.ci >= r.hi || call.in_test {
                    continue;
                }
                for &g in symbols.fn_by_name.get(&call.callee).into_iter().flatten() {
                    if !symbols.fns[g].is_test && !self.escaping[g] {
                        self.escaping[g] = true;
                        self.via[g] = Some(EscapeVia::Region(ri));
                        work.push(g);
                    }
                }
            }
        }
        // Downward closure over the call graph.
        let mut calls_by_caller: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (c, call) in cg.calls.iter().enumerate() {
            if let Some(g) = call.caller {
                calls_by_caller.entry(g).or_default().push(c);
            }
        }
        while let Some(g) = work.pop() {
            for &c in calls_by_caller.get(&g).into_iter().flatten() {
                let callee = &cg.calls[c].callee;
                for &g2 in symbols.fn_by_name.get(callee).into_iter().flatten() {
                    if !symbols.fns[g2].is_test && !self.escaping[g2] {
                        self.escaping[g2] = true;
                        self.via[g2] = Some(EscapeVia::Caller(g));
                        work.push(g2);
                    }
                }
            }
        }
    }
}

/// Register `static NAME: AtomicX` items (the pool-ID allocator
/// pattern): `static` (optionally `mut`), an ident, `:`, then a type
/// whose tokens mention an `Atomic*` primitive before `=` or `;`.
fn collect_atomic_statics(sf: &SourceFile, reg: &mut SharedRegistry) {
    for ci in 0..sf.code.len() {
        if !sf.toks[sf.code[ci]].is_ident("static") {
            continue;
        }
        let mut k = ci + 1;
        if sf.ct(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name) = sf.ct(k).filter(|t| t.kind == TokKind::Ident) else {
            continue;
        };
        if !sf.ct(k + 1).is_some_and(|t| t.is_punct(':')) {
            continue;
        }
        let name = name.text.clone();
        let line = sf.toks[sf.code[ci]].line;
        let mut j = k + 2;
        while let Some(t) = sf.ct(j) {
            if t.is_punct('=') || t.is_punct(';') {
                break;
            }
            if t.kind == TokKind::Ident && t.text.starts_with("Atomic") {
                reg.atomics.entry(name.clone()).or_insert(DeclSite {
                    path: sf.path.clone(),
                    line,
                });
                break;
            }
            j += 1;
        }
    }
}

/// Parse a ``guarded by `lock` `` marker out of a field doc comment.
fn guard_marker(doc: &str) -> Option<String> {
    let at = doc.find("guarded by `")?;
    let rest = &doc[at + "guarded by `".len()..];
    let end = rest.find('`')?;
    let name = rest[..end].trim();
    (!name.is_empty()).then(|| name.to_string())
}

/// Find the code index of the `)` matching the `(` at code index `open`.
fn match_paren(sf: &SourceFile, open: usize) -> usize {
    let mut depth = 0i32;
    for ci in open..sf.code.len() {
        let t = &sf.toks[sf.code[ci]];
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return ci;
            }
        }
    }
    sf.code.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(srcs: &[(&str, &str)]) -> (Vec<SourceFile>, SymbolTable, SharedRegistry) {
        let files: Vec<SourceFile> = srcs.iter().map(|(p, s)| SourceFile::parse(p, s)).collect();
        let symbols = SymbolTable::build(&files);
        let cg = CallGraph::build(&files, &symbols);
        let r = SharedRegistry::build(&files, &symbols, &cg);
        (files, symbols, r)
    }

    #[test]
    fn atomics_locks_and_guarded_fields_are_classified() {
        let (_f, _s, r) = reg(&[(
            "crates/exec/src/a.rs",
            "struct Shared {\n\
             \x20   bottom: AtomicIsize,\n\
             \x20   injector: Mutex<VecDeque<u64>>,\n\
             \x20   /// guarded by `injector`\n\
             \x20   epoch: u64,\n\
             \x20   label: String,\n\
             }\n\
             fn f(s: &Shared) { let _x = Arc::new(0); }\n",
        )]);
        assert!(r.atomics.contains_key("bottom"));
        assert!(r.locks.contains("injector"));
        assert_eq!(r.guarded["epoch"].guard, "injector");
        assert!(r.shared_structs.contains("Shared"));
        assert!(r.plain_fields.contains("label"));
    }

    #[test]
    fn atomic_statics_are_registered() {
        let (_f, _s, r) = reg(&[(
            "crates/exec/src/a.rs",
            "static POOL_IDS: AtomicU64 = AtomicU64::new(0);\nfn f() {}\n",
        )]);
        assert!(r.atomics.contains_key("POOL_IDS"));
    }

    #[test]
    fn arc_wrapped_structs_are_shared_and_ambiguous_plain_fields_drop() {
        let (_f, _s, r) = reg(&[(
            "crates/exec/src/a.rs",
            "struct State { count: u64 }\n\
             struct Other { count: u64 }\n\
             fn f() { let s: Arc<State> = Arc::new(State { count: 0 }); }\n",
        )]);
        assert!(r.shared_structs.contains("State"));
        assert!(!r.shared_structs.contains("Other"));
        // `count` also lives in the unshared `Other`: dropped.
        assert!(!r.plain_fields.contains("count"));
    }

    #[test]
    fn escape_reaches_through_the_call_graph_with_a_witness() {
        let (_f, s, r) = reg(&[(
            "crates/exec/src/a.rs",
            "fn launch(pool: &P) { pool.spawn(move || helper()); }\n\
             fn helper() { leaf(); }\n\
             fn leaf() {}\n\
             fn bystander() {}\n",
        )]);
        let leaf = s.fn_by_name["leaf"][0];
        let bystander = s.fn_by_name["bystander"][0];
        assert!(r.escaping[leaf]);
        assert!(!r.escaping[bystander]);
        let (chain, root) = r.escape_chain(&s, leaf);
        assert_eq!(chain, vec!["leaf", "helper"]);
        assert_eq!(r.regions[root.unwrap()].entry, "spawn");
    }

    #[test]
    fn conflicting_guard_markers_are_dropped() {
        let (_f, _s, r) = reg(&[(
            "crates/exec/src/a.rs",
            "struct A { m: Mutex<()>, /// guarded by `m`\n n: u64 }\n\
             struct B { k: Mutex<()>, /// guarded by `k`\n n: u64 }\n",
        )]);
        assert!(!r.guarded.contains_key("n"));
    }
}
