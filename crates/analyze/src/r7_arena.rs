//! R7 arena-index discipline.
//!
//! The engine addresses everything through dense arenas (`HotJob` per
//! job, `ChainArena` interning `ChunkChain`s, per-node dense vectors).
//! An arena index is only meaningful in its declared domain and only
//! while the arena is not compacted. This rule finds arenas from struct
//! declarations — a field whose type mentions an arena payload
//! (`HotJob`, `ChunkChain`) or whose doc comment declares an index
//! domain (``indexed by `JobId.0` ``, ``dense by `NodeId.0` ``,
//! ``(index = `NodeId.0`)``) — and then audits every `arena[...]`
//! expression:
//!
//! - a numeric literal index is always flagged;
//! - a bare `usize` variable must be sanctioned by a
//!   `for i in 0..arena.len()` header over the *same* arena;
//! - a typed projection `arena[id.0 as usize]` must match the arena's
//!   declared domain (indexing `hot` with a `NodeId` is a finding);
//! - an index reused after a compacting call (`remove`, `swap_remove`,
//!   `truncate`, `clear`, `drain`, `retain`, `sort*`) on the same arena
//!   is flagged as stale. Growth (`push`) is *not* compaction — dense
//!   indices survive it.
//!
//! Access through `self` is exempt: the arena's own methods are the
//! sanctioned implementation; the discipline applies at arena
//! boundaries, where handles travel between components.

use std::collections::{BTreeMap, BTreeSet};

use crate::dataflow::{self, FnFacts};
use crate::diag::{rules, Finding};
use crate::lexer::TokKind;
use crate::rules::crate_of;
use crate::source::SourceFile;
use crate::symbols::SymbolTable;

/// Payload types whose containers are arenas even without a doc
/// annotation.
const ARENA_PAYLOADS: &[&str] = &["HotJob", "ChunkChain", "ChainArena"];

/// Calls that can invalidate outstanding dense indices.
const COMPACTING: &[&str] = &[
    "remove",
    "swap_remove",
    "truncate",
    "clear",
    "drain",
    "retain",
    "sort",
    "sort_unstable",
    "sort_by",
    "sort_unstable_by",
    "sort_by_key",
    "sort_unstable_by_key",
    "dedup",
];

/// One known arena: field name → declared index domain (type name from
/// the doc annotation, `None` when only the payload type marked it).
#[derive(Debug, Default)]
pub struct ArenaRegistry {
    /// Arena field name → index domain (`JobId`, `NodeId`, ...).
    pub domains: BTreeMap<String, Option<String>>,
}

impl ArenaRegistry {
    /// Build the registry from the symbol table's field declarations.
    pub fn build(symbols: &SymbolTable) -> ArenaRegistry {
        let mut reg = ArenaRegistry::default();
        for f in &symbols.fields {
            let typed = ARENA_PAYLOADS.iter().any(|p| f.ty.contains(p));
            let domain = index_domain(&f.doc);
            if typed || domain.is_some() {
                // Conflicting domains for a same-named field merge to
                // unknown (raw-index checks still apply).
                reg.domains
                    .entry(f.name.clone())
                    .and_modify(|d| {
                        if *d != domain {
                            *d = None;
                        }
                    })
                    .or_insert(domain);
            }
        }
        reg
    }
}

/// Parse an index-domain annotation out of a field doc comment:
/// ``indexed by `JobId.0` ``, ``dense by `NodeId.0` ``, or
/// ``(index = `NodeId.0`)`` all declare the domain type.
fn index_domain(doc: &str) -> Option<String> {
    for marker in ["indexed by `", "dense by `", "index = `"] {
        if let Some(pos) = doc.find(marker) {
            let rest = &doc[pos + marker.len()..];
            let end = rest.find(['.', '`'])?;
            let ty = rest[..end].trim();
            if !ty.is_empty() {
                return Some(ty.to_string());
            }
        }
    }
    None
}

/// Run R7 over every file.
pub fn check(files: &[SourceFile], symbols: &SymbolTable, out: &mut Vec<Finding>) {
    let reg = ArenaRegistry::build(symbols);
    if reg.domains.is_empty() {
        return;
    }
    let empty = BTreeSet::new();
    for sf in files {
        if !matches!(crate_of(&sf.path), Some("core" | "sched" | "fleet")) {
            continue;
        }
        for f in &sf.fns {
            if f.is_test {
                continue;
            }
            let facts = FnFacts::collect(sf, f, symbols, &empty);
            check_fn(sf, f.body_start + 1, f.body_end, &facts, &reg, out);
        }
    }
}

/// One indexing expression `path[...]` over a known arena.
struct IndexUse {
    /// Code index of the `[`.
    ci: usize,
    /// Full dotted receiver path.
    path: String,
    /// Bare index variable name, when the index is a single ident (with
    /// or without `as usize`).
    bare: Option<String>,
}

fn check_fn(
    sf: &SourceFile,
    lo: usize,
    hi: usize,
    facts: &FnFacts,
    reg: &ArenaRegistry,
    out: &mut Vec<Finding>,
) {
    let mut uses: Vec<IndexUse> = Vec::new();
    // (arena path, code index, method) of compacting calls, in order.
    let mut compactions: Vec<(String, usize, String)> = Vec::new();
    for ci in lo..hi {
        let t = &sf.toks[sf.code[ci]];
        // Compacting call: `path.method(` with method in COMPACTING.
        if t.kind == TokKind::Ident
            && COMPACTING.contains(&t.text.as_str())
            && ci >= 2
            && sf.ct(ci - 1).is_some_and(|p| p.is_punct('.'))
            && sf.ct(ci + 1).is_some_and(|n| n.is_punct('('))
        {
            let path = dataflow::path_ending_at(sf, ci - 2);
            if let Some(last) = path.rsplit('.').next() {
                if reg.domains.contains_key(last) {
                    compactions.push((path.clone(), ci, t.text.clone()));
                }
            }
        }
        // Indexing: `ident [` where ident is an arena field.
        if t.kind != TokKind::Ident || !sf.ct(ci + 1).is_some_and(|n| n.is_punct('[')) {
            continue;
        }
        let arena = t.text.clone();
        if !reg.domains.contains_key(&arena) {
            continue;
        }
        let path = dataflow::path_ending_at(sf, ci);
        // The arena's own methods are exempt (`self.chains[idx]`).
        if path.starts_with("self.") || path == "self" {
            continue;
        }
        let open = ci + 1;
        let close = match_bracket(sf, open, hi);
        let idx_tokens = close.saturating_sub(open + 1);
        let first = sf.ct(open + 1);
        let line = t.line;
        // Case 1: literal index.
        if idx_tokens == 1 && first.is_some_and(|x| x.kind == TokKind::Num) {
            out.push(finding(
                sf,
                line,
                format!(
                    "literal index into arena `{path}`; dense indices are only \
                     meaningful as domain handles ({})",
                    domain_hint(reg, &arena)
                ),
            ));
            continue;
        }
        // Case 3: typed projection `id.0 [as usize]`.
        if let Some(var) = projection_var(sf, open, close) {
            if let (Some(dom), Some(ty)) = (&reg.domains[&arena], facts.ty_of.get(&var)) {
                let ty_head = ty
                    .trim_start_matches("& ")
                    .split_whitespace()
                    .next()
                    .unwrap_or("");
                if !ty_head.is_empty() && ty_head != dom {
                    out.push(finding(
                        sf,
                        line,
                        format!(
                            "`{path}` is indexed by `{dom}` but `{var}` is a `{ty_head}`; \
                             cross-domain arena indexing"
                        ),
                    ));
                }
            }
            uses.push(IndexUse {
                ci: open,
                path,
                bare: Some(var),
            });
            continue;
        }
        // Case 2: bare ident (optionally `as usize`).
        if let Some(var) = bare_index_var(sf, open, close) {
            let sanctioned = facts
                .sanctioned_idx
                .get(&var)
                .is_some_and(|p| p == &path || p.rsplit('.').next() == Some(arena.as_str()));
            if !sanctioned {
                out.push(finding(
                    sf,
                    line,
                    format!(
                        "raw index `{var}` into arena `{path}`; bound it with \
                         `for {var} in 0..{path}.len()` or index through the domain \
                         handle ({})",
                        domain_hint(reg, &arena)
                    ),
                ));
            }
            uses.push(IndexUse {
                ci: open,
                path,
                bare: Some(var),
            });
            continue;
        }
        uses.push(IndexUse {
            ci: open,
            path,
            bare: None,
        });
    }
    // Case 4: an index variable used on the same arena both before and
    // after a compacting call is stale.
    for (cpath, cci, method) in &compactions {
        for u in &uses {
            let Some(var) = &u.bare else { continue };
            if &u.path != cpath || u.ci <= *cci {
                continue;
            }
            let used_before = uses
                .iter()
                .any(|v| v.bare.as_ref() == Some(var) && v.path == *cpath && v.ci < *cci);
            if used_before {
                let line = sf.toks[sf.code[u.ci]].line;
                out.push(finding(
                    sf,
                    line,
                    format!(
                        "index `{var}` into `{}` is reused after `{}.{method}(..)` \
                         compacted the arena; re-derive the index",
                        u.path, cpath
                    ),
                ));
            }
        }
    }
}

fn finding(sf: &SourceFile, line: u32, message: String) -> Finding {
    Finding {
        rule: rules::ARENA_INDEX,
        path: sf.path.clone(),
        line,
        message,
        suppressed: false,
        justification: None,
    }
}

fn domain_hint(reg: &ArenaRegistry, arena: &str) -> String {
    match &reg.domains[arena] {
        Some(d) => format!("domain `{d}`"),
        None => "domain undeclared — add an `indexed by `T.0`` doc annotation".to_string(),
    }
}

/// Code index of the `]` matching `[` at `open`, bounded by `hi`.
fn match_bracket(sf: &SourceFile, open: usize, hi: usize) -> usize {
    let mut depth = 0i32;
    for k in open..hi {
        let t = &sf.toks[sf.code[k]];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    hi
}

/// `[ id . 0 ]` or `[ id . 0 as usize ]` → `id`.
fn projection_var(sf: &SourceFile, open: usize, close: usize) -> Option<String> {
    let id = sf.ct(open + 1)?;
    if id.kind != TokKind::Ident
        || !sf.ct(open + 2)?.is_punct('.')
        || sf.ct(open + 3)?.kind != TokKind::Num
    {
        return None;
    }
    let rest = close.saturating_sub(open + 4);
    let ok = rest == 0
        || (rest == 2
            && sf.ct(open + 4).is_some_and(|t| t.is_ident("as"))
            && sf.ct(open + 5).is_some_and(|t| t.kind == TokKind::Ident));
    ok.then(|| id.text.clone())
}

/// `[ i ]` or `[ i as usize ]` → `i`.
fn bare_index_var(sf: &SourceFile, open: usize, close: usize) -> Option<String> {
    let id = sf.ct(open + 1)?;
    if id.kind != TokKind::Ident {
        return None;
    }
    let rest = close.saturating_sub(open + 2);
    let ok = rest == 0
        || (rest == 2
            && sf.ct(open + 2).is_some_and(|t| t.is_ident("as"))
            && sf.ct(open + 3).is_some_and(|t| t.kind == TokKind::Ident));
    ok.then(|| id.text.clone())
}
