//! Findings-baseline diff mode.
//!
//! `analyze --baseline analyze-baseline.json` gates CI on **new**
//! findings only: the baseline file is a previously committed `--json`
//! report, and a current failing finding is *new* when the baseline
//! holds fewer findings with the same `(rule, path, message)` key than
//! the current report does. Line numbers are deliberately not part of
//! the key — pure line shifts from unrelated edits must not trip the
//! gate, while a second violation of the same kind in the same file
//! (one more than baseline) must.
//!
//! The crate is dependency-free, so the baseline is read with the small
//! recursive-descent JSON parser below (the dual of [`crate::json`]'s
//! emitter).

use std::collections::BTreeMap;

use crate::diag::{Finding, Report};

/// A parsed JSON value (just enough for report files).
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (reports only hold small integers).
    Num(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Val>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Member lookup on an object.
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Val]> {
        match self {
            Val::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Bool value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a JSON document. Errors carry a byte offset for diagnostics.
pub fn parse(src: &str) -> Result<Val, String> {
    let b: Vec<char> = src.chars().collect();
    let mut p = Parser { b, i: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at offset {}", p.i));
    }
    Ok(v)
}

struct Parser {
    b: Vec<char>,
    i: usize,
}

impl Parser {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_whitespace() {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some('{') => self.object(),
            Some('[') => self.array(),
            Some('"') => Ok(Val::Str(self.string()?)),
            Some('t') => self.keyword("true", Val::Bool(true)),
            Some('f') => self.keyword("false", Val::Bool(false)),
            Some('n') => self.keyword("null", Val::Null),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at offset {}", self.i)),
        }
    }

    fn keyword(&mut self, word: &str, v: Val) -> Result<Val, String> {
        for c in word.chars() {
            self.expect(c)?;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.i;
        if self.peek() == Some('-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, '.' | 'e' | 'E' | '+' | '-'))
        {
            self.i += 1;
        }
        let text: String = self.b[start..self.i].iter().collect();
        text.parse::<f64>()
            .map(Val::Num)
            .map_err(|_| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            let c = self.peek().ok_or("unterminated string")?;
            self.i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                code = code * 16 + h.to_digit(16).ok_or("bad hex in \\u escape")?;
                                self.i += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect('[')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some(']') {
            self.i += 1;
            return Ok(Val::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some(']') => {
                    self.i += 1;
                    return Ok(Val::Arr(out));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.expect('{')?;
        let mut out = Vec::new();
        self.ws();
        if self.peek() == Some('}') {
            self.i += 1;
            return Ok(Val::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(':')?;
            self.ws();
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            match self.peek() {
                Some(',') => self.i += 1,
                Some('}') => {
                    self.i += 1;
                    return Ok(Val::Obj(out));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.i)),
            }
        }
    }
}

/// A findings multiset keyed by `(rule, path, message)`.
#[derive(Debug, Default)]
pub struct Baseline {
    counts: BTreeMap<(String, String, String), usize>,
}

impl Baseline {
    /// Load a baseline from a previously emitted `--json` report.
    /// Suppressed entries are ignored — they are already accounted for
    /// in-source and removing a suppression must surface as new.
    pub fn from_json(src: &str) -> Result<Baseline, String> {
        let doc = parse(src)?;
        let findings = doc
            .get("findings")
            .and_then(Val::as_arr)
            .ok_or("baseline has no `findings` array")?;
        let mut b = Baseline::default();
        for f in findings {
            if f.get("suppressed").and_then(Val::as_bool) == Some(true) {
                continue;
            }
            let rule = f
                .get("rule")
                .and_then(Val::as_str)
                .ok_or("finding without `rule`")?;
            let path = f
                .get("path")
                .and_then(Val::as_str)
                .ok_or("finding without `path`")?;
            let message = f
                .get("message")
                .and_then(Val::as_str)
                .ok_or("finding without `message`")?;
            *b.counts
                .entry((rule.to_string(), path.to_string(), message.to_string()))
                .or_insert(0) += 1;
        }
        Ok(b)
    }

    /// The current report's failing findings that exceed the baseline:
    /// the k-th occurrence of a key is new when the baseline holds
    /// fewer than k.
    pub fn new_findings<'r>(&self, report: &'r Report) -> Vec<&'r Finding> {
        let mut seen: BTreeMap<(&str, &str, &str), usize> = BTreeMap::new();
        let mut out = Vec::new();
        for f in report.failing() {
            let key = (f.rule, f.path.as_str(), f.message.as_str());
            let k = seen.entry(key).or_insert(0);
            *k += 1;
            let allowed = self
                .counts
                .get(&(f.rule.to_string(), f.path.clone(), f.message.clone()))
                .copied()
                .unwrap_or(0);
            if *k > allowed {
                out.push(f);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::rules;

    fn finding(rule: &'static str, path: &str, line: u32, msg: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line,
            message: msg.into(),
            suppressed: false,
            justification: None,
        }
    }

    #[test]
    fn parser_round_trips_report_shapes() {
        let v = parse(r#"{"a": [1, {"b": "x\ny"}], "c": true, "d": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1]
                .get("b")
                .unwrap()
                .as_str(),
            Some("x\ny")
        );
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2] junk").is_err());
    }

    #[test]
    fn diff_ignores_line_shifts_but_counts_duplicates() {
        let base = r#"{"findings": [
            {"rule": "panic-paths", "path": "crates/core/src/x.rs", "line": 10,
             "suppressed": false, "message": "m"},
            {"rule": "panic-paths", "path": "crates/core/src/y.rs", "line": 5,
             "suppressed": true, "message": "sup"}
        ]}"#;
        let b = Baseline::from_json(base).unwrap();
        let mut r = Report::default();
        // Same finding, shifted line: not new.
        r.findings
            .push(finding(rules::PANIC_PATHS, "crates/core/src/x.rs", 42, "m"));
        assert!(b.new_findings(&r).is_empty());
        // A second occurrence of the same key: new.
        r.findings
            .push(finding(rules::PANIC_PATHS, "crates/core/src/x.rs", 50, "m"));
        assert_eq!(b.new_findings(&r).len(), 1);
        // A suppressed baseline entry does not license a failing one.
        r.findings.push(finding(
            rules::PANIC_PATHS,
            "crates/core/src/y.rs",
            5,
            "sup",
        ));
        assert_eq!(b.new_findings(&r).len(), 2);
    }
}
