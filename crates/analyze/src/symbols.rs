//! Cross-crate symbol table: struct fields (with their doc comments)
//! and function signatures, built once from the lexed token streams and
//! shared by every interprocedural rule.
//!
//! Resolution is *name-keyed*: the analyzer does not resolve imports, so
//! two same-named symbols merge conservatively — a rule only trusts a
//! looked-up fact when every definition of the name agrees on it. That
//! trades a little recall for zero import-graph machinery, which keeps
//! whole-workspace analysis well inside the CI time budget.

use std::collections::BTreeMap;

use crate::lexer::TokKind;
use crate::rules::crate_of;
use crate::source::SourceFile;
use crate::units::{self, Unit};

/// One `name: Type` parameter of a function (receiver excluded).
/// Destructured patterns keep their type with an empty name.
#[derive(Debug, Clone)]
pub struct Param {
    /// Binding name (`""` for `_` or tuple patterns).
    pub name: String,
    /// Declared type text, tokens space-joined (`& mut Vec < u64 >`).
    pub ty: String,
}

/// One function signature, anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Owning crate (`None` for root `src/`, `examples/`, ...).
    pub krate: Option<String>,
    /// Workspace-relative path of the defining file.
    pub path: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Function name (methods are keyed by bare name, like the call
    /// graph).
    pub name: String,
    /// Parameters in order, `self` receivers skipped.
    pub params: Vec<Param>,
    /// Return-type text (`""` for unit).
    pub ret: String,
    /// Defined inside a test region.
    pub is_test: bool,
    /// Index of the defining file in the analyzed slice.
    pub file: usize,
    /// Index of the `FnItem` within that file's `fns`.
    pub item: usize,
}

/// One named struct field, anywhere in the workspace.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    /// Struct the field belongs to.
    pub strukt: String,
    /// Field name.
    pub name: String,
    /// Declared type text, tokens space-joined.
    pub ty: String,
    /// The field's doc comment(s), concatenated (used for index-domain
    /// annotations like ``dense by `NodeId.0` ``).
    pub doc: String,
    /// Workspace-relative path of the declaring file.
    pub path: String,
    /// 1-based line of the field name.
    pub line: u32,
}

/// The workspace-wide symbol table.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Every function signature, in file order.
    pub fns: Vec<FnSig>,
    /// Name → indices into [`Self::fns`].
    pub fn_by_name: BTreeMap<String, Vec<usize>>,
    /// Every named struct field, in file order.
    pub fields: Vec<FieldDecl>,
    /// Field name → indices into [`Self::fields`].
    pub field_by_name: BTreeMap<String, Vec<usize>>,
}

impl SymbolTable {
    /// Build the table over every analyzed file.
    pub fn build(files: &[SourceFile]) -> SymbolTable {
        let mut st = SymbolTable::default();
        for (fi, sf) in files.iter().enumerate() {
            collect_fns(sf, fi, &mut st);
            collect_fields(sf, &mut st);
        }
        for (i, f) in st.fns.iter().enumerate() {
            st.fn_by_name.entry(f.name.clone()).or_default().push(i);
        }
        for (i, f) in st.fields.iter().enumerate() {
            st.field_by_name.entry(f.name.clone()).or_default().push(i);
        }
        st
    }

    /// The unit every same-named function agrees to return: inferred
    /// from the name suffix (`transfer_ns`) or the return type
    /// (`-> SimDur`). `None` when unknown or when definitions disagree.
    pub fn fn_ret_unit(&self, name: &str) -> Option<Unit> {
        if units::std_shadowed_method(name) {
            return None;
        }
        let idxs = self.fn_by_name.get(name)?;
        let mut agreed: Option<Unit> = None;
        for &i in idxs {
            let f = &self.fns[i];
            let u = units::of_ident(&f.name).or_else(|| units::of_type(&f.ret))?;
            match agreed {
                None => agreed = Some(u),
                Some(a) if a == u => {}
                Some(_) => return None,
            }
        }
        agreed
    }

    /// The unit every same-named field agrees on (name suffix, then
    /// declared type). `None` when unknown or conflicting.
    pub fn field_unit(&self, name: &str) -> Option<Unit> {
        if let Some(u) = units::of_ident(name) {
            return Some(u);
        }
        let idxs = self.field_by_name.get(name)?;
        let mut agreed: Option<Unit> = None;
        for &i in idxs {
            let u = units::of_type(&self.fields[i].ty)?;
            match agreed {
                None => agreed = Some(u),
                Some(a) if a == u => {}
                Some(_) => return None,
            }
        }
        agreed
    }

    /// The single parameter profile shared by every definition of
    /// `name` (used by the interprocedural unit check at call sites).
    /// `None` when the name is unknown or the definitions' arities or
    /// param units disagree.
    pub fn unified_params(&self, name: &str) -> Option<&[Param]> {
        if units::std_shadowed_method(name) {
            return None;
        }
        let idxs = self.fn_by_name.get(name)?;
        let first = &self.fns[*idxs.first()?];
        for &i in &idxs[1..] {
            let other = &self.fns[i];
            if other.params.len() != first.params.len() {
                return None;
            }
            for (a, b) in first.params.iter().zip(&other.params) {
                if units::of_decl(&a.name, &a.ty) != units::of_decl(&b.name, &b.ty) {
                    return None;
                }
            }
        }
        Some(&first.params)
    }
}

/// Extract parameter lists for every `FnItem` in `sf`.
fn collect_fns(sf: &SourceFile, file: usize, st: &mut SymbolTable) {
    for (item, f) in sf.fns.iter().enumerate() {
        let params = parse_params(sf, f.sig_start, f.body_start);
        st.fns.push(FnSig {
            krate: crate_of(&sf.path).map(|s| s.to_string()),
            path: sf.path.clone(),
            line: f.line,
            name: f.name.clone(),
            params,
            ret: f.ret.clone(),
            is_test: f.is_test,
            file,
            item,
        });
    }
}

/// Parse `( params )` between the fn name and its body, skipping the
/// generic parameter list (which may itself contain `->` in `Fn` bounds).
fn parse_params(sf: &SourceFile, sig_start: usize, body_start: usize) -> Vec<Param> {
    // Find the opening paren of the parameter list: the first `(` at
    // angle depth 0 after the fn name.
    let mut ci = sig_start + 2;
    let mut angle = 0i32;
    let open = loop {
        if ci >= body_start {
            return Vec::new();
        }
        let t = match sf.ct(ci) {
            Some(t) => t,
            None => return Vec::new(),
        };
        if t.is_punct('-') && sf.ct(ci + 1).is_some_and(|n| n.is_punct('>')) {
            ci += 2; // `->` inside generic bounds: not an angle close
            continue;
        }
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            break ci;
        }
        ci += 1;
    };
    // Split the argument span on top-level commas.
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut seg: Vec<usize> = Vec::new();
    let mut segs: Vec<Vec<usize>> = Vec::new();
    let mut ci = open + 1;
    while let Some(t) = sf.ct(ci) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            if depth == 0 && t.is_punct(')') {
                break;
            }
            depth -= 1;
        } else if t.is_punct('-') && sf.ct(ci + 1).is_some_and(|n| n.is_punct('>')) {
            seg.push(ci);
            seg.push(ci + 1);
            ci += 2;
            continue;
        } else if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        }
        if t.is_punct(',') && depth == 0 && angle <= 0 {
            segs.push(std::mem::take(&mut seg));
        } else {
            seg.push(ci);
        }
        ci += 1;
    }
    if !seg.is_empty() {
        segs.push(seg);
    }
    let mut params = Vec::new();
    for seg in segs {
        if let Some(p) = parse_one_param(sf, &seg) {
            params.push(p);
        }
    }
    params
}

/// One comma-separated parameter segment → a [`Param`], or `None` for a
/// `self` receiver.
fn parse_one_param(sf: &SourceFile, seg: &[usize]) -> Option<Param> {
    // Strip leading `&`, lifetimes, and `mut`.
    let mut k = 0usize;
    while k < seg.len() {
        let t = sf.ct(seg[k])?;
        if t.is_punct('&') || t.kind == TokKind::Lifetime || t.is_ident("mut") {
            k += 1;
        } else {
            break;
        }
    }
    let head = sf.ct(*seg.get(k)?)?;
    if head.is_ident("self") {
        return None;
    }
    // `name : Type` — anything else (tuple patterns, `_`) keeps the
    // type with an anonymous name.
    let (name, ty_from) = if head.kind == TokKind::Ident
        && seg
            .get(k + 1)
            .and_then(|&c| sf.ct(c))
            .is_some_and(|t| t.is_punct(':'))
    {
        (head.text.clone(), k + 2)
    } else {
        let colon = seg
            .iter()
            .position(|&c| sf.ct(c).is_some_and(|t| t.is_punct(':')))?;
        (String::new(), colon + 1)
    };
    let ty = seg[ty_from..]
        .iter()
        .filter_map(|&c| sf.ct(c).map(|t| t.text.clone()))
        .collect::<Vec<_>>()
        .join(" ");
    Some(Param { name, ty })
}

/// Extract named struct fields (tuple structs and enums are skipped).
fn collect_fields(sf: &SourceFile, st: &mut SymbolTable) {
    let n = sf.code.len();
    let mut ci = 0usize;
    while ci < n {
        if !sf.toks[sf.code[ci]].is_ident("struct") {
            ci += 1;
            continue;
        }
        let Some(name_tok) = sf.ct(ci + 1) else {
            ci += 1;
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            ci += 1;
            continue;
        }
        let strukt = name_tok.text.clone();
        // Walk to the body `{`, or bail at `;`/`(` (unit/tuple struct).
        let mut j = ci + 2;
        let body = loop {
            match sf.ct(j) {
                Some(t) if t.is_punct('{') => break Some(j),
                Some(t) if t.is_punct(';') || t.is_punct('(') => break None,
                Some(_) => j += 1,
                None => break None,
            }
        };
        let Some(open) = body else {
            ci += 1;
            continue;
        };
        let close = sf.match_brace(open);
        parse_fields(sf, &strukt, open, close, st);
        ci = close + 1;
    }
}

/// Parse `name: Type` fields between `open` and `close` (code indices of
/// the struct's braces), attaching each field's doc comment.
fn parse_fields(sf: &SourceFile, strukt: &str, open: usize, close: usize, st: &mut SymbolTable) {
    let mut ci = open + 1;
    while ci < close {
        let t = match sf.ct(ci) {
            Some(t) => t,
            None => return,
        };
        // Skip attributes and visibility.
        if t.is_punct('#') && sf.ct(ci + 1).is_some_and(|n| n.is_punct('[')) {
            let mut depth = 0i32;
            let mut j = ci + 1;
            loop {
                match sf.ct(j) {
                    Some(t) if t.is_punct('[') => depth += 1,
                    Some(t) if t.is_punct(']') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    Some(_) => {}
                    None => return,
                }
                j += 1;
            }
            ci = j + 1;
            continue;
        }
        if t.is_ident("pub") {
            ci += 1;
            if sf.ct(ci).is_some_and(|n| n.is_punct('(')) {
                // `pub(crate)` etc.
                let mut depth = 0i32;
                loop {
                    match sf.ct(ci) {
                        Some(t) if t.is_punct('(') => depth += 1,
                        Some(t) if t.is_punct(')') => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some(_) => {}
                        None => return,
                    }
                    ci += 1;
                }
                ci += 1;
            }
            continue;
        }
        // `name : Type` up to the field-separating comma.
        if t.kind == TokKind::Ident && sf.ct(ci + 1).is_some_and(|n| n.is_punct(':')) {
            let name = t.text.clone();
            let line = t.line;
            let doc = doc_before(sf, ci);
            let mut depth = 0i32;
            let mut angle = 0i32;
            let mut ty = String::new();
            let mut j = ci + 2;
            while j < close {
                let tt = match sf.ct(j) {
                    Some(tt) => tt,
                    None => break,
                };
                if tt.is_punct('(') || tt.is_punct('[') {
                    depth += 1;
                } else if tt.is_punct(')') || tt.is_punct(']') {
                    depth -= 1;
                } else if tt.is_punct('-') && sf.ct(j + 1).is_some_and(|n| n.is_punct('>')) {
                    ty.push_str(" ->");
                    j += 2;
                    continue;
                } else if tt.is_punct('<') {
                    angle += 1;
                } else if tt.is_punct('>') {
                    angle -= 1;
                }
                if tt.is_punct(',') && depth == 0 && angle <= 0 {
                    break;
                }
                if !ty.is_empty() {
                    ty.push(' ');
                }
                ty.push_str(&tt.text);
                j += 1;
            }
            st.fields.push(FieldDecl {
                strukt: strukt.to_string(),
                name,
                ty,
                doc,
                path: sf.path.clone(),
                line,
            });
            ci = j + 1;
            continue;
        }
        ci += 1;
    }
}

/// Concatenated doc/comment text immediately preceding the code token at
/// `ci`, walking back over attributes and visibility (`pub`,
/// `pub(crate)`).
fn doc_before(sf: &SourceFile, ci: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut ti = sf.code[ci];
    loop {
        if ti == 0 {
            break;
        }
        ti -= 1;
        let t = &sf.toks[ti];
        if t.kind == TokKind::Comment {
            parts.push(&t.text);
            continue;
        }
        if t.is_ident("pub") {
            continue;
        }
        // Walk back through a `pub(crate)` restriction to its `(`;
        // the `pub` itself is consumed by the branch above next round.
        if t.is_punct(')') {
            let mut depth = 0i32;
            loop {
                let t = &sf.toks[ti];
                if t.is_punct(')') {
                    depth += 1;
                } else if t.is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if ti == 0 {
                    return String::new();
                }
                ti -= 1;
            }
            if ti > 0 && sf.toks[ti - 1].is_ident("pub") {
                continue;
            }
            break;
        }
        // Walk back through an attribute `#[...]` to its `#`.
        if t.is_punct(']') {
            let mut depth = 0i32;
            loop {
                let t = &sf.toks[ti];
                if t.is_punct(']') {
                    depth += 1;
                } else if t.is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if ti == 0 {
                    return String::new();
                }
                ti -= 1;
            }
            if ti > 0 && sf.toks[ti - 1].is_punct('#') {
                ti -= 1;
                continue;
            }
            break;
        }
        break;
    }
    parts.reverse();
    parts.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> SymbolTable {
        let sf = SourceFile::parse("crates/sched/src/x.rs", src);
        SymbolTable::build(std::slice::from_ref(&sf))
    }

    #[test]
    fn params_and_ret_are_parsed() {
        let t = table(
            "impl L { pub fn transfer(&self, bytes: u64) -> SimDur { x } }\n\
             fn free(a_ns: u64, (x, y): (u64, u64)) {}\n",
        );
        let tr = &t.fns[t.fn_by_name["transfer"][0]];
        assert_eq!(tr.params.len(), 1);
        assert_eq!(tr.params[0].name, "bytes");
        assert_eq!(tr.params[0].ty, "u64");
        assert_eq!(tr.ret, "SimDur");
        assert_eq!(t.fn_ret_unit("transfer"), Some(Unit::Ns));
        let fr = &t.fns[t.fn_by_name["free"][0]];
        assert_eq!(fr.params.len(), 2);
        assert_eq!(fr.params[0].name, "a_ns");
        assert_eq!(fr.params[1].name, "");
    }

    #[test]
    fn generic_fn_bounds_do_not_eat_the_param_list() {
        let t = table("fn f<F: Fn() -> u8>(g: F, n_bytes: u64) {}");
        let f = &t.fns[t.fn_by_name["f"][0]];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[1].name, "n_bytes");
    }

    #[test]
    fn fields_carry_types_and_docs() {
        let t = table(
            "struct RunState {\n\
             \x20   /// Dense per-event job state, indexed by `JobId.0`.\n\
             \x20   hot: Vec<HotJob>,\n\
             \x20   pub latency: SimDur,\n\
             \x20   index: BTreeMap<(usize, u64), u32>,\n\
             }\n",
        );
        assert_eq!(t.fields.len(), 3);
        let hot = &t.fields[t.field_by_name["hot"][0]];
        assert_eq!(hot.strukt, "RunState");
        assert_eq!(hot.ty, "Vec < HotJob >");
        assert!(hot.doc.contains("indexed by `JobId.0`"));
        assert_eq!(t.field_unit("latency"), Some(Unit::Ns));
        assert_eq!(t.field_unit("index"), None);
    }

    #[test]
    fn conflicting_defs_merge_to_unknown() {
        let t = table(
            "struct A { window: SimDur }\n\
             struct B { window: u64 }\n",
        );
        assert_eq!(t.field_unit("window"), None);
    }

    #[test]
    fn tuple_structs_are_skipped() {
        let t = table("struct JobId(pub u64);\nstruct S { id: JobId }\n");
        assert_eq!(t.fields.len(), 1);
        assert_eq!(t.fields[0].name, "id");
    }
}
