//! Fleet configuration: shard topology, seeding, the inter-shard link,
//! and router weights.

use northup::{presets, FaultPlan, Tree};
use northup_sched::{
    JobSpec, JobWork, Priority, Probation, Reservation, SchedulerConfig, TenantId,
};
use northup_sim::{SimDur, SimTime};
use std::collections::BTreeMap;

/// The modeled link jobs migrate over (DESIGN.md §11): checkpointed
/// state and un-staged input move between shards at `bandwidth` with a
/// fixed `latency` floor. Shards share nothing else — the link is the
/// only inter-tree edge in the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterShardLink {
    /// Sustained transfer bandwidth in bytes per second (clamped to
    /// ≥ 1.0 so a transfer always has a finite finish time).
    pub bandwidth: f64,
    /// Per-transfer setup latency.
    pub latency: SimDur,
}

impl Default for InterShardLink {
    fn default() -> Self {
        // EDR InfiniBand-class: ~12.5 GB/s with a 5 µs setup cost.
        InterShardLink {
            bandwidth: 12.5e9,
            latency: SimDur::from_micros(5),
        }
    }
}

impl InterShardLink {
    /// Virtual time to move `bytes` across the link: latency plus the
    /// serialization time at `bandwidth`.
    pub fn transfer(&self, bytes: u64) -> SimDur {
        let serialize = SimDur::from_secs_f64(bytes as f64 / self.bandwidth.max(1.0));
        self.latency + serialize
    }
}

/// Weights of the router's scoring terms (all in comparable
/// nanosecond-denominated units; see [`crate::router`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterWeights {
    /// Weight of the data-locality term: the modeled time to move the
    /// job's input to a non-home shard.
    pub locality: u64,
    /// Weight of the load term: estimated service time of work already
    /// routed to the shard this replay.
    pub load: u64,
    /// Weight of the fault-pressure term: each sub-threshold persistent
    /// fault a shard has accumulated repels roughly one millisecond's
    /// worth of score.
    pub fault: u64,
    /// Weight of the SLO-pressure term: shed jobs and guaranteed-class
    /// p99 overshoot from the shard's latest report repel new work the
    /// same way fault pressure does.
    pub slo: u64,
}

impl Default for RouterWeights {
    fn default() -> Self {
        RouterWeights {
            locality: 1,
            load: 1,
            fault: 1,
            slo: 1,
        }
    }
}

/// Everything the federation needs to run: N shard trees, per-shard
/// scheduler knobs, the inter-shard link, and the migration bounds.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shards (independent trees; must be ≥ 1).
    pub shards: usize,
    /// Fleet seed: per-shard fault-plan seeds and router tiebreaks all
    /// derive from it, so one `u64` pins the whole replay.
    pub seed: u64,
    /// The tree every shard instantiates (shards are homogeneous —
    /// one budget vector describes them all, which is what makes the
    /// gang-style all-or-nothing feasibility check a single comparison).
    pub tree: Tree,
    /// Per-shard scheduler configuration. Its `fault_plan` acts as a
    /// template: shard `s` runs the same rates/scripts reseeded from the
    /// fleet seed, so every shard faults with the same shape but an
    /// independent stream.
    pub sched: SchedulerConfig,
    /// The modeled inter-shard migration link.
    pub link: InterShardLink,
    /// Router scoring weights.
    pub weights: RouterWeights,
    /// Per-shard fault-plan overrides: shard `s` uses
    /// `shard_overrides[&s]` verbatim (no reseeding) instead of the
    /// reseeded template — how a chaos study scripts a guaranteed
    /// quarantine on one shard while the rest stay clean.
    pub shard_overrides: BTreeMap<usize, FaultPlan>,
    /// Cross-shard migrations one job may make before its failure is
    /// final.
    pub max_migrations: u32,
    /// Re-run rounds the federation may take to settle migrations
    /// (bounds the replay; each round only re-runs shards that received
    /// migrants).
    pub max_rounds: u32,
}

impl FleetConfig {
    /// The standard fleet: `shards` × [`presets::fleet_shard`] trees with
    /// fault-aware placement and probation enabled inside every shard, a
    /// deep admission queue for trace replay, and default link/weights.
    pub fn preset(shards: usize, seed: u64) -> Self {
        FleetConfig {
            shards,
            seed,
            tree: presets::fleet_shard(),
            sched: SchedulerConfig {
                max_queue: 8192,
                fault_aware_placement: true,
                probation: Some(Probation::default()),
                ..SchedulerConfig::default()
            },
            link: InterShardLink::default(),
            weights: RouterWeights::default(),
            shard_overrides: BTreeMap::new(),
            max_migrations: 3,
            max_rounds: 4,
        }
    }
}

/// One job as the fleet sees it: a shard-agnostic spec plus the shard
/// holding its input data (the locality anchor of router scoring).
#[derive(Debug, Clone)]
pub struct FleetJob {
    /// Name for reports.
    pub name: String,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Admission class.
    pub priority: Priority,
    /// Virtual arrival time at the router.
    pub arrival: SimTime,
    /// Per-node capacity held while admitted — on whichever single shard
    /// the job lands (all-or-nothing; never split across shards).
    pub reservation: Reservation,
    /// Per-chunk fabric demand.
    pub work: JobWork,
    /// Shard whose root storage holds the input (clamped to the shard
    /// count at routing time).
    pub home: u32,
}

impl FleetJob {
    /// A `Normal`-priority job arriving at time zero with its data on
    /// shard 0; adjust with the builder methods.
    pub fn new(name: impl Into<String>, reservation: Reservation, work: JobWork) -> Self {
        FleetJob {
            name: name.into(),
            tenant: TenantId::default(),
            priority: Priority::Normal,
            arrival: SimTime::ZERO,
            reservation,
            work,
            home: 0,
        }
    }

    /// Set the shard holding the input data.
    pub fn home(mut self, shard: u32) -> Self {
        self.home = shard;
        self
    }

    /// Set the virtual arrival time.
    pub fn arrival(mut self, at: SimTime) -> Self {
        self.arrival = at;
        self
    }

    /// Set the admission class.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Set the owning tenant.
    pub fn tenant(mut self, t: TenantId) -> Self {
        self.tenant = t;
        self
    }

    /// The shard-local spec for a fresh (un-migrated) submission.
    pub(crate) fn to_spec(&self) -> JobSpec {
        JobSpec::new(
            self.name.clone(),
            self.reservation.clone(),
            self.work.clone(),
        )
        .tenant(self.tenant)
        .priority(self.priority)
        .arrival(self.arrival)
    }

    /// Total input bytes staged from the home shard's root storage —
    /// what a non-home placement must move over the inter-shard link.
    pub(crate) fn input_bytes(&self) -> u64 {
        self.work
            .read_bytes
            .saturating_mul(u64::from(self.work.chunks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_is_latency_plus_serialization() {
        let link = InterShardLink {
            bandwidth: 1e9,
            latency: SimDur::from_micros(10),
        };
        assert_eq!(link.transfer(0), SimDur::from_micros(10));
        let t = link.transfer(1 << 30);
        assert!(t > SimDur::from_secs_f64(1.0), "1 GiB at 1 GB/s: {t:?}");
        let degenerate = InterShardLink {
            bandwidth: 0.0,
            latency: SimDur::ZERO,
        };
        // Clamped bandwidth keeps transfers finite.
        assert!(degenerate.transfer(1 << 20) < SimDur::from_secs_f64(1e9));
    }

    #[test]
    fn preset_enables_the_recovery_satellites() {
        let cfg = FleetConfig::preset(16, 7);
        assert_eq!(cfg.shards, 16);
        assert!(cfg.sched.fault_aware_placement);
        assert!(cfg.sched.probation.is_some());
        assert!(cfg.tree.leaves().count() >= 3);
    }

    #[test]
    fn fleet_job_builders_fill_every_field() {
        let j = FleetJob::new("j", Reservation::new(), JobWork::new(4).read(1 << 20))
            .home(3)
            .priority(Priority::Interactive)
            .tenant(TenantId(2))
            .arrival(SimTime::from_secs_f64(1.0));
        assert_eq!(j.home, 3);
        assert_eq!(j.input_bytes(), 4 << 20);
        let spec = j.to_spec();
        assert_eq!(spec.priority, Priority::Interactive);
        assert_eq!(spec.tenant, TenantId(2));
        assert_eq!(spec.start_chunk, 0);
    }
}
