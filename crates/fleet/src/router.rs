//! The shard router: pure scoring over data locality, shard load, and
//! fault pressure, with a seeded deterministic tiebreak.
//!
//! Every term is denominated in (estimated) nanoseconds so the weighted
//! sum compares like with like:
//!
//! * **locality** — the modeled time to move the job's input over the
//!   inter-shard link when the candidate is not the job's home shard
//!   (zero at home: data gravity).
//! * **load** — the summed service-time estimate of everything already
//!   routed to the candidate this replay (a static finish-time proxy;
//!   routed load never un-counts, which keeps scores monotone and
//!   replay-order independent).
//! * **fault pressure** — the same sub-threshold persistent-fault signal
//!   fault-aware placement biases on *inside* a shard
//!   (`SchedReport::node_fault_pressure`), lifted to the router: each
//!   accumulated fault repels [`PRESSURE_NS`] of score.
//! * **SLO pressure** — the overload-controller signal: [`PRESSURE_NS`]
//!   per job the shard shed last round, plus the guaranteed-class p99
//!   overshoot beyond its target in plain nanoseconds. An
//!   overloaded-but-healthy shard additionally *exports* load — like a
//!   quarantined shard it accepts no migrants, so its frozen trace keeps
//!   the exactly-once chunk accounting.
//!
//! Ties break by a splitmix64 hash of `(fleet seed, job uid, shard)` —
//! deterministic for a fixed seed, yet uncorrelated with submission
//! order — and finally by shard id. The score is a pure function of its
//! inputs: same seed + same trace ⇒ same placement, bit for bit.

use crate::config::{FleetConfig, RouterWeights};
use northup_sched::JobWork;

/// Score penalty per unit of accumulated fault pressure (~1 ms: one
/// persistent fault outweighs a millisecond of queued load).
pub const PRESSURE_NS: u64 = 1_000_000;

/// splitmix64 — the project's standard pure mixer (same constants as
/// `FaultPlan`'s decision hash).
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// What the router knows about one shard when it scores a candidate.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct ShardView {
    /// Estimated service nanoseconds already routed to the shard.
    pub load_ns: u128,
    /// Sub-threshold persistent faults the shard has accumulated
    /// (from its latest report; zero before the first round).
    pub pressure: u64,
    /// The shard has fenced a node this replay: it migrates work *out*
    /// and accepts none in — its report is frozen once its trace stops
    /// changing, which is what keeps completed chunk prefixes stable
    /// across migration rounds (DESIGN.md §11).
    pub troubled: bool,
    /// SLO pressure from the shard's latest report, in score
    /// nanoseconds: [`PRESSURE_NS`] per shed job plus the
    /// guaranteed-class p99 overshoot beyond its target. Healthy shards
    /// report zero.
    pub slo_ns: u128,
    /// The shard is exporting overload (it shed work this replay):
    /// like `troubled`, it gives work away and accepts no migrants —
    /// the same frozen-trace rule that keeps chunk prefixes exactly-once
    /// applies to overload exports.
    pub exporting: bool,
}

/// Crude service-time estimate of `remaining` chunks in nanoseconds:
/// compute time plus bytes at ~1 GiB/s (1 byte ≈ 1 ns). The router only
/// compares these against each other, so the scale factor cancels.
pub(crate) fn cost_ns(work: &JobWork, remaining: u32) -> u128 {
    let per_chunk = u128::from(work.compute.0)
        // analyze:allow(unit-consistency): deliberate 1 byte ≈ 1 ns blend at the modeled 1 GiB/s; costs are only compared against each other, so the scale cancels
        + u128::from(work.read_bytes)
        + u128::from(work.xfer_bytes)
        + u128::from(work.write_bytes);
    u128::from(remaining) * per_chunk
}

/// Pick the best shard for a job (or migration remnant), or `None` when
/// no candidate is open.
///
/// `transfer_bytes` is what a non-home placement moves over the link;
/// `exclude` removes the migration source from candidacy. Troubled
/// shards are never candidates. The gang-style all-or-nothing
/// feasibility check — the *whole* reservation fits a single shard's
/// budget vector or the job is rejected outright — happens in the
/// caller, because shards are homogeneous and the answer is
/// shard-independent.
pub(crate) fn route(
    cfg: &FleetConfig,
    uid: u64,
    home: usize,
    transfer_bytes: u64,
    views: &[ShardView],
    exclude: Option<usize>,
) -> Option<usize> {
    let RouterWeights {
        locality,
        load,
        fault,
        slo,
    } = cfg.weights;
    let away_ns = u128::from(cfg.link.transfer(transfer_bytes).0);
    let mut best: Option<((u128, u64, usize), usize)> = None;
    for (s, view) in views.iter().enumerate() {
        if view.troubled || view.exporting || Some(s) == exclude {
            continue;
        }
        let locality_ns = if s == home { 0 } else { away_ns };
        let score = u128::from(locality) * locality_ns
            + u128::from(load) * view.load_ns
            + u128::from(fault) * u128::from(view.pressure) * u128::from(PRESSURE_NS)
            + u128::from(slo) * view.slo_ns;
        let tiebreak = mix64(cfg.seed ^ mix64(uid.wrapping_mul(0x5851_F42D_4C95_7F2D) ^ s as u64));
        let key = (score, tiebreak, s);
        if best.as_ref().is_none_or(|(b, _)| key < *b) {
            best = Some((key, s));
        }
    }
    best.map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_sched::JobWork;

    fn cfg(shards: usize, seed: u64) -> FleetConfig {
        FleetConfig::preset(shards, seed)
    }

    #[test]
    fn data_gravity_wins_on_an_idle_fleet() {
        let c = cfg(8, 42);
        let views = vec![ShardView::default(); 8];
        // A job with real input bytes sticks to its home shard.
        for home in 0..8 {
            assert_eq!(route(&c, 1, home, 64 << 20, &views, None), Some(home));
        }
    }

    #[test]
    fn load_spills_jobs_off_a_saturated_home() {
        let c = cfg(4, 7);
        let mut views = vec![ShardView::default(); 4];
        // Home is drowning in routed work; the input is tiny.
        views[0].load_ns = u128::from(c.link.transfer(1 << 10).0) * 1000;
        let s = route(&c, 5, 0, 1 << 10, &views, None);
        assert!(s.is_some() && s != Some(0), "spilled off home: {s:?}");
    }

    #[test]
    fn fault_pressure_repels_and_troubled_excludes() {
        let c = cfg(3, 9);
        let mut views = vec![ShardView::default(); 3];
        views[0].troubled = true; // never a candidate
        views[1].pressure = 50; // ~50 ms of repulsion
        let s = route(&c, 2, 0, 0, &views, None);
        assert_eq!(s, Some(2));
        views[2].troubled = true;
        assert_eq!(route(&c, 2, 0, 0, &views, Some(1)), None, "all closed");
    }

    #[test]
    fn slo_pressure_repels_and_exporting_excludes() {
        let c = cfg(3, 11);
        let mut views = vec![ShardView::default(); 3];
        // Home shard is drowning in SLO pressure (sheds + p99 overshoot):
        // new work is repelled even though its data lives there.
        views[0].slo_ns = u128::from(PRESSURE_NS) * 10_000;
        let s = route(&c, 4, 0, 1 << 10, &views, None);
        assert!(s.is_some() && s != Some(0), "repelled off home: {s:?}");
        // An overloaded-but-healthy shard exporting load accepts no
        // migrants, exactly like a quarantined one.
        views[1].exporting = true;
        views[2].troubled = true;
        assert_eq!(route(&c, 4, 0, 0, &views, Some(0)), None, "all closed");
    }

    #[test]
    fn tiebreaks_are_seed_deterministic() {
        let views = vec![ShardView::default(); 16];
        // Zero transfer bytes over a zero-latency link: every shard
        // scores identically, so only the seeded tiebreak decides.
        let tieable = |seed| {
            let mut c = cfg(16, seed);
            c.link.latency = northup_sim::SimDur::ZERO;
            c
        };
        let a: Vec<_> = (0..64)
            .map(|uid| route(&tieable(1), uid, 0, 0, &views, None))
            .collect();
        let b: Vec<_> = (0..64)
            .map(|uid| route(&tieable(1), uid, 0, 0, &views, None))
            .collect();
        let c: Vec<_> = (0..64)
            .map(|uid| route(&tieable(2), uid, 0, 0, &views, None))
            .collect();
        assert_eq!(a, b, "same seed ⇒ same placements");
        assert_ne!(a, c, "different seed ⇒ different tiebreaks");
        // And the tiebreak actually spreads jobs around.
        let distinct: std::collections::BTreeSet<_> = a.iter().collect();
        assert!(distinct.len() > 4, "spread: {distinct:?}");
    }

    #[test]
    fn cost_estimate_scales_with_remaining_chunks() {
        let w = JobWork::new(8).read(1 << 20).xfer(1 << 20);
        assert_eq!(cost_ns(&w, 8), 4 * cost_ns(&w, 2));
        assert_eq!(cost_ns(&w, 0), 0);
    }
}
