//! The fleet-wide report: per-job settlements, per-shard summaries,
//! migration records, latency percentiles, the capacity invariant, and
//! a hand-rolled aggregate JSON encoding whose bytes are the replay's
//! determinism witness.

use crate::config::{FleetConfig, FleetJob};
use crate::fleet::{Placement, TraceEntry};
use crate::router::mix64;
use northup_sched::{JobState, NodeBudgets, Priority, RejectReason, SchedReport};
use northup_sim::{SimDur, SimTime};

/// One cross-shard migration: a checkpointed job moved over the
/// inter-shard link and resumed elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Fleet-wide job uid.
    pub uid: u64,
    /// Source shard (the one that fenced a node).
    pub from: u32,
    /// Destination shard.
    pub to: u32,
    /// Virtual time the job failed/was rejected on the source.
    pub at: SimTime,
    /// First chunk to run on the destination (chunks `0..resumed_chunk`
    /// already completed elsewhere and are never re-run).
    pub resumed_chunk: u32,
    /// Bytes moved over the inter-shard link (un-staged input).
    pub bytes: u64,
    /// Modeled transfer time charged before the destination arrival.
    pub transfer: SimDur,
}

/// Final fleet-level settlement of one job.
#[derive(Debug, Clone)]
pub struct FleetJobOutcome {
    /// Fleet-wide uid (submission order).
    pub uid: u64,
    /// Submitter-chosen name.
    pub name: String,
    /// Terminal state on the job's final shard (`Rejected` for
    /// router-level rejections that never reached a shard).
    pub state: JobState,
    /// True when the router rejected the job outright (its gang
    /// reservation fits no shard whole).
    pub router_rejected: bool,
    /// The shard the job last resided on (its home for router
    /// rejections).
    pub shard: u32,
    /// Cross-shard migrations the job made.
    pub migrations: u32,
    /// Chunks completed across all shards the job visited.
    pub chunks_done: u32,
    /// Order-independent checksum over the distinct chunk indices that
    /// completed for this job, fleet-wide (see [`chunk_checksum`]).
    pub checksum: u64,
    /// True when the union of completed chunk indices across the job's
    /// shard path is exactly `0..chunks_done`, each exactly once — the
    /// exactly-once-across-migration witness.
    pub exactly_once: bool,
    /// Arrival→finish latency for `Done` jobs, measured from the
    /// *original* router arrival (migration transfers included).
    pub latency: Option<SimDur>,
    /// Why the job was turned away, when it was: the final shard's typed
    /// rejection reason, or `Infeasible` for router-level rejections
    /// (the gang reservation fits no shard whole).
    pub reject_reason: Option<RejectReason>,
}

/// One shard's slice of the replay, from its final (frozen) report.
#[derive(Debug, Clone)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u32,
    /// Trace entries the shard ended up with (migrants included).
    pub jobs: u64,
    /// Jobs `Done` on this shard.
    pub done: u64,
    /// Jobs `Failed` on this shard (migrated-away ones included).
    pub failed: u64,
    /// Jobs `Rejected` on this shard.
    pub rejected: u64,
    /// Jobs `Cancelled` on this shard.
    pub cancelled: u64,
    /// Jobs that migrated in from other shards.
    pub migrated_in: u64,
    /// Jobs that migrated out after a fence.
    pub migrated_out: u64,
    /// Faults injected on this shard.
    pub faults: u64,
    /// Nodes fenced on this shard.
    pub quarantines: u64,
    /// Fenced nodes probation restored on this shard.
    pub restores: u64,
    /// Scheduler events the shard's final run processed.
    pub events: u64,
    /// The shard's local makespan.
    pub makespan: SimDur,
    /// Σ per-node peak committed bytes.
    pub peak: u64,
    /// Σ per-node budget bytes.
    pub budget: u64,
    /// Every node's peak committed stayed within its budget.
    pub capacity_ok: bool,
    /// Jobs the shard's overload controller shed (zero when the per-shard
    /// scheduler runs without an SLO config).
    pub shed: u64,
}

/// Per-class completed-job latency percentiles.
#[derive(Debug, Clone, Copy)]
pub struct ClassLatency {
    /// The admission class.
    pub class: Priority,
    /// Completed jobs in the class.
    pub completed: u64,
    /// Median arrival→finish latency.
    pub p50: SimDur,
    /// 99th-percentile arrival→finish latency.
    pub p99: SimDur,
}

/// Everything [`crate::Fleet::run`] learned, fleet-wide.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Fleet seed the replay derives from.
    pub seed: u64,
    /// Shard count.
    pub shards: Vec<ShardSummary>,
    /// Final settlement per job, in uid order.
    pub outcomes: Vec<FleetJobOutcome>,
    /// Every cross-shard migration, in application order.
    pub migrations: Vec<MigrationRecord>,
    /// Latency percentiles per class (classes with completions only,
    /// highest priority first).
    pub per_class: Vec<ClassLatency>,
    /// The fleet capacity invariant: on every shard, every node's peak
    /// committed bytes stayed within its budget (so Σ shard budgets is
    /// never exceeded fleet-wide either).
    pub capacity_ok: bool,
    /// Σ budgets over all shards and nodes.
    pub fleet_budget: u64,
    /// Σ per-node peak committed bytes over all shards.
    pub fleet_peak: u64,
    /// Max shard makespan (migration transfers land inside destination
    /// arrivals, so they are covered).
    pub makespan: SimDur,
    /// Σ scheduler events across the shards' final runs.
    pub events: u64,
    /// Rounds the federation took to settle.
    pub rounds: u32,
    /// Order-sensitive digest over every job's settlement — the compact
    /// determinism witness (two same-seed replays must agree bit for
    /// bit).
    pub outcome_digest: u64,
}

/// Order-independent checksum over a job's completed chunk indices: the
/// wrapping sum of `mix64(mix64(uid · φ) ⊕ index)`. Equal for a
/// migrated run and a single-shard run iff both completed exactly the
/// same set of chunks — the cross-shard exactly-once witness the
/// proptests and the bench bin compare.
pub fn chunk_checksum(uid: u64, indices: impl IntoIterator<Item = u32>) -> u64 {
    let salt = mix64(uid.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    indices
        .into_iter()
        .fold(0u64, |acc, i| acc.wrapping_add(mix64(salt ^ u64::from(i))))
}

/// The run state [`build`] settles into a [`FleetReport`].
pub(crate) struct RunData<'a> {
    pub cfg: &'a FleetConfig,
    pub jobs: &'a [FleetJob],
    pub traces: &'a [Vec<TraceEntry>],
    pub path: &'a [Vec<Placement>],
    pub reports: &'a [Option<SchedReport>],
    pub migrations: Vec<MigrationRecord>,
    pub router_rejected: &'a [bool],
    pub migrations_of: &'a [u32],
    pub budgets: &'a NodeBudgets,
    pub rounds: u32,
}

/// Integer-index percentile of an ascending-sorted slice.
fn percentile(sorted: &[SimDur], pct: usize) -> SimDur {
    if sorted.is_empty() {
        return SimDur::ZERO;
    }
    sorted[(sorted.len() - 1) * pct / 100]
}

/// Stable code for the digest (JobState has no discriminant contract).
fn state_code(state: JobState) -> u64 {
    match state {
        JobState::Queued => 0,
        JobState::Admitted => 1,
        JobState::Running => 2,
        JobState::Preempted => 3,
        JobState::Done => 4,
        JobState::Failed => 5,
        JobState::Rejected => 6,
        JobState::Cancelled => 7,
    }
}

pub(crate) fn build(data: RunData) -> FleetReport {
    let n = data.cfg.shards;

    // Per-shard chunk indices by shard-local job position, one pass over
    // each chunk log (uids at 100k scale forbid per-job rescans).
    let mut chunks_by_pos: Vec<Vec<Vec<u32>>> = (0..n).map(|_| Vec::new()).collect();
    for (slot, report) in chunks_by_pos.iter_mut().zip(data.reports.iter()) {
        if let Some(r) = report {
            let mut by_pos: Vec<Vec<u32>> = vec![Vec::new(); r.jobs.len()];
            for c in &r.chunk_log {
                if let Some(v) = by_pos.get_mut(c.job.0 as usize) {
                    v.push(c.index);
                }
            }
            *slot = by_pos;
        }
    }

    let mut outcomes = Vec::with_capacity(data.jobs.len());
    for (uid, job) in data.jobs.iter().enumerate() {
        if data.router_rejected[uid] {
            outcomes.push(FleetJobOutcome {
                uid: uid as u64,
                name: job.name.clone(),
                state: JobState::Rejected,
                router_rejected: true,
                shard: job.home.min(n.saturating_sub(1) as u32),
                migrations: 0,
                chunks_done: 0,
                checksum: chunk_checksum(uid as u64, []),
                exactly_once: true,
                latency: None,
                reject_reason: Some(RejectReason::Infeasible),
            });
            continue;
        }
        let locs = &data.path[uid];
        let (state, chunks_done, finished_at, shard, reject_reason) = match locs.last() {
            Some(last) => match data.reports[last.shard]
                .as_ref()
                .and_then(|r| r.jobs.get(last.index))
            {
                Some(out) => (
                    out.state,
                    out.chunks_done,
                    out.finished_at,
                    last.shard,
                    out.reject_reason,
                ),
                None => (JobState::Rejected, 0, None, last.shard, None),
            },
            None => (JobState::Rejected, 0, None, 0, None),
        };
        let mut indices: Vec<u32> = Vec::new();
        for p in locs {
            if let Some(v) = chunks_by_pos[p.shard].get(p.index) {
                indices.extend_from_slice(v);
            }
        }
        indices.sort_unstable();
        let exactly_once = indices.len() == chunks_done as usize
            && indices
                .iter()
                .enumerate()
                .all(|(i, &idx)| idx as usize == i);
        let latency = match (state, finished_at) {
            (JobState::Done, Some(end)) => Some(end - job.arrival),
            _ => None,
        };
        outcomes.push(FleetJobOutcome {
            uid: uid as u64,
            name: job.name.clone(),
            state,
            router_rejected: false,
            shard: shard as u32,
            migrations: data.migrations_of[uid],
            chunks_done,
            checksum: chunk_checksum(uid as u64, indices.iter().copied()),
            exactly_once,
            latency,
            reject_reason,
        });
    }

    // Per-shard summaries from the final (frozen) reports.
    let budget_total: u64 = data
        .budgets
        .snapshot()
        .iter()
        .fold(0u64, |a, &b| a.saturating_add(b));
    let mut shards = Vec::with_capacity(n);
    for s in 0..n {
        let migrated_in = data.migrations.iter().filter(|m| m.to == s as u32).count() as u64;
        let migrated_out = data
            .migrations
            .iter()
            .filter(|m| m.from == s as u32)
            .count() as u64;
        let summary = match &data.reports[s] {
            Some(r) => {
                let peak = r
                    .max_committed
                    .iter()
                    .fold(0u64, |a, &b| a.saturating_add(b));
                let capacity_ok = r
                    .max_committed_pairs()
                    .all(|(node, peak)| peak <= data.budgets.get(node));
                ShardSummary {
                    shard: s as u32,
                    jobs: data.traces[s].len() as u64,
                    done: r.count(JobState::Done) as u64,
                    failed: r.count(JobState::Failed) as u64,
                    rejected: r.count(JobState::Rejected) as u64,
                    cancelled: r.count(JobState::Cancelled) as u64,
                    migrated_in,
                    migrated_out,
                    faults: r.fault_log.len() as u64,
                    quarantines: r.quarantine_log.len() as u64,
                    restores: r.restore_log.len() as u64,
                    events: r.events,
                    makespan: r.makespan,
                    peak,
                    budget: budget_total,
                    capacity_ok,
                    shed: r.shed_log.len() as u64,
                }
            }
            None => ShardSummary {
                shard: s as u32,
                jobs: 0,
                done: 0,
                failed: 0,
                rejected: 0,
                cancelled: 0,
                migrated_in,
                migrated_out,
                faults: 0,
                quarantines: 0,
                restores: 0,
                events: 0,
                makespan: SimDur::ZERO,
                peak: 0,
                budget: budget_total,
                capacity_ok: true,
                shed: 0,
            },
        };
        shards.push(summary);
    }

    // Per-class latency percentiles over completed jobs, fleet-wide.
    let mut per_class = Vec::new();
    for class in Priority::ALL {
        let mut lats: Vec<SimDur> = outcomes
            .iter()
            .filter(|o| data.jobs[o.uid as usize].priority == class)
            .filter_map(|o| o.latency)
            .collect();
        if lats.is_empty() {
            continue;
        }
        lats.sort_unstable();
        per_class.push(ClassLatency {
            class,
            completed: lats.len() as u64,
            p50: percentile(&lats, 50),
            p99: percentile(&lats, 99),
        });
    }

    let capacity_ok = shards.iter().all(|s| s.capacity_ok);
    let fleet_budget = budget_total.saturating_mul(n as u64);
    let fleet_peak = shards.iter().fold(0u64, |a, s| a.saturating_add(s.peak));
    let makespan = shards
        .iter()
        .map(|s| s.makespan)
        .fold(SimDur::ZERO, |a, m| if m > a { m } else { a });
    let events = shards.iter().map(|s| s.events).sum();

    let mut digest = mix64(data.cfg.seed);
    for o in &outcomes {
        digest = mix64(digest ^ o.uid);
        digest = mix64(
            digest
                ^ state_code(o.state)
                ^ (u64::from(o.shard) << 8)
                ^ (u64::from(o.chunks_done) << 24)
                ^ (u64::from(o.migrations) << 56),
        );
        digest = mix64(digest ^ o.checksum);
    }

    FleetReport {
        seed: data.cfg.seed,
        shards,
        outcomes,
        migrations: data.migrations,
        per_class,
        capacity_ok,
        fleet_budget,
        fleet_peak,
        makespan,
        events,
        rounds: data.rounds,
        outcome_digest: digest,
    }
}

impl FleetReport {
    /// Count of jobs that settled in `state`.
    pub fn count(&self, state: JobState) -> usize {
        self.outcomes.iter().filter(|o| o.state == state).count()
    }

    /// Jobs the router rejected outright (never reached a shard).
    pub fn router_rejected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.router_rejected).count()
    }

    /// Jobs whose final settlement carries the given typed rejection
    /// reason (router rejections count as `Infeasible`).
    pub fn rejected_for(&self, reason: RejectReason) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.reject_reason == Some(reason))
            .count()
    }

    /// Jobs shed by overload controllers fleet-wide (Σ shard shed logs).
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// True when every job's fleet-wide chunk union is exactly its
    /// completed prefix — no chunk ran twice or was lost across
    /// migrations.
    pub fn exactly_once(&self) -> bool {
        self.outcomes.iter().all(|o| o.exactly_once)
    }

    /// One settlement record.
    pub fn outcome(&self, uid: u64) -> Option<&FleetJobOutcome> {
        self.outcomes.get(uid as usize)
    }

    /// One-line human summary for drivers.
    pub fn summary(&self) -> String {
        format!(
            "{} jobs over {} shards: {} done, {} failed, {} rejected ({} at router) | \
             {} migrations in {} rounds | {} quarantines, {} restores | makespan {:.3} s | \
             capacity {} | digest {:016x}",
            self.outcomes.len(),
            self.shards.len(),
            self.count(JobState::Done),
            self.count(JobState::Failed),
            self.count(JobState::Rejected),
            self.router_rejected(),
            self.migrations.len(),
            self.rounds,
            self.shards.iter().map(|s| s.quarantines).sum::<u64>(),
            self.shards.iter().map(|s| s.restores).sum::<u64>(),
            self.makespan.as_secs_f64(),
            if self.capacity_ok { "ok" } else { "VIOLATED" },
            self.outcome_digest,
        )
    }

    /// Aggregate JSON encoding (no per-job entries — at 10^5-job scale
    /// the digest stands in for them). Byte-identical across same-seed
    /// replays: the determinism witness the CI gate compares.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n  \"schema\": \"northup-fleet-report-v1\",\n");
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"shards\": {},\n", self.shards.len()));
        s.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        s.push_str(&format!(
            "  \"jobs\": {{\"total\": {}, \"done\": {}, \"failed\": {}, \"rejected\": {}, \
             \"router_rejected\": {}, \"cancelled\": {}}},\n",
            self.outcomes.len(),
            self.count(JobState::Done),
            self.count(JobState::Failed),
            self.count(JobState::Rejected),
            self.router_rejected(),
            self.count(JobState::Cancelled),
        ));
        s.push_str("  \"reject_reasons\": {");
        for (i, reason) in RejectReason::ALL.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "\"{}\": {}",
                reason.label(),
                self.rejected_for(*reason)
            ));
        }
        s.push_str("},\n");
        s.push_str(&format!("  \"shed\": {},\n", self.shed()));
        s.push_str(&format!(
            "  \"capacity\": {{\"ok\": {}, \"budget\": {}, \"peak\": {}}},\n",
            self.capacity_ok, self.fleet_budget, self.fleet_peak,
        ));
        s.push_str(&format!(
            "  \"exactly_once\": {},\n  \"makespan_s\": {:.9},\n  \"events\": {},\n",
            self.exactly_once(),
            self.makespan.as_secs_f64(),
            self.events,
        ));
        s.push_str("  \"per_class\": [");
        for (i, c) in self.per_class.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"class\": \"{}\", \"completed\": {}, \"p50_s\": {:.9}, \"p99_s\": {:.9}}}",
                class_name(c.class),
                c.completed,
                c.p50.as_secs_f64(),
                c.p99.as_secs_f64(),
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"migrations\": {{\"count\": {}, \"bytes\": {}, \"records\": [",
            self.migrations.len(),
            self.migrations
                .iter()
                .fold(0u64, |a, m| a.saturating_add(m.bytes)),
        ));
        for (i, m) in self.migrations.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"uid\": {}, \"from\": {}, \"to\": {}, \"at_s\": {:.9}, \"chunk\": {}, \
                 \"bytes\": {}, \"transfer_s\": {:.9}}}",
                m.uid,
                m.from,
                m.to,
                m.at.as_secs_f64(),
                m.resumed_chunk,
                m.bytes,
                m.transfer.as_secs_f64(),
            ));
        }
        s.push_str("]},\n");
        s.push_str("  \"per_shard\": [\n");
        for (i, sh) in self.shards.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"shard\": {}, \"jobs\": {}, \"done\": {}, \"failed\": {}, \
                 \"rejected\": {}, \"migrated_in\": {}, \"migrated_out\": {}, \
                 \"faults\": {}, \"quarantines\": {}, \"restores\": {}, \"events\": {}, \
                 \"makespan_s\": {:.9}, \"peak\": {}, \"capacity_ok\": {}, \"shed\": {}}}{}\n",
                sh.shard,
                sh.jobs,
                sh.done,
                sh.failed,
                sh.rejected,
                sh.migrated_in,
                sh.migrated_out,
                sh.faults,
                sh.quarantines,
                sh.restores,
                sh.events,
                sh.makespan.as_secs_f64(),
                sh.peak,
                sh.capacity_ok,
                sh.shed,
                if i + 1 < self.shards.len() { "," } else { "" },
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"digest\": \"{:016x}\"\n}}\n",
            self.outcome_digest
        ));
        s
    }
}

/// Stable lower-case class names for the JSON encoding.
fn class_name(p: Priority) -> &'static str {
    match p {
        Priority::Batch => "batch",
        Priority::Normal => "normal",
        Priority::Interactive => "interactive",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_checksum_is_order_independent_and_uid_salted() {
        let a = chunk_checksum(3, [0, 1, 2, 3]);
        let b = chunk_checksum(3, [3, 1, 0, 2]);
        assert_eq!(a, b, "order independent");
        assert_ne!(a, chunk_checksum(4, [0, 1, 2, 3]), "uid salted");
        assert_ne!(a, chunk_checksum(3, [0, 1, 2]), "set sensitive");
        assert_eq!(chunk_checksum(9, []), 0);
    }

    #[test]
    fn percentiles_use_integer_indexing() {
        let lats: Vec<SimDur> = (1..=100).map(SimDur::from_millis).collect();
        assert_eq!(percentile(&lats, 50), SimDur::from_millis(50));
        assert_eq!(percentile(&lats, 99), SimDur::from_millis(99));
    }

    #[test]
    fn percentile_edge_cases_never_panic_or_lie() {
        // Empty: a defined zero, not a panic.
        assert_eq!(percentile(&[], 0), SimDur::ZERO);
        assert_eq!(percentile(&[], 99), SimDur::ZERO);
        // Single sample: every percentile is that sample.
        let one = [SimDur::from_millis(7)];
        for pct in [0, 1, 50, 99, 100] {
            assert_eq!(percentile(&one, pct), SimDur::from_millis(7));
        }
        // All-equal: every percentile is the common value.
        let same = [SimDur::from_micros(250); 9];
        for pct in [0, 50, 99, 100] {
            assert_eq!(percentile(&same, pct), SimDur::from_micros(250));
        }
        // Integer indexing: p99 of three samples is the median —
        // `sorted[(3-1)*99/100] = sorted[1]` — and only p100 reaches
        // the max (the same convention as `northup_sched::percentile_of`).
        let three = [
            SimDur::from_millis(1),
            SimDur::from_millis(5),
            SimDur::from_millis(9),
        ];
        assert_eq!(percentile(&three, 99), SimDur::from_millis(5));
        assert_eq!(percentile(&three, 100), SimDur::from_millis(9));
    }
}
