//! # northup-fleet — a federated shard router over N Northup trees
//!
//! One `northup-sched` instance arbitrates many jobs on *one* tree;
//! this crate federates **N** trees ("shards") behind a deterministic
//! router, the platform the ROADMAP's million-user directions stand on
//! (DESIGN.md §11).
//!
//! * [`config`] — [`FleetConfig`] (shard count, fleet seed, shard tree,
//!   per-shard scheduler knobs, the modeled [`InterShardLink`], router
//!   weights, migration bounds) and [`FleetJob`] (a shard-agnostic spec
//!   plus its data-home shard).
//! * [`router`] — the pure scoring function: data locality (input→shard
//!   affinity), current shard load, the same sub-threshold
//!   fault-pressure signal fault-aware placement uses inside a shard,
//!   and SLO pressure (shed jobs plus guaranteed-class p99 overshoot,
//!   when per-shard overload control is on), with a seeded splitmix64
//!   tiebreak. Placement is gang-style all-or-nothing: a job's whole
//!   reservation fits one shard's budget vector or the router rejects
//!   it.
//! * [`fleet`] — [`Fleet`]: instantiate N independent `JobScheduler`s
//!   (each with budgets and a `FaultPlan` reseeded from the fleet
//!   seed), run the routed traces, and **migrate** jobs off shards that
//!   fence a node — resuming from their chunk checkpoints
//!   (`JobSpec::resume_from`) after a modeled inter-shard transfer —
//!   over bounded re-run rounds.
//! * [`report`] — [`FleetReport`]: per-job settlements with fleet-wide
//!   chunk checksums (the exactly-once-across-migration witness),
//!   per-shard summaries, migration records, per-class p50/p99
//!   latencies, the fleet capacity invariant, and a byte-deterministic
//!   aggregate JSON encoding.
//!
//! Everything is virtual-time and seeded: same [`FleetConfig`] + same
//! trace ⇒ the same placements, faults, migrations, and report bytes.
//!
//! ## Example
//!
//! ```
//! use northup_fleet::{Fleet, FleetConfig, FleetJob};
//! use northup_sched::{staging_reservation, JobWork};
//! use northup_sim::SimDur;
//!
//! let cfg = FleetConfig::preset(4, 7);
//! let res = staging_reservation(&cfg.tree, 64 << 20);
//! let mut fleet = Fleet::new(cfg).unwrap();
//! for i in 0..32 {
//!     let work = JobWork::new(2).read(8 << 20).compute(SimDur::from_millis(1));
//!     fleet.submit(FleetJob::new(format!("j{i}"), res.clone(), work).home(i % 4));
//! }
//! let report = fleet.run().unwrap();
//! assert_eq!(report.count(northup_sched::JobState::Done), 32);
//! assert!(report.capacity_ok && report.exactly_once());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod error;
pub mod fleet;
pub mod report;
pub mod router;

pub use config::{FleetConfig, FleetJob, InterShardLink, RouterWeights};
pub use error::FleetError;
pub use fleet::Fleet;
pub use report::{
    chunk_checksum, ClassLatency, FleetJobOutcome, FleetReport, MigrationRecord, ShardSummary,
};
pub use router::PRESSURE_NS;
