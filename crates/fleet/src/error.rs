//! Typed fleet errors.

use northup_sched::SchedError;

/// Everything that can go wrong running a federation.
#[derive(Debug)]
pub enum FleetError {
    /// The configuration declares zero shards.
    NoShards,
    /// The shard tree has no leaf to place work on.
    NoLeaf,
    /// A shard's scheduler failed (propagated unchanged).
    Sched(SchedError),
}

impl std::fmt::Display for FleetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetError::NoShards => write!(f, "fleet config declares zero shards"),
            FleetError::NoLeaf => write!(f, "shard tree has no leaf to place work on"),
            FleetError::Sched(e) => write!(f, "shard scheduler error: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Sched(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SchedError> for FleetError {
    fn from(e: SchedError) -> Self {
        FleetError::Sched(e)
    }
}
