//! The federation engine: route, run shards, migrate, settle.
//!
//! [`Fleet::run`] is a bounded multi-round replay over N independent
//! [`JobScheduler`]s:
//!
//! 1. **Route** every job to one shard with the pure scoring function
//!    of [`crate::router`] (gang-style all-or-nothing: the whole
//!    reservation fits a single shard or the job is router-rejected).
//! 2. **Run** every shard that received work — each a deterministic
//!    virtual-time co-simulation with its own reseeded fault plan.
//! 3. **Migrate**: on shards that fenced a node, jobs that ended
//!    `Failed` or `Rejected` move to an untroubled shard, resuming from
//!    their chunk checkpoint (`JobSpec::resume_from`) after a modeled
//!    inter-shard transfer. Shards whose overload controller *shed*
//!    work export exactly those shed jobs the same way — overloaded but
//!    healthy shards offload instead of burning the work. Only the
//!    receiving shards re-run.
//! 4. Repeat until no migrations remain or `max_rounds` passes.
//!
//! The protocol's exactly-once guarantee rests on one rule: **a shard
//! that has ever exported work — by fencing a node or by shedding under
//! overload — accepts no migrants**. Jobs only leave such shards and
//! only enter clean ones, so once a job's chunks 0..k have run
//! somewhere, that shard's trace — and therefore its bit-deterministic
//! replay — never changes again, and the remnant `k..n` runs exactly
//! once elsewhere (DESIGN.md §11).

use crate::config::{FleetConfig, FleetJob};
use crate::error::FleetError;
use crate::report::{self, FleetReport, MigrationRecord};
use crate::router::{cost_ns, mix64, route, ShardView, PRESSURE_NS};
use northup_sched::{
    JobScheduler, JobSpec, JobState, NodeBudgets, Priority, RejectReason, SchedReport,
};
use northup_sim::SimTime;
use std::collections::BTreeSet;

/// One entry of a shard's submission trace: the fleet-wide uid plus the
/// shard-local spec (with `start_chunk` set for migrated remnants).
#[derive(Debug, Clone)]
pub(crate) struct TraceEntry {
    pub uid: u64,
    pub spec: JobSpec,
}

/// One stop on a job's migration path: which shard, and at which
/// position in that shard's trace (= its shard-local `JobId`).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Placement {
    pub shard: usize,
    pub index: usize,
}

/// A job that must move: its latest shard failed or rejected it after a
/// node fence.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    uid: u64,
    from: usize,
    chunks_done: u32,
    at: SimTime,
}

/// A federation of N Northup trees behind one router.
///
/// Batch model, like [`JobScheduler`]: submit every job, then [`run`]
/// consumes the fleet and returns the [`FleetReport`].
///
/// [`run`]: Fleet::run
#[derive(Debug)]
pub struct Fleet {
    cfg: FleetConfig,
    jobs: Vec<FleetJob>,
}

impl Fleet {
    /// A fleet with no jobs yet. Fails on a zero-shard config or a tree
    /// with no leaves.
    pub fn new(cfg: FleetConfig) -> Result<Self, FleetError> {
        if cfg.shards == 0 {
            return Err(FleetError::NoShards);
        }
        if cfg.tree.leaves().next().is_none() {
            return Err(FleetError::NoLeaf);
        }
        Ok(Fleet {
            cfg,
            jobs: Vec::new(),
        })
    }

    /// Submit a job; returns its fleet-wide uid (submission order).
    pub fn submit(&mut self, job: FleetJob) -> u64 {
        let uid = self.jobs.len() as u64;
        self.jobs.push(job);
        uid
    }

    /// Jobs submitted so far.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing has been submitted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Route, run, migrate, settle; returns the fleet-wide report.
    pub fn run(self) -> Result<FleetReport, FleetError> {
        let n = self.cfg.shards;
        let budgets = NodeBudgets::from_tree(&self.cfg.tree, self.cfg.sched.headroom);
        let mut views = vec![ShardView::default(); n];
        let mut traces: Vec<Vec<TraceEntry>> = (0..n).map(|_| Vec::new()).collect();
        let mut path: Vec<Vec<Placement>> = self.jobs.iter().map(|_| Vec::new()).collect();
        let mut router_rejected = vec![false; self.jobs.len()];
        let mut migrations_of = vec![0u32; self.jobs.len()];
        let mut migrations: Vec<MigrationRecord> = Vec::new();

        // Initial routing, in uid order. The feasibility check is the
        // gang-style all-or-nothing reservation: shards are homogeneous,
        // so "fits no shard whole" is one comparison against the shared
        // budget vector.
        for (uid, job) in self.jobs.iter().enumerate() {
            if !budgets.feasible(&job.reservation) {
                router_rejected[uid] = true;
                continue;
            }
            let home = (job.home as usize).min(n - 1);
            let Some(s) = route(&self.cfg, uid as u64, home, job.input_bytes(), &views, None)
            else {
                // Unreachable while at least one shard is untroubled,
                // but a closed fleet rejects rather than errors.
                router_rejected[uid] = true;
                continue;
            };
            views[s].load_ns += cost_ns(&job.work, job.work.chunks);
            path[uid].push(Placement {
                shard: s,
                index: traces[s].len(),
            });
            traces[s].push(TraceEntry {
                uid: uid as u64,
                spec: job.to_spec(),
            });
        }

        let mut reports: Vec<Option<SchedReport>> = (0..n).map(|_| None).collect();
        let mut dirty: BTreeSet<usize> = (0..n).filter(|&s| !traces[s].is_empty()).collect();
        let mut rounds = 0u32;

        while !dirty.is_empty() {
            rounds += 1;
            for &s in &dirty {
                reports[s] = Some(self.run_shard(s, &traces[s])?);
            }
            dirty.clear();
            for (s, view) in views.iter_mut().enumerate() {
                if let Some(r) = &reports[s] {
                    view.pressure = r
                        .node_fault_pressure()
                        .values()
                        .map(|&v| u64::from(v))
                        .sum();
                    view.troubled = !r.quarantine_log.is_empty();
                    // SLO pressure: sheds repel like faults, and p99
                    // overshoot of the guaranteed class repels in plain
                    // nanoseconds. A shard that shed work is exporting —
                    // healthy or not, it accepts no migrants (frozen
                    // trace ⇒ exactly-once, same rule as quarantine).
                    view.slo_ns = match &self.cfg.sched.slo {
                        Some(slo) => {
                            let p99 = r.class_p99(Priority::Interactive);
                            let over = p99.0.saturating_sub(slo.targets[0].0);
                            u128::from(r.shed_log.len() as u64) * u128::from(PRESSURE_NS)
                                + u128::from(over)
                        }
                        None => 0,
                    };
                    view.exporting |= !r.shed_log.is_empty();
                }
            }
            if rounds > self.cfg.max_rounds {
                break;
            }
            let candidates = self.find_candidates(&views, &traces, &path, &reports);
            for c in candidates {
                if migrations_of[c.uid as usize] >= self.cfg.max_migrations {
                    continue;
                }
                let job = &self.jobs[c.uid as usize];
                let remaining = job.work.chunks.saturating_sub(c.chunks_done);
                let bytes = job.work.read_bytes.saturating_mul(u64::from(remaining));
                let home = (job.home as usize).min(n - 1);
                let Some(target) = route(&self.cfg, c.uid, home, bytes, &views, Some(c.from))
                else {
                    continue; // nowhere untroubled: the failure is final
                };
                let transfer = self.cfg.link.transfer(bytes);
                let spec = job
                    .to_spec()
                    .resume_from(c.chunks_done)
                    .arrival(c.at + transfer);
                views[target].load_ns += cost_ns(&job.work, remaining);
                path[c.uid as usize].push(Placement {
                    shard: target,
                    index: traces[target].len(),
                });
                traces[target].push(TraceEntry { uid: c.uid, spec });
                migrations_of[c.uid as usize] += 1;
                migrations.push(MigrationRecord {
                    uid: c.uid,
                    from: c.from as u32,
                    to: target as u32,
                    at: c.at,
                    resumed_chunk: c.chunks_done,
                    bytes,
                    transfer,
                });
                dirty.insert(target);
            }
        }

        Ok(report::build(report::RunData {
            cfg: &self.cfg,
            jobs: &self.jobs,
            traces: &traces,
            path: &path,
            reports: &reports,
            migrations,
            router_rejected: &router_rejected,
            migrations_of: &migrations_of,
            budgets: &budgets,
            rounds,
        }))
    }

    /// The migration set, in uid order. A *troubled* shard (fenced a
    /// node) exports every job whose latest outcome there is `Failed`
    /// or `Rejected`; an *exporting* shard (healthy but overloaded —
    /// its controller shed work) exports only the jobs it shed, so
    /// overload spills sideways instead of burning the work. Shed jobs
    /// whose tenant was over quota stay rejected — migrating them would
    /// launder the quota debt onto another shard.
    fn find_candidates(
        &self,
        views: &[ShardView],
        traces: &[Vec<TraceEntry>],
        path: &[Vec<Placement>],
        reports: &[Option<SchedReport>],
    ) -> Vec<Candidate> {
        let mut candidates = Vec::new();
        for (s, view) in views.iter().enumerate() {
            if !view.troubled && !view.exporting {
                continue;
            }
            let Some(report) = &reports[s] else {
                continue;
            };
            for (idx, entry) in traces[s].iter().enumerate() {
                let current = path[entry.uid as usize].last().map(|p| (p.shard, p.index));
                if current != Some((s, idx)) {
                    continue; // already moved on in an earlier round
                }
                let Some(out) = report.jobs.get(idx) else {
                    continue;
                };
                let exports = if view.troubled {
                    matches!(out.state, JobState::Failed | JobState::Rejected)
                } else {
                    out.reject_reason == Some(RejectReason::Shed)
                };
                if !exports {
                    continue;
                }
                candidates.push(Candidate {
                    uid: entry.uid,
                    from: s,
                    chunks_done: out.chunks_done,
                    at: out.finished_at.unwrap_or(out.arrival),
                });
            }
        }
        candidates.sort_by_key(|c| c.uid);
        candidates
    }

    /// One shard's deterministic co-simulation over its current trace.
    /// The fault plan is the fleet template reseeded per shard, so every
    /// shard draws an independent stream from the one fleet seed.
    fn run_shard(&self, s: usize, trace: &[TraceEntry]) -> Result<SchedReport, FleetError> {
        let mut cfg = self.cfg.sched.clone();
        cfg.fault_plan = match self.cfg.shard_overrides.get(&s) {
            Some(p) => Some(p.clone()),
            None => cfg
                .fault_plan
                .map(|p| p.reseeded(mix64(self.cfg.seed ^ mix64(s as u64 + 1)))),
        };
        let mut sched = JobScheduler::new(self.cfg.tree.clone(), cfg);
        for e in trace {
            sched.submit(e.spec.clone());
        }
        Ok(sched.run()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::chunk_checksum;
    use northup::{FaultKind, FaultPlan};
    use northup_sched::{staging_reservation, JobWork, Priority, Reservation};
    use northup_sim::SimDur;

    fn light_job(cfg: &FleetConfig, i: u64) -> FleetJob {
        let res = staging_reservation(&cfg.tree, 32 << 20);
        let work = JobWork::new(2)
            .read(4 << 20)
            .xfer(4 << 20)
            .compute(SimDur::from_millis(1));
        FleetJob::new(format!("j{i}"), res, work)
            .home((i % cfg.shards as u64) as u32)
            .priority(match i % 3 {
                0 => Priority::Batch,
                1 => Priority::Normal,
                _ => Priority::Interactive,
            })
            .arrival(northup_sim::SimTime::from_secs_f64(0.0005 * i as f64))
    }

    #[test]
    fn fault_free_fleet_completes_and_replays_bit_identically() {
        let build = || {
            let cfg = FleetConfig::preset(4, 9);
            let mut fleet = Fleet::new(cfg.clone()).expect("4 shards");
            for i in 0..24 {
                fleet.submit(light_job(&cfg, i));
            }
            fleet.run().expect("fleet run")
        };
        let report = build();
        assert_eq!(report.count(JobState::Done), 24, "{}", report.summary());
        assert!(report.migrations.is_empty(), "no faults, no migrations");
        assert!(report.capacity_ok);
        assert!(report.exactly_once());
        assert_eq!(report.rounds, 1);
        assert!(!report.per_class.is_empty());
        assert!(report.events > 0);
        // Home gravity: with light load every job lands on its data.
        for o in &report.outcomes {
            assert_eq!(o.shard, o.uid as u32 % 4, "{} strayed from home", o.name);
        }
        let again = build();
        assert_eq!(report.outcome_digest, again.outcome_digest);
        assert_eq!(report.to_json(), again.to_json(), "byte-identical replay");
    }

    #[test]
    fn scripted_quarantine_migrates_jobs_to_surviving_shards() {
        let build = || {
            let mut cfg = FleetConfig::preset(3, 5);
            cfg.sched.quarantine_after = 2;
            cfg.sched.probation = None;
            // The staging node every reservation targets (first child of
            // the root) dies early on shard 0 only.
            let staging = cfg.tree.children(cfg.tree.root())[0];
            cfg.shard_overrides.insert(
                0,
                FaultPlan::new(1)
                    .script(staging, 0, FaultKind::Persistent)
                    .script(staging, 1, FaultKind::Persistent),
            );
            let quarter = cfg.tree.node(staging).mem.capacity / 4;
            let mut fleet = Fleet::new(cfg.clone()).expect("3 shards");
            for i in 0..10 {
                let res = staging_reservation(&cfg.tree, quarter);
                let work = JobWork::new(3)
                    .read(8 << 20)
                    .xfer(8 << 20)
                    .compute(SimDur::from_millis(2));
                // Everything homed on the doomed shard.
                fleet.submit(FleetJob::new(format!("j{i}"), res, work).home(0));
            }
            fleet.run().expect("fleet run")
        };
        let report = build();
        assert!(
            !report.migrations.is_empty(),
            "quarantine must displace jobs: {}",
            report.summary()
        );
        assert!(report.shards[0].quarantines >= 1);
        for m in &report.migrations {
            assert_eq!(m.from, 0, "only the fenced shard exports");
            assert!(m.to != 0);
            assert!(m.transfer > SimDur::ZERO);
        }
        // Every migrated job settled Done elsewhere with its full chunk
        // set intact — the exactly-once witness.
        for m in &report.migrations {
            let o = report.outcome(m.uid).expect("outcome");
            assert_eq!(o.state, JobState::Done, "{} after migration", o.name);
            assert!(o.migrations >= 1);
            assert!(o.exactly_once);
            assert_eq!(o.checksum, chunk_checksum(m.uid, 0..o.chunks_done));
        }
        assert_eq!(report.count(JobState::Done), 10, "{}", report.summary());
        assert!(report.capacity_ok && report.exactly_once());
        assert!(report.rounds >= 2);
        let again = build();
        assert_eq!(report.to_json(), again.to_json(), "byte-identical chaos");
    }

    #[test]
    fn gang_reservations_that_fit_no_shard_are_router_rejected() {
        let cfg = FleetConfig::preset(2, 3);
        let root = cfg.tree.root();
        let huge = cfg.tree.node(root).mem.capacity.saturating_mul(2);
        let mut fleet = Fleet::new(cfg.clone()).expect("2 shards");
        let giant = fleet.submit(FleetJob::new(
            "giant",
            Reservation::new().with(root, huge),
            JobWork::new(1).read(1 << 20),
        ));
        let fine = fleet.submit(light_job(&cfg, 1));
        let report = fleet.run().expect("fleet run");
        let g = report.outcome(giant).expect("giant outcome");
        assert_eq!(g.state, JobState::Rejected);
        assert!(g.router_rejected, "never reached a shard");
        assert_eq!(
            report.outcome(fine).expect("fine outcome").state,
            JobState::Done
        );
        assert_eq!(report.router_rejected(), 1);
    }

    #[test]
    fn empty_and_invalid_fleets_are_handled() {
        assert!(matches!(
            Fleet::new(FleetConfig {
                shards: 0,
                ..FleetConfig::preset(1, 0)
            }),
            Err(FleetError::NoShards)
        ));
        let fleet = Fleet::new(FleetConfig::preset(2, 0)).expect("2 shards");
        assert!(fleet.is_empty());
        let report = fleet.run().expect("empty run");
        assert_eq!(report.outcomes.len(), 0);
        assert_eq!(report.rounds, 0);
        assert!(report.capacity_ok);
    }
}
