//! Property tests for the federation invariants (DESIGN.md §11):
//!
//! (a) the router is deterministic — the same fleet seed and trace
//!     produce byte-identical reports,
//! (b) the fleet capacity invariant survives scripted quarantines and
//!     the migrations they force: no shard's committed peak ever
//!     exceeds its budget, and every chunk fleet-wide runs exactly
//!     once,
//! (c) a job that migrated across shards settles with exactly the
//!     chunk checksum a clean single-shard run of the same trace
//!     produces — migration never re-runs or skips a chunk.

use northup::{FaultKind, FaultPlan};
use northup_fleet::{Fleet, FleetConfig, FleetJob, FleetReport};
use northup_sched::{staging_reservation, JobState, JobWork, Priority};
use northup_sim::{SimDur, SimTime};
use proptest::prelude::*;

/// (staging fraction, chunks, home shard, priority index, arrival µs).
type JobTuple = (f64, u32, u32, usize, u64);

fn job_strategy() -> impl Strategy<Value = JobTuple> {
    (0.05f64..0.45, 1u32..4, 0u32..8, 0usize..3, 0u64..20_000)
}

/// Build and run a fleet over `trace`. With `chaos`, shard 0 is
/// scripted to fence its staging node at the first two fault decisions
/// (`quarantine_after = 2`, placement steering off so the second
/// ordinal actually fires, no probation so the fence is permanent).
fn run(trace: &[JobTuple], shards: usize, seed: u64, chaos: bool) -> FleetReport {
    let mut cfg = FleetConfig::preset(shards, seed);
    let staging = cfg.tree.children(cfg.tree.root())[0];
    if chaos {
        cfg.sched.quarantine_after = 2;
        cfg.sched.fault_aware_placement = false;
        cfg.sched.probation = None;
        cfg.shard_overrides.insert(
            0,
            FaultPlan::new(seed)
                .script(staging, 0, FaultKind::Persistent)
                .script(staging, 1, FaultKind::Persistent),
        );
    }
    let cap = cfg.tree.node(staging).mem.capacity;
    let tree = cfg.tree.clone();
    let mut fleet = Fleet::new(cfg).expect("valid fleet config");
    for (i, &(frac, chunks, home, prio, at_us)) in trace.iter().enumerate() {
        let res = staging_reservation(&tree, (cap as f64 * frac) as u64);
        let work = JobWork::new(chunks)
            .read(4 << 20)
            .xfer(4 << 20)
            .compute(SimDur::from_micros(800));
        fleet.submit(
            FleetJob::new(format!("p{i}"), res, work)
                .home(home % shards as u32)
                .priority(Priority::ALL[prio])
                .arrival(SimTime::from_secs_f64(at_us as f64 * 1e-6)),
        );
    }
    fleet.run().expect("fleet run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn same_seed_same_placement(
        trace in proptest::collection::vec(job_strategy(), 1..32),
        shards in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let a = run(&trace, shards, seed, true);
        let b = run(&trace, shards, seed, true);
        prop_assert_eq!(a.to_json(), b.to_json(), "same seed must replay bit-identically");
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            prop_assert_eq!(x.shard, y.shard);
            prop_assert_eq!(x.checksum, y.checksum);
        }
    }

    #[test]
    fn capacity_invariant_survives_quarantine_and_migration(
        trace in proptest::collection::vec(job_strategy(), 1..40),
        shards in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let report = run(&trace, shards, seed, true);
        prop_assert!(report.capacity_ok, "committed peak exceeded a shard budget");
        prop_assert!(report.fleet_peak <= report.fleet_budget);
        prop_assert!(report.exactly_once(), "a chunk ran twice or was skipped");
        for o in &report.outcomes {
            let terminal = matches!(
                o.state,
                JobState::Done | JobState::Failed | JobState::Rejected | JobState::Cancelled
            );
            prop_assert!(terminal, "job {} left in {:?}", o.uid, o.state);
        }
    }

    #[test]
    fn migrated_jobs_match_the_single_shard_checksum(
        trace in proptest::collection::vec(job_strategy(), 4..32),
        shards in 2usize..5,
        seed in 0u64..1_000,
    ) {
        let fleet = run(&trace, shards, seed, true);
        let single = run(&trace, 1, seed, false);
        for o in &fleet.outcomes {
            if o.state != JobState::Done {
                continue;
            }
            prop_assert!(o.exactly_once, "job {} chunk set has gaps or repeats", o.uid);
            let alone = single.outcome(o.uid).expect("same uid space");
            if alone.state == JobState::Done {
                prop_assert_eq!(
                    o.checksum,
                    alone.checksum,
                    "job {} (migrations {}) drifted from its single-shard checksum",
                    o.uid,
                    o.migrations
                );
            }
        }
    }
}
