//! HotSpot-2D thermal stencil (paper §IV-B, Rodinia's hotspot).
//!
//! Each step updates every cell of a temperature grid from its four
//! neighbors and a per-cell power input:
//!
//! ```text
//! T'(x,y) = T + step/cap * ( P(x,y)
//!           + (T(x+1,y) + T(x-1,y) - 2T) / Rx
//!           + (T(x,y+1) + T(x,y-1) - 2T) / Ry
//!           + (Tamb - T) / Rz )
//! ```
//!
//! Grid edges clamp (a cell's missing neighbor is itself), as in Rodinia.
//!
//! Out-of-core execution processes the grid in blocks. Each block is
//! extracted *with a halo* of width `h` (the paper's packed border vectors,
//! Fig. 4, generalized to width > 1) and the kernel advances `steps <= h`
//! time steps locally, shrinking the valid region by one ring per step on
//! non-boundary sides — classic temporal blocking. This trades extra halo
//! bytes for `steps`-fold fewer passes over storage, which is exactly the
//! compute/IO ratio knob the paper's out-of-core HotSpot configuration
//! tunes with its blocking sizes.

use crate::dense::DenseMatrix;
use northup_exec::ThreadPool;
use serde::{Deserialize, Serialize};

/// Physical constants of the HotSpot model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HotSpotParams {
    /// Coefficient of the x-direction diffusion term (`step/(cap*Rx)`).
    pub cx: f32,
    /// Coefficient of the y-direction diffusion term.
    pub cy: f32,
    /// Coefficient of the vertical (ambient) leakage term.
    pub cz: f32,
    /// Coefficient applied to the power input (`step/cap`).
    pub cp: f32,
    /// Ambient temperature.
    pub t_amb: f32,
}

impl Default for HotSpotParams {
    /// Stable-diffusion defaults (coefficients sum below 1).
    fn default() -> Self {
        HotSpotParams {
            cx: 0.15,
            cy: 0.15,
            cz: 0.05,
            cp: 0.01,
            t_amb: 80.0,
        }
    }
}

#[inline]
fn update_cell(
    t: &[f32],
    p: &[f32],
    cols: usize,
    rows: usize,
    x: usize,
    y: usize,
    prm: &HotSpotParams,
) -> f32 {
    let idx = y * cols + x;
    let c = t[idx];
    // Clamped neighbors: a missing neighbor is the cell itself.
    let w = if x > 0 { t[idx - 1] } else { c };
    let e = if x + 1 < cols { t[idx + 1] } else { c };
    let n = if y > 0 { t[idx - cols] } else { c };
    let s = if y + 1 < rows { t[idx + cols] } else { c };
    c + prm.cp * p[idx]
        + prm.cx * (e + w - 2.0 * c)
        + prm.cy * (s + n - 2.0 * c)
        + prm.cz * (prm.t_amb - c)
}

/// One full-grid step (the correctness oracle).
pub fn step_reference(temp: &DenseMatrix, power: &DenseMatrix, prm: &HotSpotParams) -> DenseMatrix {
    assert_eq!(temp.rows, power.rows);
    assert_eq!(temp.cols, power.cols);
    let mut out = DenseMatrix::zeros(temp.rows, temp.cols);
    for y in 0..temp.rows {
        for x in 0..temp.cols {
            *out.get_mut(y, x) =
                update_cell(&temp.data, &power.data, temp.cols, temp.rows, x, y, prm);
        }
    }
    out
}

/// `steps` full-grid steps.
pub fn multi_step_reference(
    temp: &DenseMatrix,
    power: &DenseMatrix,
    steps: usize,
    prm: &HotSpotParams,
) -> DenseMatrix {
    let mut cur = temp.clone();
    for _ in 0..steps {
        cur = step_reference(&cur, power, prm);
    }
    cur
}

/// A block of the grid extracted together with its halo.
#[derive(Debug, Clone)]
pub struct HaloBlock {
    /// Temperatures of the extracted region (core + halo), row-major.
    pub temp: DenseMatrix,
    /// Power of the extracted region.
    pub power: DenseMatrix,
    /// Halo actually present on each side: [north, south, west, east].
    /// A side whose halo is 0 coincides with the global grid boundary.
    pub halo: [usize; 4],
    /// Core block position in the global grid (top-left row, col).
    pub core_origin: (usize, usize),
    /// Core block size (rows, cols).
    pub core_size: (usize, usize),
}

impl HaloBlock {
    /// Bytes of halo data moved in addition to the core block — the paper's
    /// compact border vectors ("we allocate vector buffers and pack the
    /// border data in a contiguous manner", §IV-B).
    pub fn border_bytes(&self) -> u64 {
        let core = (self.core_size.0 * self.core_size.1) as u64;
        (self.temp.data.len() as u64 - core) * 4
    }
}

/// Extract the block at (`r0`, `c0`) of `h x w` cells with halo width
/// `halo`, clipping the halo at the global grid boundary.
///
/// # Panics
/// Panics if the core block exceeds the grid.
pub fn extract_halo_block(
    temp: &DenseMatrix,
    power: &DenseMatrix,
    r0: usize,
    c0: usize,
    h: usize,
    w: usize,
    halo: usize,
) -> HaloBlock {
    assert!(
        r0 + h <= temp.rows && c0 + w <= temp.cols,
        "core out of bounds"
    );
    let north = halo.min(r0);
    let west = halo.min(c0);
    let south = halo.min(temp.rows - (r0 + h));
    let east = halo.min(temp.cols - (c0 + w));
    let rr0 = r0 - north;
    let cc0 = c0 - west;
    let hh = h + north + south;
    let ww = w + west + east;
    HaloBlock {
        temp: temp.extract_block(rr0, cc0, hh, ww),
        power: power.extract_block(rr0, cc0, hh, ww),
        halo: [north, south, west, east],
        core_origin: (r0, c0),
        core_size: (h, w),
    }
}

/// Advance a halo block `steps` time steps and return the *core* region at
/// time `t + steps`.
///
/// Exactness: each step shrinks the trusted region by one ring on sides
/// with halo; sides without halo are true global boundaries where the
/// clamped update *is* the correct boundary condition. Requires
/// `steps <= halo` on every non-boundary side (checked).
pub fn step_halo_block(block: &HaloBlock, steps: usize, prm: &HotSpotParams) -> DenseMatrix {
    let [n, s, w, e] = block.halo;
    for (side, &have) in ["north", "south", "west", "east"].iter().zip(&block.halo) {
        assert!(
            have == 0 || have >= steps,
            "{side} halo {have} < steps {steps}"
        );
    }
    let rows = block.temp.rows;
    let cols = block.temp.cols;
    let mut cur = block.temp.data.clone();
    let mut next = vec![0.0f32; cur.len()];
    for step in 0..steps {
        // Trusted region after this step (ring `step+1` consumed on halo sides).
        let y0 = if n == 0 { 0 } else { step + 1 }.min(rows);
        let y1 = if s == 0 {
            rows
        } else {
            rows - (step + 1).min(rows)
        };
        let x0 = if w == 0 { 0 } else { step + 1 }.min(cols);
        let x1 = if e == 0 {
            cols
        } else {
            cols - (step + 1).min(cols)
        };
        for y in y0..y1 {
            for x in x0..x1 {
                next[y * cols + x] = update_cell(&cur, &block.power.data, cols, rows, x, y, prm);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    // Extract the core.
    let full = DenseMatrix {
        rows,
        cols,
        data: cur,
    };
    full.extract_block(n, w, block.core_size.0, block.core_size.1)
}

/// One out-of-core "pass": advance the whole grid `steps` time steps by
/// processing `block x block` tiles with halo `steps`. Sequential tile loop
/// (the Northup runtime drives tiles through the tree instead; this is the
/// in-memory equivalent used as oracle and baseline).
pub fn multi_step_blocked(
    temp: &DenseMatrix,
    power: &DenseMatrix,
    block: usize,
    steps: usize,
    prm: &HotSpotParams,
) -> DenseMatrix {
    assert!(block > 0);
    let mut out = DenseMatrix::zeros(temp.rows, temp.cols);
    for r0 in (0..temp.rows).step_by(block) {
        let h = block.min(temp.rows - r0);
        for c0 in (0..temp.cols).step_by(block) {
            let w = block.min(temp.cols - c0);
            let hb = extract_halo_block(temp, power, r0, c0, h, w, steps);
            let core = step_halo_block(&hb, steps, prm);
            out.insert_block(r0, c0, &core);
        }
    }
    out
}

/// Parallel in-memory multi-step over tiles using the work-stealing pool.
pub fn multi_step_parallel(
    pool: &ThreadPool,
    temp: &DenseMatrix,
    power: &DenseMatrix,
    block: usize,
    steps: usize,
    prm: &HotSpotParams,
) -> DenseMatrix {
    assert!(block > 0);
    let rows = temp.rows;
    let cols = temp.cols;
    let tiles: Vec<(usize, usize, usize, usize)> = (0..rows)
        .step_by(block)
        .flat_map(|r0| {
            let h = block.min(rows - r0);
            (0..cols)
                .step_by(block)
                .map(move |c0| (r0, c0, h, 0))
                .map(move |(r0, c0, h, _)| (r0, c0, h, block.min(cols - c0)))
        })
        .collect();
    let mut results: Vec<Option<DenseMatrix>> = vec![None; tiles.len()];
    pool.scope(|s| {
        for (slot, &(r0, c0, h, w)) in results.iter_mut().zip(&tiles) {
            s.spawn(move || {
                let hb = extract_halo_block(temp, power, r0, c0, h, w, steps);
                *slot = Some(step_halo_block(&hb, steps, prm));
            });
        }
    });
    let mut out = DenseMatrix::zeros(rows, cols);
    for (core, &(r0, c0, _, _)) in results.into_iter().zip(&tiles) {
        out.insert_block(r0, c0, &core.expect("tile computed"));
    }
    out
}

/// FLOPs per cell per step of the update.
pub const FLOPS_PER_CELL: f64 = 12.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn grids(rows: usize, cols: usize) -> (DenseMatrix, DenseMatrix, HotSpotParams) {
        let temp = DenseMatrix::from_fn(rows, cols, |r, c| 80.0 + ((r * 31 + c * 17) % 23) as f32);
        let power = DenseMatrix::from_fn(rows, cols, |r, c| ((r + c) % 5) as f32 * 0.2);
        (temp, power, HotSpotParams::default())
    }

    #[test]
    fn uniform_grid_without_power_stays_at_equilibrium() {
        let temp = DenseMatrix::from_fn(6, 6, |_, _| 80.0);
        let power = DenseMatrix::zeros(6, 6);
        let prm = HotSpotParams::default();
        let out = step_reference(&temp, &power, &prm);
        // t_amb == 80, so nothing changes.
        assert!(temp.max_abs_diff(&out) < 1e-6);
    }

    #[test]
    fn hot_cell_diffuses_to_neighbors() {
        let mut temp = DenseMatrix::from_fn(5, 5, |_, _| 80.0);
        *temp.get_mut(2, 2) = 100.0;
        let power = DenseMatrix::zeros(5, 5);
        let prm = HotSpotParams::default();
        let out = step_reference(&temp, &power, &prm);
        assert!(out.get(2, 2) < 100.0, "peak cools");
        assert!(out.get(2, 1) > 80.0, "neighbor warms");
        assert!((out.get(0, 0) - 80.0).abs() < 1e-6, "far cell untouched");
    }

    #[test]
    fn blocked_single_step_matches_reference() {
        let (temp, power, prm) = grids(17, 23);
        let reference = multi_step_reference(&temp, &power, 1, &prm);
        let blocked = multi_step_blocked(&temp, &power, 8, 1, &prm);
        assert!(reference.max_abs_diff(&blocked) < 1e-5);
    }

    #[test]
    fn blocked_temporal_steps_match_reference() {
        let (temp, power, prm) = grids(24, 24);
        for steps in [2usize, 3, 4] {
            let reference = multi_step_reference(&temp, &power, steps, &prm);
            let blocked = multi_step_blocked(&temp, &power, 8, steps, &prm);
            assert!(
                reference.max_abs_diff(&blocked) < 1e-4,
                "steps={steps}: diff {}",
                reference.max_abs_diff(&blocked)
            );
        }
    }

    #[test]
    fn blocked_handles_non_divisible_grids() {
        let (temp, power, prm) = grids(19, 13);
        let reference = multi_step_reference(&temp, &power, 3, &prm);
        let blocked = multi_step_blocked(&temp, &power, 7, 3, &prm);
        assert!(reference.max_abs_diff(&blocked) < 1e-4);
    }

    #[test]
    fn parallel_matches_reference() {
        let pool = ThreadPool::new(4);
        let (temp, power, prm) = grids(32, 32);
        let reference = multi_step_reference(&temp, &power, 4, &prm);
        let par = multi_step_parallel(&pool, &temp, &power, 8, 4, &prm);
        assert!(reference.max_abs_diff(&par) < 1e-4);
    }

    #[test]
    fn halo_clips_at_global_boundary() {
        let (temp, power, _) = grids(10, 10);
        let hb = extract_halo_block(&temp, &power, 0, 4, 4, 4, 2);
        assert_eq!(hb.halo, [0, 2, 2, 2]);
        assert_eq!(hb.temp.rows, 6);
        assert_eq!(hb.temp.cols, 8);
        assert_eq!(hb.core_origin, (0, 4));
    }

    #[test]
    fn border_bytes_accounts_halo_only() {
        let (temp, power, _) = grids(16, 16);
        let hb = extract_halo_block(&temp, &power, 4, 4, 8, 8, 2);
        assert_eq!(hb.halo, [2, 2, 2, 2]);
        assert_eq!(hb.border_bytes(), ((12 * 12 - 64) * 4) as u64);
    }

    #[test]
    #[should_panic(expected = "halo 1 < steps 2")]
    fn insufficient_halo_is_rejected() {
        let (temp, power, prm) = grids(10, 10);
        let hb = extract_halo_block(&temp, &power, 4, 4, 4, 4, 1);
        step_halo_block(&hb, 2, &prm);
    }

    #[test]
    fn single_block_whole_grid_any_steps() {
        // The whole grid as one block has no halo anywhere; all sides are
        // global boundaries, so any step count is exact.
        let (temp, power, prm) = grids(9, 11);
        let hb = extract_halo_block(&temp, &power, 0, 0, 9, 11, 5);
        assert_eq!(hb.halo, [0, 0, 0, 0]);
        let out = step_halo_block(&hb, 6, &prm);
        let reference = multi_step_reference(&temp, &power, 6, &prm);
        assert!(reference.max_abs_diff(&out) < 1e-4);
    }
}
