//! CSR-Adaptive SpMV kernels (paper §IV-C, Greathouse & Daga \[20\]).
//!
//! Each binned row block is processed by the kernel its
//! [`BlockKind`] selects:
//!
//! [`BlockKind`]: northup_sparse::BlockKind
//!
//! * **CSR-Stream** — one workgroup stages the block's entire nnz range in
//!   local memory, then rows reduce out of it. We reproduce the two-phase
//!   structure (stream products into a scratch buffer, then per-row reduce)
//!   so the memory-access pattern and FP summation order match the GPU
//!   algorithm.
//! * **CSR-Vector** — the workgroup's lanes stride one long row and combine
//!   with a tree reduction; we reproduce the lane-strided partial sums and
//!   the tree combine.
//! * **CSR-VectorL** — like Vector but partial sums accumulate across
//!   multiple workgroup-sized segments.

use northup_exec::ThreadPool;
use northup_sparse::{BlockKind, Csr, RowBlock};

/// Simulated workgroup width (lanes) for Vector kernels.
pub const WG_LANES: usize = 64;

/// CSR-Stream: process rows `[block.row_start, block.row_end)`.
pub fn spmv_stream(m: &Csr, block: &RowBlock, x: &[f32], y: &mut [f32]) {
    // Phase 1: stream all products of the block into scratch (the LDS).
    let lo = m.row_ptr[block.row_start];
    let hi = m.row_ptr[block.row_end];
    let mut scratch = Vec::with_capacity(hi - lo);
    for i in lo..hi {
        scratch.push(m.vals[i] * x[m.col_idx[i] as usize]);
    }
    // Phase 2: per-row reduction out of the scratch buffer.
    let ptrs = &m.row_ptr[block.row_start..=block.row_end];
    for (yr, w) in y[block.row_start..block.row_end]
        .iter_mut()
        .zip(ptrs.windows(2))
    {
        let (a, b) = (w[0] - lo, w[1] - lo);
        let mut acc = 0.0f32;
        for v in &scratch[a..b] {
            acc += v;
        }
        *yr = acc;
    }
}

/// CSR-Vector: one long row, lane-strided partials + tree reduction.
pub fn spmv_vector(m: &Csr, block: &RowBlock, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(block.row_end - block.row_start, 1);
    let r = block.row_start;
    let lo = m.row_ptr[r];
    let hi = m.row_ptr[r + 1];
    let mut lanes = [0.0f32; WG_LANES];
    for (k, i) in (lo..hi).enumerate() {
        lanes[k % WG_LANES] += m.vals[i] * x[m.col_idx[i] as usize];
    }
    y[r] = tree_reduce(&lanes);
}

/// CSR-VectorL: one very long row, segment-wise Vector passes accumulated.
pub fn spmv_vector_long(m: &Csr, block: &RowBlock, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(block.row_end - block.row_start, 1);
    let r = block.row_start;
    let lo = m.row_ptr[r];
    let hi = m.row_ptr[r + 1];
    let seg = WG_LANES * 16; // elements per cooperating workgroup
    let mut acc = 0.0f32;
    let mut s = lo;
    while s < hi {
        let e = (s + seg).min(hi);
        let mut lanes = [0.0f32; WG_LANES];
        for (k, i) in (s..e).enumerate() {
            lanes[k % WG_LANES] += m.vals[i] * x[m.col_idx[i] as usize];
        }
        acc += tree_reduce(&lanes); // the GPU's cross-workgroup atomic add
        s = e;
    }
    y[r] = acc;
}

fn tree_reduce(lanes: &[f32; WG_LANES]) -> f32 {
    let mut buf = *lanes;
    let mut width = WG_LANES / 2;
    while width > 0 {
        for i in 0..width {
            buf[i] += buf[i + width];
        }
        width /= 2;
    }
    buf[0]
}

/// Dispatch every row block to its kernel: the full CSR-Adaptive SpMV.
pub fn spmv_adaptive(m: &Csr, blocks: &[RowBlock], x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), m.cols);
    assert_eq!(y.len(), m.rows);
    for b in blocks {
        match b.kind {
            BlockKind::Stream => spmv_stream(m, b, x, y),
            BlockKind::Vector => spmv_vector(m, b, x, y),
            BlockKind::VectorLong => spmv_vector_long(m, b, x, y),
        }
    }
}

/// Parallel CSR-Adaptive over row blocks on the work-stealing pool. Row
/// blocks own disjoint `y` ranges, so the output splits cleanly per task.
pub fn spmv_adaptive_parallel(
    pool: &ThreadPool,
    m: &Csr,
    blocks: &[RowBlock],
    x: &[f32],
    y: &mut [f32],
) {
    assert_eq!(x.len(), m.cols);
    assert_eq!(y.len(), m.rows);
    // Split y into per-block disjoint slices (blocks tile rows in order).
    let mut slices: Vec<(&RowBlock, &mut [f32])> = Vec::with_capacity(blocks.len());
    let mut rest = y;
    let mut row = 0usize;
    for b in blocks {
        debug_assert_eq!(b.row_start, row);
        let (head, tail) = rest.split_at_mut(b.row_end - b.row_start);
        slices.push((b, head));
        rest = tail;
        row = b.row_end;
    }
    pool.scope(|s| {
        for (b, y_slice) in slices {
            s.spawn(move || {
                // Kernels write into global row coordinates; use a local
                // temporary sized to the block.
                let mut tmp = vec![0.0f32; m.rows];
                match b.kind {
                    BlockKind::Stream => spmv_stream(m, b, x, &mut tmp),
                    BlockKind::Vector => spmv_vector(m, b, x, &mut tmp),
                    BlockKind::VectorLong => spmv_vector_long(m, b, x, &mut tmp),
                }
                y_slice.copy_from_slice(&tmp[b.row_start..b.row_end]);
            });
        }
    });
}

/// Relative error between two vectors (inf-norm of the difference over the
/// inf-norm of the reference, guarding the zero vector).
pub fn rel_error(reference: &[f32], got: &[f32]) -> f32 {
    assert_eq!(reference.len(), got.len());
    let scale = reference
        .iter()
        .map(|v| v.abs())
        .fold(0.0f32, f32::max)
        .max(1e-20);
    reference
        .iter()
        .zip(got)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max)
        / scale
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_sparse::{bin_rows, gen, BinningParams};

    fn check_adaptive(m: &Csr, params: BinningParams) {
        let blocks = bin_rows(m, params);
        let x: Vec<f32> = (0..m.cols)
            .map(|i| ((i % 13) as f32 - 6.0) * 0.25)
            .collect();
        let mut reference = vec![0.0f32; m.rows];
        m.spmv_reference(&x, &mut reference);
        let mut y = vec![f32::NAN; m.rows];
        spmv_adaptive(m, &blocks, &x, &mut y);
        assert!(
            rel_error(&reference, &y) < 1e-4,
            "adaptive mismatch: {}",
            rel_error(&reference, &y)
        );
    }

    #[test]
    fn adaptive_matches_reference_on_uniform() {
        check_adaptive(
            &gen::uniform_random(300, 500, 9, 1),
            BinningParams::default(),
        );
    }

    #[test]
    fn adaptive_matches_reference_on_powerlaw() {
        // Small thresholds force all three kernels to run.
        let m = gen::powerlaw(400, 3000, 2048, 0.8, 5);
        let p = BinningParams {
            stream_nnz: 64,
            vector_long_nnz: 512,
        };
        let blocks = bin_rows(&m, p);
        let kinds = northup_sparse::kind_histogram(&blocks);
        assert!(kinds.iter().all(|&k| k > 0), "need all kernels: {kinds:?}");
        check_adaptive(&m, p);
    }

    #[test]
    fn adaptive_matches_reference_on_banded_and_fem() {
        check_adaptive(&gen::banded(200, 4, 2), BinningParams::default());
        check_adaptive(&gen::laplace_2d(20, 18), BinningParams::default());
    }

    #[test]
    fn parallel_matches_sequential() {
        let pool = ThreadPool::new(4);
        let m = gen::powerlaw(500, 2000, 1024, 0.9, 11);
        let p = BinningParams {
            stream_nnz: 128,
            vector_long_nnz: 600,
        };
        let blocks = bin_rows(&m, p);
        let x: Vec<f32> = (0..m.cols).map(|i| (i as f32 * 0.01).sin()).collect();
        let mut seq = vec![0.0f32; m.rows];
        spmv_adaptive(&m, &blocks, &x, &mut seq);
        let mut par = vec![0.0f32; m.rows];
        spmv_adaptive_parallel(&pool, &m, &blocks, &x, &mut par);
        assert_eq!(seq, par, "identical kernels => bitwise identical results");
    }

    #[test]
    fn vector_kernel_handles_exact_lane_multiples() {
        let triplets: Vec<(usize, u32, f32)> = (0..(WG_LANES as u32 * 2))
            .map(|c| (0usize, c, 0.5f32))
            .collect();
        let m = Csr::from_coo(1, WG_LANES * 2, triplets);
        let b = RowBlock {
            row_start: 0,
            row_end: 1,
            nnz: WG_LANES * 2,
            kind: BlockKind::Vector,
        };
        let x = vec![2.0f32; WG_LANES * 2];
        let mut y = vec![0.0f32; 1];
        spmv_vector(&m, &b, &x, &mut y);
        assert!((y[0] - WG_LANES as f32 * 2.0).abs() < 1e-3);
    }

    #[test]
    fn empty_matrix() {
        let m = Csr::empty(10, 10);
        let blocks = bin_rows(&m, BinningParams::default());
        let x = vec![1.0f32; 10];
        let mut y = vec![9.0f32; 10];
        spmv_adaptive(&m, &blocks, &x, &mut y);
        assert_eq!(y, vec![0.0f32; 10]);
    }

    #[test]
    fn rel_error_guards_zero_reference() {
        assert_eq!(rel_error(&[0.0, 0.0], &[0.0, 0.0]), 0.0);
        assert!(rel_error(&[0.0], &[1.0]) > 1.0);
    }
}
