//! Dense matrix multiply kernels (paper §IV-A).
//!
//! The paper extends "an optimized, tiled version of GPU dense matrix
//! multiply" to out-of-core execution; at the leaf, the GPU kernel uses
//! per-compute-unit local memory with a 16x16 blocking. Our real kernels:
//!
//! * [`matmul_naive`] — the textbook triple loop, the correctness oracle;
//! * [`matmul_tiled`] — cache-blocked ikj kernel with a fixed tile (the
//!   single-threaded leaf kernel, structurally the LDS-tiled GPU kernel);
//! * [`matmul_parallel`] — the tiled kernel parallelized over row bands on
//!   the work-stealing pool (the in-memory baseline's real execution).
//!
//! All compute `C += A * B` so the out-of-core accumulation over k-shards
//! ("first computing partial results ... then accumulate the partial sums",
//! §IV-A) uses the same kernels.

use crate::dense::DenseMatrix;
use northup_exec::ThreadPool;

/// Leaf tile edge, matching the paper's 16x16 GPU local-memory blocking.
pub const LEAF_TILE: usize = 16;

/// `c += a * b`, naive triple loop.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_naive(a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    check_dims(a, b, c);
    for i in 0..a.rows {
        for kk in 0..a.cols {
            let av = a.get(i, kk);
            if av == 0.0 {
                continue;
            }
            let brow = b.row(kk);
            let crow = &mut c.data[i * b.cols..(i + 1) * b.cols];
            for (cv, bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `c += a * b`, blocked with `tile x tile` tiles (ikj inside tiles).
///
/// # Panics
/// Panics on dimension mismatch or `tile == 0`.
pub fn matmul_tiled(a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix, tile: usize) {
    check_dims(a, b, c);
    assert!(tile > 0, "tile must be positive");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    for i0 in (0..m).step_by(tile) {
        let i1 = (i0 + tile).min(m);
        for k0 in (0..k).step_by(tile) {
            let k1 = (k0 + tile).min(k);
            for j0 in (0..n).step_by(tile) {
                let j1 = (j0 + tile).min(n);
                for i in i0..i1 {
                    for kk in k0..k1 {
                        let av = a.get(i, kk);
                        let brow = &b.data[kk * n + j0..kk * n + j1];
                        let crow = &mut c.data[i * n + j0..i * n + j1];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += av * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Micro-kernel geometry for [`matmul_packed`].
const MR: usize = 4;
const NR: usize = 8;

/// `c += a * b` with BLIS-style packing and a register-blocked MRxNR
/// micro-kernel: B is packed into NR-wide column panels and A into MR-wide
/// row panels so the inner loop runs over contiguous memory with an
/// accumulator block the compiler keeps in registers.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_packed(a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    check_dims(a, b, c);
    let (m, k, n) = (a.rows, a.cols, b.cols);
    const KC: usize = 256;
    let mut b_panel = vec![0.0f32; KC * NR];
    let mut a_panel = vec![0.0f32; MR * KC];

    for k0 in (0..k).step_by(KC) {
        let kb = KC.min(k - k0);
        for j0 in (0..n).step_by(NR) {
            let jb = NR.min(n - j0);
            // Pack B(k0..k0+kb, j0..j0+jb) as kb rows of NR (zero-padded).
            for kk in 0..kb {
                let src = (k0 + kk) * n + j0;
                for jj in 0..NR {
                    b_panel[kk * NR + jj] = if jj < jb { b.data[src + jj] } else { 0.0 };
                }
            }
            for i0 in (0..m).step_by(MR) {
                let ib = MR.min(m - i0);
                // Pack A(i0..i0+ib, k0..k0+kb) as kb columns of MR.
                for kk in 0..kb {
                    for ii in 0..MR {
                        a_panel[kk * MR + ii] = if ii < ib {
                            a.data[(i0 + ii) * k + k0 + kk]
                        } else {
                            0.0
                        };
                    }
                }
                // Micro-kernel: acc[MR][NR] += a_panel * b_panel.
                let mut acc = [[0.0f32; NR]; MR];
                for kk in 0..kb {
                    let bp = &b_panel[kk * NR..kk * NR + NR];
                    let ap = &a_panel[kk * MR..kk * MR + MR];
                    for (ii, &av) in ap.iter().enumerate() {
                        let row = &mut acc[ii];
                        for (jj, &bv) in bp.iter().enumerate() {
                            row[jj] += av * bv;
                        }
                    }
                }
                // Unpack into C.
                for (ii, row) in acc.iter().enumerate().take(ib) {
                    let dst = (i0 + ii) * n + j0;
                    for (cv, &av) in c.data[dst..dst + jb].iter_mut().zip(row) {
                        *cv += av;
                    }
                }
            }
        }
    }
}

/// `c += a * b` parallelized over row bands of `C` on the pool.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn matmul_parallel(pool: &ThreadPool, a: &DenseMatrix, b: &DenseMatrix, c: &mut DenseMatrix) {
    check_dims(a, b, c);
    let n = b.cols;
    let band = (a.rows / (pool.threads() * 4)).max(LEAF_TILE);
    let a_ref: &DenseMatrix = a;
    let b_ref: &DenseMatrix = b;
    // Split C into disjoint row bands, one task per band.
    let mut bands: Vec<(usize, &mut [f32])> = Vec::new();
    let mut rest: &mut [f32] = &mut c.data;
    let mut row = 0usize;
    while row < a.rows {
        let rows_here = band.min(a.rows - row);
        let (head, tail) = rest.split_at_mut(rows_here * n);
        bands.push((row, head));
        rest = tail;
        row += rows_here;
    }
    pool.scope(|s| {
        for (row0, band_data) in bands {
            s.spawn(move || {
                let rows_here = band_data.len() / n;
                let mut cb = DenseMatrix {
                    rows: rows_here,
                    cols: n,
                    data: band_data.to_vec(),
                };
                let ab = a_ref.extract_block(row0, 0, rows_here, a_ref.cols);
                matmul_tiled(&ab, b_ref, &mut cb, 64);
                band_data.copy_from_slice(&cb.data);
            });
        }
    });
}

fn check_dims(a: &DenseMatrix, b: &DenseMatrix, c: &DenseMatrix) {
    assert_eq!(a.cols, b.rows, "inner dimensions differ");
    assert_eq!(c.rows, a.rows, "C rows mismatch");
    assert_eq!(c.cols, b.cols, "C cols mismatch");
}

/// FLOPs of `C += A(m x k) * B(k x n)`.
pub fn gemm_flops(m: u64, n: u64, k: u64) -> f64 {
    2.0 * m as f64 * n as f64 * k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mats(m: usize, k: usize, n: usize) -> (DenseMatrix, DenseMatrix) {
        (DenseMatrix::random(m, k, 1), DenseMatrix::random(k, n, 2))
    }

    #[test]
    fn tiled_matches_naive() {
        for &(m, k, n, tile) in &[
            (5usize, 7usize, 3usize, 2usize),
            (16, 16, 16, 16),
            (33, 20, 17, 8),
        ] {
            let (a, b) = mats(m, k, n);
            let mut c1 = DenseMatrix::zeros(m, n);
            let mut c2 = DenseMatrix::zeros(m, n);
            matmul_naive(&a, &b, &mut c1);
            matmul_tiled(&a, &b, &mut c2, tile);
            assert!(c1.max_abs_diff(&c2) < 1e-4, "({m},{k},{n},{tile})");
        }
    }

    #[test]
    fn packed_matches_naive() {
        for &(m, k, n) in &[
            (4usize, 8usize, 8usize),
            (5, 7, 3),
            (64, 64, 64),
            (33, 100, 17),
        ] {
            let (a, b) = mats(m, k, n);
            let mut c1 = DenseMatrix::zeros(m, n);
            let mut c2 = DenseMatrix::zeros(m, n);
            matmul_naive(&a, &b, &mut c1);
            matmul_packed(&a, &b, &mut c2);
            assert!(c1.max_abs_diff(&c2) < 1e-3, "({m},{k},{n})");
        }
    }

    #[test]
    fn packed_accumulates_into_nonzero_c() {
        let (a, b) = mats(9, 9, 9);
        let mut c = DenseMatrix::from_fn(9, 9, |r, _| r as f32);
        let mut expect = c.clone();
        matmul_naive(&a, &b, &mut expect);
        matmul_packed(&a, &b, &mut c);
        assert!(expect.max_abs_diff(&c) < 1e-3);
    }

    #[test]
    fn parallel_matches_naive() {
        let pool = ThreadPool::new(4);
        let (a, b) = mats(70, 45, 52);
        let mut c1 = DenseMatrix::zeros(70, 52);
        let mut c2 = DenseMatrix::zeros(70, 52);
        matmul_naive(&a, &b, &mut c1);
        matmul_parallel(&pool, &a, &b, &mut c2);
        assert!(c1.max_abs_diff(&c2) < 1e-4);
    }

    #[test]
    fn accumulation_over_k_shards_matches_single_call() {
        // The out-of-core schedule multiplies k-slices and accumulates;
        // verify the decomposition identity C = sum_s A[:,s] * B[s,:].
        let (a, b) = mats(12, 20, 9);
        let mut whole = DenseMatrix::zeros(12, 9);
        matmul_naive(&a, &b, &mut whole);

        let mut acc = DenseMatrix::zeros(12, 9);
        for s in 0..4 {
            let a_sh = a.extract_block(0, s * 5, 12, 5);
            let b_sh = b.extract_block(s * 5, 0, 5, 9);
            matmul_tiled(&a_sh, &b_sh, &mut acc, 4);
        }
        assert!(whole.max_abs_diff(&acc) < 1e-4);
    }

    #[test]
    fn identity_multiplication() {
        let a = DenseMatrix::random(6, 6, 3);
        let eye = DenseMatrix::from_fn(6, 6, |r, c| if r == c { 1.0 } else { 0.0 });
        let mut c = DenseMatrix::zeros(6, 6);
        matmul_tiled(&a, &eye, &mut c, 4);
        assert!(a.max_abs_diff(&c) < 1e-6);
    }

    #[test]
    fn accumulates_into_nonzero_c() {
        let (a, b) = mats(4, 4, 4);
        let mut c = DenseMatrix::from_fn(4, 4, |_, _| 1.0);
        let mut expect = DenseMatrix::from_fn(4, 4, |_, _| 1.0);
        matmul_naive(&a, &b, &mut expect);
        matmul_tiled(&a, &b, &mut c, 16);
        assert!(expect.max_abs_diff(&c) < 1e-5);
    }

    #[test]
    fn gemm_flops_formula() {
        assert_eq!(gemm_flops(10, 10, 10), 2000.0);
    }

    #[test]
    fn empty_dims_are_fine() {
        let a = DenseMatrix::zeros(0, 5);
        let b = DenseMatrix::zeros(5, 3);
        let mut c = DenseMatrix::zeros(0, 3);
        matmul_tiled(&a, &b, &mut c, 8);
        assert_eq!(c.data.len(), 0);
    }
}
