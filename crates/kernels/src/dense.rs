//! Row-major dense `f32` matrices with block extraction/insertion.
//!
//! The Northup matmul and HotSpot applications move rectangular sub-blocks
//! ("chunks", "shards") between tree levels; this type provides the block
//! slicing those data movements are built on.

use std::fmt;

/// A row-major dense matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DenseMatrix({}x{})", self.rows, self.cols)
    }
}

impl DenseMatrix {
    /// A zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { rows, cols, data }
    }

    /// A deterministic pseudo-random matrix (splitmix-style hash of indices).
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        DenseMatrix::from_fn(rows, cols, |r, c| {
            let mut z = seed
                .wrapping_add((r as u64) << 32)
                .wrapping_add(c as u64)
                .wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            // Map to [-1, 1).
            (z >> 40) as f32 / (1u64 << 23) as f32 - 1.0
        })
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        &mut self.data[r * self.cols + c]
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy the block at (`r0`, `c0`) of size `h x w` into a new matrix.
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn extract_block(&self, r0: usize, c0: usize, h: usize, w: usize) -> DenseMatrix {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of bounds"
        );
        let mut out = DenseMatrix::zeros(h, w);
        for r in 0..h {
            let src = (r0 + r) * self.cols + c0;
            out.data[r * w..(r + 1) * w].copy_from_slice(&self.data[src..src + w]);
        }
        out
    }

    /// Write `block` into this matrix at (`r0`, `c0`).
    ///
    /// # Panics
    /// Panics if the block exceeds the matrix bounds.
    pub fn insert_block(&mut self, r0: usize, c0: usize, block: &DenseMatrix) {
        assert!(
            r0 + block.rows <= self.rows && c0 + block.cols <= self.cols,
            "block out of bounds"
        );
        for r in 0..block.rows {
            let dst = (r0 + r) * self.cols + c0;
            self.data[dst..dst + block.cols].copy_from_slice(block.row(r));
        }
    }

    /// Max absolute elementwise difference with `other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f32 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Bytes of the payload.
    pub fn bytes(&self) -> u64 {
        (self.data.len() * 4) as u64
    }

    /// A simple order-independent checksum for cross-run comparisons.
    pub fn checksum(&self) -> f64 {
        self.data.iter().map(|&v| v as f64).sum()
    }
}

/// Convert an `f32` slice to little-endian bytes (for buffer injection).
pub fn f32s_to_bytes(vals: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Convert little-endian bytes back to `f32`s.
///
/// # Panics
/// Panics if the byte length is not a multiple of 4.
pub fn bytes_to_f32s(bytes: &[u8]) -> Vec<f32> {
    assert_eq!(bytes.len() % 4, 0, "byte length not a multiple of 4");
    bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = DenseMatrix::from_fn(2, 3, |r, c| (r * 10 + c) as f32);
        assert_eq!(m.data, vec![0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(m.get(1, 2), 12.0);
        assert_eq!(m.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let m = DenseMatrix::random(7, 9, 42);
        let block = m.extract_block(2, 3, 4, 5);
        assert_eq!(block.rows, 4);
        assert_eq!(block.cols, 5);
        assert_eq!(block.get(0, 0), m.get(2, 3));
        let mut copy = DenseMatrix::zeros(7, 9);
        copy.insert_block(2, 3, &block);
        assert_eq!(copy.get(5, 7), m.get(5, 7));
        assert_eq!(copy.get(0, 0), 0.0);
    }

    #[test]
    fn blocks_tile_matrix() {
        let m = DenseMatrix::random(8, 8, 7);
        let mut rebuilt = DenseMatrix::zeros(8, 8);
        for br in 0..2 {
            for bc in 0..2 {
                let b = m.extract_block(br * 4, bc * 4, 4, 4);
                rebuilt.insert_block(br * 4, bc * 4, &b);
            }
        }
        assert_eq!(rebuilt, m);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn extract_out_of_bounds_panics() {
        DenseMatrix::zeros(4, 4).extract_block(2, 2, 3, 3);
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = DenseMatrix::random(10, 10, 1);
        let b = DenseMatrix::random(10, 10, 1);
        let c = DenseMatrix::random(10, 10, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.data.iter().all(|v| (-1.0..1.0).contains(v)));
        // Not degenerate.
        assert!(a.data.iter().any(|&v| v != a.data[0]));
    }

    #[test]
    fn byte_conversion_roundtrips() {
        let vals = vec![1.5f32, -2.25, 0.0, f32::MIN_POSITIVE];
        assert_eq!(bytes_to_f32s(&f32s_to_bytes(&vals)), vals);
    }

    #[test]
    fn max_abs_diff() {
        let a = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f32);
        let mut b = a.clone();
        *b.get_mut(1, 1) += 0.5;
        assert_eq!(a.max_abs_diff(&b), 0.5);
    }
}
