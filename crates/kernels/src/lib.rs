//! # northup-kernels — leaf compute kernels + device cost models
//!
//! The paper's leaf computation is OpenCL on AMD GPUs: a tiled GEMM \[17\],
//! Rodinia's HotSpot-2D \[18\], and CSR-Adaptive SpMV \[20\]. This crate
//! implements all three **for real** (results are verified against naive
//! references and across decompositions) and pairs them with first-order
//! **cost models** of the paper's devices so the runtime can charge virtual
//! time for what the OpenCL kernel would have cost:
//!
//! * [`dense`] — row-major `f32` matrices with block extract/insert.
//! * [`gemm`] — naive / tiled / pool-parallel `C += A·B` (§IV-A).
//! * [`stencil`] — HotSpot-2D with halo extraction and exact temporal
//!   blocking (§IV-B generalizes the packed border vectors to width > 1).
//! * [`spmv`] — CSR-Stream / CSR-Vector / CSR-VectorL kernels dispatched by
//!   the CSR-Adaptive binning (§IV-C).
//! * [`model`] — roofline [`ProcModel`]s for the APU GPU/CPU and the
//!   W9100-class discrete GPU, the CPU binning rate, and the Fig. 11
//!   queue-count latency-hiding curve.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dense;
pub mod gemm;
pub mod model;
pub mod spmv;
pub mod stencil;

pub use dense::{bytes_to_f32s, f32s_to_bytes, DenseMatrix};
pub use gemm::{gemm_flops, matmul_naive, matmul_packed, matmul_parallel, matmul_tiled, LEAF_TILE};
pub use model::{binning_time, latency_hiding_efficiency, ProcModel, BINNING_ROWS_PER_SEC};
pub use spmv::{rel_error, spmv_adaptive, spmv_adaptive_parallel, WG_LANES};
pub use stencil::{
    extract_halo_block, multi_step_blocked, multi_step_parallel, multi_step_reference,
    step_halo_block, step_reference, HaloBlock, HotSpotParams, FLOPS_PER_CELL,
};
