//! Device cost models — the performance stand-in for the paper's OpenCL
//! kernels on real GPUs.
//!
//! The kernels in this crate compute real results on CPU threads; these
//! models answer "how long would that kernel have taken on the paper's
//! devices?" using a first-order roofline: `time = max(flops / rate,
//! bytes / bandwidth) + launch overhead`. Effective rates fold in the
//! achieved efficiency the paper states (e.g. the tiled GEMM "achieves more
//! than 80% of peak GPU FLOPS" on the discrete part, far less on the APU's
//! integrated GPU whose FLOPS the DRAM interface starves).
//!
//! [`latency_hiding_efficiency`] models the Fig. 11 observation that a GPU
//! needs "multiple workgroups per SIMD engine ... to fully utilize GPU
//! hardware and hide latency": throughput ramps with the number of resident
//! queues and saturates around 32.

use crate::gemm::gemm_flops;
use crate::stencil::FLOPS_PER_CELL;
use northup_sim::SimDur;
use serde::{Deserialize, Serialize};

/// First-order processor model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcModel {
    /// Name for reports.
    pub name: String,
    /// Effective FLOP/s on dense compute-bound kernels.
    pub flops: f64,
    /// Effective memory bandwidth for kernel operands, bytes/s.
    pub mem_bw: f64,
    /// Fixed per-kernel-launch overhead.
    pub launch: SimDur,
}

impl ProcModel {
    /// The integrated GPU of the paper's A10-class APU. Effective GEMM rate
    /// reflects OpenCL efficiency on an integrated part fed from shared
    /// DRAM (~250 GF/s of the 737 GF/s peak).
    pub fn apu_gpu() -> Self {
        ProcModel {
            name: "apu-gpu".into(),
            flops: 250e9,
            mem_bw: 18e9,
            launch: SimDur::from_micros(15),
        }
    }

    /// FirePro W9100-class discrete GPU (5.24 TF/s peak; the paper's tiled
    /// GEMM achieves >80% => ~4.2 TF/s effective; 260 GB/s GDDR5).
    pub fn w9100() -> Self {
        ProcModel {
            name: "w9100".into(),
            flops: 4.2e12,
            mem_bw: 260e9,
            launch: SimDur::from_micros(20),
        }
    }

    /// A10-class 4-thread CPU (the paper's HotSpot runs ~8x slower on the
    /// CPU than the integrated GPU).
    pub fn apu_cpu() -> Self {
        ProcModel {
            name: "apu-cpu".into(),
            flops: 32e9,
            mem_bw: 10e9,
            launch: SimDur::ZERO,
        }
    }

    /// Roofline time for `flops` of arithmetic over `bytes` of operands.
    pub fn roofline(&self, flops: f64, bytes: f64) -> SimDur {
        let t_flops = flops / self.flops;
        let t_mem = bytes / self.mem_bw;
        self.launch + SimDur::from_secs_f64(t_flops.max(t_mem))
    }

    /// Time for a `C += A(m x k) * B(k x n)` leaf kernel. Operand traffic is
    /// one pass over A, B and a read+write of C (LDS tiling gives the
    /// arithmetic reuse).
    pub fn gemm_time(&self, m: u64, n: u64, k: u64) -> SimDur {
        let bytes = 4.0 * (m as f64 * k as f64 + k as f64 * n as f64 + 2.0 * m as f64 * n as f64);
        self.roofline(gemm_flops(m, n, k), bytes)
    }

    /// Time for `steps` stencil steps over `cells` grid cells (read temp +
    /// power, write temp, each step).
    pub fn stencil_time(&self, cells: u64, steps: u64) -> SimDur {
        let flops = cells as f64 * steps as f64 * FLOPS_PER_CELL;
        let bytes = cells as f64 * steps as f64 * 12.0;
        self.roofline(flops, bytes)
    }

    /// Time for one SpMV pass over `rows` rows and `nnz` stored entries
    /// (CSR payload + gathered x + y write).
    pub fn spmv_time(&self, rows: u64, nnz: u64) -> SimDur {
        let flops = 2.0 * nnz as f64;
        let bytes = nnz as f64 * 12.0 + rows as f64 * 8.0;
        self.roofline(flops, bytes)
    }
}

/// CPU-side CSR-Adaptive row-binning rate (rows/s). The paper's breakdown
/// charges this to the CPU ("CSR-Adaptive uses the CPU for binning rows
/// into different categories and spends relatively more time", §V-C).
pub const BINNING_ROWS_PER_SEC: f64 = 45e6;

/// Time for binning `rows` rows on the CPU.
pub fn binning_time(rows: u64) -> SimDur {
    SimDur::from_secs_f64(rows as f64 / BINNING_ROWS_PER_SEC)
}

/// GPU throughput efficiency as a function of the number of resident work
/// queues (Fig. 11: 8/16/32 queues; 32 is best because "multiple workgroups
/// per SIMD engine is needed to fully utilize GPU hardware and hide
/// latency"). Saturating ramp `q / (q + 12)`, normalized to 1.0 at 32.
pub fn latency_hiding_efficiency(queues: usize) -> f64 {
    let q = queues.max(1) as f64;
    let raw = q / (q + 12.0);
    let at32 = 32.0 / (32.0 + 12.0);
    (raw / at32).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gemm_is_compute_bound_on_both_gpus() {
        // At 4k x 4k, arithmetic intensity is huge; roofline must pick flops.
        let m = ProcModel::apu_gpu();
        let t = m.gemm_time(4096, 4096, 4096);
        let pure_flops = gemm_flops(4096, 4096, 4096) / m.flops;
        assert!((t.as_secs_f64() - pure_flops - m.launch.as_secs_f64()).abs() < 1e-6);
    }

    #[test]
    fn spmv_is_memory_bound() {
        let m = ProcModel::apu_gpu();
        let t = m.spmv_time(1_000_000, 40_000_000);
        let pure_mem = (40e6 * 12.0 + 1e6 * 8.0) / m.mem_bw;
        assert!((t.as_secs_f64() - pure_mem - m.launch.as_secs_f64()).abs() < 1e-6);
    }

    #[test]
    fn w9100_beats_apu_substantially_on_gemm() {
        let apu = ProcModel::apu_gpu().gemm_time(2048, 2048, 2048);
        let dgpu = ProcModel::w9100().gemm_time(2048, 2048, 2048);
        assert!(apu.as_secs_f64() > 8.0 * dgpu.as_secs_f64());
    }

    #[test]
    fn cpu_is_several_times_slower_than_apu_gpu_on_stencil() {
        // The paper quotes ~8x GPU speedup for HotSpot on the APU.
        let gpu = ProcModel::apu_gpu().stencil_time(1 << 20, 4).as_secs_f64();
        let cpu = ProcModel::apu_cpu().stencil_time(1 << 20, 4).as_secs_f64();
        let ratio = cpu / gpu;
        assert!((1.5..16.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn paper_scale_gemm_runtime_sanity() {
        // 16k x 16k GEMM on the APU: 2 * 16384^3 / 250 GF/s ~ 35 s. This is
        // the in-memory baseline magnitude that makes the paper's Fig. 6
        // slowdowns land where they do.
        let t = ProcModel::apu_gpu().gemm_time(16384, 16384, 16384);
        assert!((30.0..42.0).contains(&t.as_secs_f64()), "{t}");
    }

    #[test]
    fn binning_time_is_linear() {
        let t1 = binning_time(1_000_000).as_secs_f64();
        let t4 = binning_time(4_000_000).as_secs_f64();
        assert!((t4 / t1 - 4.0).abs() < 1e-6, "nanosecond rounding only");
    }

    #[test]
    fn latency_hiding_monotone_and_saturates_at_32() {
        let e8 = latency_hiding_efficiency(8);
        let e16 = latency_hiding_efficiency(16);
        let e32 = latency_hiding_efficiency(32);
        let e64 = latency_hiding_efficiency(64);
        assert!(e8 < e16 && e16 < e32, "{e8} {e16} {e32}");
        assert_eq!(e32, 1.0);
        assert_eq!(e64, 1.0, "capped at full throughput");
        assert!(e8 > 0.5, "8 queues still does useful work");
    }

    #[test]
    fn zero_work_costs_only_launch() {
        let m = ProcModel::w9100();
        assert_eq!(m.roofline(0.0, 0.0), m.launch);
    }
}
