//! Out-of-core dense matrix multiply on Northup (paper §IV-A, Fig. 3).
//!
//! `C = A x B`, all `n x n` f32. The root storage holds the matrices in the
//! preprocessed chunked layout the paper describes ("a one-time overhead of
//! preprocessing the original file and reorganizing it ... for chunking"):
//! `A` row-major (row shards contiguous), `B` column-shard-major, `C`
//! block-major.
//!
//! Each root-level step loads a row shard of `A` and a column shard of `B`
//! into the staging DRAM and computes one `block x block` result tile. The
//! paper's reuse optimization is applied: "row shard m ... can stay in the
//! l+1 level and the program just iteratively loads column shards". Column
//! shards and result tiles use a ring of staging buffers, so loads pipeline
//! behind compute (§III-C multi-stage queues). Below the DRAM level (a
//! discrete-GPU or exascale chain) whole shards move level to level with
//! the same A-reuse.

use crate::calibration::{model_for, GEMM_RING};
use crate::host::when_real;
use crate::report::AppRun;
use northup::{BufferHandle, ExecMode, NodeId, ProcKind, Result, Runtime, Tree};
use northup_kernels::{f32s_to_bytes, matmul_naive, matmul_tiled, DenseMatrix, LEAF_TILE};

/// Configuration of one matmul scenario.
#[derive(Debug, Clone)]
pub struct MatmulConfig {
    /// Matrix dimension (square).
    pub n: usize,
    /// DRAM blocking (the paper's 4k x 4k).
    pub block: usize,
    /// Staging ring depth for B shards / C tiles.
    pub ring: usize,
    /// RNG seed for input data (Real mode).
    pub seed: u64,
}

impl MatmulConfig {
    /// Paper-scale 16k x 16k input with 4k blocking (§V-A).
    pub fn paper() -> Self {
        MatmulConfig {
            n: crate::calibration::paper::GEMM_N,
            block: crate::calibration::paper::GEMM_BLOCK,
            ring: GEMM_RING,
            seed: 1,
        }
    }

    /// Paper-scale 32k x 32k input.
    pub fn paper_large() -> Self {
        MatmulConfig {
            n: crate::calibration::paper::GEMM_N_LARGE,
            ..MatmulConfig::paper()
        }
    }

    /// Plan the blocking automatically from the tree's capacities
    /// (paper §III-B: "by examining the capacity and usage, a program can
    /// decide the blocking size"). On the paper's APU tree at 16k this
    /// reproduces the hand-tuned 4k x 4k blocking.
    pub fn auto(tree: &Tree, n: usize, seed: u64) -> Result<Self> {
        assert!(n.is_power_of_two(), "auto planning expects power-of-two n");
        let ring = GEMM_RING;
        let plan = northup::plan_blocks(
            tree,
            &northup::pow2_candidates(16, n),
            northup::DEFAULT_HEADROOM,
            staging_footprint(n, ring),
        )?;
        Ok(MatmulConfig {
            n,
            block: plan.staging_block().min(n),
            ring,
            seed,
        })
    }

    /// Laptop-scale input for Real-mode verification.
    pub fn small() -> Self {
        MatmulConfig {
            n: 64,
            block: 16,
            ring: 2,
            seed: 7,
        }
    }

    fn nb(&self) -> usize {
        assert!(
            self.block > 0 && self.n.is_multiple_of(self.block),
            "block {} must divide n {}",
            self.block,
            self.n
        );
        self.n / self.block
    }

    fn elem_bytes(&self) -> u64 {
        4
    }
}

/// The in-memory baseline: the whole working set resident in DRAM, one GPU
/// kernel (the paper's baseline "assumes all the data is already loaded
/// into memory").
pub fn matmul_in_memory(cfg: &MatmulConfig, mode: ExecMode) -> Result<AppRun> {
    let tree = northup::presets::in_memory();
    let rt = Runtime::new(tree, mode)?;
    let root = rt.root_ctx();
    let n = cfg.n as u64;
    let bytes = n * n * cfg.elem_bytes();
    // analyze:allow(lease-discipline): matrices live for the whole run; the run's Runtime reclaims them on drop
    let a = root.alloc(bytes)?;
    let b = root.alloc(bytes)?;
    let c = root.alloc(bytes)?;

    let (a_mat, b_mat) = when_real(mode, || {
        let am = DenseMatrix::random(cfg.n, cfg.n, cfg.seed);
        let bm = DenseMatrix::random(cfg.n, cfg.n, cfg.seed + 1);
        rt.write_slice(a, 0, &f32s_to_bytes(&am.data))?;
        rt.write_slice(b, 0, &f32s_to_bytes(&bm.data))?;
        Ok((am, bm))
    })?
    .unzip();

    let gpu = root
        .procs()
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("in-memory preset has a GPU");
    let dur = model_for(&gpu.name).gemm_time(n, n, n);
    root.compute(ProcKind::Gpu, dur, &[a, b], &[c], "gemm full")?;

    let mut checksum = None;
    let mut verified = None;
    if let (Some(am), Some(bm)) = (&a_mat, &b_mat) {
        let mut cm = DenseMatrix::zeros(cfg.n, cfg.n);
        matmul_tiled(am, bm, &mut cm, LEAF_TILE);
        rt.write_slice(c, 0, &f32s_to_bytes(&cm.data))?;
        checksum = Some(cm.checksum());
        if cfg.n <= 256 {
            let mut oracle = DenseMatrix::zeros(cfg.n, cfg.n);
            matmul_naive(am, bm, &mut oracle);
            verified = Some(oracle.max_abs_diff(&cm) < 1e-3 * cfg.n as f32);
        }
    }

    Ok(AppRun {
        name: "matmul/in-memory".into(),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Per-level staging working set of the schedule in this module, as a
/// footprint function for the §III-B auto-planner: the resident A row
/// shard (double-buffered for prefetch) plus `ring` (B shard, C tile)
/// pairs at the staging level; one (A, B, C) shard set at deeper levels.
pub fn staging_footprint(n: usize, ring: usize) -> impl Fn(usize, usize) -> u64 {
    move |level, b| {
        let (b, n, ring) = (b as u64, n as u64, ring as u64);
        if level == 0 {
            2 * b * n * 4 + ring * (n * b + b * b) * 4
        } else {
            (b * n + n * b + b * b) * 4
        }
    }
}

struct DeepBufs {
    node: NodeId,
    a: BufferHandle,
    b: BufferHandle,
    c: BufferHandle,
}

/// Resolve the compute chain below the staging node: every node must have
/// exactly one child down to the leaf.
fn chain_below(tree: &Tree, from: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut cur = from;
    while let Some(&child) = tree.children(cur).first() {
        assert_eq!(
            tree.children(cur).len(),
            1,
            "matmul schedule expects a chain topology below the staging level"
        );
        out.push(child);
        cur = child;
    }
    out
}

/// Out-of-core Northup matmul over a chain topology (storage root ->
/// staging DRAM [-> device memory ...] -> GPU leaf).
pub fn matmul_northup(cfg: &MatmulConfig, tree: Tree, mode: ExecMode) -> Result<AppRun> {
    let rt = Runtime::new(tree, mode)?;
    matmul_northup_on(&rt, cfg)
}

/// Like [`matmul_northup`], on a caller-provided runtime (so callers can
/// enable DAG tracing or inspect the runtime afterwards).
pub fn matmul_northup_on(rt: &Runtime, cfg: &MatmulConfig) -> Result<AppRun> {
    let mode = rt.mode();
    let es = cfg.elem_bytes();
    let n = cfg.n as u64;
    let block = cfg.block as u64;
    let nb = cfg.nb() as u64;
    let shard_a = block * n * es; // row shard: block x n
    let shard_b = n * block * es; // col shard: n x block (row-major k x block)
    let tile_c = block * block * es;

    let root_ctx = rt.root_ctx();
    let root = root_ctx.node();
    let file_bytes = n * n * es;
    // analyze:allow(lease-discipline): matrices live for the whole run; the caller's Runtime reclaims them on drop
    let a_file = rt.alloc(file_bytes, root)?;
    let b_file = rt.alloc(file_bytes, root)?;
    let c_file = rt.alloc(file_bytes, root)?;

    // Preprocessing (uncharged, as in the paper): write A row-major and B in
    // column-shard-major layout.
    let (a_mat, b_mat) = when_real(mode, || {
        let am = DenseMatrix::random(cfg.n, cfg.n, cfg.seed);
        let bm = DenseMatrix::random(cfg.n, cfg.n, cfg.seed + 1);
        rt.write_slice(a_file, 0, &f32s_to_bytes(&am.data))?;
        for j in 0..nb {
            let shard = bm.extract_block(0, (j * block) as usize, cfg.n, cfg.block);
            rt.write_slice(b_file, j * shard_b, &f32s_to_bytes(&shard.data))?;
        }
        Ok((am, bm))
    })?
    .unzip();

    // Staging level (first child of the root).
    let stage_node = *rt.tree().children(root).first().expect("staging level");
    let a_stage = rt.alloc(shard_a, stage_node)?;
    // Prefetching needs at least double buffering (see the tile loop below).
    let ring = cfg.ring.max(2);
    let b_stage: Vec<BufferHandle> = (0..ring)
        .map(|_| rt.alloc(shard_b, stage_node))
        .collect::<Result<_>>()?;
    let c_stage: Vec<BufferHandle> = (0..ring)
        .map(|_| rt.alloc(tile_c, stage_node))
        .collect::<Result<_>>()?;

    // Deeper chain (discrete GPU / exascale): whole-shard staging per level.
    let chain = chain_below(rt.tree(), stage_node);
    let deep: Vec<DeepBufs> = chain
        .iter()
        .map(|&node| {
            Ok(DeepBufs {
                node,
                a: rt.alloc(shard_a, node)?,
                b: rt.alloc(shard_b, node)?,
                c: rt.alloc(tile_c, node)?,
            })
        })
        .collect::<Result<_>>()?;

    // The compute leaf and its GPU model.
    let leaf_node = deep.last().map(|d| d.node).unwrap_or(stage_node);
    let gpu = rt
        .tree()
        .node(leaf_node)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("leaf has a GPU");
    let gpu_model = model_for(&gpu.name);
    let kernel_time = gpu_model.gemm_time(block, block, n);

    // Tiles in row-shard-major order; loads for tile t+1 are issued before
    // tile t's compute and write-back (software pipelining through the
    // paper's multi-stage transfer queues), so the storage device streams
    // ahead instead of head-of-line blocking behind result writes.
    let stage_ctx = rt.ctx_at(stage_node);
    let a_ring = [a_stage, rt.alloc(shard_a, stage_node)?];
    let tiles = nb * nb;
    let issue_loads = |t: u64| -> Result<()> {
        let (i, j) = (t / nb, t % nb);
        if j == 0 {
            // New row shard of A — the §IV-A reuse optimization keeps it
            // staged for the whole row of tiles.
            root_ctx.spawn(0, |_| {}); // work-queue bookkeeping
            rt.move_data(a_ring[(i % 2) as usize], 0, a_file, i * shard_a, shard_a)?;
        }
        let r = (t % ring as u64) as usize;
        rt.move_data(b_stage[r], 0, b_file, j * shard_b, shard_b)?;
        Ok(())
    };
    issue_loads(0)?;
    for t in 0..tiles {
        let (i, j) = (t / nb, t % nb);
        if t + 1 < tiles {
            issue_loads(t + 1)?;
        }
        {
            let a_stage = a_ring[(i % 2) as usize];
            let r = (t % ring as u64) as usize;
            let a_new = j == 0;

            // Push down the deeper chain (whole shards, A reused).
            let (mut cur_a, mut cur_b) = (a_stage, b_stage[r]);
            for d in &deep {
                if a_new {
                    rt.move_data(d.a, 0, cur_a, 0, shard_a)?;
                }
                rt.move_data(d.b, 0, cur_b, 0, shard_b)?;
                cur_a = d.a;
                cur_b = d.b;
            }
            let leaf_c = deep.last().map(|d| d.c).unwrap_or(c_stage[r]);

            rt.charge_compute(
                leaf_node,
                ProcKind::Gpu,
                kernel_time,
                &[cur_a, cur_b],
                &[leaf_c],
                &format!("gemm tile ({i},{j})"),
            )?;

            // Real kernel execution on the leaf's bytes.
            if mode == ExecMode::Real {
                let mut ab = vec![0u8; shard_a as usize];
                let mut bb = vec![0u8; shard_b as usize];
                rt.read_slice(cur_a, 0, &mut ab)?;
                rt.read_slice(cur_b, 0, &mut bb)?;
                let am = DenseMatrix {
                    rows: cfg.block,
                    cols: cfg.n,
                    data: northup_kernels::bytes_to_f32s(&ab),
                };
                let bm = DenseMatrix {
                    rows: cfg.n,
                    cols: cfg.block,
                    data: northup_kernels::bytes_to_f32s(&bb),
                };
                let mut cm = DenseMatrix::zeros(cfg.block, cfg.block);
                matmul_tiled(&am, &bm, &mut cm, LEAF_TILE);
                rt.write_slice(leaf_c, 0, &f32s_to_bytes(&cm.data))?;
            }

            // Pull the result tile back up the chain, then out to storage.
            let mut cur_c = leaf_c;
            for d in deep.iter().rev().skip(1) {
                rt.move_data(d.c, 0, cur_c, 0, tile_c)?;
                cur_c = d.c;
            }
            if !deep.is_empty() {
                rt.move_data(c_stage[r], 0, cur_c, 0, tile_c)?;
                cur_c = c_stage[r];
            }
            stage_ctx.move_up(c_file, (i * nb + j) * tile_c, cur_c, 0, tile_c)?;
        }
    }

    // Verification: reassemble C from its block-major layout.
    let mut checksum = None;
    let mut verified = None;
    if let (Some(am), Some(bm)) = (&a_mat, &b_mat) {
        let mut cm = DenseMatrix::zeros(cfg.n, cfg.n);
        for i in 0..nb {
            for j in 0..nb {
                let mut tile = vec![0u8; tile_c as usize];
                rt.read_slice(c_file, (i * nb + j) * tile_c, &mut tile)?;
                let tm = DenseMatrix {
                    rows: cfg.block,
                    cols: cfg.block,
                    data: northup_kernels::bytes_to_f32s(&tile),
                };
                cm.insert_block((i * block) as usize, (j * block) as usize, &tm);
            }
        }
        checksum = Some(cm.checksum());
        if cfg.n <= 256 {
            let mut oracle = DenseMatrix::zeros(cfg.n, cfg.n);
            matmul_naive(am, bm, &mut oracle);
            verified = Some(oracle.max_abs_diff(&cm) < 1e-3 * cfg.n as f32);
        }
    }

    Ok(AppRun {
        name: "matmul/northup".into(),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Out-of-core matmul with the k dimension split as well (the "dot
/// product at the block level" of the paper's Fig. 3): every operand moves
/// as a `block x block` tile, and C tiles accumulate partial sums over the
/// k tiles. This is the schedule needed once even a single row shard
/// (`block x n`) no longer fits the staging level — the price is that C
/// tiles must round-trip for accumulation unless they stay resident, so we
/// keep the current C tile staged across the whole k loop (write-back once
/// per (i, j)).
pub fn matmul_northup_ksplit(cfg: &MatmulConfig, tree: Tree, mode: ExecMode) -> Result<AppRun> {
    let rt = Runtime::new(tree, mode)?;
    let es = cfg.elem_bytes();
    let n = cfg.n as u64;
    let block = cfg.block as u64;
    let nb = cfg.nb() as u64;
    let tile = block * block * es;

    let root = rt.tree().root();
    // Storage layout: all three matrices tile-major (tile (r, c) at offset
    // (r * nb + c) * tile), written by preprocessing.
    // analyze:allow(lease-discipline): matrices live for the whole run; the caller's Runtime reclaims them on drop
    let a_file = rt.alloc(n * n * es, root)?;
    let b_file = rt.alloc(n * n * es, root)?;
    let c_file = rt.alloc(n * n * es, root)?;

    let (a_mat, b_mat) = when_real(mode, || {
        let am = DenseMatrix::random(cfg.n, cfg.n, cfg.seed);
        let bm = DenseMatrix::random(cfg.n, cfg.n, cfg.seed + 1);
        for (m, file) in [(&am, a_file), (&bm, b_file)] {
            for r in 0..nb {
                for c in 0..nb {
                    let t = m.extract_block(
                        (r * block) as usize,
                        (c * block) as usize,
                        cfg.block,
                        cfg.block,
                    );
                    rt.write_slice(file, (r * nb + c) * tile, &f32s_to_bytes(&t.data))?;
                }
            }
        }
        Ok((am, bm))
    })?
    .unzip();

    let stage = *rt.tree().children(root).first().expect("staging level");
    let gpu = rt
        .tree()
        .node(stage)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("k-split schedule expects the GPU at the staging leaf");
    let kernel_time = model_for(&gpu.name).gemm_time(block, block, block);

    let ring = cfg.ring.max(2);
    let a_stage: Vec<BufferHandle> = (0..ring)
        .map(|_| rt.alloc(tile, stage))
        .collect::<Result<_>>()?;
    let b_stage: Vec<BufferHandle> = (0..ring)
        .map(|_| rt.alloc(tile, stage))
        .collect::<Result<_>>()?;
    let c_stage = rt.alloc(tile, stage)?;

    // Host-side accumulator for Real mode (the staged C tile's contents).
    let mut acc = DenseMatrix::zeros(cfg.block, cfg.block);

    let load = |t: u64, i: u64, j: u64| -> Result<()> {
        // Tile t of the (i, j) k-loop: A(i, t) and B(t, j).
        let r = (t % ring as u64) as usize;
        rt.move_data(a_stage[r], 0, a_file, (i * nb + t) * tile, tile)?;
        rt.move_data(b_stage[r], 0, b_file, (t * nb + j) * tile, tile)?;
        Ok(())
    };

    for i in 0..nb {
        for j in 0..nb {
            if mode == ExecMode::Real {
                acc = DenseMatrix::zeros(cfg.block, cfg.block);
            }
            load(0, i, j)?;
            for t in 0..nb {
                if t + 1 < nb {
                    load(t + 1, i, j)?;
                }
                let r = (t % ring as u64) as usize;
                rt.charge_compute(
                    stage,
                    ProcKind::Gpu,
                    kernel_time,
                    &[a_stage[r], b_stage[r], c_stage],
                    &[c_stage],
                    &format!("gemm k-tile ({i},{j},{t})"),
                )?;
                if mode == ExecMode::Real {
                    let mut ab = vec![0u8; tile as usize];
                    let mut bb = vec![0u8; tile as usize];
                    rt.read_slice(a_stage[r], 0, &mut ab)?;
                    rt.read_slice(b_stage[r], 0, &mut bb)?;
                    let am = DenseMatrix {
                        rows: cfg.block,
                        cols: cfg.block,
                        data: northup_kernels::bytes_to_f32s(&ab),
                    };
                    let bm = DenseMatrix {
                        rows: cfg.block,
                        cols: cfg.block,
                        data: northup_kernels::bytes_to_f32s(&bb),
                    };
                    matmul_tiled(&am, &bm, &mut acc, LEAF_TILE);
                }
            }
            if mode == ExecMode::Real {
                rt.write_slice(c_stage, 0, &f32s_to_bytes(&acc.data))?;
            }
            rt.move_data(c_file, (i * nb + j) * tile, c_stage, 0, tile)?;
        }
    }

    let mut checksum = None;
    let mut verified = None;
    if let (Some(am), Some(bm)) = (&a_mat, &b_mat) {
        let mut cm = DenseMatrix::zeros(cfg.n, cfg.n);
        for r in 0..nb {
            for c in 0..nb {
                let mut bytes = vec![0u8; tile as usize];
                rt.read_slice(c_file, (r * nb + c) * tile, &mut bytes)?;
                cm.insert_block(
                    (r * block) as usize,
                    (c * block) as usize,
                    &DenseMatrix {
                        rows: cfg.block,
                        cols: cfg.block,
                        data: northup_kernels::bytes_to_f32s(&bytes),
                    },
                );
            }
        }
        checksum = Some(cm.checksum());
        if cfg.n <= 256 {
            let mut oracle = DenseMatrix::zeros(cfg.n, cfg.n);
            matmul_naive(am, bm, &mut oracle);
            verified = Some(oracle.max_abs_diff(&cm) < 1e-3 * cfg.n as f32);
        }
    }

    Ok(AppRun {
        name: "matmul/northup-ksplit".into(),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Run the Northup matmul over the 2-level APU preset with a given storage.
pub fn matmul_apu(
    cfg: &MatmulConfig,
    storage: northup_hw::DeviceSpec,
    mode: ExecMode,
) -> Result<AppRun> {
    matmul_northup(cfg, northup::presets::apu_two_level(storage), mode)
}

/// Convenience for tests: contexts must see a chain even when unused.
pub fn chain_depth(tree: &Tree) -> usize {
    chain_below(tree, tree.root()).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_hw::catalog;

    #[test]
    fn northup_small_matches_reference_on_apu() {
        let cfg = MatmulConfig::small();
        let run = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true), "{run:?}");
    }

    #[test]
    fn northup_small_matches_reference_on_three_levels() {
        let cfg = MatmulConfig::small();
        let tree = northup::presets::discrete_gpu_three_level(catalog::hdd_wd5000());
        let run = matmul_northup(&cfg, tree, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn northup_matches_in_memory_checksum() {
        let cfg = MatmulConfig::small();
        let a = matmul_in_memory(&cfg, ExecMode::Real).unwrap();
        let b = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        let (ca, cb) = (a.checksum.unwrap(), b.checksum.unwrap());
        assert!(
            (ca - cb).abs() <= 1e-6 * ca.abs().max(1.0),
            "checksums {ca} vs {cb}"
        );
    }

    #[test]
    fn paper_scale_modeled_runs_without_real_memory() {
        let cfg = MatmulConfig::paper();
        let base = matmul_in_memory(&cfg, ExecMode::Modeled).unwrap();
        let ssd = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        let slowdown = ssd.slowdown_vs(&base);
        // Compute-bound GEMM hides its I/O: a few percent at most (paper: 5%).
        assert!(
            (1.0..1.25).contains(&slowdown),
            "gemm ssd slowdown {slowdown}"
        );
    }

    #[test]
    fn disk_is_slower_than_ssd_but_still_mostly_hidden() {
        let cfg = MatmulConfig::paper();
        let base = matmul_in_memory(&cfg, ExecMode::Modeled).unwrap();
        let ssd = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        let hdd = matmul_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled).unwrap();
        let s_ssd = ssd.slowdown_vs(&base);
        let s_hdd = hdd.slowdown_vs(&base);
        assert!(s_hdd > s_ssd);
        assert!(s_hdd < 2.0, "matmul disk overhead mostly hidden: {s_hdd}");
    }

    #[test]
    fn modeled_and_real_have_identical_timing() {
        // The virtual timeline must not depend on whether bytes moved.
        let cfg = MatmulConfig::small();
        let real = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        let modeled = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        assert_eq!(real.makespan(), modeled.makespan());
    }

    #[test]
    fn ksplit_matches_reference_and_in_memory() {
        let cfg = MatmulConfig {
            n: 64,
            block: 16,
            ring: 2,
            seed: 13,
        };
        let tree = northup::presets::apu_two_level(catalog::ssd_hyperx_predator());
        let run = matmul_northup_ksplit(&cfg, tree, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
        let base = matmul_in_memory(&cfg, ExecMode::Real).unwrap();
        let (ca, cb) = (base.checksum.unwrap(), run.checksum.unwrap());
        assert!((ca - cb).abs() <= 1e-6 * ca.abs().max(1.0));
    }

    #[test]
    fn ksplit_reads_more_but_needs_less_staging() {
        // The k-split schedule re-reads operands (no row-shard residency)
        // but its staging footprint is only a few block tiles — the trade
        // the paper's Fig. 3 dot-product variant makes.
        let cfg = MatmulConfig::paper();
        let shard = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        let ksplit = matmul_northup_ksplit(
            &cfg,
            northup::presets::apu_two_level(catalog::ssd_hyperx_predator()),
            ExecMode::Modeled,
        )
        .unwrap();
        let io = |run: &AppRun| {
            run.report
                .io
                .iter()
                .find(|(n, _)| n == "hyperx-predator")
                .map(|(_, t)| t.bytes_read)
                .unwrap()
        };
        assert!(io(&ksplit) > io(&shard), "k-split re-reads operands");
        // Both still compute-bound on the APU: similar makespans.
        let ratio = ksplit.makespan().as_secs_f64() / shard.makespan().as_secs_f64();
        assert!((0.9..1.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn auto_blocking_reproduces_the_paper_choice() {
        let tree = northup::presets::apu_two_level(catalog::ssd_hyperx_predator());
        let cfg = MatmulConfig::auto(&tree, 16 * 1024, 1).unwrap();
        assert_eq!(cfg.block, 4 * 1024, "the paper's manual 4k blocking");
        // And at a small scale the planned config runs and verifies.
        let cfg = MatmulConfig::auto(&tree, 64, 1).unwrap();
        let run = matmul_northup(&cfg, tree, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn indivisible_block_is_rejected() {
        let cfg = MatmulConfig {
            n: 100,
            block: 48,
            ring: 2,
            seed: 0,
        };
        let _ = matmul_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real);
    }
}
