//! Profile-guided task-to-processor mapping (paper §III-E).
//!
//! "By profiling the execution of earlier scheduled chunks, the system can
//! provide useful information to subsequent scheduling and task-processor
//! mapping." At an APU leaf both a CPU and a GPU are attached; which wins
//! depends on the chunk shape (the GPU's launch overhead dominates tiny
//! blocks; its throughput dominates large ones). The [`AdaptiveMapper`]
//! probes each processor on the first chunks, then routes the rest to the
//! device with the best observed throughput — re-probing periodically so
//! a phase change is noticed.

use crate::calibration::model_for;
use crate::report::AppRun;
use northup::{ExecMode, ProcKind, Result, Runtime};
use northup_kernels::ProcModel;
use northup_sim::SimDur;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Online processor chooser based on observed chunk throughput.
#[derive(Debug, Clone)]
pub struct AdaptiveMapper {
    /// (work units done, busy time) per processor.
    stats: HashMap<ProcKind, (f64, SimDur)>,
    /// Remaining forced probes per processor.
    probes_left: Vec<(ProcKind, usize)>,
    /// Chunks between periodic re-probes of the losing device.
    reprobe_every: usize,
    since_reprobe: usize,
}

impl AdaptiveMapper {
    /// A mapper over `kinds`, probing each `probes` times up front and
    /// re-probing the slower device every `reprobe_every` chunks.
    pub fn new(kinds: &[ProcKind], probes: usize, reprobe_every: usize) -> Self {
        AdaptiveMapper {
            stats: kinds.iter().map(|&k| (k, (0.0, SimDur::ZERO))).collect(),
            probes_left: kinds.iter().map(|&k| (k, probes)).collect(),
            reprobe_every: reprobe_every.max(1),
            since_reprobe: 0,
        }
    }

    /// Observed throughput (work/s) of a processor, if it has run anything.
    pub fn rate(&self, kind: ProcKind) -> Option<f64> {
        let (work, busy) = self.stats.get(&kind)?;
        if busy.is_zero() {
            None
        } else {
            Some(work / busy.as_secs_f64())
        }
    }

    /// Pick the processor for the next chunk.
    pub fn choose(&mut self) -> ProcKind {
        // Outstanding probes first (deterministic order).
        if let Some(slot) = self.probes_left.iter_mut().find(|(_, n)| *n > 0) {
            slot.1 -= 1;
            return slot.0;
        }
        // Periodic re-probe of the currently losing device.
        self.since_reprobe += 1;
        let best = self.best();
        if self.since_reprobe >= self.reprobe_every {
            self.since_reprobe = 0;
            if let Some(&(loser, _)) = self.probes_left.iter().find(|(k, _)| Some(*k) != best) {
                return loser;
            }
        }
        best.expect("probed at least one device")
    }

    /// The device with the best observed rate.
    pub fn best(&self) -> Option<ProcKind> {
        self.stats
            .iter()
            .filter_map(|(&k, _)| self.rate(k).map(|r| (k, r)))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, _)| k)
    }

    /// Record a finished chunk.
    pub fn observe(&mut self, kind: ProcKind, work: f64, dur: SimDur) {
        let e = self.stats.entry(kind).or_insert((0.0, SimDur::ZERO));
        e.0 += work;
        e.1 += dur;
    }
}

/// Outcome of one adaptive stencil run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AdaptiveOutcome {
    /// The run itself.
    pub run: AppRun,
    /// Chunks executed per processor.
    pub per_device: Vec<(ProcKind, usize)>,
    /// The device the mapper settled on.
    pub settled: ProcKind,
}

/// Scenario: a stream of equal stencil chunks at an APU leaf; choose the
/// processor per chunk. `block` controls who should win — the GPU's launch
/// overhead dominates tiny blocks, its bandwidth dominates large ones.
pub fn adaptive_stencil_stream(
    chunks: usize,
    block: usize,
    steps: u64,
    policy: Policy,
) -> Result<AdaptiveOutcome> {
    let tree = northup::presets::apu_two_level(northup_hw::catalog::ssd_hyperx_predator());
    let rt = Runtime::new(tree, ExecMode::Modeled)?;
    let stage = northup::NodeId(1);
    let bytes = (block * block * 4) as u64;
    let cells = (block * block) as u64;
    let work = cells as f64 * steps as f64;

    let gpu_model = model_for("apu-gpu");
    let cpu_model = model_for("apu-cpu");
    let time_on = |m: &ProcModel| m.stencil_time(cells, steps);

    let file = rt.alloc(bytes * chunks as u64, rt.tree().root())?;
    let mut mapper = AdaptiveMapper::new(&[ProcKind::Gpu, ProcKind::Cpu], 1, 16);
    let mut counts: HashMap<ProcKind, usize> = HashMap::new();
    for c in 0..chunks as u64 {
        let stage_buf = rt.alloc(bytes, stage)?;
        rt.move_data(stage_buf, 0, file, c * bytes, bytes)?;
        let kind = match policy {
            Policy::Adaptive => mapper.choose(),
            Policy::Static(k) => k,
        };
        let dur = match kind {
            ProcKind::Gpu => time_on(&gpu_model),
            _ => time_on(&cpu_model),
        };
        rt.charge_compute(stage, kind, dur, &[stage_buf], &[stage_buf], "chunk")?;
        mapper.observe(kind, work, dur);
        *counts.entry(kind).or_insert(0) += 1;
        rt.release(stage_buf)?;
    }

    let settled = mapper.best().expect("ran chunks");
    let mut per_device: Vec<(ProcKind, usize)> = counts.into_iter().collect();
    per_device.sort_by_key(|(k, _)| format!("{k}"));
    Ok(AdaptiveOutcome {
        run: AppRun {
            name: format!("adaptive-stencil/{policy:?}"),
            report: rt.report(),
            verified: None,
            checksum: None,
        },
        per_device,
        settled,
    })
}

/// Mapping policy under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Profile-guided (§III-E).
    Adaptive,
    /// Always the given device.
    Static(ProcKind),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mapper_probes_then_settles() {
        let mut m = AdaptiveMapper::new(&[ProcKind::Gpu, ProcKind::Cpu], 2, 1000);
        // Four probes (two per device) come first.
        let mut probes = Vec::new();
        for _ in 0..4 {
            let k = m.choose();
            // GPU is 4x faster in this synthetic feed.
            let dur = if k == ProcKind::Gpu {
                SimDur::from_millis(10)
            } else {
                SimDur::from_millis(40)
            };
            m.observe(k, 1.0, dur);
            probes.push(k);
        }
        assert_eq!(probes.iter().filter(|&&k| k == ProcKind::Gpu).count(), 2);
        // Then it settles on the GPU.
        for _ in 0..10 {
            let k = m.choose();
            m.observe(
                k,
                1.0,
                SimDur::from_millis(if k == ProcKind::Gpu { 10 } else { 40 }),
            );
        }
        assert_eq!(m.best(), Some(ProcKind::Gpu));
        assert!(m.rate(ProcKind::Gpu).unwrap() > m.rate(ProcKind::Cpu).unwrap());
    }

    #[test]
    fn reprobe_notices_a_phase_change() {
        let mut m = AdaptiveMapper::new(&[ProcKind::Gpu, ProcKind::Cpu], 1, 5);
        // Initially GPU wins.
        for _ in 0..8 {
            let k = m.choose();
            m.observe(
                k,
                1.0,
                SimDur::from_millis(if k == ProcKind::Gpu { 5 } else { 20 }),
            );
        }
        assert_eq!(m.best(), Some(ProcKind::Gpu));
        // Phase change: GPU becomes terrible. Re-probes must flip the choice.
        for _ in 0..200 {
            let k = m.choose();
            m.observe(
                k,
                1.0,
                SimDur::from_millis(if k == ProcKind::Gpu { 500 } else { 20 }),
            );
        }
        assert_eq!(m.best(), Some(ProcKind::Cpu), "phase change detected");
    }

    #[test]
    fn large_blocks_settle_on_the_gpu() {
        let out = adaptive_stencil_stream(32, 1024, 8, Policy::Adaptive).unwrap();
        assert_eq!(out.settled, ProcKind::Gpu);
        let gpu_chunks = out
            .per_device
            .iter()
            .find(|(k, _)| *k == ProcKind::Gpu)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(gpu_chunks >= 28, "{:?}", out.per_device);
    }

    #[test]
    fn tiny_blocks_settle_on_the_cpu() {
        // 8x8 chunks: the GPU's 15us launch overhead dwarfs the work.
        let out = adaptive_stencil_stream(32, 8, 1, Policy::Adaptive).unwrap();
        assert_eq!(out.settled, ProcKind::Cpu, "{:?}", out.per_device);
    }

    #[test]
    fn adaptive_is_close_to_the_best_static_choice() {
        for block in [8usize, 1024] {
            let adaptive = adaptive_stencil_stream(64, block, 4, Policy::Adaptive).unwrap();
            let gpu = adaptive_stencil_stream(64, block, 4, Policy::Static(ProcKind::Gpu)).unwrap();
            let cpu = adaptive_stencil_stream(64, block, 4, Policy::Static(ProcKind::Cpu)).unwrap();
            let best = gpu
                .run
                .makespan()
                .as_secs_f64()
                .min(cpu.run.makespan().as_secs_f64());
            let got = adaptive.run.makespan().as_secs_f64();
            assert!(
                got <= best * 1.25,
                "block {block}: adaptive {got} vs best static {best}"
            );
        }
    }
}
