//! Out-of-core HotSpot-2D thermal simulation on Northup (paper §IV-B, Fig. 4).
//!
//! The grid lives on storage; each pass processes `block x block` tiles.
//! A tile is loaded *with its borders* — the paper packs the non-contiguous
//! east/west borders into compact vectors; we generalize the border width to
//! the temporal-blocking depth `steps_per_pass` and move the whole halo
//! rectangle with a strided transfer (row-granular I/O, one charged op).
//! The leaf kernel advances `steps_per_pass` time steps per load (trapezoid
//! temporal blocking, exact — see `northup_kernels::stencil`), then the core
//! region is written to the output file. Input and output files ping-pong
//! across passes.

use crate::calibration::{model_for, HOTSPOT_STEPS_PER_PASS};
use crate::host::when_real;
use crate::report::AppRun;
use northup::{BufferHandle, ExecMode, ProcKind, Result, Runtime, Tree};
use northup_kernels::{
    bytes_to_f32s, f32s_to_bytes, multi_step_reference, step_halo_block, DenseMatrix, HaloBlock,
    HotSpotParams,
};

/// Configuration of one HotSpot scenario.
#[derive(Debug, Clone)]
pub struct HotspotConfig {
    /// Grid dimension (square).
    pub n: usize,
    /// DRAM blocking (the paper's 8k x 8k).
    pub block: usize,
    /// Time steps advanced per out-of-core pass (= halo width).
    pub steps_per_pass: usize,
    /// Number of out-of-core passes.
    pub passes: usize,
    /// Staging ring depth.
    pub ring: usize,
    /// Input seed.
    pub seed: u64,
}

impl HotspotConfig {
    /// Paper-scale 16k grid, 8k blocking (§IV-B / §V-A).
    pub fn paper() -> Self {
        HotspotConfig {
            n: crate::calibration::paper::HOTSPOT_N,
            block: crate::calibration::paper::HOTSPOT_BLOCK,
            steps_per_pass: HOTSPOT_STEPS_PER_PASS,
            passes: 1,
            ring: 2,
            seed: 3,
        }
    }

    /// Plan the blocking automatically from the tree's capacities
    /// (paper §III-B). On the paper's APU tree at a 16k grid with 64-step
    /// temporal blocking this reproduces the hand-tuned 8k x 8k blocking.
    pub fn auto(
        tree: &Tree,
        n: usize,
        steps_per_pass: usize,
        passes: usize,
        seed: u64,
    ) -> Result<Self> {
        assert!(n.is_power_of_two(), "auto planning expects power-of-two n");
        let ring = 2;
        let plan = northup::plan_blocks(
            tree,
            &northup::pow2_candidates(16, n),
            northup::DEFAULT_HEADROOM,
            staging_footprint(steps_per_pass, ring),
        )?;
        Ok(HotspotConfig {
            n,
            block: plan.staging_block().min(n),
            steps_per_pass,
            passes,
            ring,
            seed,
        })
    }

    /// Laptop-scale grid for Real-mode verification.
    pub fn small() -> Self {
        HotspotConfig {
            n: 48,
            block: 16,
            steps_per_pass: 3,
            passes: 2,
            ring: 2,
            seed: 3,
        }
    }

    /// Total simulated time steps.
    pub fn total_steps(&self) -> usize {
        self.steps_per_pass * self.passes
    }

    fn tiles(&self) -> usize {
        assert!(
            self.block > 0 && self.n.is_multiple_of(self.block),
            "block {} must divide n {}",
            self.block,
            self.n
        );
        self.n / self.block
    }
}

/// Staging working set of this module's schedule, for the auto-planner:
/// `ring` (temperature + power) halo regions plus `ring` output cores.
pub fn staging_footprint(halo: usize, ring: usize) -> impl Fn(usize, usize) -> u64 {
    move |_level, b| {
        let region = ((b + 2 * halo) * (b + 2 * halo) * 4) as u64;
        let core = (b * b * 4) as u64;
        ring as u64 * (2 * region + core)
    }
}

fn inputs(cfg: &HotspotConfig) -> (DenseMatrix, DenseMatrix) {
    let temp = DenseMatrix::from_fn(cfg.n, cfg.n, |r, c| {
        80.0 + ((r.wrapping_mul(31) ^ c.wrapping_mul(17) ^ cfg.seed as usize) % 23) as f32
    });
    let power = DenseMatrix::from_fn(cfg.n, cfg.n, |r, c| ((r + c) % 5) as f32 * 0.2);
    (temp, power)
}

/// In-memory baseline: grid resident, one GPU timeline for all steps.
pub fn hotspot_in_memory(cfg: &HotspotConfig, mode: ExecMode) -> Result<AppRun> {
    let tree = northup::presets::in_memory();
    let rt = Runtime::new(tree, mode)?;
    let root = rt.root_ctx();
    let n2 = (cfg.n * cfg.n) as u64;
    // analyze:allow(lease-discipline): grids live for the whole run; the run's Runtime reclaims them on drop
    let temp = root.alloc(n2 * 4)?;
    let power = root.alloc(n2 * 4)?;
    let out = root.alloc(n2 * 4)?;

    let gpu = root
        .procs()
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("in-memory preset has a GPU");
    let dur = model_for(&gpu.name).stencil_time(n2, cfg.total_steps() as u64);
    root.compute(ProcKind::Gpu, dur, &[temp, power], &[out], "hotspot full")?;

    let mut checksum = None;
    let mut verified = None;
    if mode == ExecMode::Real {
        let (tm, pm) = inputs(cfg);
        rt.write_slice(temp, 0, &f32s_to_bytes(&tm.data))?;
        rt.write_slice(power, 0, &f32s_to_bytes(&pm.data))?;
        let prm = HotSpotParams::default();
        let result = multi_step_reference(&tm, &pm, cfg.total_steps(), &prm);
        rt.write_slice(out, 0, &f32s_to_bytes(&result.data))?;
        checksum = Some(result.checksum());
        verified = Some(true); // by construction (this IS the oracle)
    }

    Ok(AppRun {
        name: "hotspot/in-memory".into(),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Out-of-core Northup HotSpot over a chain topology.
pub fn hotspot_northup(cfg: &HotspotConfig, tree: Tree, mode: ExecMode) -> Result<AppRun> {
    let rt = Runtime::new(tree, mode)?;
    hotspot_northup_on(&rt, cfg)
}

/// Like [`hotspot_northup`], on a caller-provided runtime.
pub fn hotspot_northup_on(rt: &Runtime, cfg: &HotspotConfig) -> Result<AppRun> {
    let mode = rt.mode();
    let n = cfg.n;
    let halo = cfg.steps_per_pass;
    let tiles = cfg.tiles();
    let row_bytes = (n * 4) as u64;

    let root = rt.tree().root();
    let n2b = (n * n * 4) as u64;
    // Ping-pong temperature files + the power file.
    // analyze:allow(lease-discipline): grids live for the whole run; the caller's Runtime reclaims them on drop
    let t_files = [rt.alloc(n2b, root)?, rt.alloc(n2b, root)?];
    let p_file = rt.alloc(n2b, root)?;

    let (t_mat, p_mat) = when_real(mode, || {
        let (tm, pm) = inputs(cfg);
        rt.write_slice(t_files[0], 0, &f32s_to_bytes(&tm.data))?;
        rt.write_slice(p_file, 0, &f32s_to_bytes(&pm.data))?;
        Ok((tm, pm))
    })?
    .unzip();

    let stage_node = *rt.tree().children(root).first().expect("staging level");
    let max_region = ((cfg.block + 2 * halo) * (cfg.block + 2 * halo) * 4) as u64;
    let core_bytes = (cfg.block * cfg.block * 4) as u64;
    // Prefetching tile t+1 while tile t computes requires at least two
    // staging slots (real-byte safety as well as pipelining).
    let ring = cfg.ring.max(2);
    let in_stage: Vec<BufferHandle> = (0..ring)
        .map(|_| rt.alloc(max_region, stage_node))
        .collect::<Result<_>>()?;
    let pw_stage: Vec<BufferHandle> = (0..ring)
        .map(|_| rt.alloc(max_region, stage_node))
        .collect::<Result<_>>()?;
    let out_stage: Vec<BufferHandle> = (0..ring)
        .map(|_| rt.alloc(core_bytes, stage_node))
        .collect::<Result<_>>()?;

    // Deeper chain for discrete-GPU / exascale trees: the halo region moves
    // on to the leaf and the core result comes back through the staging
    // level (one buffer set per level; the PCIe link pipelines fine).
    let mut chain: Vec<northup::NodeId> = Vec::new();
    {
        let mut cur = stage_node;
        while let Some(&c) = rt.tree().children(cur).first() {
            chain.push(c);
            cur = c;
        }
    }
    let deep: Vec<[BufferHandle; 3]> = chain
        .iter()
        .map(|&node| {
            Ok([
                rt.alloc(max_region, node)?,
                rt.alloc(max_region, node)?,
                rt.alloc(core_bytes, node)?,
            ])
        })
        .collect::<Result<_>>()?;
    let leaf_node = chain.last().copied().unwrap_or(stage_node);
    let gpu = rt
        .tree()
        .node(leaf_node)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("compute leaf has a GPU");
    let gpu_model = model_for(&gpu.name);
    let prm = HotSpotParams::default();

    // Geometry of one tile's clipped halo rectangle.
    let geom = |bi: usize, bj: usize| {
        let (r0, c0) = (bi * cfg.block, bj * cfg.block);
        let north = halo.min(r0);
        let west = halo.min(c0);
        let south = halo.min(n - (r0 + cfg.block));
        let east = halo.min(n - (c0 + cfg.block));
        let rr0 = r0 - north;
        let cc0 = c0 - west;
        let hh = cfg.block + north + south;
        let ww = cfg.block + west + east;
        ((r0, c0), [north, south, west, east], (rr0, cc0), (hh, ww))
    };

    for pass in 0..cfg.passes {
        let input = t_files[pass % 2];
        let output = t_files[(pass + 1) % 2];
        // Issue tile t+1's loads before tile t's compute and write-back
        // (multi-stage transfer queues, §III-C) — within the pass only,
        // because the next pass reads this pass's output file.
        let load_tile = |t: usize| -> Result<()> {
            let (bi, bj) = (t / tiles, t % tiles);
            let r = t % ring;
            let (_, _, (rr0, cc0), (hh, ww)) = geom(bi, bj);
            let region_row = (ww * 4) as u64;
            let src_off = (rr0 * n + cc0) as u64 * 4;
            rt.move_data_strided(
                in_stage[r],
                0,
                region_row,
                input,
                src_off,
                row_bytes,
                region_row,
                hh as u64,
            )?;
            rt.move_data_strided(
                pw_stage[r],
                0,
                region_row,
                p_file,
                src_off,
                row_bytes,
                region_row,
                hh as u64,
            )?;
            Ok(())
        };
        let tile_count = tiles * tiles;
        load_tile(0)?;
        for t in 0..tile_count {
            let (bi, bj) = (t / tiles, t % tiles);
            if t + 1 < tile_count {
                load_tile(t + 1)?;
            }
            {
                let r = t % ring;
                let ((r0, c0), [north, south, west, east], _, (hh, ww)) = geom(bi, bj);

                // Push the region down the deeper chain (if any).
                let region_bytes = (hh * ww * 4) as u64;
                let (mut in_c, mut pw_c, mut out_c) = (in_stage[r], pw_stage[r], out_stage[r]);
                for bufs in &deep {
                    rt.move_data(bufs[0], 0, in_c, 0, region_bytes)?;
                    rt.move_data(bufs[1], 0, pw_c, 0, region_bytes)?;
                    in_c = bufs[0];
                    pw_c = bufs[1];
                    out_c = bufs[2];
                }

                // Leaf kernel: steps_per_pass trapezoid steps.
                let dur = gpu_model.stencil_time((hh * ww) as u64, cfg.steps_per_pass as u64);
                rt.charge_compute(
                    leaf_node,
                    ProcKind::Gpu,
                    dur,
                    &[in_c, pw_c],
                    &[out_c],
                    &format!("hotspot tile ({bi},{bj}) pass {pass}"),
                )?;

                if mode == ExecMode::Real {
                    let mut tb = vec![0u8; hh * ww * 4];
                    let mut pb = vec![0u8; hh * ww * 4];
                    rt.read_slice(in_c, 0, &mut tb)?;
                    rt.read_slice(pw_c, 0, &mut pb)?;
                    let hb = HaloBlock {
                        temp: DenseMatrix {
                            rows: hh,
                            cols: ww,
                            data: bytes_to_f32s(&tb),
                        },
                        power: DenseMatrix {
                            rows: hh,
                            cols: ww,
                            data: bytes_to_f32s(&pb),
                        },
                        halo: [north, south, west, east],
                        core_origin: (r0, c0),
                        core_size: (cfg.block, cfg.block),
                    };
                    let core = step_halo_block(&hb, cfg.steps_per_pass, &prm);
                    rt.write_slice(out_c, 0, &f32s_to_bytes(&core.data))?;
                }

                // Pull the core back up the chain into the staging buffer.
                let mut cur_out = out_c;
                for bufs in deep.iter().rev().skip(1) {
                    rt.move_data(bufs[2], 0, cur_out, 0, core_bytes)?;
                    cur_out = bufs[2];
                }
                if !deep.is_empty() {
                    rt.move_data(out_stage[r], 0, cur_out, 0, core_bytes)?;
                }

                // Write the core back to the output file.
                let dst_off = (r0 * n + c0) as u64 * 4;
                rt.move_data_strided(
                    output,
                    dst_off,
                    row_bytes,
                    out_stage[r],
                    0,
                    (cfg.block * 4) as u64,
                    (cfg.block * 4) as u64,
                    cfg.block as u64,
                )?;
            }
        }
    }

    let mut checksum = None;
    let mut verified = None;
    if let (Some(tm), Some(pm)) = (&t_mat, &p_mat) {
        let final_file = t_files[cfg.passes % 2];
        let mut bytes = vec![0u8; n2b as usize];
        rt.read_slice(final_file, 0, &mut bytes)?;
        let got = DenseMatrix {
            rows: n,
            cols: n,
            data: bytes_to_f32s(&bytes),
        };
        let oracle = multi_step_reference(tm, pm, cfg.total_steps(), &HotSpotParams::default());
        checksum = Some(got.checksum());
        verified = Some(oracle.max_abs_diff(&got) < 1e-3);
    }

    Ok(AppRun {
        name: "hotspot/northup".into(),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Fraction of each chunk's rows to place on the GPU when splitting a leaf
/// across both APU devices (§III-E: "work can be spread across devices in a
/// data-parallel fashion"). The optimum equals the GPU's share of combined
/// throughput.
pub fn optimal_gpu_fraction() -> f64 {
    let gpu = model_for("apu-gpu");
    let cpu = model_for("apu-cpu");
    // Memory-bound stencil: throughput ~ mem_bw.
    gpu.mem_bw / (gpu.mem_bw + cpu.mem_bw)
}

/// Out-of-core HotSpot with each chunk's rows split between the APU's GPU
/// and CPU (`gpu_fraction` of the rows to the GPU). Both devices compute
/// concurrently in virtual time (separate processor resources); Real mode
/// executes both halves and verifies the merged result exactly.
pub fn hotspot_split_leaf(
    cfg: &HotspotConfig,
    gpu_fraction: f64,
    storage: northup_hw::DeviceSpec,
    mode: ExecMode,
) -> Result<AppRun> {
    assert!((0.0..=1.0).contains(&gpu_fraction));
    let tree = northup::presets::apu_two_level(storage);
    let rt = Runtime::new(tree, mode)?;
    let n = cfg.n;
    let halo = cfg.steps_per_pass;

    let root = rt.tree().root();
    let n2b = (n * n * 4) as u64;
    // analyze:allow(lease-discipline): grids live for the whole run; the caller's Runtime reclaims them on drop
    let t_files = [rt.alloc(n2b, root)?, rt.alloc(n2b, root)?];
    let p_file = rt.alloc(n2b, root)?;

    let (t_mat, p_mat) = when_real(mode, || {
        let (tm, pm) = inputs(cfg);
        rt.write_slice(t_files[0], 0, &f32s_to_bytes(&tm.data))?;
        rt.write_slice(p_file, 0, &f32s_to_bytes(&pm.data))?;
        Ok((tm, pm))
    })?
    .unzip();

    let stage_node = *rt.tree().children(root).first().expect("staging level");
    let gpu_model = model_for("apu-gpu");
    let cpu_model = model_for("apu-cpu");
    let prm = HotSpotParams::default();

    // One chunk = a horizontal band of the grid (simplest split geometry);
    // the band is loaded with its halo, then its rows are divided between
    // the devices, each computing a trapezoid over its own sub-band (the
    // split line behaves like an internal halo boundary, so each side needs
    // `halo` extra rows from the other — both read the same staged block).
    assert!(
        n.is_multiple_of(cfg.block),
        "block {} must divide n {}",
        cfg.block,
        cfg.n
    );
    let bands = n / cfg.block;
    let gpu_rows = ((cfg.block as f64 * gpu_fraction).round() as usize).min(cfg.block);
    let cpu_rows = cfg.block - gpu_rows;
    let max_region = ((cfg.block + 2 * halo) * n * 4) as u64;
    let in_stage = [
        rt.alloc(max_region, stage_node)?,
        rt.alloc(max_region, stage_node)?,
    ];
    let pw_stage = [
        rt.alloc(max_region, stage_node)?,
        rt.alloc(max_region, stage_node)?,
    ];
    // Each device writes its own half of the band: sharing one output
    // buffer would serialize the devices on a write-after-write hazard.
    let alloc_out = |rows: usize| rt.alloc((rows.max(1) * n * 4) as u64, stage_node);
    let out_gpu = [alloc_out(gpu_rows)?, alloc_out(gpu_rows)?];
    let out_cpu = [alloc_out(cpu_rows)?, alloc_out(cpu_rows)?];

    for pass in 0..cfg.passes {
        let input = t_files[pass % 2];
        let output = t_files[(pass + 1) % 2];
        for b in 0..bands {
            let r = b % 2;
            let r0 = b * cfg.block;
            let north = halo.min(r0);
            let south = halo.min(n - (r0 + cfg.block));
            let rr0 = r0 - north;
            let hh = cfg.block + north + south;
            let region = (hh * n * 4) as u64;
            rt.move_data(in_stage[r], 0, input, (rr0 * n * 4) as u64, region)?;
            rt.move_data(pw_stage[r], 0, p_file, (rr0 * n * 4) as u64, region)?;

            // Device split: top `gpu_rows` of the band to the GPU, rest
            // CPU, concurrently (separate output buffers, shared inputs).
            let cells = |rows: usize| (rows * n) as u64;
            if gpu_rows > 0 {
                let dur =
                    gpu_model.stencil_time(cells(gpu_rows + 2 * halo), cfg.steps_per_pass as u64);
                rt.charge_compute(
                    stage_node,
                    ProcKind::Gpu,
                    dur,
                    &[in_stage[r], pw_stage[r]],
                    &[out_gpu[r]],
                    &format!("band {b} gpu part"),
                )?;
            }
            if cpu_rows > 0 {
                let dur =
                    cpu_model.stencil_time(cells(cpu_rows + 2 * halo), cfg.steps_per_pass as u64);
                rt.charge_compute(
                    stage_node,
                    ProcKind::Cpu,
                    dur,
                    &[in_stage[r], pw_stage[r]],
                    &[out_cpu[r]],
                    &format!("band {b} cpu part"),
                )?;
            }

            if mode == ExecMode::Real {
                // Real compute: both device halves produced from the same
                // staged halo block via the exact trapezoid kernel.
                let mut tb = vec![0u8; region as usize];
                let mut pb = vec![0u8; region as usize];
                rt.read_slice(in_stage[r], 0, &mut tb)?;
                rt.read_slice(pw_stage[r], 0, &mut pb)?;
                let temp = DenseMatrix {
                    rows: hh,
                    cols: n,
                    data: bytes_to_f32s(&tb),
                };
                let power = DenseMatrix {
                    rows: hh,
                    cols: n,
                    data: bytes_to_f32s(&pb),
                };
                for (dev_r0, dev_rows, buf) in [
                    (0usize, gpu_rows, out_gpu[r]),
                    (gpu_rows, cpu_rows, out_cpu[r]),
                ] {
                    if dev_rows == 0 {
                        continue;
                    }
                    // Sub-band with its own clipped halo inside the staged block.
                    let abs0 = r0 + dev_r0; // global first row of this part
                    let top = halo.min(abs0);
                    let bot = halo.min(n - (abs0 + dev_rows));
                    let local0 = (abs0 - top) - rr0;
                    let lh = dev_rows + top + bot;
                    let hb = HaloBlock {
                        temp: temp.extract_block(local0, 0, lh, n),
                        power: power.extract_block(local0, 0, lh, n),
                        halo: [top, bot, 0, 0],
                        core_origin: (abs0, 0),
                        core_size: (dev_rows, n),
                    };
                    let core = step_halo_block(&hb, cfg.steps_per_pass, &prm);
                    rt.write_slice(buf, 0, &f32s_to_bytes(&core.data))?;
                }
            }

            if gpu_rows > 0 {
                rt.move_data(
                    output,
                    (r0 * n * 4) as u64,
                    out_gpu[r],
                    0,
                    (gpu_rows * n * 4) as u64,
                )?;
            }
            if cpu_rows > 0 {
                rt.move_data(
                    output,
                    ((r0 + gpu_rows) * n * 4) as u64,
                    out_cpu[r],
                    0,
                    (cpu_rows * n * 4) as u64,
                )?;
            }
        }
    }

    let mut checksum = None;
    let mut verified = None;
    if let (Some(tm), Some(pm)) = (&t_mat, &p_mat) {
        let final_file = t_files[cfg.passes % 2];
        let mut bytes = vec![0u8; n2b as usize];
        rt.read_slice(final_file, 0, &mut bytes)?;
        let got = DenseMatrix {
            rows: n,
            cols: n,
            data: bytes_to_f32s(&bytes),
        };
        let oracle = multi_step_reference(tm, pm, cfg.total_steps(), &HotSpotParams::default());
        checksum = Some(got.checksum());
        verified = Some(oracle.max_abs_diff(&got) < 1e-3);
    }

    Ok(AppRun {
        name: format!("hotspot/split-{gpu_fraction:.2}"),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Run the Northup HotSpot over the 2-level APU preset.
pub fn hotspot_apu(
    cfg: &HotspotConfig,
    storage: northup_hw::DeviceSpec,
    mode: ExecMode,
) -> Result<AppRun> {
    hotspot_northup(cfg, northup::presets::apu_two_level(storage), mode)
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_hw::catalog;

    #[test]
    fn northup_small_matches_reference() {
        let cfg = HotspotConfig::small();
        let run = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true), "out-of-core result exact");
    }

    #[test]
    fn multiple_passes_stay_exact() {
        let cfg = HotspotConfig {
            passes: 3,
            ..HotspotConfig::small()
        };
        let run = hotspot_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn single_tile_grid_works() {
        let cfg = HotspotConfig {
            n: 16,
            block: 16,
            steps_per_pass: 5,
            passes: 2,
            ring: 2,
            seed: 1,
        };
        let run = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn auto_blocking_reproduces_the_paper_choice() {
        let tree = northup::presets::apu_two_level(catalog::ssd_hyperx_predator());
        let cfg = HotspotConfig::auto(&tree, 16 * 1024, 64, 1, 0).unwrap();
        assert_eq!(cfg.block, 8 * 1024, "the paper's manual 8k blocking");
        let cfg = HotspotConfig::auto(&tree, 64, 3, 2, 0).unwrap();
        let run = hotspot_northup(&cfg, tree, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn northup_three_level_matches_reference() {
        let cfg = HotspotConfig::small();
        let tree = northup::presets::discrete_gpu_three_level(catalog::hdd_wd5000());
        let run = hotspot_northup(&cfg, tree, ExecMode::Real).unwrap();
        assert_eq!(run.verified, Some(true));
    }

    #[test]
    fn northup_checksum_matches_in_memory() {
        let cfg = HotspotConfig::small();
        let a = hotspot_in_memory(&cfg, ExecMode::Real).unwrap();
        let b = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        let (ca, cb) = (a.checksum.unwrap(), b.checksum.unwrap());
        assert!((ca - cb).abs() <= 1e-5 * ca.abs(), "{ca} vs {cb}");
    }

    #[test]
    fn paper_scale_slowdown_bands() {
        let cfg = HotspotConfig::paper();
        let base = hotspot_in_memory(&cfg, ExecMode::Modeled).unwrap();
        let ssd = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        let hdd = hotspot_apu(&cfg, catalog::hdd_wd5000(), ExecMode::Modeled).unwrap();
        let s_ssd = ssd.slowdown_vs(&base);
        let s_hdd = hdd.slowdown_vs(&base);
        // Paper: ~1.3x on SSD, 2-2.5x on disk.
        assert!((1.0..1.8).contains(&s_ssd), "hotspot ssd {s_ssd}");
        assert!((1.6..3.2).contains(&s_hdd), "hotspot hdd {s_hdd}");
        assert!(s_hdd > s_ssd);
    }

    #[test]
    fn split_leaf_is_exact_for_any_fraction() {
        let cfg = HotspotConfig {
            n: 48,
            block: 16,
            steps_per_pass: 3,
            passes: 2,
            ring: 2,
            seed: 3,
        };
        for f in [0.0, 0.3, 0.7, 1.0] {
            let run = hotspot_split_leaf(&cfg, f, catalog::ssd_hyperx_predator(), ExecMode::Real)
                .unwrap();
            assert_eq!(run.verified, Some(true), "fraction {f}");
        }
    }

    #[test]
    fn optimal_split_beats_gpu_only() {
        // SIII-E: spreading work across both APU devices beats GPU-only.
        // 4k bands keep the double-buffered full-width regions within the
        // 2 GB staging budget.
        let cfg = HotspotConfig {
            block: 4 * 1024,
            ..HotspotConfig::paper()
        };
        let f = optimal_gpu_fraction();
        assert!((0.5..1.0).contains(&f), "GPU does most of the work: {f}");
        let gpu_only =
            hotspot_split_leaf(&cfg, 1.0, catalog::ssd_hyperx_predator(), ExecMode::Modeled)
                .unwrap();
        let split =
            hotspot_split_leaf(&cfg, f, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        let speedup = gpu_only.makespan().as_secs_f64() / split.makespan().as_secs_f64();
        assert!(
            speedup > 1.05,
            "split at {f:.2} should beat gpu-only: {speedup:.3}"
        );
        // And a terrible split (mostly CPU) is worse than gpu-only.
        let bad = hotspot_split_leaf(&cfg, 0.1, catalog::ssd_hyperx_predator(), ExecMode::Modeled)
            .unwrap();
        assert!(bad.makespan() > gpu_only.makespan());
    }

    #[test]
    fn timing_is_mode_independent() {
        let cfg = HotspotConfig::small();
        let real = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
        let modeled = hotspot_apu(&cfg, catalog::ssd_hyperx_predator(), ExecMode::Modeled).unwrap();
        assert_eq!(real.makespan(), modeled.makespan());
    }
}
