//! CPU+GPU work-stealing load balancing for HotSpot (paper §V-E, Figs. 10–11).
//!
//! The out-of-core pipeline stays as in [`crate::hotspot`]: chunks stream
//! from the SSD into main memory. At the leaf, instead of one GPU kernel
//! per chunk, the chunk's rows of blocks become tasks in per-consumer
//! queues (Fig. 10): each GPU workgroup and each CPU thread owns a queue;
//! a consumer pops from its own tail and a GPU workgroup steals from the
//! head of a CPU queue when it runs dry. The simulation is the
//! deterministic DES in `northup_sim::workers`; the *real* concurrent
//! counterpart of the same protocol (Chase–Lev deques on real threads) is
//! exercised by `northup-exec` and the `load_balancing` example.
//!
//! The queue count affects GPU throughput through the latency-hiding curve
//! ("multiple workgroups per SIMD engine is needed to fully utilize GPU
//! hardware and hide latency" — 32 queues is best in the paper).

use northup_kernels::latency_hiding_efficiency;
use northup_sim::{
    deal_round_robin, simulate_stealing, Resource, SimDur, SimTime, SimWorker, StealOutcome,
};
use serde::{Deserialize, Serialize};

/// Throughput calibration for the balanced leaf.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeafRates {
    /// Total GPU stencil throughput at full occupancy, cells/s.
    pub gpu_cells_per_sec: f64,
    /// Total CPU (all threads) stencil throughput, cells/s.
    pub cpu_cells_per_sec: f64,
}

impl Default for LeafRates {
    /// APU-class rates: the GPU sustains ~1.5 G cells/s on the memory-bound
    /// stencil (18 GB/s shared DRAM / 12 B per cell); the 4 CPU threads
    /// together reach about a sixth of that on the row-block leaf tasks
    /// (the full-application 8x GPU speedup the paper quotes includes
    /// launch and staging costs the leaf tasks do not pay).
    fn default() -> Self {
        LeafRates {
            gpu_cells_per_sec: 1.5e9,
            cpu_cells_per_sec: 0.25e9,
        }
    }
}

/// One Fig. 11 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BalanceConfig {
    /// Input grid dimension in SSD (the paper's `m`).
    pub m: usize,
    /// Chunk dimension loaded into main memory (the paper's `n`).
    pub chunk: usize,
    /// Number of GPU workgroup queues (8 / 16 / 32 in the paper).
    pub gpu_queues: usize,
    /// Number of CPU thread queues.
    pub cpu_threads: usize,
    /// Row-block height (each task processes a `16 x chunk` row of blocks).
    pub block_rows: usize,
    /// Time steps each task advances (the temporal-blocking depth of the
    /// out-of-core pass; see `calibration::HOTSPOT_STEPS_PER_PASS`).
    pub steps: usize,
    /// Whether CPU threads participate and GPU workgroups steal.
    pub stealing: bool,
    /// Leaf throughput calibration.
    pub rates: LeafRates,
    /// SSD read bandwidth for chunk staging, bytes/s.
    pub ssd_read_bw: f64,
}

impl BalanceConfig {
    /// The paper's three input points `(m, n)` with a given queue count.
    pub fn paper_points(gpu_queues: usize, stealing: bool) -> Vec<BalanceConfig> {
        [(16_384, 2_048), (16_384, 4_096), (32_768, 4_096)]
            .into_iter()
            .map(|(m, chunk)| BalanceConfig {
                m,
                chunk,
                gpu_queues,
                cpu_threads: 4,
                block_rows: 16,
                steps: crate::calibration::HOTSPOT_STEPS_PER_PASS,
                stealing,
                rates: LeafRates::default(),
                ssd_read_bw: 1.4e9,
            })
            .collect()
    }

    /// Number of chunks streamed from the SSD.
    pub fn chunks(&self) -> usize {
        let per_side = self.m / self.chunk;
        per_side * per_side
    }

    /// Leaf tasks per chunk (rows of blocks).
    pub fn tasks_per_chunk(&self) -> usize {
        self.chunk / self.block_rows
    }
}

/// Result of one balanced run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BalanceRun {
    /// Total runtime (staging + balanced leaf compute, pipelined).
    pub makespan: SimDur,
    /// Total successful steals across all chunks.
    pub steals: u64,
    /// Sum of leaf compute makespans (per-chunk DES results).
    pub leaf_time: SimDur,
}

/// Simulate the leaf of one chunk: deal the rows of blocks round-robin
/// across the consumer queues and run the stealing DES.
pub fn simulate_chunk_leaf(cfg: &BalanceConfig) -> StealOutcome {
    let eff = latency_hiding_efficiency(cfg.gpu_queues);
    let gpu_rate = cfg.rates.gpu_cells_per_sec * eff / cfg.gpu_queues as f64;
    let cpu_rate = cfg.rates.cpu_cells_per_sec / cfg.cpu_threads.max(1) as f64;

    let mut workers: Vec<SimWorker> = Vec::new();
    // GPU workgroups first; CPU threads after (if participating). An idle
    // GPU workgroup steals from the head of any other queue — most
    // profitably a CPU queue, which the richest-victim rule targets because
    // slow CPU consumers drain their queues last (§V-E: "GPU workgroup may
    // steal elements pointed by the head pointer of another CPU queue").
    let total = if cfg.stealing {
        cfg.gpu_queues + cfg.cpu_threads
    } else {
        cfg.gpu_queues
    };
    for i in 0..cfg.gpu_queues {
        let victims: Vec<usize> = if cfg.stealing {
            (0..total).filter(|&v| v != i).collect()
        } else {
            Vec::new()
        };
        workers.push(SimWorker::new(format!("gpu-wg-{i}"), gpu_rate, victims));
    }
    if cfg.stealing {
        for i in 0..cfg.cpu_threads {
            workers.push(SimWorker::new(format!("cpu-{i}"), cpu_rate, Vec::new()));
        }
    }

    let task_cells = (cfg.block_rows * cfg.chunk * cfg.steps) as f64;
    let tasks = vec![task_cells; cfg.tasks_per_chunk()];
    let queues = deal_round_robin(&tasks, workers.len());
    simulate_stealing(&workers, queues)
}

/// Full run: chunks stream from the SSD and their leaf phases execute in a
/// simple load/compute pipeline.
pub fn run_balanced(cfg: &BalanceConfig) -> BalanceRun {
    let leaf = simulate_chunk_leaf(cfg);
    let chunk_bytes = (cfg.chunk * cfg.chunk * 4) as u64;
    let mut ssd = Resource::new("ssd", cfg.ssd_read_bw, SimDur::ZERO);
    let mut leaf_res = Resource::new_compute("leaf");
    let mut end = SimTime::ZERO;
    for _ in 0..cfg.chunks() {
        let load = ssd.serve_bytes(SimTime::ZERO, chunk_bytes);
        let compute = leaf_res.serve_for(load.end, leaf.makespan);
        end = end.max(compute.end);
    }
    BalanceRun {
        makespan: end.since(SimTime::ZERO),
        steals: leaf.steals * cfg.chunks() as u64,
        leaf_time: leaf.makespan * cfg.chunks() as u64,
    }
}

/// The Fig. 11 series: for one input point, the speedup of CPU+GPU work
/// stealing over GPU-only Northup execution at the same GPU queue count
/// (the paper's normalization; "up to 24%" improvement, 32 queues best in
/// absolute terms).
pub fn fig11_speedup(m: usize, chunk: usize, gpu_queues: usize) -> f64 {
    let base_cfg = BalanceConfig {
        gpu_queues,
        stealing: false,
        ..BalanceConfig::paper_points(gpu_queues, false)
            .into_iter()
            .find(|c| c.m == m && c.chunk == chunk)
            .expect("known input point")
    };
    let steal_cfg = BalanceConfig {
        stealing: true,
        ..base_cfg
    };
    let base = run_balanced(&base_cfg);
    let steal = run_balanced(&steal_cfg);
    base.makespan.as_secs_f64() / steal.makespan.as_secs_f64()
}

/// Absolute makespan of the work-stealing configuration (used to show that
/// 32 queues gives the best absolute performance).
pub fn fig11_absolute(m: usize, chunk: usize, gpu_queues: usize) -> SimDur {
    let cfg = BalanceConfig {
        gpu_queues,
        stealing: true,
        ..BalanceConfig::paper_points(gpu_queues, true)
            .into_iter()
            .find(|c| c.m == m && c.chunk == chunk)
            .expect("known input point")
    };
    run_balanced(&cfg).makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(q: usize, stealing: bool) -> BalanceConfig {
        BalanceConfig {
            gpu_queues: q,
            stealing,
            ..BalanceConfig::paper_points(q, stealing)[0]
        }
    }

    #[test]
    fn chunk_and_task_counts() {
        let c = point(32, true);
        assert_eq!(c.chunks(), 64); // (16384/2048)^2
        assert_eq!(c.tasks_per_chunk(), 128); // 2048/16
    }

    #[test]
    fn stealing_improves_every_queue_count() {
        for (m, n) in [(16_384usize, 2_048usize), (16_384, 4_096), (32_768, 4_096)] {
            for q in [8usize, 16, 32] {
                let s = fig11_speedup(m, n, q);
                // Paper: improvements up to ~24%. In our deterministic
                // model the gain concentrates at low queue counts, where
                // GPU workgroups run fast relative to CPU threads and
                // stealing fires; at q=32 per-consumer rates nearly match
                // and the gain shrinks toward zero (documented deviation
                // in EXPERIMENTS.md).
                assert!((0.98..1.30).contains(&s), "({m},{n}) q={q}: got {s}");
                if q == 8 {
                    assert!(s > 1.15, "low queue counts show the big gains: {s}");
                }
            }
        }
    }

    #[test]
    fn thirty_two_queues_is_best_in_absolute_terms() {
        for (m, n) in [(16_384usize, 2_048usize), (16_384, 4_096), (32_768, 4_096)] {
            let t8 = fig11_absolute(m, n, 8);
            let t16 = fig11_absolute(m, n, 16);
            let t32 = fig11_absolute(m, n, 32);
            assert!(t32 < t16 && t16 < t8, "({m},{n}): {t8} {t16} {t32}");
        }
    }

    #[test]
    fn steals_happen_and_every_task_runs() {
        let out = simulate_chunk_leaf(&point(8, true));
        assert_eq!(out.tasks as usize, point(8, true).tasks_per_chunk());
        assert!(out.steals > 0, "GPU workgroups steal when queues run dry");
    }

    #[test]
    fn no_stealing_means_no_steals() {
        let out = simulate_chunk_leaf(&point(32, false));
        assert_eq!(out.steals, 0);
    }

    #[test]
    fn deterministic() {
        let a = run_balanced(&point(16, true));
        let b = run_balanced(&point(16, true));
        assert_eq!(a, b);
    }

    #[test]
    fn cpu_contribution_is_bounded_by_rates() {
        // At full GPU occupancy (q=32) the speedup can't exceed
        // 1 + cpu/gpu throughput ratio (plus a small stealing-tail margin).
        let s = fig11_speedup(32_768, 4_096, 32);
        let r = LeafRates::default();
        let bound = 1.0 + r.cpu_cells_per_sec / r.gpu_cells_per_sec + 0.05;
        assert!(s < bound, "{s} vs bound {bound}");
    }
}
