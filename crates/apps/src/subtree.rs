//! Scheduling across asymmetric subtrees (paper §V-E and §VII).
//!
//! "The system is subject to load imbalance when uneven workloads are
//! assigned to different subtrees. Northup's topological tree structure is
//! able to naturally support dynamic load balancing when tree nodes store
//! information such as on-going tasks at different subtrees."
//!
//! This module runs a batch of independent stencil jobs over the Fig. 2
//! asymmetric tree: every leaf (a CPU DRAM leaf, a GPU behind an NVM
//! subtree, a PIM unit and an FPGA under a shared DRAM node) is a branch
//! target with its own path from the root and its own throughput. Two
//! dispatch policies are compared:
//!
//! * [`Dispatch::RoundRobin`] — static, topology-blind;
//! * [`Dispatch::EarliestFinish`] — dynamic: each job goes to the branch
//!   whose leaf processor frees up first (the queue-status query the paper
//!   describes: "examining the status of a subsystem can be easily
//!   accomplished by checking the queue associated with the root of a
//!   subtree").

use crate::calibration::model_for;
use crate::report::AppRun;
use northup::{ExecMode, NodeId, ProcKind, Result, Runtime, Tree};
use northup_sim::SimTime;
use serde::{Deserialize, Serialize};

/// Job dispatch policy across subtrees.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dispatch {
    /// Jobs rotate across branches regardless of their speed.
    RoundRobin,
    /// Each job goes to the branch whose leaf frees up first.
    EarliestFinish,
    /// Each job goes to the branch whose subtree work queue is shallowest —
    /// the paper's literal queue-status mechanism (Listing 1 work queues +
    /// §V-E subsystem checks). Tracks pending jobs with
    /// [`northup::WorkQueues`] and completes them as their virtual
    /// completion times pass.
    ShortestQueue,
}

/// One branch: the path from the root to a compute leaf.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Nodes from the first level below the root down to the leaf.
    pub path: Vec<NodeId>,
    /// The leaf's processor kind.
    pub proc: ProcKind,
    /// The leaf's processor name (cost-model key).
    pub proc_name: String,
}

/// Enumerate the branches (root-to-leaf paths) of a tree.
pub fn branches(tree: &Tree) -> Vec<Branch> {
    let mut out = Vec::new();
    for leaf in tree.leaves() {
        let Some(proc_) = leaf.procs.first() else {
            continue;
        };
        let mut path = vec![leaf.id];
        let mut cur = leaf.id;
        while let Some(p) = tree.parent(cur) {
            if p == tree.root() {
                break;
            }
            path.push(p);
            cur = p;
        }
        path.reverse();
        out.push(Branch {
            path,
            proc: proc_.kind,
            proc_name: proc_.name.clone(),
        });
    }
    out
}

/// Outcome of a batch run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubtreeOutcome {
    /// The run report.
    pub run: AppRun,
    /// Jobs executed per branch leaf.
    pub per_leaf: Vec<(NodeId, usize)>,
}

/// Run `jobs` identical stencil chunks (`block x block`, `steps` deep)
/// over the branches of `tree` under the given dispatch policy.
pub fn run_batch(
    tree: Tree,
    jobs: usize,
    block: usize,
    steps: u64,
    dispatch: Dispatch,
) -> Result<SubtreeOutcome> {
    let rt = Runtime::new(tree, ExecMode::Modeled)?;
    let branches = branches(rt.tree());
    assert!(!branches.is_empty(), "tree has no compute leaves");
    let bytes = (block * block * 4) as u64;
    let cells = (block * block) as u64;

    let input = rt.alloc(bytes * jobs as u64, rt.tree().root())?;
    // Results land in a separate root region: writing back into `input`
    // would make every job's first read wait on the previous job's final
    // write (dependencies are tracked per buffer, not per byte range).
    let output = rt.alloc(bytes * jobs as u64, rt.tree().root())?;
    let mut counts = vec![0usize; branches.len()];
    let mut pending: Vec<(u64, Vec<northup::BufferHandle>)> = Vec::new();
    let mut wq = northup::WorkQueues::new(rt.tree(), 1);
    // (completion time, branch head node, task id) for ShortestQueue.
    let mut inflight: Vec<(SimTime, NodeId, northup::TaskId)> = Vec::new();

    for j in 0..jobs as u64 {
        let b = match dispatch {
            Dispatch::RoundRobin => (j as usize) % branches.len(),
            Dispatch::ShortestQueue => {
                // Bounded admission: a real dispatcher hands out work as
                // completions free slots. Block (advance virtual "now" to
                // the earliest completion) while the in-flight window is
                // full, retiring finished tasks from their queues — this is
                // what lets queue depths reflect per-branch backlog rather
                // than a mere assignment count.
                let window = 2 * branches.len();
                while inflight.len() >= window {
                    let (pos, &(done, head, id)) = inflight
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, &(done, _, _))| done)
                        .expect("non-empty inflight");
                    let _ = done;
                    wq.complete(head, id);
                    inflight.remove(pos);
                }
                // The SV-E query: shallowest subtree queue wins.
                let mut best = 0usize;
                let mut best_depth = usize::MAX;
                for (i, br) in branches.iter().enumerate() {
                    let depth = wq.subtree_depth(rt.tree(), br.path[0]);
                    if depth < best_depth {
                        best_depth = depth;
                        best = i;
                    }
                }
                best
            }
            Dispatch::EarliestFinish => {
                // The §V-E subsystem-status query: pick the branch whose
                // leaf processor frees up first.
                let mut best = 0usize;
                let mut best_t = SimTime(u64::MAX);
                for (i, br) in branches.iter().enumerate() {
                    let leaf = *br.path.last().expect("non-empty path");
                    let t = rt.proc_busy_until(leaf, br.proc)?;
                    if t < best_t {
                        best_t = t;
                        best = i;
                    }
                }
                best
            }
        };
        let branch = &branches[b];
        counts[b] += 1;

        // Move the job down the branch, compute at its leaf, release.
        let mut stages = Vec::with_capacity(branch.path.len());
        let mut cur = input;
        let mut cur_off = j * bytes;
        for &node in &branch.path {
            let stage = rt.alloc(bytes, node)?;
            rt.move_data(stage, 0, cur, cur_off, bytes)?;
            stages.push(stage);
            cur = stage;
            cur_off = 0;
        }
        let leaf = *branch.path.last().expect("non-empty path");
        let dur = model_for(&branch.proc_name).stencil_time(cells, steps);
        let served =
            rt.charge_compute(leaf, branch.proc, dur, &[cur], &[cur], &format!("job {j}"))?;
        if dispatch == Dispatch::ShortestQueue {
            let id = wq.enqueue(branch.path[0], 0, format!("job {j}"));
            inflight.push((served.end, branch.path[0], id));
        }
        pending.push((j, stages));
    }

    // Write-behind: results return along their paths after all loads are
    // issued, so result writes do not head-of-line-block later jobs' loads
    // on the shared root device (the §III-C multi-stage queues let loads
    // overtake queued writes the same way).
    for (j, stages) in pending {
        for w in (1..stages.len()).rev() {
            rt.move_data(stages[w - 1], 0, stages[w], 0, bytes)?;
        }
        rt.move_data(output, j * bytes, stages[0], 0, bytes)?;
        for s in stages {
            rt.release(s)?;
        }
    }

    let per_leaf = branches
        .iter()
        .zip(&counts)
        .map(|(br, &n)| (*br.path.last().unwrap(), n))
        .collect();
    Ok(SubtreeOutcome {
        run: AppRun {
            name: format!("subtree-batch/{dispatch:?}"),
            report: rt.report(),
            verified: None,
            checksum: None,
        },
        per_leaf,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup::presets;

    #[test]
    fn fig2_tree_has_four_branches() {
        let brs = branches(&presets::asymmetric_fig2());
        assert_eq!(brs.len(), 4);
        // Depths differ (asymmetry).
        let depths: Vec<usize> = brs.iter().map(|b| b.path.len()).collect();
        assert!(depths.iter().max().unwrap() > depths.iter().min().unwrap());
    }

    #[test]
    fn both_policies_execute_every_job() {
        for d in [Dispatch::RoundRobin, Dispatch::EarliestFinish] {
            let out = run_batch(presets::asymmetric_fig2(), 40, 256, 8, d).unwrap();
            let total: usize = out.per_leaf.iter().map(|(_, n)| n).sum();
            assert_eq!(total, 40, "{d:?}");
        }
    }

    /// Fig. 2 tree with an SSD root, so the shared storage does not
    /// bottleneck the batch and the dispatch policy is what matters.
    fn fig2_ssd() -> northup::Tree {
        presets::asymmetric_fig2_with(northup_hw::catalog::ssd_hyperx_predator())
    }

    #[test]
    fn earliest_finish_beats_round_robin_on_the_asymmetric_tree() {
        // Compute-heavy jobs: the leaves' 25x throughput spread dominates.
        let rr = run_batch(fig2_ssd(), 60, 512, 256, Dispatch::RoundRobin).unwrap();
        let ef = run_batch(fig2_ssd(), 60, 512, 256, Dispatch::EarliestFinish).unwrap();
        let (t_rr, t_ef) = (rr.run.makespan(), ef.run.makespan());
        assert!(
            t_ef.as_secs_f64() < 0.6 * t_rr.as_secs_f64(),
            "dynamic {t_ef} should beat static {t_rr} clearly"
        );
    }

    #[test]
    fn earliest_finish_loads_fast_leaves_more() {
        let out = run_batch(fig2_ssd(), 80, 512, 256, Dispatch::EarliestFinish).unwrap();
        let min = out.per_leaf.iter().map(|(_, n)| *n).min().unwrap();
        let max = out.per_leaf.iter().map(|(_, n)| *n).max().unwrap();
        assert!(
            max > 2 * min.max(1),
            "heterogeneous branches should get very uneven shares: {:?}",
            out.per_leaf
        );
    }

    #[test]
    fn shared_slow_root_equalizes_policies() {
        // With the paper's HDD at the root, the storage serializes the
        // batch and the dispatch policy stops mattering — the scheduling
        // insight cuts both ways.
        let rr = run_batch(
            presets::asymmetric_fig2(),
            30,
            512,
            16,
            Dispatch::RoundRobin,
        )
        .unwrap();
        let ef = run_batch(
            presets::asymmetric_fig2(),
            30,
            512,
            16,
            Dispatch::EarliestFinish,
        )
        .unwrap();
        let ratio = rr.run.makespan().as_secs_f64() / ef.run.makespan().as_secs_f64();
        assert!((0.9..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_branch_tree_degenerates_gracefully() {
        let tree = presets::apu_two_level(northup_hw::catalog::ssd_hyperx_predator());
        let out = run_batch(tree, 10, 128, 4, Dispatch::EarliestFinish).unwrap();
        assert_eq!(out.per_leaf.len(), 1);
        assert_eq!(out.per_leaf[0].1, 10);
    }

    #[test]
    fn shortest_queue_dispatch_also_balances() {
        // The paper's literal queue-depth mechanism performs comparably to
        // earliest-finish on the heterogeneous tree.
        let rr = run_batch(fig2_ssd(), 60, 512, 256, Dispatch::RoundRobin).unwrap();
        let sq = run_batch(fig2_ssd(), 60, 512, 256, Dispatch::ShortestQueue).unwrap();
        let ef = run_batch(fig2_ssd(), 60, 512, 256, Dispatch::EarliestFinish).unwrap();
        let (t_rr, t_sq, t_ef) = (
            rr.run.makespan().as_secs_f64(),
            sq.run.makespan().as_secs_f64(),
            ef.run.makespan().as_secs_f64(),
        );
        assert!(
            t_sq < 0.7 * t_rr,
            "queue depths beat round-robin: {t_sq} vs {t_rr}"
        );
        // Depth is a weaker signal than projected finish times (it ignores
        // branch service rates), so SQ lands between RR and EF.
        assert!(
            t_sq <= t_ef * 2.0,
            "within 2x of earliest-finish: {t_sq} vs {t_ef}"
        );
        assert!(t_ef <= t_sq, "finish-time projection dominates depth-only");
        let total: usize = sq.per_leaf.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 60);
    }

    #[test]
    fn cluster_batch_distributes_across_nodes() {
        // §VII future work: the same dispatch machinery drives a whole
        // cluster — a PFS root, InfiniBand links, per-node NVM chains.
        let tree = presets::cluster(3, 1);
        let out = run_batch(tree, 48, 512, 64, Dispatch::EarliestFinish).unwrap();
        let total: usize = out.per_leaf.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 48);
        // Every GPU node gets real work; the lone CPU node gets least.
        let counts: Vec<usize> = out.per_leaf.iter().map(|(_, n)| *n).collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max >= min, "{counts:?}");
        assert!(counts.iter().filter(|&&c| c > 0).count() >= 3, "{counts:?}");
    }

    #[test]
    fn deterministic() {
        let a = run_batch(
            presets::asymmetric_fig2(),
            30,
            256,
            8,
            Dispatch::EarliestFinish,
        )
        .unwrap();
        let b = run_batch(
            presets::asymmetric_fig2(),
            30,
            256,
            8,
            Dispatch::EarliestFinish,
        )
        .unwrap();
        assert_eq!(a.run.makespan(), b.run.makespan());
        assert_eq!(a.per_leaf, b.per_leaf);
    }
}
