//! The §VI data-layout study: transform chunks between formats as they
//! migrate across memory levels.
//!
//! "One can imagine when data migrates across memory levels, chunks can be
//! transformed and stored in different formats ... For sparse-matrix
//! problems, the choice of data layouts not only depends on architectures
//! but also on inputs."
//!
//! [`spmv_with_format`] runs the out-of-core SpMV either straight over CSR
//! (gather-bound kernel) or with a per-shard **CSR→ELL transformation
//! during the downward migration**: the CPU repacks the staged arrays into
//! ELLPACK (charged like a layout-transforming `move_data`), and the leaf
//! kernel then streams perfectly regular slots at several times the
//! gather-bound bandwidth — but pays for every padding slot. Uniform-row
//! inputs win big; power-law inputs lose big. [`format_study`] quantifies
//! the crossover.

use crate::calibration::{model_for, spmv_gpu_model};
use crate::report::AppRun;
use northup::{ExecMode, ProcKind, Result, Runtime, TRANSFORM_BW};
use northup_kernels::{f32s_to_bytes, rel_error, ProcModel};
use northup_sim::SimDur;
use northup_sparse::{partition_even_rows, Csr, Ell};
use serde::{Deserialize, Serialize};

/// Leaf layout for the out-of-core SpMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpmvFormat {
    /// Keep CSR end to end (gather-bound kernel).
    Csr,
    /// Transform each shard to ELLPACK during the downward migration
    /// (regular-stream kernel, padding traffic).
    EllOnMigrate,
}

/// GPU model for the ELL kernel: the regular slot streams reach a few times
/// the gather-bound effective bandwidth of the CSR kernel on the APU's
/// integrated GPU (coalesced loads vs dependent gathers).
pub fn ell_gpu_model() -> ProcModel {
    ProcModel {
        name: "apu-gpu-ell".into(),
        flops: 250e9,
        mem_bw: 6e9,
        launch: SimDur::from_micros(15),
    }
}

/// Run the out-of-core SpMV (2-level APU, 4 shards) with the chosen leaf
/// format. Real mode verifies against the reference SpMV.
pub fn spmv_with_format(
    m: &Csr,
    format: SpmvFormat,
    storage: northup_hw::DeviceSpec,
    mode: ExecMode,
) -> Result<AppRun> {
    assert_eq!(m.rows, m.cols, "study uses square matrices");
    let tree = northup::presets::apu_two_level(storage);
    let rt = Runtime::new(tree, mode)?;
    let rows = m.rows as u64;
    let nnz = m.nnz() as u64;

    let root = rt.tree().root();
    // Preprocessed chunked layout: each shard's (row_ptr slice, col, data)
    // stored contiguously, so each shard costs (rows_i + 1) * 4 + nnz_i * 8.
    let chunks = crate::calibration::SPMV_CHUNKS as u64;
    let payload_file = rt.alloc((rows + chunks) * 4 + nnz * 8, root)?;
    let x_file = rt.alloc(rows * 4, root)?;
    let y_file = rt.alloc(rows * 4, root)?;

    let mut x_host: Vec<f32> = Vec::new();
    if mode == ExecMode::Real {
        x_host = (0..m.cols).map(|i| ((i % 9) as f32 - 4.0) * 0.25).collect();
        rt.write_slice(x_file, 0, &f32s_to_bytes(&x_host))?;
        // The CSR payload itself is staged per shard from host data below;
        // the file content only matters for byte accounting here.
    }

    let stage = *rt.tree().children(root).first().expect("staging level");
    let x_stage = rt.alloc(rows * 4, stage)?;
    rt.move_data(x_stage, 0, x_file, 0, rows * 4)?;

    let cpu = ProcKind::Cpu;
    let gpu_csr = spmv_gpu_model();
    let gpu_ell = ell_gpu_model();
    let _ = model_for("apu-cpu");

    let shards = partition_even_rows(m, crate::calibration::SPMV_CHUNKS);
    let mut y_host = vec![0.0f32; m.rows];
    let mut payload_off = 0u64;
    for (i, s) in shards.iter().enumerate() {
        let sub = m.slice_rows(s.row_start, s.row_end);
        let csr_bytes = s.payload_bytes();
        let shard_buf = rt.alloc(csr_bytes, stage)?;
        rt.move_data(shard_buf, 0, payload_file, payload_off, csr_bytes)?;
        payload_off += csr_bytes;

        let y_s = rt.alloc((sub.rows * 4) as u64, stage)?;
        match format {
            SpmvFormat::Csr => {
                let dur = gpu_csr.spmv_time(sub.rows as u64, sub.nnz() as u64);
                rt.charge_compute(
                    stage,
                    ProcKind::Gpu,
                    dur,
                    &[shard_buf, x_stage],
                    &[y_s],
                    &format!("spmv-csr shard {i}"),
                )?;
                if mode == ExecMode::Real {
                    let mut yv = vec![0.0f32; sub.rows];
                    sub.spmv_reference(&x_host, &mut yv);
                    y_host[s.row_start..s.row_end].copy_from_slice(&yv);
                    rt.write_slice(y_s, 0, &f32s_to_bytes(&yv))?;
                }
            }
            SpmvFormat::EllOnMigrate => {
                // The layout-transforming migration: CPU converts the staged
                // CSR arrays into a per-shard ELL buffer (cost = a permute
                // pass over input + output bytes, like move_data_transform).
                let ell = Ell::from_csr(&sub);
                let ell_bytes = ell.storage_bytes().max(8);
                let ell_buf = rt.alloc(ell_bytes, stage)?;
                let t_dur = SimDur::from_secs_f64((csr_bytes + ell_bytes) as f64 / TRANSFORM_BW);
                rt.charge_compute(
                    stage,
                    cpu,
                    t_dur,
                    &[shard_buf],
                    &[ell_buf],
                    &format!("csr->ell shard {i}"),
                )?;
                // Leaf kernel: regular streams over every slot (padding
                // included) at the streaming-effective bandwidth.
                let traffic = ell.slots() as f64 * 12.0 + sub.rows as f64 * 8.0;
                let dur = gpu_ell.roofline(2.0 * ell.nnz() as f64, traffic);
                rt.charge_compute(
                    stage,
                    ProcKind::Gpu,
                    dur,
                    &[ell_buf, x_stage],
                    &[y_s],
                    &format!("spmv-ell shard {i}"),
                )?;
                if mode == ExecMode::Real {
                    let mut yv = vec![0.0f32; sub.rows];
                    ell.spmv(&x_host, &mut yv);
                    y_host[s.row_start..s.row_end].copy_from_slice(&yv);
                    rt.write_slice(y_s, 0, &f32s_to_bytes(&yv))?;
                }
                rt.release(ell_buf)?;
            }
        }
        rt.move_data(
            y_file,
            (s.row_start * 4) as u64,
            y_s,
            0,
            (sub.rows * 4) as u64,
        )?;
        rt.release(y_s)?;
        rt.release(shard_buf)?;
    }

    let mut verified = None;
    if mode == ExecMode::Real {
        let mut oracle = vec![0.0f32; m.rows];
        m.spmv_reference(&x_host, &mut oracle);
        verified = Some(rel_error(&oracle, &y_host) < 1e-4);
    }

    Ok(AppRun {
        name: format!("spmv-layout/{format:?}"),
        report: rt.report(),
        verified,
        checksum: None,
    })
}

/// One row of the format study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FormatRow {
    /// Input label.
    pub input: String,
    /// Global padding ratio of the ELL form.
    pub padding: f64,
    /// CSR makespan.
    pub csr: SimDur,
    /// ELL-on-migrate makespan.
    pub ell: SimDur,
}

impl FormatRow {
    /// True when transforming to ELL during migration paid off.
    pub fn ell_wins(&self) -> bool {
        self.ell < self.csr
    }
}

/// Run the study over named inputs (Modeled mode — shapes only need sizes).
pub fn format_study(inputs: &[(&str, Csr)]) -> Result<Vec<FormatRow>> {
    inputs
        .iter()
        .map(|(name, m)| {
            let storage = northup_hw::catalog::ssd_hyperx_predator();
            let csr = spmv_with_format(m, SpmvFormat::Csr, storage.clone(), ExecMode::Real)?;
            let ell = spmv_with_format(m, SpmvFormat::EllOnMigrate, storage, ExecMode::Real)?;
            assert_eq!(csr.verified, Some(true));
            assert_eq!(ell.verified, Some(true));
            Ok(FormatRow {
                input: name.to_string(),
                padding: Ell::from_csr(m).padding_ratio(),
                csr: csr.makespan(),
                ell: ell.makespan(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use northup_hw::catalog;
    use northup_sparse::gen;

    #[test]
    fn both_formats_verify() {
        let m = gen::uniform_random(400, 400, 12, 3);
        for f in [SpmvFormat::Csr, SpmvFormat::EllOnMigrate] {
            let run =
                spmv_with_format(&m, f, catalog::ssd_hyperx_predator(), ExecMode::Real).unwrap();
            assert_eq!(run.verified, Some(true), "{f:?}");
        }
    }

    #[test]
    fn ell_wins_on_uniform_rows_and_loses_on_powerlaw() {
        // The §VI claim, quantified: the right layout depends on the input.
        let rows = format_study(&[
            ("uniform", gen::uniform_random(3000, 3000, 16, 1)),
            ("powerlaw", gen::powerlaw(3000, 3000, 2048, 0.9, 2)),
        ])
        .unwrap();
        let uniform = &rows[0];
        let powerlaw = &rows[1];
        assert!(uniform.padding < 1.05);
        assert!(powerlaw.padding > 5.0);
        assert!(
            uniform.ell_wins(),
            "regular rows: ELL should win ({} vs {})",
            uniform.ell,
            uniform.csr
        );
        assert!(
            !powerlaw.ell_wins(),
            "padded rows: CSR should win ({} vs {})",
            powerlaw.ell,
            powerlaw.csr
        );
    }

    #[test]
    fn transform_cost_is_charged_to_the_cpu() {
        let m = gen::banded(1000, 4, 7);
        let run = spmv_with_format(
            &m,
            SpmvFormat::EllOnMigrate,
            catalog::ssd_hyperx_predator(),
            ExecMode::Real,
        )
        .unwrap();
        let cpu = run.report.breakdown.get(northup_sim::Category::CpuCompute);
        assert!(cpu > SimDur::ZERO, "migration transform on the CPU");
    }
}
