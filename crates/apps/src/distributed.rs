//! Distributed out-of-core GEMM across a cluster (paper §VII future work:
//! "extending the model to support distributed systems").
//!
//! The cluster is just a bigger Northup tree ([`northup::presets::cluster`]):
//! a parallel file system at the root, compute nodes as subtrees behind
//! InfiniBand links, each node an NVM → DRAM → GPU chain. The same
//! divide-and-conquer schedule then *is* the distributed algorithm:
//!
//! * row strips of `A` (and their `C` strips) are owned round-robin by the
//!   nodes;
//! * every node streams the column shards of `B` from the PFS (replicated
//!   reads — the PFS is a shared FIFO resource, so its bandwidth is the
//!   scaling ceiling, exactly like a real cluster);
//! * each node's chain pipelines independently of the others, so node
//!   parallelism emerges from the resource model rather than being coded.

use crate::calibration::model_for;
use crate::host::when_real;
use crate::report::AppRun;
use northup::{BufferHandle, ExecMode, NodeId, ProcKind, Result, Runtime};
use northup_kernels::{
    bytes_to_f32s, f32s_to_bytes, matmul_naive, matmul_tiled, DenseMatrix, LEAF_TILE,
};

/// Configuration of a distributed GEMM run.
#[derive(Debug, Clone)]
pub struct DistGemmConfig {
    /// Matrix dimension (square).
    pub n: usize,
    /// Row-strip / column-shard blocking.
    pub block: usize,
    /// Number of GPU compute nodes in the cluster.
    pub nodes: usize,
    /// Input seed (Real mode).
    pub seed: u64,
}

impl DistGemmConfig {
    /// Paper-scale input on a small cluster.
    pub fn paper(nodes: usize) -> Self {
        DistGemmConfig {
            n: crate::calibration::paper::GEMM_N,
            block: crate::calibration::paper::GEMM_BLOCK,
            nodes,
            seed: 1,
        }
    }

    /// Laptop-scale verified input.
    pub fn small(nodes: usize) -> Self {
        DistGemmConfig {
            n: 64,
            block: 16,
            nodes,
            seed: 7,
        }
    }

    fn nb(&self) -> usize {
        assert!(self.block > 0 && self.n.is_multiple_of(self.block));
        self.n / self.block
    }
}

/// One compute node's chain below the PFS root.
struct NodeChain {
    /// nvm -> dram -> gpu node ids.
    path: Vec<NodeId>,
    /// Staged buffers at the first level (A strip kept + B ring).
    a_stage: BufferHandle,
    b_ring: [BufferHandle; 2],
    /// Resident C strip at the first level (written back once per strip).
    c_strip: BufferHandle,
    /// Whole-shard buffers at each deeper level: [a, b, c].
    deep: Vec<[BufferHandle; 3]>,
}

/// Run the distributed GEMM; Real mode verifies against the naive oracle.
pub fn gemm_cluster(cfg: &DistGemmConfig, mode: ExecMode) -> Result<AppRun> {
    let tree = northup::presets::cluster(cfg.nodes, 0);
    let rt = Runtime::new(tree, mode)?;
    let n = cfg.n as u64;
    let block = cfg.block as u64;
    let nb = cfg.nb() as u64;
    let strip_a = block * n * 4; // A row strip / C row strip
    let shard_b = n * block * 4; // B column shard

    let root = rt.tree().root();
    // analyze:allow(lease-discipline): the matrices live for the whole run; the caller's Runtime reclaims them on drop
    let a_file = rt.alloc(n * n * 4, root)?;
    let b_file = rt.alloc(n * n * 4, root)?;
    let c_file = rt.alloc(n * n * 4, root)?;

    let (a_mat, b_mat) = when_real(mode, || {
        let am = DenseMatrix::random(cfg.n, cfg.n, cfg.seed);
        let bm = DenseMatrix::random(cfg.n, cfg.n, cfg.seed + 1);
        rt.write_slice(a_file, 0, &f32s_to_bytes(&am.data))?;
        for j in 0..nb {
            let shard = bm.extract_block(0, (j * block) as usize, cfg.n, cfg.block);
            rt.write_slice(b_file, j * shard_b, &f32s_to_bytes(&shard.data))?;
        }
        Ok((am, bm))
    })?
    .unzip();

    // Build each node's chain and buffers.
    let mut chains: Vec<NodeChain> = Vec::new();
    for &head in rt.tree().children(root) {
        let mut path = vec![head];
        let mut cur = head;
        while let Some(&c) = rt.tree().children(cur).first() {
            path.push(c);
            cur = c;
        }
        let stage = path[0];
        let deep = path[1..]
            .iter()
            .map(|&node| {
                Ok([
                    rt.alloc(strip_a, node)?,
                    rt.alloc(shard_b, node)?,
                    rt.alloc(block * block * 4, node)?,
                ])
            })
            .collect::<Result<Vec<_>>>()?;
        chains.push(NodeChain {
            a_stage: rt.alloc(strip_a, stage)?,
            b_ring: [rt.alloc(shard_b, stage)?, rt.alloc(shard_b, stage)?],
            c_strip: rt.alloc(strip_a, stage)?,
            path,
            deep,
        });
    }
    assert!(!chains.is_empty(), "cluster has no compute nodes");

    // Row strips owned round-robin; every node streams all B shards.
    // Tiles are ISSUED round-robin across the nodes working in a round:
    // issuing one node's whole strip first would head-of-line-block the
    // other nodes' loads behind its ring-gated requests in the PFS FIFO.
    let k = chains.len() as u64;
    let rounds = nb.div_ceil(k);
    for round in 0..rounds {
        let active: Vec<u64> = (0..k).map(|c| round * k + c).filter(|&i| i < nb).collect();
        // A strips for this round's strips, one per node.
        for &i in &active {
            let chain = &chains[(i % k) as usize];
            rt.move_data(chain.a_stage, 0, a_file, i * strip_a, strip_a)?;
        }
        for j in 0..nb {
            for &i in &active {
                process_tile(&rt, cfg, &chains[(i % k) as usize], i, j, b_file, mode)?;
            }
        }
        // Strip write-backs for the round.
        for &i in &active {
            let chain = &chains[(i % k) as usize];
            rt.move_data(c_file, i * strip_a, chain.c_strip, 0, strip_a)?;
        }
    }

    let mut checksum = None;
    let mut verified = None;
    if let (Some(am), Some(bm)) = (&a_mat, &b_mat) {
        let mut bytes = vec![0u8; (n * n * 4) as usize];
        rt.read_slice(c_file, 0, &mut bytes)?;
        let cm = DenseMatrix {
            rows: cfg.n,
            cols: cfg.n,
            data: bytes_to_f32s(&bytes),
        };
        checksum = Some(cm.checksum());
        if cfg.n <= 256 {
            let mut oracle = DenseMatrix::zeros(cfg.n, cfg.n);
            matmul_naive(am, bm, &mut oracle);
            verified = Some(oracle.max_abs_diff(&cm) < 1e-3 * cfg.n as f32);
        }
    }

    Ok(AppRun {
        name: format!("gemm-cluster/{}nodes", cfg.nodes),
        report: rt.report(),
        verified,
        checksum,
    })
}

/// Issue one (strip i, shard j) tile on `chain`.
fn process_tile(
    rt: &Runtime,
    cfg: &DistGemmConfig,
    chain: &NodeChain,
    i: u64,
    j: u64,
    b_file: BufferHandle,
    mode: ExecMode,
) -> Result<()> {
    let n = cfg.n as u64;
    let block = cfg.block as u64;
    let strip_a = block * n * 4;
    let shard_b = n * block * 4;
    let leaf = *chain.path.last().expect("chain leaf");
    let gpu = rt
        .tree()
        .node(leaf)
        .procs
        .iter()
        .find(|p| p.kind == ProcKind::Gpu)
        .expect("compute node has a GPU");
    let kernel_time = model_for(&gpu.name).gemm_time(block, block, n);

    let b_buf = chain.b_ring[(j % 2) as usize];
    rt.move_data(b_buf, 0, b_file, j * shard_b, shard_b)?;

    let a_new = j == 0;
    let (mut cur_a, mut cur_b) = (chain.a_stage, b_buf);
    for bufs in &chain.deep {
        if a_new {
            rt.move_data(bufs[0], 0, cur_a, 0, strip_a)?;
        }
        rt.move_data(bufs[1], 0, cur_b, 0, shard_b)?;
        cur_a = bufs[0];
        cur_b = bufs[1];
    }
    let leaf_c = chain.deep.last().map(|b| b[2]).unwrap_or(chain.c_strip);
    rt.charge_compute(
        leaf,
        ProcKind::Gpu,
        kernel_time,
        &[cur_a, cur_b],
        &[leaf_c],
        &format!("node gemm ({i},{j})"),
    )?;

    if mode == ExecMode::Real {
        let mut ab = vec![0u8; strip_a as usize];
        let mut bb = vec![0u8; shard_b as usize];
        rt.read_slice(cur_a, 0, &mut ab)?;
        rt.read_slice(cur_b, 0, &mut bb)?;
        let am = DenseMatrix {
            rows: cfg.block,
            cols: cfg.n,
            data: bytes_to_f32s(&ab),
        };
        let bm = DenseMatrix {
            rows: cfg.n,
            cols: cfg.block,
            data: bytes_to_f32s(&bb),
        };
        let mut cm = DenseMatrix::zeros(cfg.block, cfg.block);
        matmul_tiled(&am, &bm, &mut cm, LEAF_TILE);
        rt.write_slice(leaf_c, 0, &f32s_to_bytes(&cm.data))?;
    }

    // Tile back up the chain into the resident C strip (column j).
    let mut cur_c = leaf_c;
    for bufs in chain.deep.iter().rev().skip(1) {
        rt.move_data(bufs[2], 0, cur_c, 0, block * block * 4)?;
        cur_c = bufs[2];
    }
    if !chain.deep.is_empty() {
        rt.move_data_strided(
            chain.c_strip,
            j * block * 4,
            n * 4,
            cur_c,
            0,
            block * 4,
            block * 4,
            block,
        )?;
    }
    Ok(())
}

/// Strong-scaling curve: makespan per node count for a fixed problem.
pub fn scaling_curve(n: usize, block: usize, node_counts: &[usize]) -> Result<Vec<(usize, f64)>> {
    node_counts
        .iter()
        .map(|&k| {
            let cfg = DistGemmConfig {
                n,
                block,
                nodes: k,
                seed: 1,
            };
            let run = gemm_cluster(&cfg, ExecMode::Modeled)?;
            Ok((k, run.makespan().as_secs_f64()))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_gemm_verifies_on_small_inputs() {
        for nodes in [1usize, 2, 3] {
            let run = gemm_cluster(&DistGemmConfig::small(nodes), ExecMode::Real).unwrap();
            assert_eq!(run.verified, Some(true), "{nodes} nodes");
        }
    }

    #[test]
    fn checksum_is_node_count_invariant() {
        let one = gemm_cluster(&DistGemmConfig::small(1), ExecMode::Real).unwrap();
        let three = gemm_cluster(&DistGemmConfig::small(3), ExecMode::Real).unwrap();
        let (a, b) = (one.checksum.unwrap(), three.checksum.unwrap());
        assert!((a - b).abs() <= 1e-6 * a.abs().max(1.0));
    }

    #[test]
    fn strong_scaling_is_real_but_sublinear() {
        // Paper-scale 16k GEMM on 1/2/4 nodes: W9100-class nodes are fast,
        // so the shared PFS (B replicated to every node) caps the speedup.
        let curve = scaling_curve(16 * 1024, 4 * 1024, &[1, 2, 4]).unwrap();
        let t1 = curve[0].1;
        let t2 = curve[1].1;
        let t4 = curve[2].1;
        assert!(t2 < t1 * 0.75, "2 nodes help: {t1:.2} -> {t2:.2}");
        assert!(t4 < t2, "4 nodes help more: {t2:.2} -> {t4:.2}");
        let speedup4 = t1 / t4;
        assert!(
            (1.5..4.0).contains(&speedup4),
            "sublinear but real: {speedup4:.2}"
        );
    }

    #[test]
    fn timing_is_mode_independent() {
        let cfg = DistGemmConfig::small(2);
        let real = gemm_cluster(&cfg, ExecMode::Real).unwrap();
        let modeled = gemm_cluster(&cfg, ExecMode::Modeled).unwrap();
        assert_eq!(real.report.breakdown, modeled.report.breakdown);
    }
}
