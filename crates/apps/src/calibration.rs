//! Calibration knobs: the per-application performance parameters of the
//! virtual-time model.
//!
//! Every number here is documented with its provenance. The device-level
//! parameters (bandwidths, peak rates) live in `northup-hw`/`northup-kernels`;
//! this module holds the *application-level* effective rates that the paper
//! reports only indirectly through its figures. EXPERIMENTS.md records how
//! the resulting series compare with the paper's.

use northup_kernels::ProcModel;
use northup_sim::SimDur;

/// Resolve the cost model for a processor by its topology name.
///
/// # Panics
/// Panics on an unknown processor name (presets only use these three).
pub fn model_for(proc_name: &str) -> ProcModel {
    match proc_name {
        "apu-gpu" => ProcModel::apu_gpu(),
        "w9100" | "exa-gpu" | "gpu0" => ProcModel::w9100(),
        "apu-cpu" | "host-cpu" | "cpu0" => ProcModel::apu_cpu(),
        // Fig. 2's heterogeneous accelerators: a processing-in-memory unit
        // (modest FLOPS, enormous local bandwidth) and a mid-size FPGA.
        "pim" => ProcModel {
            name: "pim".into(),
            flops: 100e9,
            mem_bw: 120e9,
            launch: SimDur::from_micros(5),
        },
        "fpga0" => ProcModel {
            name: "fpga0".into(),
            flops: 600e9,
            mem_bw: 40e9,
            launch: SimDur::from_micros(50),
        },
        other => panic!("no cost model for processor '{other}'"),
    }
}

/// GEMM: staging ring depth (double buffering of B shards and C blocks —
/// the paper's multi-stage task queues, §III-C).
pub const GEMM_RING: usize = 2;

/// HotSpot: temporal blocking depth — time steps advanced per out-of-core
/// pass (= halo width). The paper tunes its blocking sizes "manually ...
/// through experimentation" (§IV-A); 64 steps/pass makes one pass's compute
/// comparable to its storage I/O on the entry SSD, which is where the
/// paper's HotSpot slowdown band (1.3x SSD, 2-2.5x disk) lives.
pub const HOTSPOT_STEPS_PER_PASS: usize = 64;

/// SpMV: GPU model for the gather-bound SpMV kernel. Random accesses to the
/// x vector achieve a small fraction of streaming bandwidth on the APU's
/// integrated GPU (the reason CSR-Adaptive's GPU share in Fig. 7 is a
/// sizeable bar despite SpMV's tiny FLOP count).
pub fn spmv_gpu_model() -> ProcModel {
    ProcModel {
        name: "apu-gpu-spmv".into(),
        flops: 250e9,
        mem_bw: 1.5e9,
        launch: SimDur::from_micros(15),
    }
}

/// SpMV on the discrete GPU: gathers hit GDDR5 with high parallelism; the
/// paper's ref. \[20\] reports ~4.5x over cuSPARSE, still far from streaming BW.
pub fn spmv_dgpu_model() -> ProcModel {
    ProcModel {
        name: "w9100-spmv".into(),
        flops: 4.2e12,
        mem_bw: 30e9,
        launch: SimDur::from_micros(20),
    }
}

/// SpMV: Northup's per-shard re-binning costs more than one monolithic
/// binning pass (shard boundaries break stream-block packing and the bins
/// must be rebuilt against rebased row offsets), expressed as a multiplier
/// on the baseline binning time. This is why "CSR-Adaptive uses the CPU for
/// binning rows ... and spends relatively more time" in the paper's
/// breakdown (§V-C).
pub const SPMV_NORTHUP_BIN_FACTOR: f64 = 1.25;

/// SpMV: effective storage-bandwidth factor for CSR-Adaptive's I/O. The
/// three CSR arrays produce variable-sized, irregularly-aligned requests
/// that reach only about half of the device's streaming bandwidth —
/// "HotSpot-2D obtains more performance benefit than CSR-Adaptive, because
/// it uses relatively regular blocks with better I/O performance as
/// compared to variable buffer sizes by CSR-Adaptive" (§V-B).
pub const SPMV_IO_EFFICIENCY: f64 = 0.5;

/// SpMV: CPU-side shard repacking rate (extract + rebase `row_ptr`,
/// `col_id`, `data` slices into the shard buffers), bytes/s.
pub const SPMV_REPACK_BW: f64 = 4e9;

/// SpMV: CSR-Adaptive's "variable buffer sizes" give worse storage I/O than
/// HotSpot's regular blocks (§V-B). Effective bandwidth factor applied by
/// issuing each shard as its three separately-sized array reads rather than
/// one regular block (the per-op latîncy and size variance do the rest).
pub const SPMV_CHUNKS: usize = 4;

/// Paper-scale problem sizes (§V-A).
pub mod paper {
    /// Dense matrices: 16k x 16k floats ("we use 16k x 16k and 32k x 32k").
    pub const GEMM_N: usize = 16 * 1024;
    /// The larger GEMM input.
    pub const GEMM_N_LARGE: usize = 32 * 1024;
    /// "A 4k x 4k blocking size is used in DRAM" (§IV-A).
    pub const GEMM_BLOCK: usize = 4 * 1024;
    /// HotSpot grid (same inputs as GEMM).
    pub const HOTSPOT_N: usize = 16 * 1024;
    /// "An 8k x 8k blocking size is used in DRAM" (§IV-B).
    pub const HOTSPOT_BLOCK: usize = 8 * 1024;
    /// "The inputs we used have 16 million rows" (§IV-C).
    pub const SPMV_ROWS: u64 = 16 * 1024 * 1024;
    /// Mean stored entries per row — road-network-class Florida matrices
    /// (e.g. road_usa has ~2.4 nnz/row), consistent with a 16M-row input
    /// that still fits the paper's storage and chunking setup.
    pub const SPMV_NNZ_PER_ROW: f64 = 2.4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_resolve_for_all_preset_processors() {
        for name in ["apu-gpu", "apu-cpu", "w9100", "host-cpu"] {
            let m = model_for(name);
            assert!(m.flops > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no cost model")]
    fn unknown_processor_panics() {
        model_for("quantum-accelerator");
    }

    #[test]
    fn spmv_gpu_is_gather_bound() {
        assert!(spmv_gpu_model().mem_bw < ProcModel::apu_gpu().mem_bw / 5.0);
    }

    #[test]
    fn paper_sizes_match_section_5a() {
        assert_eq!(paper::GEMM_N, 16384);
        assert_eq!(paper::GEMM_BLOCK, 4096);
        assert_eq!(paper::HOTSPOT_BLOCK, 8192);
        assert_eq!(paper::SPMV_ROWS, 16 * 1024 * 1024);
    }
}
